//! Schedule-space exploration over randomized sync graphs: the paper's
//! deadlock-freedom and correctness claims, validated *across* block
//! schedules instead of at the single launch-order point.
//!
//! Graphs come from `cusync_suite::randgraph` (random stage DAGs over the
//! four kernel archetypes with random TileSync / RowSync / Conv2DTileSync
//! / NoSync policies and random cross-device placement); schedules come
//! from `cusync_sim::explore` (Fifo, Lifo, SemStarver, K seeded
//! shuffles). Two regimes per graph:
//!
//! - On the **capacity-safe** cluster (one SM per resident block) with
//!   wait-kernels on, *every* schedule must terminate with bit-equal
//!   final memory: synchronization makes results schedule-independent.
//! - On the **starved** cluster with wait-kernels elided and adversarial
//!   consumer-first launch, at least one schedule must produce a
//!   classified `DeadlockReport` naming the wait cycle — the Section
//!   III-B hazard, found by search rather than by a hand-written
//!   scenario.

use cusync_sim::explore::{explore, Expectation, ExploreConfig};
use cusync_sim::SchedPolicyKind;
use cusync_suite::randgraph::{generate, RandomGraph};
use proptest::prelude::*;

/// The acceptance-criterion instance: one randomized multi-stage graph,
/// ≥ 16 distinct seeded schedules, all terminating with bit-equal final
/// memory — and the same graph, wait-kernels disabled, deadlocking with a
/// classified report on at least one schedule.
#[test]
fn sixteen_seeded_schedules_terminate_and_agree_on_memory() {
    let graph = generate(0xC60_2024, 2);
    let pipeline = graph.build(&graph.safe_cluster(), true).unwrap();
    let cfg = ExploreConfig::seeded(16, 0xFEED_F00D).expecting(Expectation::Terminates);
    let shuffles: std::collections::BTreeSet<_> = cfg
        .schedules
        .iter()
        .filter(|s| matches!(s, SchedPolicyKind::SeededShuffle(_)))
        .collect();
    assert_eq!(shuffles.len(), 16, "16 distinct seeded schedules");
    let summary = explore(&pipeline, &cfg);
    assert!(summary.ok(), "{summary}");
    assert_eq!(summary.completed(), cfg.schedules.len(), "{summary}");
    // Bit-equal final memory across every schedule (also an internal
    // invariant of `explore`; assert it independently here).
    let fingerprints: std::collections::BTreeSet<u64> = summary
        .results
        .iter()
        .filter_map(|r| match &r.outcome {
            cusync_sim::explore::ScheduleOutcome::Completed {
                mem_fingerprint, ..
            } => Some(*mem_fingerprint),
            _ => None,
        })
        .collect();
    assert_eq!(fingerprints.len(), 1, "schedule-independent results");
}

#[test]
fn same_graph_without_wait_kernels_yields_a_classified_deadlock() {
    let graph = generate(0xC60_2024, 2);
    let pipeline = graph.build(&graph.starved_cluster(), false).unwrap();
    let cfg = ExploreConfig::seeded(16, 0xFEED_F00D).expecting(Expectation::Deadlocks);
    let summary = explore(&pipeline, &cfg);
    assert!(summary.ok(), "{summary}");
    assert!(summary.deadlocked() >= 1, "{summary}");
    let report = summary.first_deadlock().expect("a deadlock report");
    // Classified: the report names the wait cycle end to end.
    assert!(!report.blocked.is_empty());
    assert!(!report.polled_sems().is_empty());
    assert!(
        report.starved().count() >= 1,
        "a starved kernel closes the cycle"
    );
    let cycle = report.wait_cycle().expect("an occupancy wait cycle");
    let sink = &graph.stages.last().unwrap().name;
    assert!(
        cycle.contains(sink.as_str()),
        "cycle names the spinner: {cycle}"
    );
    // Every SM of the wedged device is held by spinners, nothing executes.
    assert!(report.sms.iter().all(|s| s.active_units == 0), "{report}");
}

/// The ref ↔ opt bit-identity contract, extended across the schedule
/// space: every policy (including the dynamic SemStarver) must produce
/// identical timelines, final memory and deadlock reports on both
/// engines.
#[test]
fn engines_agree_under_every_schedule_policy() {
    for seed in [3u64, 11] {
        let graph = generate(seed, 2);
        let safe = graph.build(&graph.safe_cluster(), true).unwrap();
        let summary = explore(&safe, &ExploreConfig::seeded(4, seed).cross_checked());
        assert!(summary.ok(), "seed {seed} safe: {summary}");
        let starved = graph.build(&graph.starved_cluster(), false).unwrap();
        let summary = explore(&starved, &ExploreConfig::seeded(4, seed).cross_checked());
        assert!(summary.ok(), "seed {seed} starved: {summary}");
    }
}

/// Parallelism must not change what the schedule explorer observes: for
/// every explored policy of the deadlocking regime, a device-sharded
/// ([`ExecMode::Parallel`]) session produces the *identical* outcome as
/// the serial engine — in particular the identical `DeadlockReport`. (A
/// sharded attempt that stalls is abandoned and rerun serially, so the
/// canonical report survives any thread count.)
#[test]
fn deadlock_reports_are_parallelism_invariant() {
    use cusync_sim::{EngineMode, ExecMode, Session};
    let graph = generate(0xC60_2024, 2);
    let pipeline = graph.build(&graph.starved_cluster(), false).unwrap();
    let cfg = ExploreConfig::seeded(16, 0xFEED_F00D).expecting(Expectation::Deadlocks);
    let summary = explore(&pipeline, &cfg);
    assert!(summary.deadlocked() >= 1, "{summary}");
    let mut deadlocked = 0;
    for kind in &cfg.schedules {
        let run = |exec: ExecMode| {
            let mut session = Session::with_mode(EngineMode::Optimized);
            session.set_sched(Some(kind.instantiate()));
            session.set_exec(Some(exec));
            session.set_threads(2);
            session.run(&pipeline)
        };
        match (run(ExecMode::Serial), run(ExecMode::Parallel)) {
            (Ok(serial), Ok(parallel)) => {
                assert_eq!(serial.kernels, parallel.kernels, "{kind}: kernels");
                assert_eq!(serial.total, parallel.total, "{kind}: total");
            }
            (Err(serial), Err(parallel)) => {
                assert_eq!(serial, parallel, "{kind}: deadlock reports");
                deadlocked += 1;
            }
            (serial, parallel) => {
                panic!("{kind}: outcomes diverge ({serial:?} vs {parallel:?})")
            }
        }
    }
    assert_eq!(
        deadlocked,
        summary.deadlocked(),
        "the parallel sessions see the same deadlock set the explorer did"
    );
}

/// PR9 invariant: a PDL edge can never sit inside a `DeadlockReport` wait
/// cycle. A block parked on a producer's one-element `"{K}.grid"`
/// semaphore exists only after the consumer's launch gate fired — i.e.
/// after every block of `K` was already resident — so `K` can never be
/// among the capacity-starved kernels the cycle ends in. Checked with
/// `sim::explore` across seeded schedules of the starved regime, over
/// every `suite::randgraph` seed that promoted a skip edge to PDL (the
/// safe regime of the first such graph must also terminate under every
/// schedule).
#[test]
fn pdl_grid_sem_producers_are_never_starved_in_deadlocks() {
    use cusync_sim::explore::ScheduleOutcome;
    let mut covered = 0usize;
    let mut deadlocks = 0usize;
    for seed in 0..24u64 {
        let graph = generate(seed, 2);
        let pdl_producers = graph.pdl_producer_names();
        if pdl_producers.is_empty() {
            continue;
        }
        if covered == 0 {
            // sim::explore coverage of the safe regime with PDL edges
            // present: every schedule terminates, schedule-independently.
            let safe = graph.build(&graph.safe_cluster(), true).unwrap();
            let summary = explore(
                &safe,
                &ExploreConfig::seeded(8, seed).expecting(Expectation::Terminates),
            );
            assert!(summary.ok(), "seed {seed} safe: {summary}");
        }
        covered += 1;
        let pipeline = graph.build(&graph.starved_cluster(), false).unwrap();
        let summary = explore(
            &pipeline,
            &ExploreConfig::seeded(8, seed).expecting(Expectation::Deadlocks),
        );
        assert!(summary.ok(), "seed {seed} starved: {summary}");
        for result in &summary.results {
            let ScheduleOutcome::Deadlocked(report) = &result.outcome else {
                continue;
            };
            deadlocks += 1;
            let starved: Vec<String> = report.starved().map(|p| p.name.clone()).collect();
            for blocked in &report.blocked {
                if let Some(producer) = blocked.sem_name.strip_suffix(".grid") {
                    assert!(
                        pdl_producers.iter().any(|p| p == producer),
                        "seed {seed} ({}): grid sem {} polled but {producer} declares no PDL edge",
                        result.schedule,
                        blocked.sem_name,
                    );
                    assert!(
                        !starved.iter().any(|s| s == producer),
                        "seed {seed} ({}): PDL producer {producer} is starved while {} polls \
                         its grid semaphore — a PDL edge closed the wait cycle",
                        result.schedule,
                        blocked.kernel_name,
                    );
                }
            }
        }
    }
    assert!(covered >= 1, "no seed in 0..24 promoted a skip edge to PDL");
    assert!(deadlocks >= 1, "the starved PDL graphs never deadlocked");
}

fn explore_both_regimes(graph: &RandomGraph, shuffles: usize) {
    let safe = graph.build(&graph.safe_cluster(), true).unwrap();
    let summary = explore(
        &safe,
        &ExploreConfig::seeded(shuffles, graph.seed).expecting(Expectation::Terminates),
    );
    assert!(summary.ok(), "seed {} safe: {summary}", graph.seed);
    let starved = graph.build(&graph.starved_cluster(), false).unwrap();
    let summary = explore(
        &starved,
        &ExploreConfig::seeded(shuffles, graph.seed).expecting(Expectation::Deadlocks),
    );
    assert!(summary.ok(), "seed {} starved: {summary}", graph.seed);
    assert!(
        summary
            .first_deadlock()
            .and_then(|r| r.wait_cycle())
            .is_some(),
        "seed {}: unclassified deadlock",
        graph.seed,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Property: for arbitrary random sync graphs on 1-3 devices, the
    /// capacity-safe + wait-kernel regime terminates under every explored
    /// schedule with schedule-independent results, and the starved +
    /// no-wait-kernel regime deadlocks with a classified report.
    #[test]
    fn random_graphs_hold_the_exploration_invariants(
        seed in 0u64..u64::MAX,
        devices in 1u32..4,
    ) {
        let graph = generate(seed, devices);
        explore_both_regimes(&graph, 6);
    }
}
