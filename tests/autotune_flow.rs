//! The end-to-end cuSyncGen workflow of Section IV-A: describe the
//! dependency in the DSL, bounds-check it, generate policies and orders,
//! emit the CUDA source, and auto-tune over the generated candidates on
//! the simulator.

use cusync::OptFlags;
use cusync_models::{mlp_time, MlpModel, PolicyKind, SyncMode};
use cusync_sim::{Dim3, GpuConfig};
use cusyncgen::{
    autotune, check_spec, emit_spec, policies_for, producer_order, AffineExpr, DepSpec, Pattern,
    TuneCandidate,
};

/// Build the MLP spec of Fig. 5a for a given batch size (H = 12288, mp 8).
fn mlp_spec(bs: u32) -> DepSpec {
    let tile_n = 256;
    let tile_m = 256;
    let mut spec = DepSpec::new();
    let g1 = spec.grid("g1", Dim3::new(6144 / tile_n, bs.div_ceil(tile_m), 1));
    let g2 = spec.grid("g2", Dim3::new(12288 / tile_n, bs.div_ceil(tile_m), 1));
    spec.depend(g2, g1, Pattern::ForAllX(AffineExpr::y()));
    spec
}

#[test]
fn workflow_produces_policies_orders_and_cuda() {
    let spec = mlp_spec(512);
    check_spec(&spec).expect("spec in bounds");
    let dep = &spec.deps()[0];
    let policies = policies_for(&spec, dep);
    assert_eq!(policies.len(), 2);
    assert_eq!(policies[0].name, "TileSync");
    assert_eq!(policies[1].name, "RowSync");
    // The generated producer order groups whole rows — row-major.
    let order = producer_order(&spec, dep);
    let schedule =
        cusync::TileSchedule::build(&order, spec.extent(spec.deps()[0].producer)).unwrap();
    assert!(schedule.is_identity());
    // Emitted CUDA contains both policies and the order function.
    let cuda = emit_spec(&spec);
    assert!(cuda.contains("TileSync_g1"), "{cuda}");
    assert!(cuda.contains("RowSync_g1"), "{cuda}");
    assert!(cuda.contains("prodOrder_g1"), "{cuda}");
}

#[test]
fn autotuner_picks_a_policy_that_beats_stream_sync() {
    let gpu = GpuConfig::tesla_v100();
    let bs = 512;
    let spec = mlp_spec(bs);
    let generated = policies_for(&spec, &spec.deps()[0]);
    let mut candidates: Vec<TuneCandidate> = Vec::new();
    for named in &generated {
        for opts in [OptFlags::NONE, OptFlags::WRT] {
            candidates.push(TuneCandidate::new(vec![named.name.clone()], opts));
        }
    }
    let report = autotune(candidates, |candidate| {
        let kind = if candidate.policy_names[0] == "RowSync" {
            PolicyKind::Row
        } else {
            PolicyKind::Tile
        };
        mlp_time(
            &gpu,
            MlpModel::Gpt3,
            bs,
            SyncMode::CuSync(kind, candidate.opts),
        )
    });
    let best = report.best();
    let base = mlp_time(&gpu, MlpModel::Gpt3, bs, SyncMode::StreamSync);
    assert!(
        best.time < base,
        "best generated policy {} ({}) must beat StreamSync ({})",
        best.candidate.name,
        best.time,
        base
    );
    // All four candidates were evaluated and ranked.
    assert_eq!(report.results.len(), 4);
    assert!(report.speedup_over("TileSync") >= 1.0);
}

#[test]
fn out_of_bounds_specs_are_rejected_before_codegen() {
    let mut spec = DepSpec::new();
    let g1 = spec.grid("g1", Dim3::new(4, 1, 1));
    let g2 = spec.grid("g2", Dim3::new(4, 3, 1)); // 3 consumer rows, 1 producer row
    spec.depend(g2, g1, Pattern::ForAllX(AffineExpr::y()));
    assert!(check_spec(&spec).is_err());
}
