//! The end-to-end cuSyncGen workflow of Section IV-A: describe the
//! dependency in the DSL, bounds-check it, generate policies and orders,
//! emit the CUDA source, and auto-tune over the generated candidates on
//! the simulator.

use cusync::OptFlags;
use cusync_models::{compile_mlp, mlp_time, MlpModel, PolicyKind, SyncMode};
use cusync_sim::{Dim3, GpuConfig};
use cusyncgen::{
    autotune, autotune_cached, check_spec, emit_spec, policies_for, producer_order, AffineExpr,
    DepSpec, Pattern, TuneCache, TuneCandidate,
};

/// Build the MLP spec of Fig. 5a for a given batch size (H = 12288, mp 8).
fn mlp_spec(bs: u32) -> DepSpec {
    let tile_n = 256;
    let tile_m = 256;
    let mut spec = DepSpec::new();
    let g1 = spec.grid("g1", Dim3::new(6144 / tile_n, bs.div_ceil(tile_m), 1));
    let g2 = spec.grid("g2", Dim3::new(12288 / tile_n, bs.div_ceil(tile_m), 1));
    spec.depend(g2, g1, Pattern::ForAllX(AffineExpr::y()));
    spec
}

#[test]
fn workflow_produces_policies_orders_and_cuda() {
    let spec = mlp_spec(512);
    check_spec(&spec).expect("spec in bounds");
    let dep = &spec.deps()[0];
    let policies = policies_for(&spec, dep);
    assert_eq!(policies.len(), 2);
    assert_eq!(policies[0].name, "TileSync");
    assert_eq!(policies[1].name, "RowSync");
    // The generated producer order groups whole rows — row-major.
    let order = producer_order(&spec, dep);
    let schedule =
        cusync::TileSchedule::build(&order, spec.extent(spec.deps()[0].producer)).unwrap();
    assert!(schedule.is_identity());
    // Emitted CUDA contains both policies and the order function.
    let cuda = emit_spec(&spec);
    assert!(cuda.contains("TileSync_g1"), "{cuda}");
    assert!(cuda.contains("RowSync_g1"), "{cuda}");
    assert!(cuda.contains("prodOrder_g1"), "{cuda}");
}

#[test]
fn autotuner_picks_a_policy_that_beats_stream_sync() {
    let gpu = GpuConfig::tesla_v100();
    let bs = 512;
    let spec = mlp_spec(bs);
    let generated = policies_for(&spec, &spec.deps()[0]);
    let mut candidates: Vec<TuneCandidate> = Vec::new();
    for named in &generated {
        for opts in [OptFlags::NONE, OptFlags::WRT] {
            candidates.push(TuneCandidate::new(vec![named.name.clone()], opts));
        }
    }
    let report = autotune(candidates, |candidate| {
        let kind = if candidate.policy_names[0] == "RowSync" {
            PolicyKind::Row
        } else {
            PolicyKind::Tile
        };
        mlp_time(
            &gpu,
            MlpModel::Gpt3,
            bs,
            SyncMode::CuSync(kind, candidate.opts),
        )
    });
    let best = report.best();
    let base = mlp_time(&gpu, MlpModel::Gpt3, bs, SyncMode::StreamSync);
    assert!(
        best.time < base,
        "best generated policy {} ({}) must beat StreamSync ({})",
        best.candidate.name,
        best.time,
        base
    );
    // All four candidates were evaluated and ranked.
    assert_eq!(report.results.len(), 4);
    assert!(report.speedup_over("TileSync") >= 1.0);
}

/// The four MLP candidates of the workflow test, tagged with the policy
/// kind each maps to.
fn mlp_candidates() -> Vec<TuneCandidate> {
    let mut candidates = Vec::new();
    for name in ["TileSync", "RowSync"] {
        for opts in [OptFlags::NONE, OptFlags::WRT] {
            candidates.push(TuneCandidate::new(vec![name.into()], opts));
        }
    }
    candidates
}

fn candidate_time(gpu: &GpuConfig, bs: u32, candidate: &TuneCandidate) -> cusync_sim::SimTime {
    let kind = if candidate.policy_names[0] == "RowSync" {
        PolicyKind::Row
    } else {
        PolicyKind::Tile
    };
    mlp_time(
        gpu,
        MlpModel::Gpt3,
        bs,
        SyncMode::CuSync(kind, candidate.opts),
    )
}

/// The tuning cache: the first tune of a pipeline simulates every
/// candidate (all misses), a repeat tune of the *same* pipeline
/// fingerprint answers entirely from cache with an identical ranking, and
/// a different pipeline (different batch size ⇒ different fingerprint)
/// re-simulates. The cache also survives a save/load round trip.
#[test]
fn repeated_tunes_of_the_same_graph_skip_resimulation() {
    let gpu = GpuConfig::tesla_v100();
    let fp_256 = compile_mlp(
        &gpu,
        MlpModel::Gpt3,
        256,
        SyncMode::CuSync(PolicyKind::Tile, OptFlags::WRT),
    )
    .fingerprint();
    let fp_512 = compile_mlp(
        &gpu,
        MlpModel::Gpt3,
        512,
        SyncMode::CuSync(PolicyKind::Tile, OptFlags::WRT),
    )
    .fingerprint();
    assert_ne!(fp_256, fp_512, "batch size must change the fingerprint");
    // Same build, same fingerprint: the key is stable.
    assert_eq!(
        fp_256,
        compile_mlp(
            &gpu,
            MlpModel::Gpt3,
            256,
            SyncMode::CuSync(PolicyKind::Tile, OptFlags::WRT),
        )
        .fingerprint()
    );

    let mut cache = TuneCache::new();
    let mut simulations = 0usize;
    let tune = |cache: &mut TuneCache, fp: u64, bs: u32, sims: &mut usize| {
        autotune_cached(cache, fp, mlp_candidates(), |c| {
            *sims += 1;
            candidate_time(&gpu, bs, c)
        })
    };

    // Miss path: a cold cache simulates all four candidates.
    let cold = tune(&mut cache, fp_256, 256, &mut simulations);
    assert_eq!(simulations, 4);
    assert_eq!((cache.misses(), cache.hits()), (4, 0));

    // Hit path: re-tuning the same fingerprint never simulates and ranks
    // identically.
    let warm = tune(&mut cache, fp_256, 256, &mut simulations);
    assert_eq!(simulations, 4, "hits must not re-simulate");
    assert_eq!((cache.misses(), cache.hits()), (4, 4));
    assert_eq!(cold.best().candidate.name, warm.best().candidate.name);
    for (a, b) in cold.results.iter().zip(&warm.results) {
        assert_eq!(a, b, "cached ranking must be bit-identical");
    }

    // A different pipeline is a different key: four fresh misses.
    tune(&mut cache, fp_512, 512, &mut simulations);
    assert_eq!(simulations, 8);
    assert_eq!(cache.len(), 8);

    // Persistence: a reloaded cache serves the same hits.
    let path = std::env::temp_dir().join(format!(
        "cusyncgen-tunecache-flow-{}.tsv",
        std::process::id()
    ));
    cache.save(&path).expect("save cache");
    let mut reloaded = TuneCache::load(&path).expect("load cache");
    std::fs::remove_file(&path).ok();
    let replayed = tune(&mut reloaded, fp_256, 256, &mut simulations);
    assert_eq!(simulations, 8, "reloaded cache must hit");
    assert_eq!((reloaded.hits(), reloaded.misses()), (4, 0));
    assert_eq!(replayed.best().time, cold.best().time);
}

#[test]
fn out_of_bounds_specs_are_rejected_before_codegen() {
    let mut spec = DepSpec::new();
    let g1 = spec.grid("g1", Dim3::new(4, 1, 1));
    let g2 = spec.grid("g2", Dim3::new(4, 3, 1)); // 3 consumer rows, 1 producer row
    spec.depend(g2, g1, Pattern::ForAllX(AffineExpr::y()));
    assert!(check_spec(&spec).is_err());
}
