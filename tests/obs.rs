//! Properties of the observability layer (`crates/obs`) over random sync
//! graphs, plus passivity of the serve-layer tracer.
//!
//! The attribution and exporter promises pinned here:
//!
//! - **Critical path ≤ makespan**, by construction of the backward
//!   frontier walk, on every graph.
//! - **Exact partition**: on completed runs, per-device
//!   `compute + spin + link == busy` and `busy + idle == capacity`, with
//!   no slot-picosecond counted twice or dropped.
//! - **Valid catapult JSON**: every exported trace parses, every `B` has
//!   its `E`, timestamps are monotone per lane — checked by the crate's
//!   own validator, which shares no code with the emitter's happy path.
//! - **Passivity**: running traced changes nothing observable (reports
//!   are bit-identical with tracing on and off, in the engine and in the
//!   serve layer).

use cusync_obs::{chrome_trace_json, collect_spans, validate_chrome_trace, Attribution};
use cusync_serve::{
    ArrivalModel, BatchPolicy, ModelKind, ServeConfig, Server, TenantClass, TenantSpec,
    WorkloadSpec,
};
use cusync_sim::{ClusterConfig, EngineMode, GpuConfig, Session, SimTime};
use cusync_suite::randgraph::generate;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: on arbitrary random sync graphs (3-5 stages, skip and
    /// PDL edges, 1-3 devices, safe sizing) the attribution partition is
    /// exact, the critical path is bounded by the makespan, and the
    /// exported Chrome trace validates.
    #[test]
    fn attribution_and_export_hold_on_random_graphs(
        seed in 0u64..u64::MAX,
        devices in 1u32..4,
    ) {
        let graph = generate(seed, devices);
        let cluster = graph.safe_cluster();
        let pipeline = graph.build(&cluster, true).expect("safe graph compiles");
        let mut session = Session::with_mode(EngineMode::Optimized);
        session.enable_trace();
        let report = session.run(&pipeline).expect("safe sizing cannot deadlock");

        let attr = Attribution::analyze(pipeline.cluster(), &report, session.trace());
        prop_assert!(attr.exact, "completed runs attribute exactly");
        prop_assert!(
            attr.critical_path.length <= report.total,
            "critical path {} exceeds makespan {}",
            attr.critical_path.length,
            report.total,
        );
        prop_assert!(!attr.critical_path.hops.is_empty());
        for d in &attr.devices {
            prop_assert_eq!(
                d.compute_slot_ps + d.spin_slot_ps + d.link_slot_ps,
                d.busy_slot_ps(),
                "device {} busy buckets", d.device,
            );
            prop_assert_eq!(
                d.busy_slot_ps() + d.idle_slot_ps,
                d.capacity_slot_ps,
                "device {} busy+idle != capacity", d.device,
            );
        }
        // Kernel busy residency is conserved: the per-kernel buckets sum
        // to the same total the per-device buckets do.
        let dev_busy: u128 = attr.devices.iter().map(|d| d.busy_slot_ps()).sum();
        let kern_busy: u128 = attr.kernels.iter().map(|k| k.busy_slot_ps).sum();
        prop_assert_eq!(dev_busy, kern_busy);

        let spans = collect_spans(pipeline.cluster(), &report, session.trace());
        for s in &spans {
            prop_assert!(s.end >= s.start, "span {:?} is inverted", s.name);
            prop_assert!(s.end <= report.total, "span {:?} outlives the run", s.name);
        }
        let chrome = chrome_trace_json(&spans);
        let stats = validate_chrome_trace(&chrome)
            .unwrap_or_else(|e| panic!("invalid chrome trace: {e}"));
        prop_assert_eq!(stats.spans, spans.len(), "every span exports exactly once");
    }

    /// Property: tracing is passive — the same graph run with tracing on
    /// and off produces bit-identical reports, on both engines.
    #[test]
    fn tracing_is_passive_on_random_graphs(
        seed in 0u64..u64::MAX,
        devices in 1u32..4,
    ) {
        let graph = generate(seed, devices);
        let cluster = graph.safe_cluster();
        let pipeline = graph.build(&cluster, true).expect("safe graph compiles");
        for mode in [EngineMode::Reference, EngineMode::Optimized] {
            let mut plain = Session::with_mode(mode);
            let untraced = plain.run(&pipeline).expect("untraced run");
            let mut traced = Session::with_mode(mode);
            traced.enable_trace();
            let report = traced.run(&pipeline).expect("traced run");
            prop_assert_eq!(&untraced, &report, "tracing must not perturb {:?}", mode);
            prop_assert!(!traced.trace().is_empty(), "traced run records events");
        }
    }
}

/// A small two-tenant serve workload for the passivity checks below.
fn serve_workload() -> (WorkloadSpec, ClusterConfig) {
    let cluster = ClusterConfig::homogeneous(
        2,
        GpuConfig::toy(4),
        SimTime::from_nanos(500),
        ClusterConfig::NVLINK_BYTES_PER_SEC,
    );
    let toy = ModelKind::Toy {
        blocks: 4,
        compute_cycles: 60_000,
    };
    let spec = WorkloadSpec {
        tenants: vec![
            TenantSpec {
                name: "latency".into(),
                model: toy,
                arrival: ArrivalModel::OpenPoisson { rate_rps: 40_000.0 },
                slo: SimTime::from_millis(2),
                queue_cap: 32,
                weight: 2,
                class: TenantClass::Latency,
                retry: None,
            },
            TenantSpec {
                name: "batch".into(),
                model: toy,
                arrival: ArrivalModel::OpenPoisson { rate_rps: 20_000.0 },
                slo: SimTime::from_millis(20),
                queue_cap: 64,
                weight: 1,
                class: TenantClass::Throughput,
                retry: None,
            },
        ],
        horizon: SimTime::from_millis(10),
        seed: 0xC60_2024,
    };
    (spec, cluster)
}

/// The serve-layer tracer is passive: `run_traced` returns the same
/// report `run` does, bit for bit, and the spans it adds are well-formed
/// request lifecycles.
#[test]
fn serve_tracing_is_passive() {
    let (spec, cluster) = serve_workload();
    let server = Server::new(spec, &cluster, 4);
    let config = ServeConfig {
        batch: BatchPolicy::new(4, SimTime::from_micros(50.0)),
        ..ServeConfig::baseline()
    };
    let untraced = server.run(&config);
    let (report, spans) = server.run_traced(&config);
    assert_eq!(untraced, report, "run_traced must not perturb the report");
    assert!(!spans.is_empty(), "a loaded server produces request spans");
    for s in &spans {
        assert!(s.end >= s.start, "span {:?} is inverted", s.name);
    }
    let chrome = chrome_trace_json(&spans);
    let stats = validate_chrome_trace(&chrome).expect("serve trace exports validly");
    assert_eq!(stats.spans, spans.len());
}

/// The virtual-time metrics sampler is passive and deterministic: turning
/// it on changes nothing but the `samples` array, samples are strictly
/// increasing in time, and two runs sample identically.
#[test]
fn serve_sampler_is_passive_and_deterministic() {
    let (spec, cluster) = serve_workload();
    let server = Server::new(spec, &cluster, 4);
    let base = ServeConfig {
        batch: BatchPolicy::new(4, SimTime::from_micros(50.0)),
        ..ServeConfig::baseline()
    };
    let sampled = ServeConfig {
        sample_every: Some(SimTime::from_micros(250.0)),
        ..base
    };
    let plain = server.run(&base);
    let with_samples = server.run(&sampled);
    assert!(plain.samples.is_empty());
    assert!(
        !with_samples.samples.is_empty(),
        "horizon spans many periods"
    );
    for w in with_samples.samples.windows(2) {
        assert!(w[0].time < w[1].time, "samples must be strictly increasing");
    }
    with_samples
        .check()
        .expect("sampled report passes its own laws");
    // Everything but the samples is bit-identical.
    let mut stripped = with_samples.clone();
    stripped.samples.clear();
    assert_eq!(plain, stripped, "sampling must not perturb the run");
    assert_eq!(
        with_samples,
        server.run(&sampled),
        "sampling is deterministic"
    );
}
