//! `BuildError` coverage for every kernel builder: missing operands and
//! zero-extent shapes must surface as *typed* errors — never panics —
//! from all four builders (Gemm, Conv2D, SoftmaxDropout, StreamK).

use cusync_kernels::{
    Conv2DBuilder, Conv2DShape, GemmBuilder, GemmDims, SoftmaxDropoutBuilder, TileShape,
};
use cusync_sim::{BuildError, BuildErrorKind, GpuConfig, SimError};
use cusync_streamk::StreamKBuilder;

fn v100() -> GpuConfig {
    GpuConfig::tesla_v100()
}

fn tile() -> TileShape {
    TileShape::new(128, 128, 32)
}

#[track_caller]
fn assert_missing(err: &BuildError, builder_frag: &str, input_frag: &str) {
    assert_eq!(err.kind, BuildErrorKind::MissingInput, "{err}");
    assert!(err.builder.contains(builder_frag), "{err}");
    assert!(err.missing.contains(input_frag), "{err}");
    let shown = err.to_string();
    assert!(
        shown.contains("required input not set") && shown.contains(builder_frag),
        "{shown}"
    );
}

#[track_caller]
fn assert_invalid(err: &BuildError, builder_frag: &str) {
    assert_eq!(err.kind, BuildErrorKind::InvalidShape, "{err}");
    assert!(err.builder.contains(builder_frag), "{err}");
    let shown = err.to_string();
    assert!(
        shown.contains("invalid shape") && shown.contains("zero"),
        "{shown}"
    );
}

#[test]
fn gemm_builder_reports_each_missing_operand() {
    // No operands at all: A is reported first.
    let err = GemmBuilder::new("g", GemmDims::new(64, 64, 64), tile())
        .build(&v100())
        .unwrap_err();
    assert_missing(&err, "GemmBuilder(g)", "A operand");

    // swiglu_a sets only A; B and C stay missing.
    let mut gpu = cusync_sim::Gpu::new(v100());
    let a = gpu.alloc("a", 64 * 64, cusync_sim::DType::F16);
    let err = GemmBuilder::new("g", GemmDims::new(64, 64, 64), tile())
        .swiglu_a(a)
        .build(&v100())
        .unwrap_err();
    assert_missing(&err, "GemmBuilder(g)", "B operand");
}

#[test]
fn gemm_builder_rejects_zero_extent_shapes() {
    let mut gpu = cusync_sim::Gpu::new(v100());
    let buf = gpu.alloc("buf", 64 * 64, cusync_sim::DType::F16);
    for dims in [
        GemmDims::new(0, 64, 64),
        GemmDims::new(64, 0, 64),
        GemmDims::new(64, 64, 0),
    ] {
        let err = GemmBuilder::new("g", dims, tile())
            .operands(buf, buf, buf)
            .build(&v100())
            .unwrap_err();
        assert_invalid(&err, "GemmBuilder(g)");
    }
    let err = GemmBuilder::new("g", GemmDims::new(64, 64, 64), TileShape::new(128, 0, 32))
        .operands(buf, buf, buf)
        .build(&v100())
        .unwrap_err();
    assert_invalid(&err, "GemmBuilder(g)");
}

#[test]
fn conv2d_builder_reports_missing_operands_and_zero_shapes() {
    let shape = Conv2DShape::square3x3(4, 28, 64, 64);
    let err = Conv2DBuilder::new("c", shape, tile())
        .build(&v100())
        .unwrap_err();
    assert_missing(&err, "Conv2DBuilder(c)", "input");

    let mut gpu = cusync_sim::Gpu::new(v100());
    let buf = gpu.alloc("buf", 1 << 20, cusync_sim::DType::F16);
    for degenerate in [
        Conv2DShape::square3x3(0, 28, 64, 64),
        Conv2DShape::square3x3(4, 0, 64, 64),
        Conv2DShape::square3x3(4, 28, 0, 64),
        Conv2DShape::square3x3(4, 28, 64, 0),
    ] {
        let err = Conv2DBuilder::new("c", degenerate, tile())
            .operands(buf, buf, buf)
            .build(&v100())
            .unwrap_err();
        assert_invalid(&err, "Conv2DBuilder(c)");
    }
    let err = Conv2DBuilder::new("c", shape, TileShape::new(0, 128, 32))
        .operands(buf, buf, buf)
        .build(&v100())
        .unwrap_err();
    assert_invalid(&err, "Conv2DBuilder(c)");
}

#[test]
fn softmax_dropout_builder_reports_missing_operands_and_zero_shapes() {
    let err = SoftmaxDropoutBuilder::new("s", 256, 256, tile())
        .build(&v100())
        .unwrap_err();
    assert_missing(&err, "SoftmaxDropoutBuilder(s)", "input");

    let mut gpu = cusync_sim::Gpu::new(v100());
    let buf = gpu.alloc("buf", 256 * 256, cusync_sim::DType::F16);
    for (rows, cols) in [(0u32, 256u32), (256, 0)] {
        let err = SoftmaxDropoutBuilder::new("s", rows, cols, tile())
            .operands(buf, buf)
            .build(&v100())
            .unwrap_err();
        assert_invalid(&err, "SoftmaxDropoutBuilder(s)");
    }
    let err = SoftmaxDropoutBuilder::new("s", 256, 256, TileShape::new(128, 0, 32))
        .operands(buf, buf)
        .build(&v100())
        .unwrap_err();
    assert_invalid(&err, "SoftmaxDropoutBuilder(s)");
}

#[test]
fn streamk_builder_reports_missing_operands_and_zero_shapes() {
    let err = StreamKBuilder::new("k", GemmDims::new(64, 64, 64), tile())
        .build()
        .unwrap_err();
    assert_missing(&err, "StreamKBuilder(k)", "A operand");

    let mut gpu = cusync_sim::Gpu::new(v100());
    let buf = gpu.alloc("buf", 64 * 64, cusync_sim::DType::F16);
    for dims in [
        GemmDims::new(0, 64, 64),
        GemmDims::new(64, 0, 64),
        GemmDims::new(64, 64, 0),
    ] {
        let err = StreamKBuilder::new("k", dims, tile())
            .operands(buf, buf, buf)
            .build()
            .unwrap_err();
        assert_invalid(&err, "StreamKBuilder(k)");
    }
    let err = StreamKBuilder::new("k", GemmDims::new(64, 64, 64), TileShape::new(0, 128, 32))
        .operands(buf, buf, buf)
        .build()
        .unwrap_err();
    assert_invalid(&err, "StreamKBuilder(k)");
}

#[test]
fn build_errors_convert_into_sim_errors_for_pipeline_assembly() {
    let err = GemmBuilder::new("g", GemmDims::new(0, 1, 1), tile())
        .build(&v100())
        .unwrap_err();
    let sim: SimError = err.clone().into();
    match sim {
        SimError::Build(inner) => assert_eq!(inner, err),
        other => panic!("expected SimError::Build, got {other}"),
    }
}
