//! `BuildError` coverage for every kernel builder: missing operands and
//! zero-extent shapes must surface as *typed* errors — never panics —
//! from all four builders (Gemm, Conv2D, SoftmaxDropout, StreamK).

use cusync_kernels::{
    Conv2DBuilder, Conv2DShape, GemmBuilder, GemmDims, SoftmaxDropoutBuilder, TileShape,
};
use cusync_sim::{BuildError, BuildErrorKind, GpuConfig, SimError};
use cusync_streamk::StreamKBuilder;

fn v100() -> GpuConfig {
    GpuConfig::tesla_v100()
}

fn tile() -> TileShape {
    TileShape::new(128, 128, 32)
}

#[track_caller]
fn assert_missing(err: &BuildError, builder_frag: &str, input_frag: &str) {
    assert_eq!(err.kind, BuildErrorKind::MissingInput, "{err}");
    assert!(err.builder.contains(builder_frag), "{err}");
    assert!(err.missing.contains(input_frag), "{err}");
    let shown = err.to_string();
    assert!(
        shown.contains("required input not set") && shown.contains(builder_frag),
        "{shown}"
    );
}

#[track_caller]
fn assert_invalid(err: &BuildError, builder_frag: &str) {
    assert_eq!(err.kind, BuildErrorKind::InvalidShape, "{err}");
    assert!(err.builder.contains(builder_frag), "{err}");
    let shown = err.to_string();
    assert!(
        shown.contains("invalid shape") && shown.contains("zero"),
        "{shown}"
    );
}

#[test]
fn gemm_builder_reports_each_missing_operand() {
    // No operands at all: A is reported first.
    let err = GemmBuilder::new("g", GemmDims::new(64, 64, 64), tile())
        .build(&v100())
        .unwrap_err();
    assert_missing(&err, "GemmBuilder(g)", "A operand");

    // swiglu_a sets only A; B and C stay missing.
    let mut gpu = cusync_sim::Gpu::new(v100());
    let a = gpu.alloc("a", 64 * 64, cusync_sim::DType::F16);
    let err = GemmBuilder::new("g", GemmDims::new(64, 64, 64), tile())
        .swiglu_a(a)
        .build(&v100())
        .unwrap_err();
    assert_missing(&err, "GemmBuilder(g)", "B operand");
}

#[test]
fn gemm_builder_rejects_zero_extent_shapes() {
    let mut gpu = cusync_sim::Gpu::new(v100());
    let buf = gpu.alloc("buf", 64 * 64, cusync_sim::DType::F16);
    for dims in [
        GemmDims::new(0, 64, 64),
        GemmDims::new(64, 0, 64),
        GemmDims::new(64, 64, 0),
    ] {
        let err = GemmBuilder::new("g", dims, tile())
            .operands(buf, buf, buf)
            .build(&v100())
            .unwrap_err();
        assert_invalid(&err, "GemmBuilder(g)");
    }
    let err = GemmBuilder::new("g", GemmDims::new(64, 64, 64), TileShape::new(128, 0, 32))
        .operands(buf, buf, buf)
        .build(&v100())
        .unwrap_err();
    assert_invalid(&err, "GemmBuilder(g)");
}

#[test]
fn conv2d_builder_reports_missing_operands_and_zero_shapes() {
    let shape = Conv2DShape::square3x3(4, 28, 64, 64);
    let err = Conv2DBuilder::new("c", shape, tile())
        .build(&v100())
        .unwrap_err();
    assert_missing(&err, "Conv2DBuilder(c)", "input");

    let mut gpu = cusync_sim::Gpu::new(v100());
    let buf = gpu.alloc("buf", 1 << 20, cusync_sim::DType::F16);
    for degenerate in [
        Conv2DShape::square3x3(0, 28, 64, 64),
        Conv2DShape::square3x3(4, 0, 64, 64),
        Conv2DShape::square3x3(4, 28, 0, 64),
        Conv2DShape::square3x3(4, 28, 64, 0),
    ] {
        let err = Conv2DBuilder::new("c", degenerate, tile())
            .operands(buf, buf, buf)
            .build(&v100())
            .unwrap_err();
        assert_invalid(&err, "Conv2DBuilder(c)");
    }
    let err = Conv2DBuilder::new("c", shape, TileShape::new(0, 128, 32))
        .operands(buf, buf, buf)
        .build(&v100())
        .unwrap_err();
    assert_invalid(&err, "Conv2DBuilder(c)");
}

#[test]
fn softmax_dropout_builder_reports_missing_operands_and_zero_shapes() {
    let err = SoftmaxDropoutBuilder::new("s", 256, 256, tile())
        .build(&v100())
        .unwrap_err();
    assert_missing(&err, "SoftmaxDropoutBuilder(s)", "input");

    let mut gpu = cusync_sim::Gpu::new(v100());
    let buf = gpu.alloc("buf", 256 * 256, cusync_sim::DType::F16);
    for (rows, cols) in [(0u32, 256u32), (256, 0)] {
        let err = SoftmaxDropoutBuilder::new("s", rows, cols, tile())
            .operands(buf, buf)
            .build(&v100())
            .unwrap_err();
        assert_invalid(&err, "SoftmaxDropoutBuilder(s)");
    }
    let err = SoftmaxDropoutBuilder::new("s", 256, 256, TileShape::new(128, 0, 32))
        .operands(buf, buf)
        .build(&v100())
        .unwrap_err();
    assert_invalid(&err, "SoftmaxDropoutBuilder(s)");
}

#[test]
fn streamk_builder_reports_missing_operands_and_zero_shapes() {
    let err = StreamKBuilder::new("k", GemmDims::new(64, 64, 64), tile())
        .build()
        .unwrap_err();
    assert_missing(&err, "StreamKBuilder(k)", "A operand");

    let mut gpu = cusync_sim::Gpu::new(v100());
    let buf = gpu.alloc("buf", 64 * 64, cusync_sim::DType::F16);
    for dims in [
        GemmDims::new(0, 64, 64),
        GemmDims::new(64, 0, 64),
        GemmDims::new(64, 64, 0),
    ] {
        let err = StreamKBuilder::new("k", dims, tile())
            .operands(buf, buf, buf)
            .build()
            .unwrap_err();
        assert_invalid(&err, "StreamKBuilder(k)");
    }
    let err = StreamKBuilder::new("k", GemmDims::new(64, 64, 64), TileShape::new(0, 128, 32))
        .operands(buf, buf, buf)
        .build()
        .unwrap_err();
    assert_invalid(&err, "StreamKBuilder(k)");
}

#[test]
fn build_errors_convert_into_sim_errors_for_pipeline_assembly() {
    let err = GemmBuilder::new("g", GemmDims::new(0, 1, 1), tile())
        .build(&v100())
        .unwrap_err();
    let sim: SimError = err.clone().into();
    match sim {
        SimError::Build(inner) => assert_eq!(inner, err),
        other => panic!("expected SimError::Build, got {other}"),
    }
}

/// Every `SimError` variant — including the structured `DeadlockReport` —
/// must have complete `Display` + `std::error::Error` coverage: distinct,
/// actionable messages and a `source()` chain that round-trips to the
/// underlying typed error. Exploration failures print these, so an opaque
/// `Debug` dump here is a diagnostics regression.
#[test]
fn sim_error_display_and_source_cover_every_variant() {
    use cusync_sim::{Dim3, FixedKernel, Gpu, Op, SimTime};
    use std::error::Error as _;
    use std::sync::Arc;

    // Deadlock: produce a real one and check the rendered report.
    let mut gpu = Gpu::new(GpuConfig {
        host_launch_gap: SimTime::ZERO,
        kernel_dispatch_latency: SimTime::ZERO,
        block_jitter: 0.0,
        ..GpuConfig::toy(2)
    });
    let sem = gpu.alloc_sems("tile", 1, 0);
    let s1 = gpu.create_stream(0);
    let s2 = gpu.create_stream(1);
    gpu.launch(
        s1,
        Arc::new(FixedKernel::new(
            "producer",
            Dim3::linear(2),
            1,
            vec![Op::compute(100), Op::post(sem, 0)],
        )),
    );
    gpu.launch(
        s2,
        Arc::new(FixedKernel::new(
            "consumer",
            Dim3::linear(2),
            1,
            vec![Op::wait(sem, 0, 2), Op::compute(10)],
        )),
    );
    let deadlock = gpu.run().unwrap_err();
    let shown = deadlock.to_string();
    // The Display names the stall, each blocked wait, the starved
    // kernel's launch progress, per-SM occupancy and the cycle sentence.
    for fragment in [
        "deadlock at",
        "blocked: consumer",
        "tile[0] >= 2",
        "pending: producer",
        "unlaunched",
        "occupancy: sm",
        "spinning",
        "wait cycle:",
    ] {
        assert!(
            shown.contains(fragment),
            "missing {fragment:?} in:\n{shown}"
        );
    }
    // Error::source round-trips to the structured report.
    let source = deadlock.source().expect("deadlock has a source");
    let report = source
        .downcast_ref::<cusync_sim::DeadlockReport>()
        .expect("source is the DeadlockReport");
    assert_eq!(report.blocked.len(), 2);
    assert_eq!(report.to_string(), shown, "Display delegates to the report");

    // Build: source() chains to the typed BuildError.
    let build = GemmBuilder::new("g", GemmDims::new(0, 1, 1), tile())
        .build(&v100())
        .unwrap_err();
    let sim: SimError = build.clone().into();
    assert!(sim.to_string().contains("invalid shape"), "{sim}");
    let source = sim.source().expect("build error has a source");
    assert_eq!(
        source
            .downcast_ref::<BuildError>()
            .expect("BuildError source"),
        &build
    );

    // The leaf variants have no source but still render actionably.
    for (err, fragment) in [
        (SimError::AlreadyRan, "once per Gpu"),
        (SimError::RuntimeShutdown, "worker pool"),
        (
            SimError::WorkerPanic("kernel body exploded".into()),
            "kernel body exploded",
        ),
    ] {
        assert!(err.to_string().contains(fragment), "{err}");
        assert!(err.source().is_none());
    }
}
