//! The simulated ring allreduce against its analytic oracle.
//!
//! `cusync_models::allreduce_time` — the closed-form
//! `2(n-1)/n · bytes/bw + 2(n-1) · hop` NVLink ring model the fig8 path
//! used before the multi-device simulator existed — is kept as a
//! **checked oracle**: the simulated collective
//! (`cusync_models::ring_allreduce_time`, real per-hop `LinkSend`s and
//! cross-device semaphores through the event loop) must stay within ±10%
//! of it across a grid of `(bytes, gpus)`. A drift beyond that means
//! either the interconnect calibration (`ClusterConfig::nvlink_ring`) or
//! the ring kernel's op structure regressed.

use cusync_models::{allreduce_time, ring_allreduce_report, ring_allreduce_time};
use cusync_sim::{with_engine_mode, EngineMode, GpuConfig, SimTime};

const TOLERANCE: f64 = 0.10;

fn relative_error(sim: SimTime, oracle: SimTime) -> f64 {
    (sim.as_picos() as f64 - oracle.as_picos() as f64).abs() / oracle.as_picos() as f64
}

#[test]
fn simulated_ring_matches_analytic_model_within_10_percent() {
    let gpu = GpuConfig::tesla_v100();
    // Bytes from latency-dominated (256 KB) to bandwidth-dominated
    // (64 MB), across every power-of-two ring size in the DGX range.
    let byte_grid: [u64; 5] = [256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20];
    let gpu_grid: [u32; 3] = [2, 4, 8];
    let mut worst = (0.0f64, 0u64, 0u32);
    for &gpus in &gpu_grid {
        for &bytes in &byte_grid {
            let sim = ring_allreduce_time(&gpu, bytes, gpus);
            let oracle = allreduce_time(bytes, gpus);
            let err = relative_error(sim, oracle);
            assert!(
                err <= TOLERANCE,
                "{bytes} bytes over {gpus} GPUs: simulated {sim} vs oracle {oracle} \
                 ({:.1}% off, tolerance {:.0}%)",
                err * 100.0,
                TOLERANCE * 100.0
            );
            if err > worst.0 {
                worst = (err, bytes, gpus);
            }
        }
    }
    eprintln!(
        "worst case: {:.2}% at {} bytes / {} GPUs",
        worst.0 * 100.0,
        worst.1,
        worst.2
    );
}

#[test]
fn oracle_structure_survives_in_the_simulation() {
    // The two structural properties of a ring the oracle encodes — cost
    // grows with participants at fixed bytes (more hops) and with bytes at
    // fixed participants (more wire) — must hold in the simulation too.
    let gpu = GpuConfig::tesla_v100();
    let t2 = ring_allreduce_time(&gpu, 4 << 20, 2);
    let t4 = ring_allreduce_time(&gpu, 4 << 20, 4);
    let t8 = ring_allreduce_time(&gpu, 4 << 20, 8);
    assert!(t2 < t4 && t4 < t8, "{t2} {t4} {t8}");
    let small = ring_allreduce_time(&gpu, 1 << 20, 8);
    let large = ring_allreduce_time(&gpu, 32 << 20, 8);
    assert!(small < large, "{small} {large}");
}

#[test]
fn ring_time_is_engine_invariant() {
    let gpu = GpuConfig::tesla_v100();
    for (bytes, gpus) in [(1u64 << 20, 4u32), (8 << 20, 8), (64, 2)] {
        let reference = with_engine_mode(EngineMode::Reference, || {
            ring_allreduce_report(&gpu, bytes, gpus)
        });
        let optimized = with_engine_mode(EngineMode::Optimized, || {
            ring_allreduce_report(&gpu, bytes, gpus)
        });
        assert_eq!(
            reference.0, optimized.0,
            "{bytes} bytes / {gpus} GPUs: spans must be bit-identical"
        );
        assert!(
            optimized.1 <= reference.1,
            "optimized engine should not handle more events ({} vs {})",
            optimized.1,
            reference.1
        );
    }
}

#[test]
fn degenerate_rings_cost_nothing() {
    let gpu = GpuConfig::tesla_v100();
    assert_eq!(ring_allreduce_time(&gpu, 1 << 20, 1), SimTime::ZERO);
    assert_eq!(allreduce_time(1 << 20, 1), SimTime::ZERO);
}

#[test]
fn a100_ring_stays_within_tolerance_too() {
    // The calibration derives the raw link latency from the *device's*
    // signaling costs, so the oracle contract is architecture-portable.
    let gpu = GpuConfig::ampere_a100();
    for (bytes, gpus) in [(1u64 << 20, 8u32), (16 << 20, 4)] {
        let err = relative_error(
            ring_allreduce_time(&gpu, bytes, gpus),
            allreduce_time(bytes, gpus),
        );
        assert!(err <= TOLERANCE, "{bytes}/{gpus}: {:.1}% off", err * 100.0);
    }
}
