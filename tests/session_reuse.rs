//! Compile-once/run-many ↔ one-shot equivalence.
//!
//! The compile/execute split promises that N repeated [`Session::run`]s of
//! one [`CompiledPipeline`] are **bit-identical** to N fresh one-shot
//! [`Gpu`] runs of the same workload — every `RunReport` field (kernel
//! start/end timestamps, totals, race counts, semaphore post counts, the
//! utilization float to the last bit), in both [`EngineMode`]s, across the
//! paper's MLP / Attention / Conv / Stream-K scenarios, functional
//! pipelines, and randomized kernel soups. It also covers the
//! [`Runtime`] pool (scheduling may differ in wall-clock; simulated
//! results may not) and the pristine-ness of the compiled artifact.

use std::sync::Arc;

use cusync_models::{
    build_attention, build_conv_layer, build_mlp, build_tp_layer, compile_attention,
    compile_conv_layer, compile_mlp, compile_tp_layer, launch_ring_allreduce, tp_attention, tp_mlp,
    AttentionConfig, MlpModel, PolicyKind, SyncMode, TpSchedule,
};
use cusync_sim::{
    with_engine_mode, ClusterConfig, CompiledPipeline, DType, Dim3, EngineMode, ExecMode,
    FixedKernel, Gpu, GpuConfig, Op, RunReport, Runtime, Session, StreamId,
};
use proptest::prelude::*;

#[path = "common/mod.rs"]
mod common;
use common::Gen;

const REPEATS: usize = 3;

/// Every timing-observable field must match exactly; `sim_events` is
/// included too — the session replays the identical event sequence.
fn assert_identical(fresh: &RunReport, reused: &RunReport, what: &str) {
    assert_eq!(fresh.kernels, reused.kernels, "{what}: kernel reports");
    assert_eq!(fresh.total, reused.total, "{what}: total");
    assert_eq!(fresh.races, reused.races, "{what}: races");
    assert_eq!(fresh.sem_posts, reused.sem_posts, "{what}: sem posts");
    assert_eq!(
        fresh.sm_utilization, reused.sm_utilization,
        "{what}: utilization (bit-exact)"
    );
    assert_eq!(fresh.sim_events, reused.sim_events, "{what}: event counts");
}

/// Core harness: N `Session::run`s of one compiled pipeline vs N fresh
/// one-shot `Gpu` runs, under both engine modes.
fn check_reuse<C, F>(what: &str, compile: C, fresh_gpu: F)
where
    C: Fn() -> CompiledPipeline,
    F: Fn() -> Gpu,
{
    for mode in [EngineMode::Reference, EngineMode::Optimized] {
        with_engine_mode(mode, || {
            let pipeline = compile();
            let mut session = Session::new();
            for rep in 0..REPEATS {
                let reused = session.run(&pipeline).expect("session run");
                let mut gpu = fresh_gpu();
                let fresh = gpu.run().expect("one-shot run");
                assert_identical(&fresh, &reused, &format!("{what} [{mode}] rep {rep}"));
            }
        });
    }
}

#[test]
fn mlp_session_reuse_is_bit_identical() {
    let gpu = GpuConfig::tesla_v100();
    for (bs, mode) in [
        (
            64u32,
            SyncMode::CuSync(PolicyKind::Tile, cusync::OptFlags::WRT),
        ),
        (256, SyncMode::StreamSync),
        (8, SyncMode::CuSync(PolicyKind::Row, cusync::OptFlags::NONE)),
    ] {
        check_reuse(
            &format!("gpt3 mlp bs={bs} {mode}"),
            || compile_mlp(&gpu, MlpModel::Gpt3, bs, mode),
            || {
                let mut g = Gpu::new(gpu.clone());
                build_mlp(&mut g, MlpModel::Gpt3, bs, mode);
                g
            },
        );
    }
    // LLaMA with the strided policy (SwiGLU halves).
    let mode = SyncMode::CuSync(PolicyKind::Strided, cusync::OptFlags::WRT);
    check_reuse(
        "llama mlp bs=512 strided",
        || compile_mlp(&gpu, MlpModel::Llama, 512, mode),
        || {
            let mut g = Gpu::new(gpu.clone());
            build_mlp(&mut g, MlpModel::Llama, 512, mode);
            g
        },
    );
}

#[test]
fn streamk_session_reuse_is_bit_identical() {
    let gpu = GpuConfig::tesla_v100();
    check_reuse(
        "gpt3 mlp bs=128 stream-k",
        || compile_mlp(&gpu, MlpModel::Gpt3, 128, SyncMode::StreamK),
        || {
            let mut g = Gpu::new(gpu.clone());
            build_mlp(&mut g, MlpModel::Gpt3, 128, SyncMode::StreamK);
            g
        },
    );
}

#[test]
fn attention_session_reuse_is_bit_identical() {
    let gpu = GpuConfig::tesla_v100();
    for (cfg, mode) in [
        (
            AttentionConfig::prompt(12288, 512),
            SyncMode::CuSync(PolicyKind::Strided, cusync::OptFlags::WRT),
        ),
        (
            AttentionConfig::generation(8192, 2, 1024),
            SyncMode::StreamSync,
        ),
    ] {
        check_reuse(
            &format!("attention {cfg:?} {mode}"),
            || compile_attention(&gpu, cfg, mode),
            || {
                let mut g = Gpu::new(gpu.clone());
                build_attention(&mut g, cfg, mode);
                g
            },
        );
    }
}

#[test]
fn conv_session_reuse_is_bit_identical() {
    let gpu = GpuConfig::tesla_v100();
    let mode = SyncMode::CuSync(PolicyKind::Conv2DTile, cusync::OptFlags::WRT);
    check_reuse(
        "conv c=128 b=4",
        || compile_conv_layer(&gpu, 4, 28, 128, 2, mode),
        || {
            let mut g = Gpu::new(gpu.clone());
            build_conv_layer(&mut g, 4, 28, 128, 2, mode);
            g
        },
    );
}

/// Functional pipelines mutate global memory during the run; the session
/// must restore every buffer to its pristine initial contents between
/// runs, or the second run would read the first run's outputs.
#[test]
fn functional_memory_resets_between_session_runs() {
    use cusync::{CuStage, SyncGraph, TileSync};
    use cusync_kernels::{GemmBuilder, GemmDims, InputDep, TileShape};

    let config = GpuConfig {
        host_launch_gap: cusync_sim::SimTime::ZERO,
        kernel_dispatch_latency: cusync_sim::SimTime::ZERO,
        ..GpuConfig::toy(4)
    };
    let build = |gpu: &mut Gpu| {
        let tile = TileShape::new(8, 8, 8);
        let (m, h, k) = (16u32, 24u32, 16u32);
        let data = |len: usize| (0..len).map(|i| (i % 7) as f32 * 0.1).collect::<Vec<_>>();
        let x = gpu
            .mem_mut()
            .alloc_data("x", data((m * k) as usize), DType::F16);
        let w1 = gpu
            .mem_mut()
            .alloc_data("w1", data((k * h) as usize), DType::F16);
        let xw1 = gpu
            .mem_mut()
            .alloc_poisoned("xw1", (m * h) as usize, DType::F16);
        let grid1 = Dim3::new(h / 8, m / 8, 1);
        let mut graph = SyncGraph::new();
        let s1 = graph.add_stage(CuStage::new("g1", grid1).policy(TileSync));
        let s2 = graph.add_stage(CuStage::new("g2", Dim3::new(k / 8, m / 8, 1)).policy(TileSync));
        let out = gpu
            .mem_mut()
            .alloc_poisoned("out", (m * k) as usize, DType::F16);
        let w2 = gpu
            .mem_mut()
            .alloc_data("w2", data((h * k) as usize), DType::F16);
        graph.dependency(s1, s2, xw1).unwrap();
        let bound = graph.bind(gpu).unwrap();
        let g1 = GemmBuilder::new("g1", GemmDims::new(m, h, k), tile)
            .operands(x, w1, xw1)
            .stage(Arc::clone(bound.stage(s1)))
            .build(gpu.config())
            .expect("operands set");
        let g2 = GemmBuilder::new("g2", GemmDims::new(m, k, h), tile)
            .operands(xw1, w2, out)
            .stage(Arc::clone(bound.stage(s2)))
            .a_dep(InputDep::row_aligned(grid1), grid1.x)
            .build(gpu.config())
            .expect("operands set");
        bound.launch(gpu, s1, Arc::new(g1)).unwrap();
        bound.launch(gpu, s2, Arc::new(g2)).unwrap();
        out
    };
    for mode in [EngineMode::Reference, EngineMode::Optimized] {
        with_engine_mode(mode, || {
            let mut gpu = Gpu::new(config.clone());
            let out = build(&mut gpu);
            let pipeline = gpu.compile().unwrap();
            // The compiled artifact stays poisoned-pristine.
            assert!(pipeline.initial_mem().snapshot(out).unwrap()[0].is_nan());

            let mut session = Session::new();
            let mut values: Option<Vec<f32>> = None;
            let mut reports: Option<RunReport> = None;
            for _ in 0..REPEATS {
                let report = session.run(&pipeline).expect("functional run");
                assert_eq!(
                    report.races, 0,
                    "[{mode}] poison must be rewritten each run"
                );
                let got = session.mem().snapshot(out).unwrap().to_vec();
                assert!(got.iter().all(|v| !v.is_nan()));
                match (&values, &reports) {
                    (Some(v), Some(r)) => {
                        assert_eq!(v, &got, "[{mode}] outputs drifted across reuse");
                        assert_identical(r, &report, &format!("functional [{mode}]"));
                    }
                    _ => {
                        values = Some(got);
                        reports = Some(report);
                    }
                }
            }
            // One-shot comparator.
            let mut gpu = Gpu::new(config.clone());
            let out2 = build(&mut gpu);
            let fresh = gpu.run().unwrap();
            assert_identical(&fresh, reports.as_ref().unwrap(), "functional vs one-shot");
            assert_eq!(
                gpu.mem().snapshot(out2).unwrap(),
                values.as_deref().unwrap()
            );
        });
    }
}

/// Multi-device pipelines go through the same device-count-agnostic
/// session machinery: N `Session::run`s of a compiled tensor-parallel
/// layer (cross-device semaphores, link sends, the ring collective) must
/// be bit-identical to N fresh one-shot cluster runs, on both engines.
#[test]
fn tensor_parallel_session_reuse_is_bit_identical() {
    for (devices, cfg, schedule) in [
        (2u32, tp_mlp(4096, 256), TpSchedule::Serialized),
        (4, tp_mlp(4096, 256), TpSchedule::Overlap),
        (4, tp_attention(4096, 256), TpSchedule::Overlap),
    ] {
        let cluster = ClusterConfig::dgx_v100(devices);
        check_reuse(
            &format!("tp {cfg:?} devices={devices} {schedule:?}"),
            || compile_tp_layer(&cluster, cfg, schedule),
            || {
                let mut g = Gpu::new_cluster(cluster.clone());
                build_tp_layer(&mut g, cfg, schedule);
                g
            },
        );
    }
}

/// A bare ring collective (no compute around it) also reuses cleanly: the
/// cross-device semaphore state — including remote-homed arrays — must be
/// restored between runs.
#[test]
fn ring_allreduce_session_reuse_is_bit_identical() {
    let cluster = ClusterConfig::dgx_v100(4);
    let build = |g: &mut Gpu| {
        let streams: Vec<StreamId> = (0..4).map(|d| g.create_stream_on(d, 0)).collect();
        launch_ring_allreduce(g, "ar", 2 << 20, &streams);
    };
    check_reuse(
        "ring allreduce 4 devices",
        || {
            let mut g = Gpu::new_cluster(cluster.clone());
            build(&mut g);
            g.compile().expect("unrun cluster gpu")
        },
        || {
            let mut g = Gpu::new_cluster(cluster.clone());
            build(&mut g);
            g
        },
    );
}

/// The pooled `Runtime` serves multi-device pipelines like any other:
/// repeated concurrent submissions resolve to the identical simulation.
#[test]
fn multi_device_runtime_pool_matches_serial_sessions() {
    let cluster = ClusterConfig::dgx_v100(4);
    let pipelines: Vec<Arc<CompiledPipeline>> = [TpSchedule::Serialized, TpSchedule::Overlap]
        .into_iter()
        .map(|s| Arc::new(compile_tp_layer(&cluster, tp_mlp(4096, 256), s)))
        .collect();
    let mut session = Session::new();
    let serial: Vec<RunReport> = pipelines
        .iter()
        .map(|p| session.run(p).expect("serial run"))
        .collect();
    let runtime = Runtime::new(3);
    let results = runtime.run_all((0..3).flat_map(|_| pipelines.iter().map(Arc::clone)));
    for (i, result) in results.into_iter().enumerate() {
        let report = result.expect("pooled run");
        assert_identical(
            &serial[i % pipelines.len()],
            &report,
            &format!("pooled multi-device submission {i}"),
        );
    }
}

/// A `Runtime` pool run is the same simulation as a serial session run.
#[test]
fn runtime_pool_matches_serial_sessions() {
    let gpu = GpuConfig::tesla_v100();
    let modes = [
        SyncMode::StreamSync,
        SyncMode::CuSync(PolicyKind::Tile, cusync::OptFlags::WRT),
        SyncMode::StreamK,
    ];
    let pipelines: Vec<Arc<CompiledPipeline>> = modes
        .iter()
        .map(|&m| Arc::new(compile_mlp(&gpu, MlpModel::Gpt3, 64, m)))
        .collect();
    let mut session = Session::new();
    let serial: Vec<RunReport> = pipelines
        .iter()
        .map(|p| session.run(p).expect("serial run"))
        .collect();
    let runtime = Runtime::new(3);
    // Submit each pipeline several times, interleaved, from one client.
    let results = runtime.run_all((0..3).flat_map(|_| pipelines.iter().map(Arc::clone)));
    for (i, result) in results.into_iter().enumerate() {
        let report = result.expect("pooled run");
        assert_identical(
            &serial[i % pipelines.len()],
            &report,
            &format!("pooled submission {i}"),
        );
    }
}

/// Every timing-observable field must match; `sim_events` is *excluded*:
/// the device-sharded engine handles remote posts as delivered messages,
/// so its event count legitimately differs from the serial post path.
fn assert_timings_identical(serial: &RunReport, parallel: &RunReport, what: &str) {
    assert_eq!(serial.kernels, parallel.kernels, "{what}: kernel reports");
    assert_eq!(serial.total, parallel.total, "{what}: total");
    assert_eq!(serial.races, parallel.races, "{what}: races");
    assert_eq!(serial.sem_posts, parallel.sem_posts, "{what}: sem posts");
    assert_eq!(
        serial.sm_utilization, parallel.sm_utilization,
        "{what}: utilization (bit-exact)"
    );
}

/// Session reuse under the device-sharded engine: N parallel reruns of a
/// compiled multi-device pipeline are bit-identical to each other
/// (`sim_events` included — the shard pool replays the identical event
/// sequence) and bit-identical in every timing field to fresh serial
/// runs.
#[test]
fn parallel_session_reuse_is_bit_identical() {
    for (devices, schedule) in [(2u32, TpSchedule::Serialized), (4, TpSchedule::Overlap)] {
        let cluster = ClusterConfig::dgx_v100(devices);
        let pipeline = compile_tp_layer(&cluster, tp_mlp(4096, 256), schedule);
        assert!(pipeline.shardable(), "TP layer waits are home-local");
        let serial = Session::with_mode(EngineMode::Optimized)
            .run(&pipeline)
            .expect("serial run");
        let mut session = Session::with_mode(EngineMode::Optimized);
        session.set_exec(Some(ExecMode::Parallel));
        session.set_threads(2);
        let mut first: Option<RunReport> = None;
        for rep in 0..REPEATS {
            let what = format!("parallel reuse devices={devices} {schedule:?} rep {rep}");
            let report = session.run(&pipeline).expect("parallel session run");
            assert_timings_identical(&serial, &report, &what);
            match &first {
                Some(f) => assert_identical(f, &report, &what),
                None => first = Some(report),
            }
        }
    }
}

/// A `Runtime` pool whose workers carry the parallel [`ExecMode`]
/// override resolves every submission to the identical simulation a
/// fresh serial session produces.
#[test]
fn parallel_runtime_pool_matches_serial_sessions() {
    let cluster = ClusterConfig::dgx_v100(4);
    let pipelines: Vec<Arc<CompiledPipeline>> = [TpSchedule::Serialized, TpSchedule::Overlap]
        .into_iter()
        .map(|s| Arc::new(compile_tp_layer(&cluster, tp_mlp(4096, 256), s)))
        .collect();
    let mut session = Session::with_mode(EngineMode::Optimized);
    let serial: Vec<RunReport> = pipelines
        .iter()
        .map(|p| session.run(p).expect("serial run"))
        .collect();
    let runtime =
        Runtime::with_mode_sched_exec(EngineMode::Optimized, 2, None, Some(ExecMode::Parallel));
    let results = runtime.run_all((0..3).flat_map(|_| pipelines.iter().map(Arc::clone)));
    for (i, result) in results.into_iter().enumerate() {
        let report = result.expect("pooled parallel run");
        assert_timings_identical(
            &serial[i % pipelines.len()],
            &report,
            &format!("pooled parallel submission {i}"),
        );
    }
}

/// Builds a randomized multi-stream FixedKernel workload from `seed`:
/// 1-3 kernels of mixed ops, priorities and occupancies, with one
/// producer → consumer semaphore edge (post launched before wait, so the
/// workload cannot deadlock).
fn random_workload(seed: u64, gpu: &mut Gpu) {
    let mut g = Gen(seed);
    let sem = gpu.alloc_sems("sem", 4, 0);
    let kernels = g.range(1, 4);
    let consumer = if kernels > 1 {
        Some(g.range(1, kernels))
    } else {
        None
    };
    for i in 0..kernels {
        let stream = gpu.create_stream(g.range(0, 3) as i32);
        let mut body = Vec::new();
        for _ in 0..g.range(1, 6) {
            let x = g.range(1, 50_000);
            body.push(match g.range(0, 5) {
                0 => Op::compute(x),
                1 => Op::read(x * 64),
                2 => Op::write(x * 64),
                3 => Op::Syncthreads,
                _ => Op::main_step(x * 32, x),
            });
        }
        if i == 0 {
            body.push(Op::post(sem, 0));
        } else if Some(i) == consumer {
            body.insert(0, Op::wait(sem, 0, 1));
        }
        gpu.launch(
            stream,
            Arc::new(FixedKernel::new(
                &format!("k{i}"),
                Dim3::linear(g.range(1, 12) as u32),
                g.range(1, 3) as u32,
                body,
            )),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: for arbitrary multi-stream FixedKernel workloads (with a
    /// producer/consumer semaphore edge), N session reruns == N fresh-Gpu
    /// runs, on both engines.
    #[test]
    fn random_workload_session_reuse_matches_fresh_gpu(
        sms in 2u32..6,
        seed in 0u64..u64::MAX,
    ) {
        let config = GpuConfig::toy(sms);
        for mode in [EngineMode::Reference, EngineMode::Optimized] {
            with_engine_mode(mode, || {
                let mut built = Gpu::new(config.clone());
                random_workload(seed, &mut built);
                let pipeline = built.compile().expect("unrun gpu");
                let mut session = Session::new();
                for _ in 0..2 {
                    let reused = session.run(&pipeline).expect("session");
                    let mut gpu = Gpu::new(config.clone());
                    random_workload(seed, &mut gpu);
                    let fresh = gpu.run().expect("fresh");
                    prop_assert_eq!(&fresh, &reused);
                }
            });
        }
    }
}

/// A kernel whose every block panics on its first resume — the worst-case
/// tenant a multi-tenant [`Runtime`] can be handed.
fn panicking_pipeline() -> CompiledPipeline {
    use cusync_sim::{BlockBody, BlockCtx, FnKernel, Step};
    struct Boom;
    impl BlockBody for Boom {
        fn resume(&mut self, _ctx: &mut BlockCtx<'_>) -> Step {
            panic!("intentional test panic: kernel body exploded");
        }
    }
    let mut gpu = Gpu::new(GpuConfig::toy(2));
    let s = gpu.create_stream(0);
    gpu.launch(
        s,
        Arc::new(FnKernel::new("boom", Dim3::linear(1), 1, |_| {
            Box::new(Boom)
        })),
    );
    gpu.compile().expect("unrun gpu")
}

fn healthy_pipeline() -> CompiledPipeline {
    let mut gpu = Gpu::new(GpuConfig::toy(2));
    let s = gpu.create_stream(0);
    gpu.launch(
        s,
        Arc::new(FixedKernel::new(
            "ok",
            Dim3::linear(2),
            1,
            vec![Op::compute(1_000)],
        )),
    );
    gpu.compile().expect("unrun gpu")
}

/// Runtime lifecycle: a pipeline that panics mid-run surfaces as
/// [`SimError::WorkerPanic`] on its own ticket, while the worker survives
/// to serve every job queued behind it — no hang, no lost tickets — and
/// dropping the pool still joins cleanly.
#[test]
fn runtime_worker_panic_surfaces_as_error_not_hang() {
    use cusync_sim::SimError;
    let bad = Arc::new(panicking_pipeline());
    let good = Arc::new(healthy_pipeline());
    let baseline = Session::new().run(&good).expect("healthy pipeline runs");

    // One worker: the panicking job is strictly ahead of the good ones in
    // the queue, so the pre-fix behaviour (worker dies, queue never
    // drains) would hang this test on the second ticket.
    let runtime = Runtime::new(1);
    let bad_ticket = runtime.submit(Arc::clone(&bad));
    let good_tickets: Vec<_> = (0..4).map(|_| runtime.submit(Arc::clone(&good))).collect();

    match bad_ticket.wait() {
        Err(SimError::WorkerPanic(msg)) => {
            assert!(msg.contains("intentional test panic"), "{msg}");
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
    for ticket in good_tickets {
        let report = ticket.wait().expect("worker must survive the panic");
        assert_identical(&baseline, &report, "post-panic worker session");
    }
    // Interleave once more, then drop: Drop joins the (alive) worker.
    let t = runtime.submit(Arc::clone(&bad));
    drop(runtime);
    assert!(matches!(t.wait(), Err(SimError::WorkerPanic(_))));
}
