//! Cross-crate functional correctness: full producer/consumer pipelines
//! must compute reference-exact results, race-free, under every policy.

use std::sync::Arc;

use cusync::{CuStage, NoSync, OptFlags, PolicyRef, RowSync, StridedSync, SyncGraph, TileSync};
use cusync_kernels::reference::{assert_close, matmul, swish};
use cusync_kernels::{DepPlan, GemmBuilder, GemmDims, InputDep, TileShape};
use cusync_sim::{DType, Dim3, Gpu, GpuConfig, RunReport, SimTime};

fn quiet_gpu(sms: u32) -> Gpu {
    Gpu::new(GpuConfig {
        host_launch_gap: SimTime::ZERO,
        kernel_dispatch_latency: SimTime::ZERO,
        block_jitter: 0.0,
        ..GpuConfig::toy(sms)
    })
}

fn seeded(len: usize, scale: f32) -> Vec<f32> {
    (0..len)
        .map(|i| ((i * 37 + 11) % 17) as f32 * scale - 0.4)
        .collect()
}

/// Runs the two-GeMM MLP chain under `policy` with `opts`, returning the
/// report and verifying output against the CPU oracle.
fn run_chain(policy: PolicyRef, opts: OptFlags, chunks: u32) -> RunReport {
    let (m, k, h) = (32u32, 24u32, 40u32);
    let tile = TileShape::new(8, 8, 8);
    let mut gpu = quiet_gpu(8);
    let x_data = seeded((m * k) as usize, 0.05);
    let w1_data = seeded((k * h) as usize, 0.04);
    let w2_data = seeded((h * k) as usize, 0.03);
    let x = gpu.mem_mut().alloc_data("x", x_data.clone(), DType::F16);
    let w1 = gpu.mem_mut().alloc_data("w1", w1_data.clone(), DType::F16);
    let w2 = gpu.mem_mut().alloc_data("w2", w2_data.clone(), DType::F16);
    let xw1 = gpu
        .mem_mut()
        .alloc_poisoned("xw1", (m * h) as usize, DType::F16);
    let out = gpu
        .mem_mut()
        .alloc_poisoned("out", (m * k) as usize, DType::F16);

    let grid1 = Dim3::new(h / tile.n, m / tile.m, 1);
    let grid2 = Dim3::new(k / tile.n, m / tile.m, 1);
    let mut graph = SyncGraph::new();
    let s1 = graph.add_stage(CuStage::new("gemm1", grid1).policy_ref(policy).opts(opts));
    let s2 = graph.add_stage(CuStage::new("gemm2", grid2).policy(NoSync).opts(opts));
    graph.dependency(s1, s2, xw1).unwrap();
    let bound = graph.bind(&mut gpu).unwrap();
    let g1 = GemmBuilder::new("gemm1", GemmDims::new(m, h, k), tile)
        .operands(x, w1, xw1)
        .stage(Arc::clone(bound.stage(s1)))
        .build(gpu.config())
        .expect("operands set");
    let g2 = GemmBuilder::new("gemm2", GemmDims::new(m, k, h), tile)
        .operands(xw1, w2, out)
        .stage(Arc::clone(bound.stage(s2)))
        .a_dep(InputDep::row_aligned(grid1), chunks)
        .build(gpu.config())
        .expect("operands set");
    bound.launch(&mut gpu, s1, Arc::new(g1)).unwrap();
    bound.launch(&mut gpu, s2, Arc::new(g2)).unwrap();
    let report = gpu.run().expect("pipeline deadlocked");

    let xw1_ref = matmul(&x_data, &w1_data, m as usize, h as usize, k as usize);
    let out_ref = matmul(&xw1_ref, &w2_data, m as usize, k as usize, h as usize);
    assert_close(gpu.mem().snapshot(out).unwrap(), &out_ref, 5e-3);
    report
}

#[test]
fn every_policy_and_opt_combination_is_race_free_and_correct() {
    let policies: Vec<(&str, PolicyRef)> = vec![
        ("TileSync", Arc::new(TileSync)),
        ("RowSync", Arc::new(RowSync)),
    ];
    for (name, policy) in policies {
        for opts in OptFlags::all() {
            let report = run_chain(Arc::clone(&policy), opts, 5);
            assert_eq!(report.races, 0, "{name}{opts} raced: {report}");
        }
    }
}

#[test]
fn coarse_and_fine_wait_granularities_agree() {
    // One wait for the whole K extent vs one wait per producer tile.
    for chunks in [1u32, 2, 5] {
        let report = run_chain(Arc::new(TileSync), OptFlags::NONE, chunks);
        assert_eq!(report.races, 0, "chunks={chunks}");
    }
}

#[test]
fn llama_swiglu_chain_with_strided_policy_is_correct() {
    // Combined [gate|value] producer + SwiGLU consumer, synchronized by
    // the generated StridedSync (both halves of a column must be ready).
    let (m, k, inter) = (16u32, 16u32, 16u32);
    let tile = TileShape::new(8, 8, 8);
    let mut gpu = quiet_gpu(8);
    let x_data = seeded((m * k) as usize, 0.05);
    let w1v_data = seeded((k * 2 * inter) as usize, 0.05);
    let w2_data = seeded((inter * k) as usize, 0.04);
    let x = gpu.mem_mut().alloc_data("x", x_data.clone(), DType::F16);
    let w1v = gpu
        .mem_mut()
        .alloc_data("w1v", w1v_data.clone(), DType::F16);
    let w2 = gpu.mem_mut().alloc_data("w2", w2_data.clone(), DType::F16);
    let comb = gpu
        .mem_mut()
        .alloc_poisoned("comb", (m * 2 * inter) as usize, DType::F16);
    let out = gpu
        .mem_mut()
        .alloc_poisoned("out", (m * k) as usize, DType::F16);

    let grid1 = Dim3::new(2 * inter / tile.n, m / tile.m, 1);
    let grid2 = Dim3::new(k / tile.n, m / tile.m, 1);
    let half = grid1.x / 2;
    let mut graph = SyncGraph::new();
    let s1 = graph.add_stage(CuStage::new("gemm1", grid1).policy(StridedSync::new(half, 2)));
    let s2 = graph.add_stage(CuStage::new("gemm2", grid2).policy(NoSync));
    graph.dependency(s1, s2, comb).unwrap();
    let bound = graph.bind(&mut gpu).unwrap();
    let g1 = GemmBuilder::new("gemm1", GemmDims::new(m, 2 * inter, k), tile)
        .operands(x, w1v, comb)
        .stage(Arc::clone(bound.stage(s1)))
        .build(gpu.config())
        .expect("operands set");
    let g2 = GemmBuilder::new("gemm2", GemmDims::new(m, k, inter), tile)
        .swiglu_a(comb)
        .operands_b_c(w2, out)
        .stage(Arc::clone(bound.stage(s2)))
        .a_dep(
            InputDep {
                prod_grid: grid1,
                plan: DepPlan::Strided {
                    x_offsets: vec![0, half],
                },
            },
            half,
        )
        .build(gpu.config())
        .expect("operands set");
    bound.launch(&mut gpu, s1, Arc::new(g1)).unwrap();
    bound.launch(&mut gpu, s2, Arc::new(g2)).unwrap();
    let report = gpu.run().expect("swiglu chain deadlocked");
    assert_eq!(report.races, 0, "{report}");

    let comb_ref = matmul(
        &x_data,
        &w1v_data,
        m as usize,
        2 * inter as usize,
        k as usize,
    );
    let mut a_eff = vec![0.0f32; (m * inter) as usize];
    for i in 0..m as usize {
        for j in 0..inter as usize {
            let gate = comb_ref[i * 2 * inter as usize + j];
            let value = comb_ref[i * 2 * inter as usize + inter as usize + j];
            a_eff[i * inter as usize + j] = swish(gate) * value;
        }
    }
    let out_ref = matmul(&a_eff, &w2_data, m as usize, k as usize, inter as usize);
    assert_close(gpu.mem().snapshot(out).unwrap(), &out_ref, 1e-2);
}

#[test]
fn three_stage_chain_propagates_through_intermediates() {
    // gemm1 -> gemm2 -> gemm3 with per-stage policies.
    let m = 16u32;
    let tile = TileShape::new(8, 8, 8);
    let mut gpu = quiet_gpu(8);
    let x_data = seeded((m * m) as usize, 0.05);
    let w_data: Vec<Vec<f32>> = (0..3)
        .map(|i| seeded((m * m) as usize, 0.03 + i as f32 * 0.01))
        .collect();
    let x = gpu.mem_mut().alloc_data("x", x_data.clone(), DType::F16);
    let ws: Vec<_> = w_data
        .iter()
        .enumerate()
        .map(|(i, d)| {
            gpu.mem_mut()
                .alloc_data(&format!("w{i}"), d.clone(), DType::F16)
        })
        .collect();
    let mids: Vec<_> = (0..3)
        .map(|i| {
            gpu.mem_mut()
                .alloc_poisoned(&format!("m{i}"), (m * m) as usize, DType::F16)
        })
        .collect();

    let grid = Dim3::new(m / tile.n, m / tile.m, 1);
    let mut graph = SyncGraph::new();
    let stages: Vec<_> = (0..3)
        .map(|i| {
            if i < 2 {
                graph.add_stage(CuStage::new(&format!("g{i}"), grid).policy(TileSync))
            } else {
                graph.add_stage(CuStage::new(&format!("g{i}"), grid).policy(NoSync))
            }
        })
        .collect();
    graph.dependency(stages[0], stages[1], mids[0]).unwrap();
    graph.dependency(stages[1], stages[2], mids[1]).unwrap();
    let bound = graph.bind(&mut gpu).unwrap();
    let inputs = [x, mids[0], mids[1]];
    for i in 0..3 {
        let mut b = GemmBuilder::new(&format!("g{i}"), GemmDims::new(m, m, m), tile)
            .operands(inputs[i], ws[i], mids[i])
            .stage(Arc::clone(bound.stage(stages[i])));
        if i > 0 {
            b = b.a_dep(InputDep::row_aligned(grid), grid.x);
        }
        let kernel = b.build(gpu.config()).expect("operands set");
        bound.launch(&mut gpu, stages[i], Arc::new(kernel)).unwrap();
    }
    let report = gpu.run().expect("3-stage chain deadlocked");
    assert_eq!(report.races, 0, "{report}");

    let mut cur = x_data;
    for w in &w_data {
        cur = matmul(&cur, w, m as usize, m as usize, m as usize);
    }
    assert_close(gpu.mem().snapshot(mids[2]).unwrap(), &cur, 5e-2);
}
