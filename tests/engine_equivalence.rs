//! Reference ↔ optimized engine equivalence on the tier-1 scenarios.
//!
//! The optimized engine (ready-queue issue, SM capacity index, op
//! coalescing, pre-driven block programs, dense wait-lists) must produce
//! **bit-identical** `RunReport` kernel start/end times — and identical
//! deadlock reports — to the reference engine (the original
//! rescan-everything event loop) on the workloads the repo's tests
//! exercise. These tests run each scenario under both [`EngineMode`]s and
//! compare the full observable outcome.

use std::sync::Arc;

use cusync::SyncMechanism;
use cusync::{CuStage, NoSync, OptFlags, SyncGraph, TileSync};
use cusync_kernels::{GemmBuilder, GemmDims, InputDep, TileShape};
use cusync_models::{
    compile_attention_mechanisms, compile_conv_layer_mechanisms, compile_mlp_mechanisms,
    ATTENTION_EDGES,
};
use cusync_models::{compile_tp_layer, launch_ring_allreduce};
use cusync_models::{
    run_attention, run_conv_layer, run_mlp, run_tp_layer, tp_attention, tp_mlp, AttentionConfig,
    MlpModel, PolicyKind, SyncMode, TpSchedule,
};
use cusync_sim::{
    run_compiled, with_engine_mode, ClusterConfig, CompiledPipeline, DType, Dim3, EngineMode,
    ExecMode, FixedKernel, Gpu, GpuConfig, LaunchGate, LinkScale, Op, RunReport, SchedPolicyKind,
    Session, SimError, SimTime,
};
use proptest::prelude::*;

#[path = "common/mod.rs"]
mod common;
use common::Gen;

/// Asserts every timing-observable field of two reports is identical.
/// (`sim_events` is excluded by design: it measures simulation *work*,
/// which the optimized engine reduces.)
fn assert_reports_identical(reference: &RunReport, optimized: &RunReport, what: &str) {
    assert_eq!(
        reference.kernels, optimized.kernels,
        "{what}: kernel reports"
    );
    assert_eq!(reference.total, optimized.total, "{what}: total time");
    assert_eq!(reference.races, optimized.races, "{what}: race count");
    assert_eq!(
        reference.sem_posts, optimized.sem_posts,
        "{what}: sem posts"
    );
    assert_eq!(
        reference.sm_utilization, optimized.sm_utilization,
        "{what}: utilization (must match to the last bit)"
    );
}

fn both_modes<F: Fn() -> RunReport>(what: &str, run: F) {
    let reference = with_engine_mode(EngineMode::Reference, &run);
    let optimized = with_engine_mode(EngineMode::Optimized, &run);
    assert_reports_identical(&reference, &optimized, what);
    assert!(
        optimized.sim_events <= reference.sim_events,
        "{what}: optimized engine should never handle more events \
         ({} vs {})",
        optimized.sim_events,
        reference.sim_events
    );
}

#[test]
fn mlp_pipelines_are_engine_invariant() {
    let gpu = GpuConfig::tesla_v100();
    for bs in [1u32, 64, 256, 2048] {
        for mode in [
            SyncMode::StreamSync,
            SyncMode::CuSync(PolicyKind::Tile, OptFlags::WRT),
            SyncMode::CuSync(PolicyKind::Row, OptFlags::NONE),
            SyncMode::StreamK,
        ] {
            both_modes(&format!("gpt3 mlp bs={bs} {mode}"), || {
                run_mlp(&gpu, MlpModel::Gpt3, bs, mode)
            });
        }
        both_modes(&format!("llama mlp bs={bs}"), || {
            run_mlp(
                &gpu,
                MlpModel::Llama,
                bs,
                SyncMode::CuSync(PolicyKind::Strided, OptFlags::WRT),
            )
        });
    }
}

#[test]
fn attention_chains_are_engine_invariant() {
    let gpu = GpuConfig::tesla_v100();
    for cfg in [
        AttentionConfig::prompt(12288, 512),
        AttentionConfig::generation(8192, 2, 1024),
    ] {
        for mode in [
            SyncMode::StreamSync,
            SyncMode::CuSync(PolicyKind::Strided, OptFlags::WRT),
        ] {
            both_modes(&format!("attention {cfg:?} {mode}"), || {
                run_attention(&gpu, cfg, mode)
            });
        }
    }
}

#[test]
fn conv_layers_are_engine_invariant() {
    let gpu = GpuConfig::tesla_v100();
    for (channels, batch) in [(64u32, 4u32), (512, 16)] {
        let pq = cusync_models::pq_for_channels(channels);
        for mode in [
            SyncMode::StreamSync,
            SyncMode::CuSync(PolicyKind::Conv2DTile, OptFlags::WRT),
        ] {
            both_modes(&format!("conv c={channels} b={batch} {mode}"), || {
                run_conv_layer(&gpu, batch, pq, channels, 2, mode)
            });
        }
    }
}

/// Pipelines using launch gates — PDL (`AfterLaunchOf` + a grid-sem
/// completion post) and stream-serialization (`AfterCompletionOf`) — run
/// through the preamble/dispatch machinery in both engines and must stay
/// bit-identical, alone and mixed with fine-grained edges.
#[test]
fn gated_pipelines_are_engine_invariant() {
    let gpu = GpuConfig::tesla_v100();
    // MLP: each uniform assignment plus the classic fine edge.
    for m in SyncMechanism::ALL {
        both_modes(&format!("gpt3 mlp bs=256 mech={m}"), || {
            run_compiled(
                &compile_mlp_mechanisms(&gpu, MlpModel::Gpt3, 256, OptFlags::WRT, &[m])
                    .expect("valid single-edge assignment"),
            )
            .expect("mlp mechanism run")
        });
    }
    // Attention: a deliberately mixed assignment — PDL off g1, fine
    // through the middle of the chain, stream-serial into g2.
    let mixed = [
        SyncMechanism::Pdl,
        SyncMechanism::Pdl,
        SyncMechanism::TileSync,
        SyncMechanism::TileSync,
        SyncMechanism::Pdl,
        SyncMechanism::StreamSerial,
    ];
    let cfg = AttentionConfig::prompt(12288, 512);
    for ms in [[SyncMechanism::Pdl; ATTENTION_EDGES], mixed] {
        both_modes(&format!("attention mixed mech {ms:?}"), || {
            run_compiled(
                &compile_attention_mechanisms(&gpu, cfg, OptFlags::WRT, &ms)
                    .expect("valid attention assignment"),
            )
            .expect("attention mechanism run")
        });
    }
    // Conv chain: alternate PDL and fine sync along four convs.
    let chain = [
        SyncMechanism::Pdl,
        SyncMechanism::TileSync,
        SyncMechanism::StreamSerial,
    ];
    both_modes("conv chain mixed mech", || {
        run_compiled(
            &compile_conv_layer_mechanisms(&gpu, 4, 14, 256, 4, OptFlags::WRT, &chain)
                .expect("valid chain assignment"),
        )
        .expect("conv mechanism run")
    });
}

/// Raw launch-gate semantics at the simulator level, checked under both
/// engines: an `AfterLaunchOf` consumer may start before the producer
/// ends (its body is gated by the grid semaphore instead), while an
/// `AfterCompletionOf` consumer cannot start until the producer is done.
#[test]
fn launch_gate_semantics_are_engine_invariant() {
    let scenario = || {
        let mut gpu = Gpu::new(GpuConfig::toy(4));
        let grid_sem = gpu.alloc_sems("p.grid", 1, 0);
        let s1 = gpu.create_stream(0);
        let s2 = gpu.create_stream(0);
        let s3 = gpu.create_stream(0);
        let producer = gpu.launch(
            s1,
            Arc::new(FixedKernel::new(
                "producer",
                Dim3::linear(8),
                1,
                vec![Op::compute(80_000)],
            )),
        );
        let pdl_consumer = gpu.launch(
            s2,
            Arc::new(FixedKernel::new(
                "pdl_consumer",
                Dim3::linear(2),
                1,
                vec![Op::wait(grid_sem, 0, 1), Op::compute(10_000)],
            )),
        );
        let serial_consumer = gpu.launch(
            s3,
            Arc::new(FixedKernel::new(
                "serial_consumer",
                Dim3::linear(2),
                1,
                vec![Op::compute(10_000)],
            )),
        );
        gpu.gate_launch(pdl_consumer, LaunchGate::AfterLaunchOf(producer));
        gpu.post_on_completion(producer, grid_sem, 0);
        gpu.gate_launch(serial_consumer, LaunchGate::AfterCompletionOf(producer));
        gpu.run().unwrap()
    };
    let reference = with_engine_mode(EngineMode::Reference, scenario);
    let optimized = with_engine_mode(EngineMode::Optimized, scenario);
    assert_reports_identical(&reference, &optimized, "launch gates");
    let producer = reference.kernel("producer");
    let pdl = reference.kernel("pdl_consumer");
    let serial = reference.kernel("serial_consumer");
    // PDL: launched once the producer's last block is resident — before
    // the producer ends — but its body outlasts the producer because it
    // spins on the grid semaphore.
    assert!(pdl.start < producer.end, "PDL consumer overlaps the tail");
    assert!(pdl.end > producer.end, "grid wait holds the body");
    // Stream-serialization: strictly after the producer.
    assert!(serial.start >= producer.end, "serial consumer is fenced");
}

/// The functional (NaN-poison race checking) path runs through the
/// coroutine bodies on both engines; values, races and timings must all
/// agree.
#[test]
fn functional_pipeline_is_engine_invariant() {
    let scenario = || {
        let tile = TileShape::new(8, 8, 8);
        let (m, h, k) = (16u32, 24u32, 16u32);
        let mut gpu = Gpu::new(GpuConfig {
            host_launch_gap: SimTime::ZERO,
            kernel_dispatch_latency: SimTime::ZERO,
            ..GpuConfig::toy(4)
        });
        let data = |len: usize| (0..len).map(|i| (i % 7) as f32 * 0.1).collect::<Vec<_>>();
        let x = gpu
            .mem_mut()
            .alloc_data("x", data((m * k) as usize), DType::F16);
        let w1 = gpu
            .mem_mut()
            .alloc_data("w1", data((k * h) as usize), DType::F16);
        let w2 = gpu
            .mem_mut()
            .alloc_data("w2", data((h * k) as usize), DType::F16);
        let xw1 = gpu
            .mem_mut()
            .alloc_poisoned("xw1", (m * h) as usize, DType::F16);
        let out = gpu
            .mem_mut()
            .alloc_poisoned("out", (m * k) as usize, DType::F16);
        let grid1 = Dim3::new(h / 8, m / 8, 1);
        let grid2 = Dim3::new(k / 8, m / 8, 1);
        let mut graph = SyncGraph::new();
        let s1 = graph.add_stage(CuStage::new("g1", grid1).policy(TileSync));
        let s2 = graph.add_stage(CuStage::new("g2", grid2).policy(NoSync));
        graph.dependency(s1, s2, xw1).unwrap();
        let bound = graph.bind(&mut gpu).unwrap();
        let g1 = GemmBuilder::new("g1", GemmDims::new(m, h, k), tile)
            .operands(x, w1, xw1)
            .stage(Arc::clone(bound.stage(s1)))
            .build(gpu.config())
            .expect("operands set");
        let g2 = GemmBuilder::new("g2", GemmDims::new(m, k, h), tile)
            .operands(xw1, w2, out)
            .stage(Arc::clone(bound.stage(s2)))
            .a_dep(InputDep::row_aligned(grid1), grid1.x)
            .build(gpu.config())
            .expect("operands set");
        bound.launch(&mut gpu, s1, Arc::new(g1)).unwrap();
        bound.launch(&mut gpu, s2, Arc::new(g2)).unwrap();
        let report = gpu.run().unwrap();
        let values = gpu.mem().snapshot(out).unwrap().to_vec();
        (report, values)
    };
    let (ref_report, ref_values) = with_engine_mode(EngineMode::Reference, scenario);
    let (opt_report, opt_values) = with_engine_mode(EngineMode::Optimized, scenario);
    assert_reports_identical(&ref_report, &opt_report, "functional mlp");
    assert_eq!(ref_report.races, 0);
    assert_eq!(ref_values, opt_values, "computed outputs must be identical");
}

/// The Section III-B busy-wait deadlock: both engines must stall at the
/// same simulated time with the same blocked/pending sets.
#[test]
fn deadlock_reports_are_engine_invariant() {
    let scenario = || {
        let mut gpu = Gpu::new(GpuConfig {
            host_launch_gap: SimTime::ZERO,
            kernel_dispatch_latency: SimTime::ZERO,
            block_jitter: 0.0,
            ..GpuConfig::toy(4)
        });
        let sem = gpu.alloc_sems("tile", 1, 0);
        let s1 = gpu.create_stream(0);
        let s2 = gpu.create_stream(1);
        gpu.launch(
            s1,
            Arc::new(cusync_sim::FixedKernel::new(
                "producer",
                Dim3::linear(4),
                1,
                vec![Op::compute(100), Op::post(sem, 0)],
            )),
        );
        gpu.launch(
            s2,
            Arc::new(cusync_sim::FixedKernel::new(
                "consumer",
                Dim3::linear(4),
                1,
                vec![Op::wait(sem, 0, 4), Op::compute(10)],
            )),
        );
        gpu.run().unwrap_err()
    };
    let reference = with_engine_mode(EngineMode::Reference, scenario);
    let optimized = with_engine_mode(EngineMode::Optimized, scenario);
    assert_eq!(reference, optimized, "deadlock blocked/pending sets");
    let SimError::Deadlock(report) = reference else {
        panic!("expected a deadlock");
    };
    // The consumer's blocks fill every SM busy-waiting, so the producer
    // never issues: both kernels are pending, all four resident blocks
    // are blocked.
    assert_eq!(
        report.pending_names(),
        vec!["producer".to_string(), "consumer".to_string()]
    );
    assert_eq!(report.blocked.len(), 4);
    // The structured report also closes the cycle: the producer is the
    // starved kernel (zero of four blocks launched), and every occupied
    // SM slot is a spinner.
    let starved: Vec<_> = report.starved().collect();
    assert_eq!(starved.len(), 1);
    assert_eq!(starved[0].name, "producer");
    assert_eq!(starved[0].unissued(), 4);
    assert!(report.sms.iter().all(|s| s.active_units == 0));
    assert!(report.wait_cycle().is_some());
}

/// The tensor-parallel layer boundary — shard GEMMs, simulated ring
/// allreduce and the chunk-synchronized next-layer GEMM across 2–8
/// devices — must be engine-invariant under both schedules.
#[test]
fn tensor_parallel_layers_are_engine_invariant() {
    for devices in [2u32, 4, 8] {
        let cluster = ClusterConfig::dgx_v100(devices);
        for schedule in [TpSchedule::Serialized, TpSchedule::Overlap] {
            for cfg in [tp_mlp(4096, 256), tp_attention(4096, 256)] {
                both_modes(
                    &format!("tp {cfg:?} devices={devices} {schedule:?}"),
                    || run_tp_layer(&cluster, cfg, schedule),
                );
            }
        }
    }
}

/// Builds a randomized multi-device workload from `seed`: 2-5 kernels of
/// mixed ops (including link sends) on random devices, priorities and
/// occupancies, with producer → consumer semaphore edges whose arrays are
/// homed on random devices — so the edges randomly cross the interconnect.
/// Kernel 0 posts every array and is launched first, so no launch order
/// can deadlock: on kernel 0's own device it issues first (earlier host
/// ready time), and spinners on other devices cannot block it.
fn random_cluster_workload(seed: u64, devices: u32, gpu: &mut Gpu) {
    let mut g = Gen(seed);
    let sems: Vec<_> = (0..g.range(1, 3))
        .map(|i| {
            let home = g.range(0, devices as u64) as u32;
            gpu.alloc_sems_on(home, &format!("sem{i}"), 2, 0)
        })
        .collect();
    let kernels = g.range(2, 6);
    for i in 0..kernels {
        let device = g.range(0, devices as u64) as u32;
        let stream = gpu.create_stream_on(device, g.range(0, 3) as i32);
        let mut body = Vec::new();
        for _ in 0..g.range(1, 6) {
            let x = g.range(1, 50_000);
            body.push(match g.range(0, 6) {
                0 => Op::compute(x),
                1 => Op::read(x * 64),
                2 => Op::write(x * 64),
                3 => Op::Fence,
                4 => Op::link_send(x * 256),
                _ => Op::main_step(x * 32, x),
            });
        }
        if i == 0 {
            for &sem in &sems {
                body.push(Op::post(sem, 0));
            }
        } else if g.range(0, 2) == 1 {
            let sem = sems[g.range(0, sems.len() as u64) as usize];
            body.insert(0, Op::wait(sem, 0, 1));
        }
        gpu.launch(
            stream,
            Arc::new(FixedKernel::new(
                &format!("k{i}"),
                Dim3::linear(g.range(1, 10) as u32),
                g.range(1, 3) as u32,
                body,
            )),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: for arbitrary multi-device workloads (1-4 devices,
    /// random cross-device semaphore edges, link sends, mixed priorities)
    /// the reference and optimized engines produce bit-identical
    /// timelines and traces.
    #[test]
    fn random_multi_device_pipelines_are_engine_invariant(
        devices in 1u32..5,
        sms in 2u32..5,
        seed in 0u64..u64::MAX,
    ) {
        let cluster = ClusterConfig {
            devices: vec![GpuConfig::toy(sms); devices as usize],
            link_latency: SimTime::from_nanos(2_500),
            link_bytes_per_sec: 100e9,
        };
        let scenario = |mode: EngineMode| {
            let mut gpu = Gpu::cluster_with_mode(cluster.clone(), mode);
            gpu.enable_trace();
            random_cluster_workload(seed, devices, &mut gpu);
            let report = gpu.run().expect("random cluster workload ran");
            (report, gpu.trace().to_vec())
        };
        let (ref_report, ref_trace) = scenario(EngineMode::Reference);
        let (opt_report, opt_trace) = scenario(EngineMode::Optimized);
        prop_assert_eq!(&ref_report.kernels, &opt_report.kernels);
        prop_assert_eq!(ref_report.total, opt_report.total);
        prop_assert_eq!(ref_report.sem_posts, opt_report.sem_posts);
        prop_assert_eq!(ref_report.sm_utilization, opt_report.sm_utilization);
        prop_assert_eq!(&ref_trace, &opt_trace);
        prop_assert!(opt_report.sim_events <= ref_report.sim_events);
    }
}

// ---------------------------------------------------------------------------
// Parallel (device-sharded) engine axis
//
// The conservative device-sharded engine (`ExecMode::Parallel`) promises
// the same bit-identity contract the optimized engine does: serial
// reference ≡ serial optimized ≡ parallel, on every workload, whether it
// runs sharded or falls back to the serial path. These tests pin that
// three-way equivalence on fixed graphs (1-4 devices, every SchedPolicy
// variant), on randomized local-wait workloads where the sharded path
// genuinely executes, and on the session knobs (`run_until`,
// `set_link_scale`) the parallel engine must honour.
// ---------------------------------------------------------------------------

/// Runs a compiled pipeline through a fresh optimized session with the
/// given execution mode and thread budget.
fn run_exec(pipeline: &CompiledPipeline, exec: ExecMode, threads: usize) -> RunReport {
    let mut session = Session::with_mode(EngineMode::Optimized);
    session.set_exec(Some(exec));
    session.set_threads(threads);
    session.run(pipeline).expect("pipeline runs")
}

/// Tensor-parallel layers — the flagship multi-device workload — must be
/// bit-identical between the serial and device-sharded engines across
/// device counts, schedules and thread budgets. Multi-device TP layers
/// must also be *eligible* for sharding (their waits are all home-local),
/// so the parallel runs here exercise the sharded path for real.
#[test]
fn tensor_parallel_layers_are_parallel_engine_invariant() {
    for devices in 1u32..=4 {
        let cluster = ClusterConfig::dgx_v100(devices);
        for schedule in [TpSchedule::Serialized, TpSchedule::Overlap] {
            let pipeline = compile_tp_layer(&cluster, tp_mlp(4096, 256), schedule);
            if devices >= 2 {
                assert!(
                    pipeline.shardable(),
                    "TP layer (devices={devices}) should be shardable"
                );
            }
            let serial = run_exec(&pipeline, ExecMode::Serial, 1);
            for threads in [1usize, 2, 4] {
                let parallel = run_exec(&pipeline, ExecMode::Parallel, threads);
                assert_reports_identical(
                    &serial,
                    &parallel,
                    &format!("tp devices={devices} {schedule:?} threads={threads}"),
                );
            }
        }
    }
}

/// Every block-scheduling policy must produce the same outcome under the
/// parallel engine as under the serial one — the shard-stable policies
/// (all four built-ins) by running sharded, anything else by falling back.
#[test]
fn sched_policies_are_parallel_engine_invariant() {
    for devices in [2u32, 4] {
        let cluster = ClusterConfig::dgx_v100(devices);
        let pipeline = compile_tp_layer(&cluster, tp_attention(4096, 256), TpSchedule::Overlap);
        for kind in [
            SchedPolicyKind::Fifo,
            SchedPolicyKind::Lifo,
            SchedPolicyKind::SeededShuffle(0xC0FFEE),
            SchedPolicyKind::SemStarver,
        ] {
            let run = |exec: ExecMode| {
                let mut session = Session::with_mode(EngineMode::Optimized);
                session.set_sched(Some(kind.instantiate()));
                session.set_exec(Some(exec));
                session.set_threads(2);
                session.run(&pipeline)
            };
            match (run(ExecMode::Serial), run(ExecMode::Parallel)) {
                (Ok(serial), Ok(parallel)) => assert_reports_identical(
                    &serial,
                    &parallel,
                    &format!("policy {kind} devices={devices}"),
                ),
                (Err(serial), Err(parallel)) => {
                    assert_eq!(serial, parallel, "policy {kind} devices={devices}: errors")
                }
                (serial, parallel) => panic!(
                    "policy {kind} devices={devices}: outcomes diverge \
                     ({serial:?} vs {parallel:?})"
                ),
            }
        }
    }
}

/// A deadlock on one device of a multi-device, shard-eligible workload:
/// the parallel engine detects the stall (its shard heaps drain with
/// kernels incomplete), abandons the sharded attempt, and the serial
/// rerun must produce the *identical* `DeadlockReport`.
#[test]
fn deadlock_reports_are_parallel_engine_invariant() {
    let device = GpuConfig {
        host_launch_gap: SimTime::ZERO,
        kernel_dispatch_latency: SimTime::ZERO,
        block_jitter: 0.0,
        ..GpuConfig::toy(4)
    };
    let cluster = ClusterConfig {
        devices: vec![device; 2],
        link_latency: SimTime::from_nanos(2_500),
        link_bytes_per_sec: 100e9,
    };
    let mut gpu = Gpu::new_cluster(cluster);
    let sem = gpu.alloc_sems_on(1, "tile", 1, 0);
    let producer = gpu.create_stream_on(1, 0);
    let consumer = gpu.create_stream_on(1, 1);
    gpu.launch(
        producer,
        Arc::new(FixedKernel::new(
            "producer",
            Dim3::linear(4),
            1,
            vec![Op::compute(100), Op::post(sem, 0)],
        )),
    );
    gpu.launch(
        consumer,
        Arc::new(FixedKernel::new(
            "consumer",
            Dim3::linear(4),
            1,
            vec![Op::wait(sem, 0, 4), Op::compute(10)],
        )),
    );
    let pipeline = gpu.compile().unwrap();
    assert!(pipeline.shardable(), "the wait is home-local");
    let err = |exec: ExecMode| {
        let mut session = Session::with_mode(EngineMode::Optimized);
        session.set_exec(Some(exec));
        session.set_threads(2);
        session.run(&pipeline).unwrap_err()
    };
    let serial = err(ExecMode::Serial);
    let parallel = err(ExecMode::Parallel);
    assert_eq!(serial, parallel, "deadlock blocked/pending sets");
    let SimError::Deadlock(report) = parallel else {
        panic!("expected a deadlock");
    };
    assert_eq!(report.pending_names().len(), 2);
    assert_eq!(report.blocked.len(), 4);
}

/// `Session::run_until` under the parallel engine: checkpoint residues
/// and completed reports must be bit-identical to serial runs, for
/// horizons mid-run, exactly at a kernel boundary, and past the end.
#[test]
fn run_until_checkpoints_identically_under_parallel_engine() {
    let cluster = ClusterConfig::dgx_v100(2);
    let pipeline = compile_tp_layer(&cluster, tp_mlp(4096, 256), TpSchedule::Serialized);
    let mut probe = Session::with_mode(EngineMode::Optimized);
    let full = probe.run(&pipeline).unwrap();
    let first_end = full.kernels.iter().map(|k| k.end).min().unwrap();
    for horizon in [
        SimTime::from_picos(1),
        first_end,
        full.total + SimTime::from_nanos(1),
    ] {
        let outcome = |exec: ExecMode| {
            let mut session = Session::with_mode(EngineMode::Optimized);
            session.set_exec(Some(exec));
            session.set_threads(2);
            session.run_until(&pipeline, horizon).unwrap()
        };
        assert_eq!(
            outcome(ExecMode::Serial),
            outcome(ExecMode::Parallel),
            "run_until horizon={horizon}"
        );
    }
}

/// `Session::set_link_scale` under the parallel engine: degraded-link
/// pricing is applied per shard (each device prices its own `LinkSend`s),
/// and the result must be bit-identical to the serial engine.
#[test]
fn link_scale_prices_identically_under_parallel_engine() {
    let mut gpu = Gpu::new_cluster(ClusterConfig::dgx_v100(4));
    let streams: Vec<_> = (0..4).map(|d| gpu.create_stream_on(d, 0)).collect();
    launch_ring_allreduce(&mut gpu, "ar", 4 << 20, &streams);
    let pipeline = gpu.compile().unwrap();
    assert!(pipeline.shardable(), "ring allreduce waits are home-local");
    let healthy = run_exec(&pipeline, ExecMode::Parallel, 2);
    for scale in [LinkScale::times(6), LinkScale::ratio(3, 2)] {
        let run = |exec: ExecMode| {
            let mut session = Session::with_mode(EngineMode::Optimized);
            session.set_link_scale(Some(scale));
            session.set_exec(Some(exec));
            session.set_threads(2);
            session.run(&pipeline).expect("degraded run completes")
        };
        let serial = run(ExecMode::Serial);
        let parallel = run(ExecMode::Parallel);
        assert_reports_identical(&serial, &parallel, &format!("link scale {scale:?}"));
        assert!(
            serial.total > healthy.total,
            "a degraded link must slow the collective"
        );
    }
}

/// Builds a randomized multi-device workload whose semaphore *waits* are
/// all homed on the waiting kernel's own device (posts still cross the
/// interconnect) — the eligibility contract of the device-sharded engine
/// — so the parallel runs below exercise the sharded path for real.
/// Kernel 0 posts every device's home array and is launched first, so no
/// launch order can deadlock (same argument as
/// [`random_cluster_workload`]).
fn random_local_wait_workload(seed: u64, devices: u32, gpu: &mut Gpu) {
    let mut g = Gen(seed ^ 0x517C_C1B7_2722_0A95);
    let sems: Vec<_> = (0..devices)
        .map(|d| gpu.alloc_sems_on(d, &format!("home{d}"), 2, 0))
        .collect();
    let kernels = g.range(2, 6);
    for i in 0..kernels {
        let device = g.range(0, devices as u64) as u32;
        let stream = gpu.create_stream_on(device, g.range(0, 3) as i32);
        let mut body = Vec::new();
        for _ in 0..g.range(1, 6) {
            let x = g.range(1, 50_000);
            body.push(match g.range(0, 6) {
                0 => Op::compute(x),
                1 => Op::read(x * 64),
                2 => Op::write(x * 64),
                3 => Op::Fence,
                4 => Op::link_send(x * 256),
                _ => Op::main_step(x * 32, x),
            });
        }
        if i == 0 {
            for &sem in &sems {
                body.push(Op::post(sem, 0));
            }
        } else if g.range(0, 2) == 1 {
            body.insert(0, Op::wait(sems[device as usize], 0, 1));
        }
        gpu.launch(
            stream,
            Arc::new(FixedKernel::new(
                &format!("k{i}"),
                Dim3::linear(g.range(1, 10) as u32),
                g.range(1, 3) as u32,
                body,
            )),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: for arbitrary shard-eligible multi-device workloads
    /// (2-4 devices, home-local waits, cross-device posts, link sends,
    /// mixed priorities) the reference, serial-optimized and parallel
    /// engines produce bit-identical timelines.
    #[test]
    fn random_local_wait_pipelines_are_parallel_engine_invariant(
        devices in 2u32..5,
        sms in 2u32..5,
        seed in 0u64..u64::MAX,
    ) {
        let cluster = ClusterConfig {
            devices: vec![GpuConfig::toy(sms); devices as usize],
            link_latency: SimTime::from_nanos(2_500),
            link_bytes_per_sec: 100e9,
        };
        let mut gpu = Gpu::new_cluster(cluster);
        random_local_wait_workload(seed, devices, &mut gpu);
        let pipeline = gpu.compile().expect("local-wait workload compiles");
        prop_assert!(pipeline.shardable(), "all waits are home-local");
        let reference = {
            let mut session = Session::with_mode(EngineMode::Reference);
            session.run(&pipeline).expect("reference run")
        };
        let serial = run_exec(&pipeline, ExecMode::Serial, 1);
        let parallel = run_exec(&pipeline, ExecMode::Parallel, 4);
        prop_assert_eq!(&reference.kernels, &serial.kernels);
        prop_assert_eq!(&serial.kernels, &parallel.kernels);
        prop_assert_eq!(serial.total, parallel.total);
        prop_assert_eq!(serial.sem_posts, parallel.sem_posts);
        prop_assert_eq!(serial.sm_utilization, parallel.sm_utilization);
        prop_assert_eq!(serial.races, parallel.races);
        prop_assert_eq!(reference.total, serial.total);
        prop_assert_eq!(reference.sm_utilization, serial.sm_utilization);
    }
}

/// Tracing is **passive**: enabling it changes nothing observable. The
/// same pipeline run with tracing on and off must produce bit-identical
/// reports under the reference engine, the serial optimized engine, and
/// the device-sharded parallel engine — the contract the observability
/// layer (`crates/obs`) is built on.
#[test]
fn tracing_is_passive_in_every_engine() {
    let cluster = ClusterConfig::dgx_v100(2);
    let pipeline = compile_tp_layer(&cluster, tp_mlp(4096, 256), TpSchedule::Overlap);
    assert!(pipeline.shardable(), "TP layer shards");
    let run = |mode: EngineMode, exec: Option<ExecMode>, trace: bool| {
        let mut session = Session::with_mode(mode);
        session.set_exec(exec);
        session.set_threads(2);
        if trace {
            session.enable_trace();
        }
        session.run(&pipeline).expect("TP layer runs")
    };
    for (what, mode, exec) in [
        ("reference", EngineMode::Reference, None),
        (
            "optimized-serial",
            EngineMode::Optimized,
            Some(ExecMode::Serial),
        ),
        (
            "optimized-parallel",
            EngineMode::Optimized,
            Some(ExecMode::Parallel),
        ),
    ] {
        let untraced = run(mode, exec, false);
        let traced = run(mode, exec, true);
        assert_eq!(untraced, traced, "{what}: tracing perturbed the run");
    }
}

/// The device-sharded engine records the **same trace** the serial engine
/// does, event for event: per-shard buffers merged in canonical order
/// must reproduce the serial interleaving exactly.
#[test]
fn parallel_traces_match_serial_traces_event_for_event() {
    let traced = |pipeline: &CompiledPipeline, exec: ExecMode, threads: usize| {
        let mut session = Session::with_mode(EngineMode::Optimized);
        session.set_exec(Some(exec));
        session.set_threads(threads);
        session.enable_trace();
        session.run(pipeline).expect("pipeline runs");
        session.trace().to_vec()
    };
    for devices in [2u32, 4] {
        let cluster = ClusterConfig::dgx_v100(devices);
        for schedule in [TpSchedule::Serialized, TpSchedule::Overlap] {
            let pipeline = compile_tp_layer(&cluster, tp_mlp(4096, 256), schedule);
            assert!(pipeline.shardable());
            let serial = traced(&pipeline, ExecMode::Serial, 1);
            assert!(!serial.is_empty(), "TP layer records events");
            for threads in [2usize, 4] {
                let parallel = traced(&pipeline, ExecMode::Parallel, threads);
                assert_eq!(
                    serial, parallel,
                    "devices={devices} {schedule:?} threads={threads}: trace diverged"
                );
            }
        }
    }
    // Ring allreduce: link-send heavy, every shard posts cross-device.
    let mut gpu = Gpu::new_cluster(ClusterConfig::dgx_v100(4));
    let streams: Vec<_> = (0..4).map(|d| gpu.create_stream_on(d, 0)).collect();
    launch_ring_allreduce(&mut gpu, "ar", 4 << 20, &streams);
    let pipeline = gpu.compile().unwrap();
    assert!(pipeline.shardable());
    assert_eq!(
        traced(&pipeline, ExecMode::Serial, 1),
        traced(&pipeline, ExecMode::Parallel, 4),
        "allreduce trace diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: on arbitrary shard-eligible workloads, the parallel
    /// engine's merged trace is identical to the serial engine's, and
    /// tracing never perturbs the report.
    #[test]
    fn random_local_wait_traces_match_serial(
        devices in 2u32..5,
        sms in 2u32..5,
        seed in 0u64..u64::MAX,
    ) {
        let cluster = ClusterConfig {
            devices: vec![GpuConfig::toy(sms); devices as usize],
            link_latency: SimTime::from_nanos(2_500),
            link_bytes_per_sec: 100e9,
        };
        let mut gpu = Gpu::new_cluster(cluster);
        random_local_wait_workload(seed, devices, &mut gpu);
        let pipeline = gpu.compile().expect("local-wait workload compiles");
        prop_assert!(pipeline.shardable());
        let run = |exec: ExecMode, trace: bool| {
            let mut session = Session::with_mode(EngineMode::Optimized);
            session.set_exec(Some(exec));
            session.set_threads(4);
            if trace {
                session.enable_trace();
            }
            let report = session.run(&pipeline).expect("run");
            (report, session.trace().to_vec())
        };
        let (serial_plain, _) = run(ExecMode::Serial, false);
        let (serial_report, serial_trace) = run(ExecMode::Serial, true);
        let (parallel_report, parallel_trace) = run(ExecMode::Parallel, true);
        prop_assert_eq!(&serial_plain, &serial_report, "tracing perturbed serial");
        // `sim_events` measures simulation *work*, which the sharded
        // engine legitimately repartitions; everything observable must
        // match bit for bit.
        assert_reports_identical(&serial_report, &parallel_report, "serial vs parallel");
        prop_assert_eq!(&serial_trace, &parallel_trace);
    }
}

/// Traces — the fullest observable scheduling record — also match, on a
/// scenario with priorities, semaphores and partial waves.
#[test]
fn scheduling_traces_are_engine_invariant() {
    let scenario = |mode: EngineMode| {
        let mut gpu = Gpu::with_mode(GpuConfig::toy(4), mode);
        gpu.enable_trace();
        let sem = gpu.alloc_sems("t", 4, 0);
        let lo = gpu.create_stream(0);
        let hi = gpu.create_stream(3);
        gpu.launch(
            lo,
            Arc::new(cusync_sim::FixedKernel::new(
                "producer",
                Dim3::linear(6),
                2,
                vec![
                    Op::read(32 * 1024),
                    Op::compute(50_000),
                    Op::Fence,
                    Op::post(sem, 0),
                ],
            )),
        );
        gpu.launch(
            hi,
            Arc::new(cusync_sim::FixedKernel::new(
                "consumer",
                Dim3::linear(6),
                2,
                vec![Op::wait(sem, 0, 3), Op::main_step(16 * 1024, 40_000)],
            )),
        );
        gpu.run().unwrap();
        gpu.trace().to_vec()
    };
    assert_eq!(
        scenario(EngineMode::Reference),
        scenario(EngineMode::Optimized),
        "trace event sequences"
    );
}
