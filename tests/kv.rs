//! Property coverage for the paged KV-cache allocator
//! (`cusync_sim::KvPool`, re-exported by `cusync-serve`): for *any*
//! seed-derived sequence of grow/release/discard operations,
//!
//! 1. the conservation laws of [`cusync_serve::KvStats::check`] hold at
//!    every step, and `free + active + retained == total` exactly;
//! 2. a shadow model of per-owner holdings agrees with the pool — ending
//!    an owner twice (release and/or discard in any combination) returns
//!    its blocks exactly once, never twice;
//! 3. the pool is fully deterministic: a second pool driven by the same
//!    operation sequence stays bit-identical after every step, eviction
//!    order included.

use std::collections::HashMap;

use cusync_serve::KvPool;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Op {
    Grow { owner: u64, blocks: u64 },
    Release { owner: u64 },
    Discard { owner: u64 },
}

/// A seed-derived operation tape. Owners come from a small range so
/// release/discard frequently hit live allocations (and, just as
/// deliberately, absent ones).
fn op_tape(seed: u64, len: usize) -> Vec<Op> {
    let mut x = seed;
    let mut draw = |range: u64| {
        x = cusync_sim::splitmix64(x.wrapping_add(0x9E37_79B9_7F4A_7C15));
        x % range
    };
    (0..len)
        .map(|_| match draw(5) {
            0..=2 => Op::Grow {
                owner: draw(8),
                blocks: draw(6),
            },
            3 => Op::Release { owner: draw(8) },
            _ => Op::Discard { owner: draw(8) },
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn any_op_sequence_conserves_blocks_and_replays_identically(
        seed in 0u64..u64::MAX,
        total in 0u64..24,
        len in 0u64..64,
    ) {
        let ops = op_tape(seed, len as usize);
        let mut pool = KvPool::new(total);
        let mut replay = KvPool::new(total);
        let mut held: HashMap<u64, u64> = HashMap::new();
        for &op in &ops {
            match op {
                Op::Grow { owner, blocks } => {
                    let grew = pool.try_grow(owner, blocks);
                    prop_assert_eq!(replay.try_grow(owner, blocks), grew);
                    prop_assert!(grew || blocks > 0, "zero growth must succeed");
                    if grew && blocks > 0 {
                        *held.entry(owner).or_insert(0) += blocks;
                    }
                }
                Op::Release { owner } => {
                    pool.release(owner);
                    replay.release(owner);
                    held.remove(&owner);
                }
                Op::Discard { owner } => {
                    pool.discard(owner);
                    replay.discard(owner);
                    held.remove(&owner);
                }
            }
            let stats = pool.stats();
            if let Err(e) = stats.check() {
                panic!("seed {seed} after {op:?}: {e}");
            }
            // The pool agrees with the shadow model, owner by owner.
            prop_assert_eq!(stats.active_now, held.values().sum::<u64>());
            prop_assert_eq!(pool.active_owners() as u64, held.len() as u64);
            for (&owner, &blocks) in &held {
                prop_assert_eq!(pool.held_by(owner), blocks);
            }
            // Every block is in exactly one place.
            prop_assert_eq!(
                pool.free_blocks() + stats.active_now + stats.retained_now,
                total
            );
            // Determinism, eviction order included: the twin pool driven
            // by the same operations is bit-identical.
            prop_assert!(pool == replay, "seed {} diverged after {:?}", seed, op);
        }
        // No double-free: ending every owner redundantly returns each
        // block exactly once, and the quiescent pool balances.
        for owner in 0..8 {
            pool.release(owner);
            pool.release(owner);
            pool.discard(owner);
        }
        let stats = pool.stats();
        if let Err(e) = stats.check() {
            panic!("seed {seed} quiescent pool: {e}");
        }
        prop_assert_eq!(stats.active_now, 0);
        prop_assert_eq!(stats.allocated, stats.released + stats.discarded);
        prop_assert_eq!(pool.free_blocks() + stats.retained_now, total);
    }
}

/// Eviction reclaims retained entries strictly in release order (FIFO),
/// regardless of which owner released when — the deterministic victim
/// sequence the dispatcher's recompute accounting relies on.
#[test]
fn eviction_order_is_release_order() {
    let mut pool = KvPool::new(9);
    for (owner, blocks) in [(10, 2), (11, 3), (12, 4)] {
        assert!(pool.try_grow(owner, blocks));
    }
    // Release out of owner order: 11 (3 blocks), then 12 (4), then 10 (2).
    pool.release(11);
    pool.release(12);
    pool.release(10);
    // Growing by 5 must evict 11's entry, then 12's, and stop.
    assert!(pool.try_grow(13, 5));
    let stats = pool.stats();
    assert_eq!(stats.evicted, 7, "oldest two retained entries evicted");
    assert_eq!(stats.retained_now, 2, "10's pages stay warm");
    stats.check().unwrap();
}
