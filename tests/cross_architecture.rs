//! Cross-architecture checks: the framework's claims must hold on the
//! A100 model too (the paper: "the granularity of synchronization that
//! provides the best performance depends on computations, data sizes, and
//! GPU architecture").

use cusync::OptFlags;
use cusync_models::{
    conv_improvement, mlp_improvement, mlp_time, pq_for_channels, MlpModel, PolicyKind, SyncMode,
};
use cusync_sim::GpuConfig;

#[test]
fn partial_wave_gains_persist_on_a100() {
    // Note the architecture effect: at batch 512 the V100-tuned grid (96
    // blocks) fits into less than one wave of the A100's 108 SMs, so there
    // is no partial wave to reclaim there. At 1024 the grid spans 1.8
    // waves and the gain reappears.
    let gpu = GpuConfig::ampere_a100();
    let at_512 = mlp_improvement(
        &gpu,
        MlpModel::Gpt3,
        512,
        SyncMode::CuSync(PolicyKind::Tile, OptFlags::WRT),
    );
    let at_1024 = mlp_improvement(
        &gpu,
        MlpModel::Gpt3,
        1024,
        SyncMode::CuSync(PolicyKind::Tile, OptFlags::WRT),
    );
    assert!(
        at_512.abs() < 10.0,
        "512 should be near-neutral: {at_512:.1}%"
    );
    assert!(at_1024 > 1.0, "A100 gain at 1024: {at_1024:.1}%");
}

#[test]
fn conv_chains_improve_on_a100() {
    let gpu = GpuConfig::ampere_a100();
    let gain = conv_improvement(
        &gpu,
        32,
        pq_for_channels(128),
        128,
        2,
        SyncMode::CuSync(PolicyKind::Conv2DTile, OptFlags::WRT),
    );
    assert!(gain > 0.0, "A100 conv gain: {gain:.1}%");
}

#[test]
fn absolute_times_scale_with_peak_throughput() {
    // The A100 has ~2.5x the tensor throughput and ~2.2x the bandwidth of
    // the V100; a compute-bound MLP must run substantially faster.
    let v100 = mlp_time(
        &GpuConfig::tesla_v100(),
        MlpModel::Gpt3,
        2048,
        SyncMode::StreamSync,
    );
    let a100 = mlp_time(
        &GpuConfig::ampere_a100(),
        MlpModel::Gpt3,
        2048,
        SyncMode::StreamSync,
    );
    let ratio = v100.as_picos() as f64 / a100.as_picos() as f64;
    assert!(
        ratio > 1.5 && ratio < 3.5,
        "V100/A100 time ratio {ratio:.2} outside the plausible band"
    );
}

#[test]
fn policy_rankings_are_architecture_dependent_but_sound() {
    // On both architectures every cuSync policy must be within a few
    // percent of the best one at a multi-wave size — no pathological
    // blowup from the semaphore model.
    for gpu in [GpuConfig::tesla_v100(), GpuConfig::ampere_a100()] {
        let times: Vec<_> = [PolicyKind::Tile, PolicyKind::Row]
            .into_iter()
            .map(|kind| {
                mlp_time(
                    &gpu,
                    MlpModel::Gpt3,
                    1024,
                    SyncMode::CuSync(kind, OptFlags::WRT),
                )
                .as_picos() as f64
            })
            .collect();
        let spread = (times[0] - times[1]).abs() / times[0].min(times[1]);
        assert!(spread < 0.10, "{}: Tile/Row spread {spread:.2}", gpu.name);
    }
}
