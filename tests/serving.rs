//! Property coverage for the serving layer (`crates/serve`): for *any*
//! seeded workload × scheduler × batching policy,
//!
//! 1. completions are recorded at non-decreasing virtual-clock instants;
//! 2. request conservation holds exactly — `offered = admitted +
//!    rejected` and `admitted = completed + shed` per tenant;
//! 3. two runs of the same seed are bit-identical, and the workload
//!    generator is genuinely seed-sensitive;
//!
//! plus directed edge cases the random sweep is unlikely to hit (zero
//! completions under an impossible SLO, queue-cap backpressure).

use cusync_serve::{
    ArrivalModel, BatchPolicy, DecodePolicy, DeviceDrop, FaultPlan, LinkDegrade, ModelKind,
    PanicInjection, PreemptPolicy, RequestSched, RetryPolicy, ServeConfig, Server, TenantClass,
    TenantSpec, WorkloadSpec,
};
use cusync_sim::LinkScale;
use cusync_sim::{ClusterConfig, GpuConfig, SimTime};
use proptest::prelude::*;

/// A seed-derived multi-tenant toy workload: 1–3 tenants, mixed
/// open/closed arrival models, rates from undersubscribed to saturating,
/// SLOs from hopeless to generous.
fn random_spec(seed: u64) -> WorkloadSpec {
    let mut x = seed;
    let mut draw = |range: u64| {
        x = cusync_sim::splitmix64(x.wrapping_add(0x9E37_79B9_7F4A_7C15));
        x % range
    };
    let num_tenants = 1 + draw(3) as usize;
    let tenants = (0..num_tenants)
        .map(|i| {
            let open = draw(2) == 0;
            TenantSpec {
                name: format!("t{i}"),
                // One tenant in four is an autoregressive decoder, so the
                // sweep also drives the continuous-batching/KV machinery
                // under random schedulers, faults and preemption.
                model: if draw(4) == 0 {
                    ModelKind::DecodeLlm {
                        prompt: 4 + draw(12) as u32,
                        max_new: 1 + draw(16) as u32,
                        step_cycles: 20_000 + draw(40_000),
                        ctx_cycles: 100 + draw(400),
                        kv_bytes_per_token: 1 << (10 + draw(4)),
                    }
                } else {
                    ModelKind::Toy {
                        blocks: 1 + draw(4) as u32,
                        compute_cycles: 50_000 + draw(150_000),
                    }
                },
                arrival: if open {
                    ArrivalModel::OpenPoisson {
                        rate_rps: 1_000.0 + draw(30_000) as f64,
                    }
                } else {
                    ArrivalModel::ClosedLoop {
                        clients: 1 + draw(6) as u32,
                        think: SimTime::from_micros(20.0 + draw(400) as f64),
                    }
                },
                slo: SimTime::from_micros(50.0 + draw(2_000) as f64),
                queue_cap: 1 + draw(24) as usize,
                weight: 1 + draw(4) as u32,
                class: if draw(2) == 0 {
                    TenantClass::Latency
                } else {
                    TenantClass::Throughput
                },
                retry: if draw(2) == 0 {
                    Some(RetryPolicy {
                        base: SimTime::from_micros(20.0 + draw(200) as f64),
                        max_retries: draw(4) as u32,
                    })
                } else {
                    None
                },
            }
        })
        .collect();
    WorkloadSpec {
        tenants,
        horizon: SimTime::from_millis(5 + draw(10)),
        seed: x,
    }
}

fn toy_cluster(devices: u32) -> ClusterConfig {
    ClusterConfig::homogeneous(
        devices,
        GpuConfig::toy(4),
        SimTime::from_nanos(500),
        ClusterConfig::NVLINK_BYTES_PER_SEC,
    )
}

fn config_for(sched: RequestSched, batching: u64) -> ServeConfig {
    ServeConfig {
        sched,
        batch: match batching {
            0 => BatchPolicy::off(),
            1 => BatchPolicy::new(4, SimTime::ZERO),
            _ => BatchPolicy::new(4, SimTime::from_micros(60.0)),
        },
        slo_admission: batching.is_multiple_of(2),
        // Alternate decode modes so both the static-width and the
        // continuous-batching paths face the random sweep.
        decode: if batching == 1 {
            DecodePolicy::continuous_batching()
        } else {
            DecodePolicy::static_width()
        },
        ..ServeConfig::baseline()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: any seeded workload, under any scheduler and batching
    /// policy, yields monotone virtual-clock completions, exact request
    /// conservation, and per-seed determinism across two runs.
    #[test]
    fn any_workload_conserves_requests_and_replays_identically(
        seed in 0u64..u64::MAX,
        devices in 1u32..4,
        sched_idx in 0usize..3,
        batching in 0u64..3,
    ) {
        let spec = random_spec(seed);
        let server = Server::new(spec, &toy_cluster(devices), 4);
        let config = config_for(RequestSched::ALL[sched_idx], batching);
        let report = server.run(&config);
        // check() enforces conservation, monotone completions, latency
        // accounting and the makespan invariant.
        if let Err(e) = report.check() {
            panic!("seed {seed}: {e}");
        }
        // Determinism: an identical server + config replays bit-identically.
        let again = server.run(&config);
        prop_assert_eq!(&report, &again);
        // The arrival processes really offered load.
        let offered: u64 = report.tenants.iter().map(|t| t.offered).sum();
        prop_assert!(offered > 0, "seed {} offered nothing", seed);
    }

    /// Property: the workload generator is seed-sensitive — distinct
    /// seeds virtually always offer different request histories.
    #[test]
    fn distinct_seeds_differ(seed in 0u64..u64::MAX / 2) {
        let cluster = toy_cluster(2);
        let config = config_for(RequestSched::Fifo, 2);
        let a = Server::new(random_spec(seed), &cluster, 4).run(&config);
        let b = Server::new(random_spec(seed + 1), &cluster, 4).run(&config);
        prop_assert!(a != b, "seeds {} and {} coincided", seed, seed + 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: under ANY seed-keyed fault plan — device drops, worker
    /// panics, link degradation — with retries and preemption in the
    /// mix, conservation still holds exactly, stranding is typed and
    /// only possible when the whole cluster died, and the same
    /// (workload seed, chaos seed) replays bit-identically.
    #[test]
    fn any_fault_plan_conserves_and_replays_identically(
        seed in 0u64..u64::MAX,
        chaos_seed in 0u64..u64::MAX,
        devices in 1u32..4,
        preempt in 0u64..2,
    ) {
        let spec = random_spec(seed);
        let horizon = spec.horizon;
        let server = Server::new(spec, &toy_cluster(devices), 4);
        let plan = FaultPlan::chaos(chaos_seed, devices as usize, horizon);
        let mut config = config_for(RequestSched::ALL[(seed % 3) as usize], seed % 3);
        if preempt == 1 {
            config.preempt = Some(PreemptPolicy::new(SimTime::from_micros(5.0)));
        }
        let report = server.run_with_faults(&config, &plan);
        if let Err(e) = report.check() {
            panic!("seed {seed} chaos {chaos_seed}: {e}");
        }
        if report.faults.stranded > 0 {
            prop_assert!(
                report.faults.devices_lost >= devices as u64,
                "stranding requires the whole cluster dead"
            );
        }
        let again = server.run_with_faults(&config, &plan);
        prop_assert_eq!(&report, &again);
    }
}

/// Every fault class at once — a panic, then link degradation, then a
/// device drop — under EDF with preemption enabled: the report stays
/// conserved, typed, and bit-reproducible.
#[test]
fn kitchen_sink_fault_plan_stays_coherent() {
    let spec = random_spec(0xC6A05);
    let horizon = spec.horizon;
    let server = Server::new(spec, &toy_cluster(2), 4);
    let plan = FaultPlan {
        drops: vec![DeviceDrop {
            device: 1,
            at: SimTime::from_picos(horizon.as_picos() / 2),
        }],
        panics: vec![PanicInjection {
            device: 0,
            at: SimTime::from_picos(horizon.as_picos() / 3),
        }],
        link: Some(LinkDegrade {
            at: SimTime::from_picos(horizon.as_picos() / 4),
            scale: LinkScale::times(4),
        }),
    };
    let mut config = config_for(RequestSched::Edf, 1);
    config.preempt = Some(PreemptPolicy::new(SimTime::from_micros(10.0)));
    let report = server.run_with_faults(&config, &plan);
    report.check().expect("kitchen-sink report");
    assert_eq!(report.faults.devices_lost, 1);
    assert!(report.faults.link_degraded);
    assert_eq!(report, server.run_with_faults(&config, &plan));
}

/// An SLO shorter than the service time completes nothing *within* SLO
/// under SLO-aware admission (everything is rejected at the door), yet
/// conservation still holds.
#[test]
fn hopeless_slo_rejects_everything_at_admission() {
    let spec = WorkloadSpec {
        tenants: vec![TenantSpec {
            name: "hopeless".into(),
            model: ModelKind::Toy {
                blocks: 4,
                compute_cycles: 200_000,
            },
            arrival: ArrivalModel::OpenPoisson { rate_rps: 5_000.0 },
            slo: SimTime::from_nanos(100),
            queue_cap: 8,
            weight: 1,
            class: TenantClass::Throughput,
            retry: None,
        }],
        horizon: SimTime::from_millis(5),
        seed: 99,
    };
    let server = Server::new(spec, &toy_cluster(1), 2);
    let report = server.run(&ServeConfig {
        sched: RequestSched::Fifo,
        batch: BatchPolicy::off(),
        slo_admission: true,
        ..ServeConfig::baseline()
    });
    report.check().expect("conservation under total rejection");
    let t = &report.tenants[0];
    assert!(t.offered > 0);
    assert_eq!(
        t.admitted, 0,
        "SLO-aware admission must reject hopeless load"
    );
    assert_eq!(t.rejected, t.offered);
    assert_eq!(report.goodput_rps(), 0.0);
}

/// Bounded queues shed: with a queue capacity of 1 and a saturating
/// arrival rate, most offered requests are rejected as backpressure.
#[test]
fn tiny_queue_backpressures() {
    let spec = WorkloadSpec {
        tenants: vec![TenantSpec {
            name: "burst".into(),
            model: ModelKind::Toy {
                blocks: 2,
                compute_cycles: 150_000,
            },
            arrival: ArrivalModel::OpenPoisson { rate_rps: 50_000.0 },
            slo: SimTime::from_millis(10),
            queue_cap: 1,
            weight: 1,
            class: TenantClass::Throughput,
            retry: None,
        }],
        horizon: SimTime::from_millis(10),
        seed: 7,
    };
    let server = Server::new(spec, &toy_cluster(1), 1);
    let report = server.run(&ServeConfig::baseline());
    report.check().expect("conservation under backpressure");
    let t = &report.tenants[0];
    assert!(t.rejected > t.admitted, "cap-1 queue must reject most load");
    assert!(t.max_queue_depth <= 1);
    assert!(t.completed > 0);
}
