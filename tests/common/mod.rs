//! Helpers shared by the repo-level integration tests (each `[[test]]`
//! target includes this via `#[path = "common/mod.rs"] mod common;`).

/// Tiny deterministic generator (SplitMix64) deriving a whole random
/// workload from one seed, so the identical workload can be rebuilt for a
/// comparator run (fresh-`Gpu` vs session, reference vs optimized engine).
#[allow(dead_code)]
pub struct Gen(pub u64);

#[allow(dead_code)]
impl Gen {
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}
