//! Acceptance checks for the paper's headline claims (DESIGN.md section 5),
//! executed against the V100 model.

use cusync::OptFlags;
use cusync_bench::overhead_experiment;
use cusync_models::{
    attention_improvement, conv_improvement, gpt3_mlp_tiling, mlp_improvement, mlp_time,
    pq_for_channels, AttentionConfig, MlpModel, PolicyKind, SyncMode,
};
use cusync_sim::stats::{utilization, waves};
use cusync_sim::GpuConfig;

fn v100() -> GpuConfig {
    GpuConfig::tesla_v100()
}

/// Claim (Table I): the MLP GeMM grids yield 1.2 waves / 60% utilization
/// at batch 256-512 and 2.4 waves / 80% at 1024.
#[test]
fn table1_waves_and_utilization_reproduce_exactly() {
    let cases = [(256u32, 1.2, 0.60), (512, 1.2, 0.60), (1024, 2.4, 0.80)];
    for (bs, expect_waves, expect_util) in cases {
        let t = gpt3_mlp_tiling(bs);
        let blocks =
            (bs.div_ceil(t.gemm1.tile.m) * (6144 / t.gemm1.tile.n) * t.gemm1.split_k) as u64;
        let w = waves(blocks, t.gemm1.occupancy, 80);
        assert!((w - expect_waves).abs() < 1e-9, "waves at {bs}: {w}");
        assert!((utilization(w) - expect_util).abs() < 1e-9);
    }
}

/// Claim 1: fine-grained sync beats StreamSync when kernels end in partial
/// waves; the gain shrinks as waves grow (Table IV row 2048 < row 512).
#[test]
fn gains_track_partial_wave_fraction() {
    let gpu = v100();
    let gain = |bs| {
        mlp_improvement(
            &gpu,
            MlpModel::Gpt3,
            bs,
            SyncMode::CuSync(PolicyKind::Tile, OptFlags::WRT),
        )
    };
    let g256 = gain(256);
    let g512 = gain(512);
    let g2048 = gain(2048);
    assert!(g256 > 10.0, "expected >10% at 256, got {g256:.1}%");
    assert!(g512 > 10.0, "expected >10% at 512, got {g512:.1}%");
    assert!(
        g2048 < g512,
        "2048 ({g2048:.1}%) should gain less than 512 ({g512:.1}%)"
    );
    assert!(g2048 > 0.0, "still positive at 2048, got {g2048:.1}%");
}

/// Claim 2: TileSync wins for small grids, RowSync is competitive for
/// large grids (Section V-E1: RowSync reduces semaphore traffic).
#[test]
fn policy_ranking_depends_on_grid_size() {
    let gpu = v100();
    let t = |bs, kind| {
        mlp_time(
            &gpu,
            MlpModel::Gpt3,
            bs,
            SyncMode::CuSync(kind, OptFlags::WRT),
        )
    };
    // Small: TileSync at least as good as RowSync.
    assert!(t(64, PolicyKind::Tile) <= t(64, PolicyKind::Row));
    // Large: RowSync within 5% of TileSync (fewer sync operations
    // compensate the coarser granularity).
    let row = t(2048, PolicyKind::Row).as_picos() as f64;
    let tile = t(2048, PolicyKind::Tile).as_picos() as f64;
    assert!(row <= tile * 1.05, "RowSync {row} vs TileSync {tile}");
}

/// Claim 3: for Attention prompt processing, StridedSync (grouping the
/// Q/K/V slices) is the best cuSync policy.
#[test]
fn strided_sync_wins_attention_prompt() {
    let gpu = v100();
    let cfg = AttentionConfig::prompt(12288, 1024);
    let strided = attention_improvement(
        &gpu,
        cfg,
        SyncMode::CuSync(PolicyKind::Strided, OptFlags::WRT),
    );
    let row = attention_improvement(&gpu, cfg, SyncMode::CuSync(PolicyKind::Row, OptFlags::WRT));
    assert!(
        strided > 0.0,
        "StridedSync should improve, got {strided:.1}%"
    );
    assert!(
        strided >= row - 0.5,
        "StridedSync ({strided:.1}%) should be at least RowSync ({row:.1}%)"
    );
}

/// Claim 4: each W/R/T optimization monotonically reduces time for small
/// grids (Table V(a), within measurement tolerance).
#[test]
fn optimization_ladder_is_monotone_for_small_grids() {
    let gpu = v100();
    let t = |opts| {
        mlp_time(
            &gpu,
            MlpModel::Gpt3,
            64,
            SyncMode::CuSync(PolicyKind::Tile, opts),
        )
        .as_picos()
    };
    let vanilla = t(OptFlags::NONE);
    let r = t(OptFlags::R);
    let wr = t(OptFlags::WR);
    let wrt = t(OptFlags::WRT);
    let tolerance = vanilla / 100; // 1%
    assert!(r <= vanilla + tolerance, "+R {r} vs vanilla {vanilla}");
    assert!(wr <= r + tolerance, "+WR {wr} vs +R {r}");
    assert!(wrt <= wr + tolerance, "+WRT {wrt} vs +WR {wr}");
    assert!(wrt < vanilla, "full ladder must win overall");
}

/// Claim 5: cuSync >= Stream-K on large-grid GeMMs, and cuSync applies to
/// Conv2D where Stream-K cannot.
#[test]
fn cusync_beats_streamk_on_multi_wave_gemms() {
    let gpu = v100();
    for bs in [1024u32, 2048] {
        let cusync = mlp_improvement(
            &gpu,
            MlpModel::Gpt3,
            bs,
            SyncMode::CuSync(PolicyKind::Tile, OptFlags::WRT),
        );
        let streamk = mlp_improvement(&gpu, MlpModel::Gpt3, bs, SyncMode::StreamK);
        assert!(
            cusync > streamk,
            "at {bs}: cuSync {cusync:.1}% vs Stream-K {streamk:.1}%"
        );
    }
}

/// Claim 6: the synchronization overhead bound on minimum-compute kernels
/// stays in the low single digits (Section V-D: 2-3%).
#[test]
fn overhead_bound_holds() {
    let result = overhead_experiment(&v100(), 16 * 1024);
    assert!(
        result.per_block_sync_pct < 5.0,
        "per-block sync cost {:.2}%",
        result.per_block_sync_pct
    );
}

/// Conv2D layers improve across batch sizes (Fig. 7), with the gain
/// oscillating rather than monotone in batch size.
#[test]
fn conv_layers_improve_with_conv2d_tile_sync() {
    let gpu = v100();
    let mode = SyncMode::CuSync(PolicyKind::Conv2DTile, OptFlags::WRT);
    let mut gains = Vec::new();
    for batch in [1u32, 4, 16] {
        let g = conv_improvement(&gpu, batch, pq_for_channels(128), 128, 2, mode);
        gains.push(g);
    }
    assert!(
        gains.iter().any(|&g| g > 2.0),
        "at least one batch should gain >2%, got {gains:?}"
    );
}
