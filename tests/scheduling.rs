//! Scheduling-level behaviour: the wait-kernel mechanism, deadlock
//! detection, halo correctness of the conv dependence, and Stream-K
//! functional equivalence.

use std::sync::Arc;

use cusync::{Conv2DTileSync, CuStage, NoSync, OptFlags, SyncGraph, TileSync, WaitKernel};
use cusync_kernels::reference::{assert_close, matmul};
use cusync_kernels::{
    Conv2DBuilder, Conv2DShape, DepPlan, Epilogue, GemmBuilder, GemmDims, InputDep, TileShape,
};
use cusync_sim::{
    ClusterConfig, DType, Dim3, Gpu, GpuConfig, IndexedKernel, KernelSource, Op, SimError, SimTime,
};
use proptest::prelude::*;

fn quiet_gpu(sms: u32) -> Gpu {
    Gpu::new(GpuConfig {
        host_launch_gap: SimTime::ZERO,
        kernel_dispatch_latency: SimTime::ZERO,
        block_jitter: 0.0,
        ..GpuConfig::toy(sms)
    })
}

/// Without the wait-kernel, an eagerly scheduled consumer that fills every
/// SM slot busy-waiting starves the producer: the Section III-B deadlock.
/// With the wait-kernel, the same launch completes.
#[test]
fn wait_kernel_prevents_the_section3b_deadlock() {
    let build = |with_wait_kernel: bool| -> Result<(), SimError> {
        let mut gpu = quiet_gpu(2); // tiny GPU: 2 SMs
        let m = 16u32;
        let tile = TileShape::new(8, 8, 8);
        let x = gpu.alloc("x", (m * m) as usize, DType::F16);
        let w1 = gpu.alloc("w1", (m * m) as usize, DType::F16);
        let w2 = gpu.alloc("w2", (m * m) as usize, DType::F16);
        let xw1 = gpu.alloc("xw1", (m * m) as usize, DType::F16);
        let out = gpu.alloc("out", (m * m) as usize, DType::F16);
        let grid = Dim3::new(m / 8, m / 8, 1);
        let mut graph = SyncGraph::new();
        let s1 = graph.add_stage(CuStage::new("prod", grid).policy(TileSync));
        let opts = if with_wait_kernel {
            OptFlags::NONE
        } else {
            OptFlags {
                avoid_wait_kernel: true,
                ..OptFlags::NONE
            }
        };
        let s2 = graph.add_stage(CuStage::new("cons", grid).policy(NoSync).opts(opts));
        graph.dependency(s1, s2, xw1).unwrap();
        let bound = graph.bind(&mut gpu).unwrap();
        let g1 = GemmBuilder::new("prod", GemmDims::new(m, m, m), tile)
            .operands(x, w1, xw1)
            .occupancy(1)
            .stage(Arc::clone(bound.stage(s1)))
            .build(gpu.config())
            .expect("operands set");
        let g2 = GemmBuilder::new("cons", GemmDims::new(m, m, m), tile)
            .operands(xw1, w2, out)
            .occupancy(1)
            .stage(Arc::clone(bound.stage(s2)))
            .a_dep(InputDep::row_aligned(grid), grid.x)
            .build(gpu.config())
            .expect("operands set");
        if with_wait_kernel {
            // The paper's protocol (Fig. 4a): producer first, then the
            // wait-kernel + consumer. The wait-kernel parks on 1/16th of
            // an SM until the producer starts.
            bound.launch(&mut gpu, s1, Arc::new(g1)).unwrap();
            bound.launch(&mut gpu, s2, Arc::new(g2)).unwrap();
        } else {
            // Adversarial scheduling order (the CUDA runtime makes no
            // cross-stream ordering promise without the wait-kernel): the
            // consumer's blocks reach the SMs first.
            bound.launch(&mut gpu, s2, Arc::new(g2)).unwrap();
            bound.launch(&mut gpu, s1, Arc::new(g1)).unwrap();
        }
        gpu.run().map(|_| ())
    };
    // Without the wait-kernel the consumer's 4 blocks fill both SMs
    // (occupancy 1) busy-waiting and the producer can never run: the
    // Section III-B deadlock.
    let err = build(false).unwrap_err();
    assert!(matches!(err, SimError::Deadlock { .. }), "{err}");
    // With the wait-kernel and the launch-order scheduling it assumes
    // ("CUDA schedules thread blocks of kernels in the order the kernels
    // are invoked"), the same workload completes.
    build(true).expect("wait-kernel run must complete");
}

#[test]
fn deadlock_report_names_blocked_semaphores() {
    let mut gpu = quiet_gpu(2);
    let sem = gpu.alloc_sems("missing", 1, 0);
    let s = gpu.create_stream(0);
    gpu.launch(
        s,
        Arc::new(cusync_sim::FixedKernel::new(
            "stuck",
            Dim3::linear(1),
            1,
            vec![Op::wait(sem, 0, 3)],
        )),
    );
    match gpu.run().unwrap_err() {
        SimError::Deadlock(report) => {
            assert_eq!(report.pending_names(), vec!["stuck".to_string()]);
            let line = report.blocked[0].to_string();
            assert!(line.contains("missing[0] >= 3"), "{line}");
            assert_eq!(report.blocked[0].target, 3);
            assert_eq!(report.blocked[0].current, 0);
        }
        other => panic!("expected deadlock, got {other}"),
    }
}

/// The paper's literal Fig. 5c conv dependence (no halo) under-synchronizes:
/// with an adversarial consumer-first schedule, the halo rows of
/// neighboring tiles race. Halo-aware waits (our default) are race-free.
#[test]
fn conv_halo_waits_are_required_for_correctness() {
    let run = |halo_safe: bool| -> u64 {
        let shape = Conv2DShape::square3x3(1, 8, 4, 4);
        let tile = TileShape::new(8, 4, 4);
        let mut gpu = quiet_gpu(16);
        let data = |len: usize| (0..len).map(|i| (i % 5) as f32 * 0.2).collect::<Vec<_>>();
        let input =
            gpu.mem_mut()
                .alloc_data("in", data((shape.gemm_m() * shape.c) as usize), DType::F16);
        let w1 = gpu.mem_mut().alloc_data(
            "w1",
            data((shape.rs() * shape.c * shape.k) as usize),
            DType::F16,
        );
        let w2 = gpu.mem_mut().alloc_data(
            "w2",
            data((shape.rs() * shape.k * shape.k) as usize),
            DType::F16,
        );
        let mid =
            gpu.mem_mut()
                .alloc_poisoned("mid", (shape.gemm_m() * shape.k) as usize, DType::F16);
        let out =
            gpu.mem_mut()
                .alloc_poisoned("out", (shape.gemm_m() * shape.k) as usize, DType::F16);
        let grid = Dim3::new(1, shape.gemm_m() / tile.m, 1);
        let mut graph = SyncGraph::new();
        let s1 =
            graph.add_stage(CuStage::new("conv1", grid).policy(Conv2DTileSync::new(shape.rs())));
        let s2 = graph.add_stage(CuStage::new("conv2", grid).policy(NoSync));
        graph.dependency(s1, s2, mid).unwrap();
        let bound = graph.bind(&mut gpu).unwrap();
        let c1 = Conv2DBuilder::new("conv1", shape, tile)
            .operands(input, w1, mid)
            .epilogue(Epilogue::None)
            .stage(Arc::clone(bound.stage(s1)))
            .build(gpu.config())
            .expect("operands set");
        let mut b2 = Conv2DBuilder::new("conv2", shape, tile)
            .operands(mid, w2, out)
            .epilogue(Epilogue::None)
            .stage(Arc::clone(bound.stage(s2)))
            .input_dep(InputDep {
                prod_grid: grid,
                plan: DepPlan::RowAligned { x_offset_tiles: 0 },
            });
        if !halo_safe {
            b2 = b2.paper_literal_waits();
        }
        let c2 = b2.build(gpu.config()).expect("operands set");
        bound.launch(&mut gpu, s1, Arc::new(c1)).unwrap();
        bound.launch(&mut gpu, s2, Arc::new(c2)).unwrap();
        gpu.run().expect("conv chain deadlocked").races
    };
    assert_eq!(run(true), 0, "halo-aware waits must be race-free");
    // The paper-literal single-tile wait may or may not race depending on
    // scheduling; it must at least never *increase* synchronization. We
    // assert the mechanism runs and report its race count for the record.
    let literal_races = run(false);
    // Both outcomes are legal; the halo-aware default is the safe one.
    let _ = literal_races;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Stream-K computes reference-exact GeMMs for arbitrary shapes
    /// (full-wave, partial-wave and split-tile paths all exercised).
    #[test]
    fn streamk_matches_reference(mt in 1u32..6, nt in 1u32..4, kt in 1u32..6) {
        let (m, n, k) = (mt * 16, nt * 16, kt * 16);
        let mut gpu = quiet_gpu(4);
        let a_data: Vec<f32> = (0..(m * k) as usize).map(|i| (i % 9) as f32 * 0.05).collect();
        let b_data: Vec<f32> = (0..(k * n) as usize).map(|i| (i % 7) as f32 * 0.05).collect();
        let a = gpu.mem_mut().alloc_data("a", a_data.clone(), DType::F16);
        let b = gpu.mem_mut().alloc_data("b", b_data.clone(), DType::F16);
        let c = gpu.mem_mut().alloc_poisoned("c", (m * n) as usize, DType::F16);
        let sk = cusync_streamk::StreamKBuilder::new(
            "sk",
            GemmDims::new(m, n, k),
            TileShape::new(16, 16, 16),
        )
        .operands(a, b, c)
        .occupancy(1)
        .build()
        .expect("operands set");
        let stream = gpu.create_stream(0);
        sk.launch(&mut gpu, stream);
        let report = gpu.run().unwrap();
        prop_assert_eq!(report.races, 0);
        let expected = matmul(&a_data, &b_data, m as usize, n as usize, k as usize);
        assert_close(gpu.mem().snapshot(c).unwrap(), &expected, 1e-2);
    }
}

/// The Section III-B pair, ported to a multi-device node: a producer on
/// device 0, a relay on device 1 (its semaphores homed remotely from the
/// producer's perspective), and a final consumer back on device 0. With
/// wait-kernels and producer-first launch the chain completes across the
/// interconnect; with wait-kernels elided and the adversarial
/// consumer-first launch order, the consumer's busy-waiting blocks hold
/// device 0 hostage while they poll device 1's semaphores — a wait cycle
/// that crosses the link twice.
#[test]
fn cross_device_wait_kernel_prevents_the_section3b_deadlock() {
    let build = |with_wait_kernel: bool| -> Result<(), SimError> {
        let device_cfg = GpuConfig {
            host_launch_gap: SimTime::ZERO,
            kernel_dispatch_latency: SimTime::ZERO,
            block_jitter: 0.0,
            ..GpuConfig::toy(2)
        };
        let cluster = ClusterConfig {
            devices: vec![device_cfg; 2],
            link_latency: SimTime::from_nanos(3_000),
            link_bytes_per_sec: 100e9,
        };
        let mut gpu = Gpu::new_cluster(cluster);
        let grid = Dim3::linear(4);
        let opts = OptFlags {
            avoid_wait_kernel: !with_wait_kernel,
            avoid_custom_order: true,
            ..OptFlags::NONE
        };
        let mut graph = SyncGraph::new();
        let prod = graph.add_stage(
            CuStage::new("prod", grid)
                .policy(TileSync)
                .opts(opts)
                .on_device(0),
        );
        let relay = graph.add_stage(
            CuStage::new("relay", grid)
                .policy(TileSync)
                .opts(opts)
                .on_device(1),
        );
        let cons = graph.add_stage(
            CuStage::new("cons", grid)
                .policy(NoSync)
                .opts(opts)
                .on_device(0),
        );
        let mid = gpu.alloc("mid", 64, DType::F16);
        let out = gpu.alloc("out", 64, DType::F16);
        graph.dependency(prod, relay, mid).unwrap();
        graph.dependency(relay, cons, out).unwrap();
        let bound = graph.bind(&mut gpu).unwrap();
        // Each stage's semaphores are homed with the stage: the relay's
        // array lives on device 1, remote to both its producer's posts...
        assert_eq!(
            gpu.sems().device(bound.stage(relay).sem_array().unwrap()),
            1
        );
        // ...and to the consumer's polls from device 0.
        assert_eq!(gpu.sems().device(bound.stage(prod).sem_array().unwrap()), 0);
        let kernel = |stage: cusync::StageId| -> Arc<dyn KernelSource> {
            let runtime = Arc::clone(bound.stage(stage));
            let name = runtime.name().to_owned();
            Arc::new(IndexedKernel::new(&name, grid, 1, move |tile| {
                let mut ops: Vec<Op> = Vec::new();
                ops.extend(runtime.start_op(tile));
                for buffer in [mid, out] {
                    ops.extend(runtime.wait_op(buffer, tile));
                }
                ops.push(Op::compute(50_000));
                if let Some(post) = runtime.post_ops(tile) {
                    ops.extend(post);
                }
                ops
            }))
        };
        let launch_order: Vec<cusync::StageId> = if with_wait_kernel {
            vec![prod, relay, cons]
        } else {
            // Adversarial cross-stream order: the starving consumer's
            // blocks reach device 0's SMs before the producer's.
            vec![cons, relay, prod]
        };
        for stage in launch_order {
            let k = kernel(stage);
            bound.launch(&mut gpu, stage, k).unwrap();
        }
        gpu.run().map(|_| ())
    };
    // Without wait-kernels: cons's 4 occupancy-1 blocks fill both of
    // device 0's SMs spinning on relay's (device 1) semaphores; relay
    // spins on prod's; prod can never issue on device 0.
    let err = build(false).unwrap_err();
    let SimError::Deadlock(report) = err else {
        panic!("expected a cross-device deadlock, got {err}");
    };
    // The report shows the cross-device wait: cons blocks on device 0
    // polling the relay's remotely-homed array.
    let cross = report
        .blocked
        .iter()
        .find(|b| b.kernel_name == "cons")
        .expect("cons blocks in the report");
    assert_eq!(cross.device, 0);
    assert!(cross.sem_name.contains("relay"), "{}", cross.sem_name);
    let cycle = report.wait_cycle().expect("occupancy cycle");
    assert!(cycle.contains("prod"), "{cycle}");
    // With the wait-kernel protocol the same graph completes across the
    // link.
    build(true).expect("cross-device wait-kernel run must complete");
}

#[test]
fn wait_kernel_occupies_a_sliver_of_one_sm() {
    let mut gpu = quiet_gpu(4);
    let sem = gpu.alloc_sems("start", 1, 0);
    let wait = WaitKernel::new("w", vec![(sem, 0)]);
    use cusync_sim::KernelSource;
    assert_eq!(wait.grid().count(), 1);
    assert_eq!(wait.occupancy(), cusync_sim::MAX_OCCUPANCY);
}
