//! Property-based tests over the core invariants: policies map tiles to
//! valid semaphores with exact post/wait accounting, tile orders are
//! permutations, the DSL-generated artifacts are sound for arbitrary
//! grids, and the simulator is deterministic.

use std::collections::HashMap;
use std::sync::Arc;

use cusync::{
    BatchedRowSync, Conv2DTileSync, CuStage, NoSync, RowSync, StridedSync, SyncGraph, SyncPolicy,
    TileOrder, TileSchedule, TileSync,
};
use cusync_kernels::{GemmBuilder, GemmDims, InputDep, TileShape};
use cusync_sim::{DType, Dim3, Gpu, GpuConfig, SimTime};
use cusyncgen::{check_spec, policies_for, producer_order, AffineExpr, DepSpec, Pattern};
use proptest::prelude::*;

fn grid_strategy() -> impl Strategy<Value = Dim3> {
    (1u32..12, 1u32..12, 1u32..4).prop_map(|(x, y, z)| Dim3::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Posting every tile of the grid once per z-slice reaches exactly the
    /// expected value of every request — the fundamental soundness
    /// condition of a policy (waits eventually succeed, never early).
    #[test]
    fn policy_post_wait_accounting(grid in grid_strategy(), which in 0usize..5) {
        let policy: Arc<dyn SyncPolicy> = match which {
            0 => Arc::new(TileSync),
            1 => Arc::new(RowSync),
            2 => Arc::new(StridedSync::new(1 + grid.x / 3, 1)),
            3 => Arc::new(BatchedRowSync::new(1 + grid.y / 2)),
            _ => Arc::new(Conv2DTileSync::new(9)),
        };
        let num = policy.num_sems(grid);
        prop_assume!(num > 0);
        let mut sems = vec![0u32; num];
        for tile in grid.iter() {
            let s = policy.post_sem(Dim3::new(tile.x, tile.y, 0), grid) as usize;
            prop_assert!(s < num, "post_sem out of range");
            sems[s] += 1;
        }
        // For the exhaustive policies (Tile/Row/Batched), every tile's
        // expected value must equal the total posts its semaphore gets.
        if which == 0 || which == 1 || which == 3 {
            for tile in grid.iter() {
                let t = Dim3::new(tile.x, tile.y, 0);
                let s = policy.post_sem(t, grid) as usize;
                prop_assert_eq!(
                    sems[s], policy.expected(t, grid),
                    "sem {} of {}", s, policy.name()
                );
            }
        }
    }

    /// Every built-in and generated tile order is a bijection.
    #[test]
    fn orders_are_permutations(grid in grid_strategy(), group in 1u32..5) {
        let schedule = TileSchedule::build(&cusync::RowMajor, grid).unwrap();
        prop_assert_eq!(schedule.len() as u64, grid.count());
        let schedule = TileSchedule::build(&cusync::ColumnMajor, grid).unwrap();
        prop_assert_eq!(schedule.len() as u64, grid.count());
        // A generated grouped order over a strided dependence.
        let flat = Dim3::new(grid.x * group, grid.y, 1);
        let order = cusync::order::producer_grouped_order(
            "gen",
            flat,
            Dim3::new(grid.x, grid.y, 1),
            |c| (0..group).map(|g| Dim3::new(c.x + g * grid.x, c.y, 0)).collect(),
        );
        let schedule = TileSchedule::build(&order, flat).unwrap();
        prop_assert_eq!(schedule.len() as u64, flat.count());
    }

    /// cuSyncGen accepts exactly the in-bounds ForAllX specs, and its
    /// generated producer order is a valid schedule.
    #[test]
    fn generated_artifacts_are_sound(px in 1u32..10, py in 1u32..10, cx in 1u32..10) {
        let mut spec = DepSpec::new();
        let g1 = spec.grid("g1", Dim3::new(px, py, 1));
        let g2 = spec.grid("g2", Dim3::new(cx, py, 1));
        spec.depend(g2, g1, Pattern::ForAllX(AffineExpr::y()));
        prop_assert!(check_spec(&spec).is_ok());
        let dep = &spec.deps()[0];
        let policies = policies_for(&spec, dep);
        prop_assert!(!policies.is_empty());
        for p in &policies {
            prop_assert!(p.policy.num_sems(Dim3::new(px, py, 1)) > 0);
        }
        let order = producer_order(&spec, dep);
        let schedule = TileSchedule::build(&order, Dim3::new(px, py, 1)).unwrap();
        prop_assert_eq!(schedule.len() as u64, (px * py) as u64);
        let _ = order.position(Dim3::new(0, 0, 0), Dim3::new(px, py, 1));
    }

    /// Random small MLP chains under generated policies are race-free and
    /// complete without deadlock.
    #[test]
    fn random_chains_race_free(mt in 1u32..5, nt in 1u32..5, kt in 1u32..5, pick in 0usize..2) {
        let tile = TileShape::new(8, 8, 8);
        let (m, h, k) = (mt * 8, nt * 8, kt * 8);
        let mut spec = DepSpec::new();
        let grid1 = Dim3::new(h / 8, m / 8, 1);
        let grid2 = Dim3::new(k / 8, m / 8, 1);
        let g1 = spec.grid("g1", grid1);
        let g2 = spec.grid("g2", grid2);
        spec.depend(g2, g1, Pattern::ForAllX(AffineExpr::y()));
        check_spec(&spec).unwrap();
        let policy = &policies_for(&spec, &spec.deps()[0])[pick];

        let mut gpu = Gpu::new(GpuConfig {
            host_launch_gap: SimTime::ZERO,
            kernel_dispatch_latency: SimTime::ZERO,
            ..GpuConfig::toy(4)
        });
        let data = |len: usize| (0..len).map(|i| (i % 7) as f32 * 0.1).collect::<Vec<_>>();
        let x = gpu.mem_mut().alloc_data("x", data((m * k) as usize), DType::F16);
        let w1 = gpu.mem_mut().alloc_data("w1", data((k * h) as usize), DType::F16);
        let w2 = gpu.mem_mut().alloc_data("w2", data((h * k) as usize), DType::F16);
        let xw1 = gpu.mem_mut().alloc_poisoned("xw1", (m * h) as usize, DType::F16);
        let out = gpu.mem_mut().alloc_poisoned("out", (m * k) as usize, DType::F16);
        let mut graph = SyncGraph::new();
        let s1 = graph.add_stage(
            CuStage::new("g1", grid1).policy_ref(Arc::clone(&policy.policy)),
        );
        let s2 = graph.add_stage(CuStage::new("g2", grid2).policy(NoSync));
        graph.dependency(s1, s2, xw1).unwrap();
        let bound = graph.bind(&mut gpu).unwrap();
        let k1 = GemmBuilder::new("g1", GemmDims::new(m, h, k), tile)
            .operands(x, w1, xw1)
            .stage(Arc::clone(bound.stage(s1)))
            .build(gpu.config()).expect("operands set");
        let k2 = GemmBuilder::new("g2", GemmDims::new(m, k, h), tile)
            .operands(xw1, w2, out)
            .stage(Arc::clone(bound.stage(s2)))
            .a_dep(InputDep::row_aligned(grid1), grid1.x)
            .build(gpu.config()).expect("operands set");
        bound.launch(&mut gpu, s1, Arc::new(k1)).unwrap();
        bound.launch(&mut gpu, s2, Arc::new(k2)).unwrap();
        let report = gpu.run().expect("deadlock");
        prop_assert_eq!(report.races, 0);
    }

    /// Dim3 linearization round-trips.
    #[test]
    fn dim3_roundtrip(grid in grid_strategy(), i in 0u64..1000) {
        let i = i % grid.count();
        prop_assert_eq!(grid.linear_of(grid.delinear(i)), i);
    }
}

#[test]
fn simulation_is_deterministic() {
    // Identical workloads must produce identical timelines, including
    // jitter and residency effects.
    let run = || {
        let mut gpu = Gpu::new(GpuConfig::tesla_v100());
        let a = gpu.alloc("a", 1 << 20, DType::F16);
        let b = gpu.alloc("b", 1 << 20, DType::F16);
        let c = gpu.alloc("c", 1 << 20, DType::F16);
        let gemm = GemmBuilder::new(
            "g",
            GemmDims::new(512, 1024, 2048),
            TileShape::new(128, 128, 32),
        )
        .operands(a, b, c)
        .build(gpu.config())
        .expect("operands set");
        let stream = gpu.create_stream(0);
        gpu.launch(stream, Arc::new(gemm));
        gpu.run().unwrap()
    };
    let r1 = run();
    let r2 = run();
    assert_eq!(r1, r2);
}

#[test]
fn policy_names_are_distinct() {
    let grid = Dim3::new(6, 4, 1);
    let policies: Vec<Arc<dyn SyncPolicy>> = vec![
        Arc::new(TileSync),
        Arc::new(RowSync),
        Arc::new(StridedSync::new(2, 3)),
        Arc::new(Conv2DTileSync::new(9)),
        Arc::new(BatchedRowSync::new(2)),
        Arc::new(NoSync),
    ];
    let mut names = HashMap::new();
    for p in &policies {
        assert!(
            names.insert(p.name(), p.num_sems(grid)).is_none(),
            "{}",
            p.name()
        );
    }
}
