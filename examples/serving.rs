//! Serving: a minimal two-tenant inference service on a simulated
//! two-GPU node.
//!
//! Compiles each tenant's pipeline once per batch width (the
//! compile/execute split — dynamic batching never rebuilds), submits a
//! mixed open-loop + closed-loop workload against earliest-deadline-first
//! scheduling with dynamic batching, and prints the per-tenant latency
//! histogram and SLO accounting. Run with:
//!
//! ```text
//! cargo run --release --example serving
//! ```

use std::error::Error;

use cusync_serve::{
    ArrivalModel, BatchPolicy, ModelKind, RequestSched, ServeConfig, Server, TenantClass,
    TenantSpec, WorkloadSpec,
};
use cusync_sim::{ClusterConfig, SimTime};

fn main() -> Result<(), Box<dyn Error>> {
    // Two tenants share a simulated 2×V100 node: an interactive GPT-3
    // MLP tenant under open-loop Poisson traffic with a tight SLO, and a
    // batch-tolerant convolution tenant driven by eight closed-loop
    // clients.
    let spec = WorkloadSpec {
        tenants: vec![
            TenantSpec {
                name: "chat".into(),
                model: ModelKind::MlpGpt3,
                arrival: ArrivalModel::OpenPoisson { rate_rps: 2_500.0 },
                slo: SimTime::from_millis(4),
                queue_cap: 32,
                weight: 3,
                class: TenantClass::Latency,
                retry: None,
            },
            TenantSpec {
                name: "vision".into(),
                model: ModelKind::ConvStack,
                arrival: ArrivalModel::ClosedLoop {
                    clients: 8,
                    think: SimTime::from_millis(1),
                },
                slo: SimTime::from_millis(8),
                queue_cap: 16,
                weight: 1,
                class: TenantClass::Throughput,
                retry: None,
            },
        ],
        horizon: SimTime::from_millis(100),
        seed: 42,
    };

    // Warm the pool: every (tenant, width ≤ 4) pipeline is compiled and
    // priced exactly once, here — serving below never re-enters the
    // simulator's build path.
    let server = Server::new(spec, &ClusterConfig::dgx_v100(2), 4);
    for (t, model) in server.pool().models().iter().enumerate() {
        println!(
            "{model}: service time {} (solo) .. {} (batch of 4)",
            server.pool().service_time(t, 1, 0),
            server.pool().service_time(t, 4, 0),
        );
    }

    let report = server.run(&ServeConfig {
        sched: RequestSched::Edf,
        batch: BatchPolicy::new(4, SimTime::from_micros(250.0)),
        slo_admission: true,
        ..ServeConfig::baseline()
    });
    report.check().map_err(|e| format!("invariants: {e}"))?;

    println!(
        "\nserved {:.0} req/s goodput ({:.0} req/s throughput) at {:.0}% mean device utilization\n",
        report.goodput_rps(),
        report.throughput_rps(),
        report.mean_utilization() * 100.0,
    );
    for tenant in &report.tenants {
        println!(
            "{:>8}: {} offered, {} completed, {} rejected, {} shed, {} late ({:.1}%)",
            tenant.name,
            tenant.offered,
            tenant.completed,
            tenant.rejected,
            tenant.shed,
            tenant.violations,
            tenant.violation_rate() * 100.0,
        );
        println!(
            "          p50 {} | p95 {} | p99 {} | mean {} | peak queue {}",
            tenant.latency_quantile(0.50),
            tenant.latency_quantile(0.95),
            tenant.latency_quantile(0.99),
            tenant.latency_mean(),
            tenant.max_queue_depth,
        );
        // A coarse latency histogram: eight buckets to the p99.
        let p99 = tenant.latency_quantile(0.99).as_micros().max(1.0);
        let bucket_us = p99 / 8.0;
        let mut buckets = [0usize; 9];
        for &lat in &tenant.latencies {
            let b = (lat.as_micros() / bucket_us) as usize;
            buckets[b.min(8)] += 1;
        }
        let peak = buckets.iter().copied().max().unwrap_or(1).max(1);
        for (i, &count) in buckets.iter().enumerate() {
            let label = if i < 8 {
                format!("<{:>6.0}us", (i + 1) as f64 * bucket_us)
            } else {
                ">p99     ".into()
            };
            println!(
                "          {label} | {:<40} {count}",
                "#".repeat(count * 40 / peak)
            );
        }
    }
    Ok(())
}
