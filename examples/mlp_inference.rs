//! Sweep the GPT-3 and LLaMA MLP blocks across batch sizes and policies —
//! the workload behind Fig. 6(a,c) and Table IV of the paper.
//!
//! ```text
//! cargo run --release --example mlp_inference
//! ```

use cusync::OptFlags;
use cusync_models::{mlp_time, run_mlp, MlpModel, PolicyKind, SyncMode};
use cusync_sim::GpuConfig;

fn main() {
    let gpu = GpuConfig::tesla_v100();
    for (model, name) in [
        (MlpModel::Gpt3, "GPT-3 145B"),
        (MlpModel::Llama, "LLaMA 65B"),
    ] {
        println!("=== {name} MLP (model parallelism 8) ===");
        println!(
            "{:>6} {:>14} {:>14} {:>14} {:>10}",
            "BxS", "StreamSync", "TileSync+WRT", "RowSync+WRT", "best gain"
        );
        for bs in [1u32, 16, 256, 512, 2048] {
            let base = mlp_time(&gpu, model, bs, SyncMode::StreamSync);
            let tile = mlp_time(
                &gpu,
                model,
                bs,
                SyncMode::CuSync(PolicyKind::Tile, OptFlags::WRT),
            );
            let row = mlp_time(
                &gpu,
                model,
                bs,
                SyncMode::CuSync(PolicyKind::Row, OptFlags::WRT),
            );
            let best = tile.min(row);
            let gain = 100.0 * (1.0 - best.as_picos() as f64 / base.as_picos() as f64);
            println!(
                "{:>6} {:>12.0}us {:>12.0}us {:>12.0}us {:>9.1}%",
                bs,
                base.as_micros(),
                tile.as_micros(),
                row.as_micros(),
                gain
            );
        }
        println!();
    }

    // Show the overlap structure at one interesting size.
    let report = run_mlp(
        &gpu,
        MlpModel::Gpt3,
        512,
        SyncMode::CuSync(PolicyKind::Row, OptFlags::WRT),
    );
    println!("GPT-3 MLP at BxS=512 under RowSync+WRT:\n{report}");
}
