//! ResNet-38 / VGG-19 convolution layers under cuSync (Fig. 7 / Fig. 8b).
//!
//! ```text
//! cargo run --release --example conv_stack
//! ```

use cusync::OptFlags;
use cusync_models::{
    conv_layer_time, pq_for_channels, resnet38, vgg19, vision_step_time, PolicyKind, SyncMode,
};
use cusync_sim::GpuConfig;

fn main() {
    let gpu = GpuConfig::tesla_v100();
    let conv_tile = SyncMode::CuSync(PolicyKind::Conv2DTile, OptFlags::WRT);
    let row = SyncMode::CuSync(PolicyKind::Row, OptFlags::WRT);

    println!("=== One layer (2 chained 3x3 convolutions) per channel count ===");
    println!(
        "{:>9} {:>4} {:>13} {:>17} {:>13}",
        "channels", "B", "StreamSync", "Conv2DTile+WRT", "RowSync+WRT"
    );
    for channels in [64u32, 128, 256, 512] {
        let pq = pq_for_channels(channels);
        for batch in [1u32, 8, 32] {
            let base = conv_layer_time(&gpu, batch, pq, channels, 2, SyncMode::StreamSync);
            let tile = conv_layer_time(&gpu, batch, pq, channels, 2, conv_tile);
            let rows = conv_layer_time(&gpu, batch, pq, channels, 2, row);
            println!(
                "{:>9} {:>4} {:>11.0}us {:>13.0}us ({:+.0}%) {:>9.0}us",
                channels,
                batch,
                base.as_micros(),
                tile.as_micros(),
                100.0 * (1.0 - tile.as_picos() as f64 / base.as_picos() as f64),
                rows.as_micros(),
            );
        }
    }

    println!("\n=== End-to-end inference (all Table II layers) ===");
    for (stages, name) in [(resnet38(), "ResNet-38"), (vgg19(), "VGG-19")] {
        for batch in [1u32, 8, 32] {
            let base = vision_step_time(&gpu, &stages, batch, SyncMode::StreamSync);
            let sync = vision_step_time(&gpu, &stages, batch, conv_tile);
            println!(
                "  {name:>10} B={batch:>2}: {:>8.0}us -> {:>8.0}us ({:+.1}%)",
                base.as_micros(),
                sync.as_micros(),
                100.0 * (1.0 - sync.as_picos() as f64 / base.as_picos() as f64),
            );
        }
    }
}
