//! Trace one Fig. 6 cell — the GPT-3 MLP block at BxS=512 — under
//! fine-grained TileSync and under stream serialization, export both
//! timelines as Chrome traces, and print where every slot-picosecond of
//! the machine went.
//!
//! ```text
//! cargo run --release --example tracing
//! ```
//!
//! Writes `trace_fig6_tilesync.json` and `trace_fig6_streamserial.json`
//! to the current directory; open either in `chrome://tracing` or
//! <https://ui.perfetto.dev>. The printed attribution shows the paper's
//! Figure 6 story in numbers: StreamSerial parks the consumer GeMM behind
//! a launch gate (a long `gate-hold`), TileSync replaces the gate with
//! short per-tile spins that overlap the producer — the sync-wait share
//! drops.

use cusync::{OptFlags, SyncMechanism};
use cusync_models::{compile_mlp_mechanisms, MlpModel, MLP_EDGES};
use cusync_obs::{chrome_trace_json, collect_spans, validate_chrome_trace, Attribution};
use cusync_sim::{EngineMode, GpuConfig, Session};

fn main() {
    let gpu = GpuConfig::tesla_v100();
    let mut session = Session::with_mode(EngineMode::Optimized);
    session.enable_trace();

    for (mechanism, file) in [
        (SyncMechanism::TileSync, "trace_fig6_tilesync.json"),
        (SyncMechanism::StreamSerial, "trace_fig6_streamserial.json"),
    ] {
        let pipeline = compile_mlp_mechanisms(
            &gpu,
            MlpModel::Gpt3,
            512,
            OptFlags::WRT,
            &[mechanism; MLP_EDGES],
        )
        .expect("the fig6 MLP cell compiles under every mechanism");
        let report = session.run(&pipeline).expect("run");
        let trace = session.trace();

        // Span view -> Chrome trace (validated before writing).
        let spans = collect_spans(pipeline.cluster(), &report, trace);
        let chrome = chrome_trace_json(&spans);
        let stats = validate_chrome_trace(&chrome).expect("exporter emits valid catapult JSON");
        std::fs::write(file, &chrome).expect("write trace");

        // Attribution view: every slot-picosecond bucketed.
        let attr = Attribution::analyze(pipeline.cluster(), &report, trace);
        println!("=== GPT-3 MLP BxS=512, all edges {mechanism:?} ===");
        println!(
            "makespan {}  |  wrote {file} ({} spans on {} lanes)",
            report.total, stats.spans, stats.lanes,
        );
        println!(
            "{:>6} {:>8} {:>8} {:>8} {:>8} {:>10}",
            "device", "compute", "spin", "link", "idle", "gate-hold"
        );
        for d in &attr.devices {
            let pct = |slot: u128| 100.0 * slot as f64 / d.capacity_slot_ps.max(1) as f64;
            println!(
                "{:>6} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>9.1}%",
                d.device,
                pct(d.compute_slot_ps),
                pct(d.spin_slot_ps),
                pct(d.link_slot_ps),
                pct(d.idle_slot_ps),
                pct(d.gate_hold_slot_ps),
            );
        }
        println!(
            "sync-wait share {:.4}  |  critical path {} over {} hops:",
            attr.sync_wait_share(),
            attr.critical_path.length,
            attr.critical_path.hops.len(),
        );
        for hop in &attr.critical_path.hops {
            println!(
                "  {:<24} [{} .. {}] via {:?}",
                hop.name, hop.seg_start, hop.seg_end, hop.via,
            );
        }
        println!();
    }
}
