//! Chaos: the same two-tenant service, healthy and under fire.
//!
//! Builds an interactive (latency-class) tenant and a bulk
//! (throughput-class) tenant on a simulated two-GPU node, then runs the
//! identical seeded workload twice: once fault-free, once with device 1
//! dropping out halfway through the horizon. Prints before/after goodput
//! and SLO-violation rates, and shows that every request the dead device
//! was holding is re-routed (typed in the report), never silently lost.
//! Run with:
//!
//! ```text
//! cargo run --release --example chaos
//! ```

use std::error::Error;

use cusync_serve::{
    ArrivalModel, BatchPolicy, DeviceDrop, FaultPlan, ModelKind, PreemptPolicy, RequestSched,
    ServeConfig, Server, TenantClass, TenantSpec, WorkloadSpec,
};
use cusync_sim::{ClusterConfig, SimTime};

fn main() -> Result<(), Box<dyn Error>> {
    let horizon = SimTime::from_millis(60);
    let spec = WorkloadSpec {
        tenants: vec![
            TenantSpec {
                name: "interactive".into(),
                model: ModelKind::Toy {
                    blocks: 2,
                    compute_cycles: 100_000,
                },
                arrival: ArrivalModel::OpenPoisson { rate_rps: 4_000.0 },
                slo: SimTime::from_millis(1),
                queue_cap: 64,
                weight: 3,
                class: TenantClass::Latency,
                retry: None,
            },
            TenantSpec {
                name: "bulk".into(),
                model: ModelKind::Toy {
                    blocks: 4,
                    compute_cycles: 400_000,
                },
                arrival: ArrivalModel::ClosedLoop {
                    clients: 6,
                    think: SimTime::from_micros(200.0),
                },
                slo: SimTime::from_millis(20),
                queue_cap: 32,
                weight: 1,
                class: TenantClass::Throughput,
                retry: None,
            },
        ],
        horizon,
        seed: 0xC405,
    };
    let server = Server::new(spec, &ClusterConfig::dgx_v100(2), 4);
    let config = ServeConfig {
        sched: RequestSched::Edf,
        batch: BatchPolicy::new(4, SimTime::from_micros(120.0)),
        preempt: Some(PreemptPolicy::new(SimTime::from_micros(20.0))),
        ..ServeConfig::baseline()
    };

    // Fault-free baseline, then the same workload with device 1 dying at
    // mid-horizon. Same seed: every arrival instant is identical, so the
    // delta is purely the fault.
    let healthy = server.run_with_faults(&config, &FaultPlan::none());
    let plan = FaultPlan {
        drops: vec![DeviceDrop {
            device: 1,
            at: SimTime::from_picos(horizon.as_picos() / 2),
        }],
        ..FaultPlan::none()
    };
    let faulted = server.run_with_faults(&config, &plan);
    for (name, report) in [("healthy", &healthy), ("device-loss", &faulted)] {
        report.check().map_err(|e| format!("{name}: {e}"))?;
    }

    println!("scenario        goodput      violation-rate   rerouted  stranded");
    for (name, report) in [("healthy", &healthy), ("device-loss", &faulted)] {
        let viol: u64 = report.tenants.iter().map(|t| t.violations).sum();
        let done: u64 = report.tenants.iter().map(|t| t.completed).sum();
        let rerouted: u64 = report.tenants.iter().map(|t| t.rerouted).sum();
        println!(
            "{name:<14} {:>8.0} rps   {:>8.2}%        {rerouted:>5}     {:>5}",
            report.goodput_rps(),
            100.0 * viol as f64 / done.max(1) as f64,
            report.faults.stranded,
        );
    }
    println!();
    for (t, tenant) in faulted.tenants.iter().enumerate() {
        println!(
            "{:>12} under device-loss: {} completed ({} healthy), p99 {} ({} healthy), {} preemptions",
            tenant.name,
            tenant.completed,
            healthy.tenants[t].completed,
            tenant.latency_quantile(0.99),
            healthy.tenants[t].latency_quantile(0.99),
            tenant.preemptions,
        );
    }

    // The surviving device absorbed the dead device's in-flight batch:
    // nothing stranded, nothing silently dropped.
    assert_eq!(faulted.faults.devices_lost, 1);
    assert_eq!(faulted.faults.stranded, 0, "a survivor absorbs the queue");
    let rerouted: u64 = faulted.tenants.iter().map(|t| t.rerouted).sum();
    println!(
        "\ndevice 1 died at {}; {} in-flight requests re-routed to device 0, 0 stranded",
        SimTime::from_picos(horizon.as_picos() / 2),
        rerouted,
    );
    Ok(())
}
