//! Writing a custom synchronization policy and generating policies with
//! the cuSyncGen DSL (Section IV).
//!
//! Shows the two extension paths the paper emphasizes:
//! 1. hand-implementing [`SyncPolicy`] (here: a diagonal-wavefront policy);
//! 2. describing the dependency in the DSL and letting the compiler
//!    generate the policies, the tile order, and the CUDA source.
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use std::error::Error;
use std::sync::Arc;

use cusync::{CuStage, NoSync, SyncGraph, SyncPolicy};
use cusync_kernels::reference::{assert_close, matmul};
use cusync_kernels::{GemmBuilder, GemmDims, InputDep, TileShape};
use cusync_sim::{DType, Dim3, Gpu, GpuConfig, SimTime};
use cusyncgen::{check_spec, emit_spec, policies_for, AffineExpr, DepSpec, Pattern};

/// A custom policy: tiles on the same anti-diagonal share one semaphore.
/// Coarser than TileSync along diagonals, finer than a whole-kernel
/// barrier — the kind of experiment cuSync's modularity invites.
#[derive(Debug, Clone, Copy)]
struct DiagonalSync;

impl SyncPolicy for DiagonalSync {
    fn name(&self) -> String {
        "DiagonalSync".into()
    }

    fn num_sems(&self, grid: Dim3) -> usize {
        (grid.x + grid.y - 1) as usize
    }

    fn post_sem(&self, tile: Dim3, _grid: Dim3) -> u32 {
        tile.x + tile.y
    }

    fn expected(&self, requested: Dim3, grid: Dim3) -> u32 {
        // Tiles on anti-diagonal d: count of (x, y) with x + y = d.
        let d = requested.x + requested.y;
        let lo = d.saturating_sub(grid.y - 1);
        let hi = d.min(grid.x - 1);
        (hi - lo + 1) * grid.z
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    // --- 1. Run a functional MLP chain under the custom policy ----------
    let (m, k, h) = (32u32, 24u32, 40u32);
    let tile = TileShape::new(8, 8, 8);
    let mut gpu = Gpu::new(GpuConfig {
        host_launch_gap: SimTime::ZERO,
        kernel_dispatch_latency: SimTime::ZERO,
        block_jitter: 0.0,
        ..GpuConfig::toy(8)
    });
    let seeded = |len: usize, s: f32| -> Vec<f32> {
        (0..len)
            .map(|i| ((i * 37 + 11) % 17) as f32 * s - 0.4)
            .collect()
    };
    let x_data = seeded((m * k) as usize, 0.05);
    let w1_data = seeded((k * h) as usize, 0.04);
    let w2_data = seeded((h * k) as usize, 0.03);
    let x = gpu.mem_mut().alloc_data("x", x_data.clone(), DType::F16);
    let w1 = gpu.mem_mut().alloc_data("w1", w1_data.clone(), DType::F16);
    let w2 = gpu.mem_mut().alloc_data("w2", w2_data.clone(), DType::F16);
    let xw1 = gpu
        .mem_mut()
        .alloc_poisoned("xw1", (m * h) as usize, DType::F16);
    let out = gpu
        .mem_mut()
        .alloc_poisoned("out", (m * k) as usize, DType::F16);

    let grid1 = Dim3::new(h / tile.n, m / tile.m, 1);
    let grid2 = Dim3::new(k / tile.n, m / tile.m, 1);
    let mut graph = SyncGraph::new();
    let s1 = graph.add_stage(CuStage::new("gemm1", grid1).policy(DiagonalSync));
    let s2 = graph.add_stage(CuStage::new("gemm2", grid2).policy(NoSync));
    graph.dependency(s1, s2, xw1)?;
    let bound = graph.bind(&mut gpu)?;
    let g1 = GemmBuilder::new("gemm1", GemmDims::new(m, h, k), tile)
        .operands(x, w1, xw1)
        .stage(Arc::clone(bound.stage(s1)))
        .build(gpu.config())
        .expect("operands set");
    let g2 = GemmBuilder::new("gemm2", GemmDims::new(m, k, h), tile)
        .operands(xw1, w2, out)
        .stage(Arc::clone(bound.stage(s2)))
        .a_dep(InputDep::row_aligned(grid1), grid1.x)
        .build(gpu.config())
        .expect("operands set");
    bound.launch(&mut gpu, s1, Arc::new(g1))?;
    bound.launch(&mut gpu, s2, Arc::new(g2))?;
    let report = gpu.run()?;
    let reference = matmul(
        &matmul(&x_data, &w1_data, m as usize, h as usize, k as usize),
        &w2_data,
        m as usize,
        k as usize,
        h as usize,
    );
    assert_close(gpu.mem().snapshot(out).unwrap(), &reference, 5e-3);
    println!(
        "DiagonalSync chain: {} | races {} -> results verified",
        report.total, report.races
    );

    // --- 2. Generate policies from a DSL spec (cuSyncGen) ---------------
    let mut spec = DepSpec::new();
    let g1 = spec.grid("gemm1", grid1);
    let g2 = spec.grid("gemm2", grid2);
    spec.depend(g2, g1, Pattern::ForAllX(AffineExpr::y()));
    check_spec(&spec)?;
    println!("\ncuSyncGen generated policies:");
    for p in policies_for(&spec, &spec.deps()[0]) {
        println!("  - {}", p.name);
    }
    println!("\nGenerated CUDA source:\n{}", emit_spec(&spec));
    Ok(())
}
