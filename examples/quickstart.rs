//! Quickstart: synchronize two dependent GeMMs at tile granularity,
//! using the compile → session lifecycle.
//!
//! Reproduces the Fig. 4a scenario of the paper on the simulated V100:
//! `XW1 = GeLU(X x W1)` followed by `OUT = XW1 x W2`, first with the
//! traditional stream synchronization, then with cuSync's TileSync
//! policy. Each variant is **compiled once** into an immutable
//! `CompiledPipeline` and executed through one reusable `Session` — the
//! production shape: build the synchronization structure once, serve
//! many invocations. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::error::Error;
use std::sync::Arc;

use cusync::{launch_stream_sync, CuStage, NoSync, OptFlags, Pipeline, SyncGraph, TileSync};
use cusync_kernels::{Epilogue, GemmBuilder, GemmDims, InputDep, TileShape};
use cusync_sim::{DType, Dim3, GpuConfig, KernelSource, Session};

fn main() -> Result<(), Box<dyn Error>> {
    let gpu_cfg = GpuConfig::tesla_v100();
    // A GPT-3-like MLP shard: 256 tokens, hidden 12288, intermediate 6144.
    let (m, h, inter) = (256u32, 12288u32, 6144u32);
    let tile = TileShape::new(256, 128, 32);

    // --- Compile the baseline: stream synchronization -------------------
    let baseline = Pipeline::compile(gpu_cfg.clone(), |gpu| {
        let x = gpu.alloc("x", (m * h) as usize, DType::F16);
        let w1 = gpu.alloc("w1", (h * inter) as usize, DType::F16);
        let w2 = gpu.alloc("w2", (inter * h) as usize, DType::F16);
        let xw1 = gpu.alloc("xw1", (m * inter) as usize, DType::F16);
        let out = gpu.alloc("out", (m * h) as usize, DType::F16);
        let gemm1 = GemmBuilder::new("gemm1", GemmDims::new(m, inter, h), tile)
            .operands(x, w1, xw1)
            .epilogue(Epilogue::Gelu)
            .split_k(4) // Table IV: the CUTLASS autotuner split for this shape
            .build(gpu.config())?;
        let gemm2 = GemmBuilder::new("gemm2", GemmDims::new(m, h, inter), tile)
            .operands(xw1, w2, out)
            .split_k(2)
            .build(gpu.config())?;
        launch_stream_sync(
            gpu,
            [
                Arc::new(gemm1) as Arc<dyn KernelSource>,
                Arc::new(gemm2) as Arc<dyn KernelSource>,
            ],
        );
        Ok(())
    })?;

    // --- Compile cuSync: fine-grained tile synchronization --------------
    let synced = Pipeline::compile(gpu_cfg, |gpu| {
        let x = gpu.alloc("x", (m * h) as usize, DType::F16);
        let w1 = gpu.alloc("w1", (h * inter) as usize, DType::F16);
        let w2 = gpu.alloc("w2", (inter * h) as usize, DType::F16);
        let xw1 = gpu.alloc("xw1", (m * inter) as usize, DType::F16);
        let out = gpu.alloc("out", (m * h) as usize, DType::F16);

        let grid1 = Dim3::new(inter / tile.n, m.div_ceil(tile.m), 4);
        let grid2 = Dim3::new(h / tile.n, m.div_ceil(tile.m), 2);
        let mut graph = SyncGraph::new();
        let s1 = graph.add_stage(
            CuStage::new("gemm1", grid1)
                .policy(TileSync)
                .opts(OptFlags::WRT),
        );
        let s2 = graph.add_stage(
            CuStage::new("gemm2", grid2)
                .policy(NoSync)
                .opts(OptFlags::WRT),
        );
        graph.dependency(s1, s2, xw1)?;
        let bound = graph.bind(gpu)?;

        let gemm1 = GemmBuilder::new("gemm1", GemmDims::new(m, inter, h), tile)
            .operands(x, w1, xw1)
            .epilogue(Epilogue::Gelu)
            .split_k(4)
            .stage(Arc::clone(bound.stage(s1)))
            .build(gpu.config())?;
        let gemm2 = GemmBuilder::new("gemm2", GemmDims::new(m, h, inter), tile)
            .operands(xw1, w2, out)
            .split_k(2)
            .stage(Arc::clone(bound.stage(s2)))
            .a_dep(InputDep::row_aligned(grid1), grid1.x)
            .build(gpu.config())?;
        bound.launch(gpu, s1, Arc::new(gemm1))?;
        bound.launch(gpu, s2, Arc::new(gemm2))?;
        Ok(())
    })?;

    // --- Execute: one session, many runs, no rebuilds -------------------
    let mut session = Session::new();
    let base_report = session.run(&baseline)?;
    println!("StreamSync: {}", base_report.total);
    let sync_report = session.run(&synced)?;
    println!("cuSync (TileSync+WRT): {}", sync_report.total);

    let speedup = base_report.total.as_picos() as f64 / sync_report.total.as_picos() as f64;
    println!("speedup: {speedup:.2}x");

    // Repeated invocations reuse the warmed engine and are bit-identical
    // — the serving loop of a production runtime.
    for _ in 0..3 {
        assert_eq!(session.run(&synced)?, sync_report);
    }
    println!("\n3 repeated session runs: identical reports, zero rebuilds");

    println!("\nPer-kernel overlap:");
    for k in &sync_report.kernels {
        println!("  {k}");
    }
    Ok(())
}
