//! The five-kernel Attention chain (Fig. 5b) in both inference phases,
//! comparing StreamSync with the paper's StridedTileSync+WRT policy.
//!
//! ```text
//! cargo run --release --example attention_pipeline
//! ```

use cusync::OptFlags;
use cusync_models::{attention_time, run_attention, AttentionConfig, PolicyKind, SyncMode};
use cusync_sim::GpuConfig;

fn main() {
    let gpu = GpuConfig::tesla_v100();
    let strided = SyncMode::CuSync(PolicyKind::Strided, OptFlags::WRT);

    println!("=== GPT-3 Attention: prompt processing (S' = 0) ===");
    for tokens in [512u32, 1024, 2048] {
        let cfg = AttentionConfig::prompt(12288, tokens);
        let base = attention_time(&gpu, cfg, SyncMode::StreamSync);
        let sync = attention_time(&gpu, cfg, strided);
        println!(
            "  BxS {tokens:>5}: StreamSync {:>8.0}us | StridedTileSync+WRT {:>8.0}us | {:+.1}%",
            base.as_micros(),
            sync.as_micros(),
            100.0 * (1.0 - sync.as_picos() as f64 / base.as_picos() as f64),
        );
    }

    println!("\n=== GPT-3 Attention: token generation (S = 1) ===");
    for cached in [512u32, 1024, 2048] {
        for batch in [1u32, 4] {
            let cfg = AttentionConfig::generation(12288, batch, cached);
            let base = attention_time(&gpu, cfg, SyncMode::StreamSync);
            let sync = attention_time(&gpu, cfg, strided);
            println!(
                "  B {batch}, S' {cached:>5}: StreamSync {:>8.0}us | StridedTileSync+WRT {:>8.0}us | {:+.1}%",
                base.as_micros(),
                sync.as_micros(),
                100.0 * (1.0 - sync.as_picos() as f64 / base.as_picos() as f64),
            );
        }
    }

    // The kernel-level timeline shows the QKV GeMM overlapping with the
    // attention score computation.
    let report = run_attention(&gpu, AttentionConfig::prompt(12288, 1024), strided);
    println!("\nTimeline at BxS=1024 prompt under StridedTileSync+WRT:\n{report}");
}
