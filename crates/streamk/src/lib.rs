//! # cusync-streamk: the Stream-K baseline
//!
//! Stream-K (Osama et al., PPoPP 2023) is the state-of-the-art
//! *single-kernel-scope* remedy for partial-wave underutilization that the
//! paper compares against (Section V-H). As the paper describes it,
//! Stream-K "divides the GeMM workload into two kernel calls. The first
//! kernel computes GeMM using the traditional tiled approach for full
//! waves while the second kernel partitions workload of the final wave
//! among all SMs. This design requires multiple memory accesses" — the
//! split tiles accumulate partial sums through global memory with a fixup
//! step, whereas cuSync posts a single atomic per tile.
//!
//! This crate reproduces that structure on the simulator:
//!
//! - [`StreamKGemm::launch`] issues the *full-wave kernel* (classic tiled
//!   GeMM over `floor(tiles / blocks_per_wave) * blocks_per_wave` tiles)
//!   and the *partial-wave kernel* (one full wave of blocks splitting the
//!   remaining tiles' K loops evenly), on one stream;
//! - split tiles pay the extra traffic: contributors write `f32` partial
//!   tiles and post a fixup semaphore; the tile owner waits, reads the
//!   partials back, reduces, applies the epilogue and writes the final
//!   tile;
//! - mirroring CUTLASS, only GeMM is supported — there is deliberately no
//!   Stream-K Conv2D, which is why Fig. 7 has no Stream-K series.

#![warn(missing_docs)]

use std::sync::Arc;

/// Maximum thread blocks cooperating on one output tile. CUTLASS's
/// Stream-K scheduler bounds the split count so each participant keeps
/// enough mainloop iterations to stay efficient and the fixup tree stays
/// shallow.
const MAX_SPLITS_PER_TILE: u64 = 4;

/// Throughput penalty of the work-centric mainloop relative to the classic
/// tiled kernel (extra iteration-space bookkeeping, worse software
/// pipelining at split boundaries): ~15% on V100 per the CUTLASS Stream-K
/// occupancy studies.
const STREAMK_MAINLOOP_PENALTY: f64 = 1.15;

use cusync_kernels::timing::{gemm_flops, mma_cycles};
use cusync_kernels::{Epilogue, GemmBuilder, GemmDims, TileShape};
use cusync_sim::{
    BlockBody, BlockCtx, BufferId, BuildError, DType, Dim3, Gpu, GpuConfig, KernelSource, Op,
    SemArrayId, Step, StreamId,
};

/// Builder for [`StreamKGemm`].
#[derive(Debug)]
pub struct StreamKBuilder {
    name: String,
    dims: GemmDims,
    tile: TileShape,
    occupancy: u32,
    dtype: DType,
    epilogue: Epilogue,
    a: Option<BufferId>,
    b: Option<BufferId>,
    c: Option<BufferId>,
}

impl StreamKBuilder {
    /// Starts building a Stream-K GeMM.
    pub fn new(name: &str, dims: GemmDims, tile: TileShape) -> Self {
        StreamKBuilder {
            name: name.to_owned(),
            dims,
            tile,
            occupancy: cusync_kernels::timing::occupancy_for_tile(tile.m, tile.n),
            dtype: DType::F16,
            epilogue: Epilogue::None,
            a: None,
            b: None,
            c: None,
        }
    }

    /// Sets the A, B and C buffers.
    pub fn operands(mut self, a: BufferId, b: BufferId, c: BufferId) -> Self {
        self.a = Some(a);
        self.b = Some(b);
        self.c = Some(c);
        self
    }

    /// Overrides the occupancy heuristic.
    pub fn occupancy(mut self, occupancy: u32) -> Self {
        self.occupancy = occupancy;
        self
    }

    /// Sets the fused epilogue.
    pub fn epilogue(mut self, epilogue: Epilogue) -> Self {
        self.epilogue = epilogue;
        self
    }

    /// Finalizes the Stream-K GeMM description.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if [`StreamKBuilder::operands`] was never
    /// called, or if the problem dimensions or tile have a zero extent
    /// (which would launch an empty grid).
    pub fn build(self) -> Result<StreamKGemm, BuildError> {
        let builder = || format!("StreamKBuilder({})", self.name);
        if self.dims.m == 0 || self.dims.n == 0 || self.dims.k == 0 {
            return Err(BuildError::invalid(
                builder(),
                format!(
                    "GemmDims {}x{}x{} has a zero dimension",
                    self.dims.m, self.dims.n, self.dims.k
                ),
            ));
        }
        if self.tile.m == 0 || self.tile.n == 0 || self.tile.k == 0 {
            return Err(BuildError::invalid(
                builder(),
                format!(
                    "tile {}x{}x{} has a zero dimension",
                    self.tile.m, self.tile.n, self.tile.k
                ),
            ));
        }
        let a = self
            .a
            .ok_or_else(|| BuildError::missing(builder(), "A operand"))?;
        let b = self
            .b
            .ok_or_else(|| BuildError::missing(builder(), "B operand"))?;
        let c = self
            .c
            .ok_or_else(|| BuildError::missing(builder(), "C operand"))?;
        Ok(StreamKGemm {
            name: self.name,
            dims: self.dims,
            tile: self.tile,
            occupancy: self.occupancy,
            dtype: self.dtype,
            epilogue: self.epilogue,
            a,
            b,
            c,
        })
    }
}

/// A GeMM decomposed Stream-K style: full waves classically tiled, the
/// final partial wave work-partitioned across all SMs.
#[derive(Debug, Clone)]
pub struct StreamKGemm {
    name: String,
    dims: GemmDims,
    tile: TileShape,
    occupancy: u32,
    dtype: DType,
    epilogue: Epilogue,
    a: BufferId,
    b: BufferId,
    c: BufferId,
}

impl StreamKGemm {
    /// Total output tiles of this GeMM.
    pub fn total_tiles(&self) -> u64 {
        (self.dims.n.div_ceil(self.tile.n) as u64) * (self.dims.m.div_ceil(self.tile.m) as u64)
    }

    /// Tiles handled by the classic full-wave kernel.
    pub fn full_wave_tiles(&self, gpu: &GpuConfig) -> u64 {
        let per_wave = gpu.blocks_per_wave(self.occupancy);
        (self.total_tiles() / per_wave) * per_wave
    }

    /// Launches the (up to) two kernels on `stream`. Returns the number of
    /// kernels launched (1 when the grid divides evenly into waves, 2
    /// otherwise).
    pub fn launch(&self, gpu: &mut Gpu, stream: StreamId) -> usize {
        let full = self.full_wave_tiles(gpu.config());
        let total = self.total_tiles();
        let rem = total - full;
        let mut launched = 0;
        if full > 0 {
            let nx = self.dims.n.div_ceil(self.tile.n);
            let kernel = GemmBuilder::new(&format!("{}.full", self.name), self.dims, self.tile)
                .operands(self.a, self.b, self.c)
                .epilogue(self.epilogue)
                .occupancy(self.occupancy)
                .build(gpu.config())
                .expect("operands set");
            if rem == 0 {
                gpu.launch(stream, Arc::new(kernel));
            } else {
                // Run the classic kernel only over the full-wave prefix of
                // tiles; the remainder goes to the partial-wave kernel.
                gpu.launch(
                    stream,
                    Arc::new(TilePrefixKernel {
                        inner: Arc::new(kernel),
                        prefix: full,
                        nx,
                    }),
                );
            }
            launched += 1;
        }
        if rem > 0 {
            let sems = gpu.alloc_sems(&format!("{}.fixup", self.name), rem as usize, 0);
            let per_wave = gpu.config().blocks_per_wave(self.occupancy);
            let blocks = per_wave
                .min(rem * self.k_chunks() as u64)
                .min(rem * MAX_SPLITS_PER_TILE);
            gpu.launch(
                stream,
                Arc::new(PartialWaveKernel {
                    gemm: self.clone(),
                    first_tile: full,
                    blocks,
                    sems,
                    gpu: gpu.config().clone(),
                }),
            );
            launched += 1;
        }
        launched
    }

    fn k_chunks(&self) -> u32 {
        self.dims.k.div_ceil(self.tile.k).max(1)
    }

    fn tile_xy(&self, linear: u64) -> Dim3 {
        let nx = self.dims.n.div_ceil(self.tile.n) as u64;
        Dim3::new((linear % nx) as u32, (linear / nx) as u32, 0)
    }

    fn tile_rows(&self, tile: Dim3) -> (u32, u32) {
        let lo = tile.y * self.tile.m;
        (lo, (lo + self.tile.m).min(self.dims.m))
    }

    fn tile_cols(&self, tile: Dim3) -> (u32, u32) {
        let lo = tile.x * self.tile.n;
        (lo, (lo + self.tile.n).min(self.dims.n))
    }
}

/// Wraps a classic GeMM kernel but only executes the first `prefix` tiles
/// (full waves); remainder tiles are left to the partial-wave kernel.
struct TilePrefixKernel {
    inner: Arc<dyn KernelSource>,
    prefix: u64,
    nx: u32,
}

impl std::fmt::Debug for TilePrefixKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TilePrefixKernel")
            .field("prefix", &self.prefix)
            .finish_non_exhaustive()
    }
}

impl KernelSource for TilePrefixKernel {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn cost_signature(&self) -> u64 {
        // The prefix remaps geometry; the inner kernel carries the cost.
        self.inner.cost_signature() ^ self.prefix.rotate_left(17)
    }

    fn grid(&self) -> Dim3 {
        Dim3::linear(self.prefix as u32)
    }

    fn occupancy(&self) -> u32 {
        self.inner.occupancy()
    }

    fn block(&self, block: Dim3) -> Box<dyn BlockBody> {
        // Map the 1-D prefix index back onto the inner kernel's 2-D grid.
        let linear = block.x as u64;
        let tile = Dim3::new(
            (linear % self.nx as u64) as u32,
            (linear / self.nx as u64) as u32,
            0,
        );
        self.inner.block(tile)
    }
}

/// The work-centric partial-wave kernel: `blocks` blocks split the
/// `rem_tiles x k_chunks` iteration space evenly.
struct PartialWaveKernel {
    gemm: StreamKGemm,
    first_tile: u64,
    blocks: u64,
    sems: SemArrayId,
    gpu: GpuConfig,
}

impl std::fmt::Debug for PartialWaveKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartialWaveKernel")
            .field("blocks", &self.blocks)
            .finish_non_exhaustive()
    }
}

impl PartialWaveKernel {
    fn iters(&self) -> u64 {
        (self.gemm.total_tiles() - self.first_tile) * self.gemm.k_chunks() as u64
    }

    /// Iteration range `[lo, hi)` of block `b`.
    fn range(&self, b: u64) -> (u64, u64) {
        let iters = self.iters();
        let per = iters.div_ceil(self.blocks);
        ((b * per).min(iters), ((b + 1) * per).min(iters))
    }
}

impl KernelSource for PartialWaveKernel {
    fn name(&self) -> &str {
        &self.gemm.name
    }

    fn cost_signature(&self) -> u64 {
        cusync_sim::fnv1a(
            format!(
                "streamk_partial:{:?}:{:?}:{:?}:{:?}:{}:{}",
                self.gemm.dims,
                self.gemm.tile,
                self.gemm.dtype,
                self.gemm.epilogue,
                self.first_tile,
                self.blocks,
            )
            .as_bytes(),
        )
    }

    fn grid(&self) -> Dim3 {
        Dim3::linear(self.blocks as u32)
    }

    fn occupancy(&self) -> u32 {
        self.gemm.occupancy
    }

    fn block(&self, block: Dim3) -> Box<dyn BlockBody> {
        let (lo, hi) = self.range(block.x as u64);
        Box::new(PartialBody {
            gemm: self.gemm.clone(),
            first_tile: self.first_tile,
            blocks: self.blocks,
            sems: self.sems,
            gpu: self.gpu.clone(),
            hi,
            cursor: lo,
            phase: PartialPhase::NextSpan,
            acc: Vec::new(),
            functional: None,
            span: None,
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PartialPhase {
    NextSpan,
    Mma,
    Finish,
    FixupReduce,
    Done,
}

/// One contiguous run of k-chunks of a single tile handled by this block.
#[derive(Debug, Clone, Copy)]
struct Span {
    tile_linear: u64,
    chunk_lo: u32,
    chunk_hi: u32,
    contributors: u32,
}

impl Span {
    fn owns_first(&self) -> bool {
        self.chunk_lo == 0
    }

    fn covers_all(&self, k_chunks: u32) -> bool {
        self.chunk_lo == 0 && self.chunk_hi == k_chunks
    }
}

struct PartialBody {
    gemm: StreamKGemm,
    first_tile: u64,
    blocks: u64,
    sems: SemArrayId,
    gpu: GpuConfig,
    hi: u64,
    cursor: u64,
    phase: PartialPhase,
    acc: Vec<f32>,
    functional: Option<bool>,
    span: Option<Span>,
}

impl PartialBody {
    fn k_chunks(&self) -> u64 {
        self.gemm.k_chunks() as u64
    }

    /// Builds the next span starting at `self.cursor`.
    fn next_span(&self) -> Option<Span> {
        if self.cursor >= self.hi {
            return None;
        }
        let kc = self.k_chunks();
        let tile_linear = self.cursor / kc;
        let chunk_lo = (self.cursor % kc) as u32;
        let tile_end = (tile_linear + 1) * kc;
        let end = self.hi.min(tile_end);
        let chunk_hi = ((end - 1) % kc) as u32 + 1;
        Some(Span {
            tile_linear,
            chunk_lo,
            chunk_hi,
            contributors: self.contributors(tile_linear),
        })
    }

    /// Number of blocks contributing to `tile_linear`, derived from the
    /// static even partition (for the fixup wait).
    fn contributors(&self, tile_linear: u64) -> u32 {
        let kc = self.k_chunks();
        let tile_lo = tile_linear * kc;
        let tile_hi = tile_lo + kc;
        let total_iters = (self.gemm.total_tiles() - self.first_tile) * kc;
        let per = total_iters.div_ceil(self.blocks);
        let first_block = tile_lo / per;
        let last_block = (tile_hi - 1) / per;
        (last_block - first_block + 1) as u32
    }

    fn penalized(cycles: u64) -> u64 {
        (cycles as f64 * STREAMK_MAINLOOP_PENALTY).round() as u64
    }

    fn tile_of(&self, span: &Span) -> Dim3 {
        self.gemm.tile_xy(self.first_tile + span.tile_linear)
    }

    fn accumulate(&mut self, ctx: &mut BlockCtx<'_>, span: &Span) {
        if self.functional != Some(true) {
            return;
        }
        let tile = self.tile_of(span);
        let rows = self.gemm.tile_rows(tile);
        let cols = self.gemm.tile_cols(tile);
        let kdim = self.gemm.dims.k as usize;
        let n = self.gemm.dims.n as usize;
        let klo = span.chunk_lo * self.gemm.tile.k;
        let khi = (span.chunk_hi * self.gemm.tile.k).min(self.gemm.dims.k);
        let tile_cols = (cols.1 - cols.0) as usize;
        for i in rows.0..rows.1 {
            for kk in klo..khi {
                let av = ctx
                    .mem
                    .read(self.gemm.a, i as usize * kdim + kk as usize, ctx.now);
                if av == 0.0 {
                    continue;
                }
                for j in cols.0..cols.1 {
                    let bv = ctx
                        .mem
                        .read(self.gemm.b, kk as usize * n + j as usize, ctx.now);
                    self.acc[(i - rows.0) as usize * tile_cols + (j - cols.0) as usize] += av * bv;
                }
            }
        }
    }

    /// Adds this block's partial into C (read-modify-write).
    fn flush_partial(&mut self, ctx: &mut BlockCtx<'_>, span: &Span, apply_epilogue: bool) {
        if self.functional != Some(true) {
            return;
        }
        let tile = self.tile_of(span);
        let rows = self.gemm.tile_rows(tile);
        let cols = self.gemm.tile_cols(tile);
        let n = self.gemm.dims.n as usize;
        let tile_cols = (cols.1 - cols.0) as usize;
        for i in rows.0..rows.1 {
            for j in cols.0..cols.1 {
                let idx = i as usize * n + j as usize;
                let mut v = self.acc[(i - rows.0) as usize * tile_cols + (j - cols.0) as usize];
                let cur = ctx.mem.read_raw(self.gemm.c, idx);
                if !cur.is_nan() {
                    v += cur;
                }
                if apply_epilogue {
                    v = self.gemm.epilogue.apply(v);
                }
                ctx.mem.write(self.gemm.c, idx, v);
            }
        }
    }

    fn apply_epilogue_in_place(&self, ctx: &mut BlockCtx<'_>, span: &Span) {
        if self.functional != Some(true) {
            return;
        }
        let tile = self.tile_of(span);
        let rows = self.gemm.tile_rows(tile);
        let cols = self.gemm.tile_cols(tile);
        let n = self.gemm.dims.n as usize;
        for i in rows.0..rows.1 {
            for j in cols.0..cols.1 {
                let idx = i as usize * n + j as usize;
                let v = ctx.mem.read_raw(self.gemm.c, idx);
                ctx.mem.write(self.gemm.c, idx, self.gemm.epilogue.apply(v));
            }
        }
    }

    fn tile_bytes_f32(&self, span: &Span) -> u64 {
        let tile = self.tile_of(span);
        let rows = self.gemm.tile_rows(tile);
        let cols = self.gemm.tile_cols(tile);
        (rows.1 - rows.0) as u64 * (cols.1 - cols.0) as u64 * 4
    }

    fn advance_past(&mut self, span: &Span) {
        self.cursor = span.tile_linear * self.k_chunks() + span.chunk_hi as u64;
    }
}

impl BlockBody for PartialBody {
    fn resume(&mut self, ctx: &mut BlockCtx<'_>) -> Step {
        loop {
            match self.phase {
                PartialPhase::NextSpan => {
                    if self.functional.is_none() {
                        self.functional = Some(ctx.mem.is_functional(self.gemm.c));
                    }
                    match self.next_span() {
                        None => self.phase = PartialPhase::Done,
                        Some(span) => {
                            if self.functional == Some(true) {
                                let tile = self.tile_of(&span);
                                let rows = self.gemm.tile_rows(tile);
                                let cols = self.gemm.tile_cols(tile);
                                self.acc =
                                    vec![0.0; ((rows.1 - rows.0) * (cols.1 - cols.0)) as usize];
                            }
                            self.span = Some(span);
                            self.phase = PartialPhase::Mma;
                        }
                    }
                }
                PartialPhase::Mma => {
                    // Pipelined mainloop: loads overlap the math.
                    let span = self.span.expect("span set");
                    self.accumulate(ctx, &span);
                    let tile = self.tile_of(&span);
                    let rows = self.gemm.tile_rows(tile);
                    let cols = self.gemm.tile_cols(tile);
                    let kspan =
                        ((span.chunk_hi - span.chunk_lo) * self.gemm.tile.k).min(self.gemm.dims.k);
                    let bytes = ((rows.1 - rows.0) as u64 + (cols.1 - cols.0) as u64)
                        * kspan as u64
                        * self.gemm.dtype.size_bytes();
                    let mma = Self::penalized(mma_cycles(
                        &self.gpu,
                        self.gemm.occupancy,
                        gemm_flops(rows.1 - rows.0, cols.1 - cols.0, kspan),
                    ));
                    self.phase = PartialPhase::Finish;
                    return Step::Op(Op::main_step(bytes, mma));
                }
                PartialPhase::Finish => {
                    let span = self.span.expect("span set");
                    if span.covers_all(self.gemm.k_chunks()) {
                        // Sole owner: write the final f16 tile directly.
                        self.flush_partial(ctx, &span, true);
                        self.advance_past(&span);
                        self.phase = PartialPhase::NextSpan;
                        return Step::Op(Op::write(self.tile_bytes_f32(&span) / 2));
                    }
                    // Split tile: write an f32 partial to global memory.
                    self.flush_partial(ctx, &span, false);
                    if span.owns_first() {
                        // Owner waits for the other contributors (fixup).
                        self.phase = PartialPhase::FixupReduce;
                        return Step::Op(Op::SemWait {
                            table: self.sems,
                            index: span.tile_linear as u32,
                            value: span.contributors - 1,
                        });
                    }
                    // Contributor: post the fixup semaphore and move on.
                    self.advance_past(&span);
                    self.phase = PartialPhase::NextSpan;
                    return Step::Op(Op::SemPost {
                        table: self.sems,
                        index: span.tile_linear as u32,
                        inc: 1,
                    });
                }
                PartialPhase::FixupReduce => {
                    let span = self.span.expect("span set");
                    // Read back every contributor's partial and reduce —
                    // the extra global traffic Stream-K pays and cuSync
                    // does not (Section V-H).
                    let bytes = self.tile_bytes_f32(&span) * span.contributors as u64;
                    self.apply_epilogue_in_place(ctx, &span);
                    self.advance_past(&span);
                    self.phase = PartialPhase::NextSpan;
                    return Step::Op(Op::read(bytes));
                }
                PartialPhase::Done => return Step::Done,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cusync_kernels::reference::{assert_close, matmul};
    use cusync_sim::SimTime;

    fn quiet_gpu(sms: u32) -> Gpu {
        Gpu::new(GpuConfig {
            host_launch_gap: SimTime::ZERO,
            kernel_dispatch_latency: SimTime::ZERO,
            ..GpuConfig::toy(sms)
        })
    }

    fn seeded(len: usize, scale: f32) -> Vec<f32> {
        (0..len)
            .map(|i| ((i * 31 + 5) % 11) as f32 * scale - 0.2)
            .collect()
    }

    fn run_streamk(m: u32, n: u32, k: u32, tile: TileShape, sms: u32) -> (Vec<f32>, Vec<f32>, u64) {
        let mut gpu = quiet_gpu(sms);
        let a_data = seeded((m * k) as usize, 0.05);
        let b_data = seeded((k * n) as usize, 0.04);
        let a = gpu.mem_mut().alloc_data("a", a_data.clone(), DType::F16);
        let b = gpu.mem_mut().alloc_data("b", b_data.clone(), DType::F16);
        let c = gpu
            .mem_mut()
            .alloc_poisoned("c", (m * n) as usize, DType::F16);
        let sk = StreamKBuilder::new("sk", GemmDims::new(m, n, k), tile)
            .operands(a, b, c)
            .occupancy(1)
            .build()
            .expect("operands set");
        let stream = gpu.create_stream(0);
        sk.launch(&mut gpu, stream);
        let report = gpu.run().unwrap();
        let expected = matmul(&a_data, &b_data, m as usize, n as usize, k as usize);
        (
            gpu.mem().snapshot(c).unwrap().to_vec(),
            expected,
            report.races,
        )
    }

    #[test]
    fn full_wave_only_when_divisible() {
        // 4 SMs occ 1; 2x2 = 4 tiles: exactly one wave, single kernel.
        let mut gpu = quiet_gpu(4);
        let a = gpu.alloc("a", 32 * 32, DType::F16);
        let b = gpu.alloc("b", 32 * 32, DType::F16);
        let c = gpu.alloc("c", 32 * 32, DType::F16);
        let sk = StreamKBuilder::new("sk", GemmDims::new(32, 32, 32), TileShape::new(16, 16, 16))
            .operands(a, b, c)
            .occupancy(1)
            .build()
            .expect("operands set");
        let stream = gpu.create_stream(0);
        assert_eq!(sk.launch(&mut gpu, stream), 1);
        gpu.run().unwrap();
    }

    #[test]
    fn partial_wave_splits_remainder_tiles() {
        // 4 SMs occ 1; 6 tiles: 4 full-wave + 2 remainder -> two kernels.
        let mut gpu = quiet_gpu(4);
        let a = gpu.alloc("a", 48 * 32, DType::F16);
        let b = gpu.alloc("b", 32 * 32, DType::F16);
        let c = gpu.alloc("c", 48 * 32, DType::F16);
        let sk = StreamKBuilder::new("sk", GemmDims::new(48, 32, 32), TileShape::new(16, 16, 16))
            .operands(a, b, c)
            .occupancy(1)
            .build()
            .expect("operands set");
        assert_eq!(sk.total_tiles(), 6);
        assert_eq!(sk.full_wave_tiles(gpu.config()), 4);
        let stream = gpu.create_stream(0);
        assert_eq!(sk.launch(&mut gpu, stream), 2);
        gpu.run().unwrap();
    }

    #[test]
    fn streamk_matches_reference_with_remainder() {
        let (got, expected, races) = run_streamk(48, 32, 64, TileShape::new(16, 16, 16), 4);
        assert_eq!(races, 0);
        assert_close(&got, &expected, 5e-3);
    }

    #[test]
    fn streamk_matches_reference_small_grid() {
        // Fewer tiles than a wave: only the partial-wave kernel runs and
        // tiles are split across blocks with fixup.
        let (got, expected, races) = run_streamk(16, 16, 96, TileShape::new(16, 16, 16), 4);
        assert_eq!(races, 0);
        assert_close(&got, &expected, 5e-3);
    }

    #[test]
    fn streamk_matches_reference_ragged() {
        let (got, expected, races) = run_streamk(40, 24, 72, TileShape::new(16, 16, 16), 4);
        assert_eq!(races, 0);
        assert_close(&got, &expected, 5e-3);
    }

    #[test]
    fn streamk_beats_classic_on_partial_waves() {
        // 5 tiles on 4 SMs: classic takes 2 waves (1.25 -> 2), Stream-K
        // runs 1 wave + a work-split wave of quarter-size blocks. K is
        // large so splitting the remainder tile outweighs the fixup cost.
        let tile = TileShape::new(16, 16, 64);
        let dims = GemmDims::new(80, 16, 4096);
        let classic_time = {
            let mut gpu = quiet_gpu(4);
            let a = gpu.alloc("a", (dims.m * dims.k) as usize, DType::F16);
            let b = gpu.alloc("b", (dims.k * dims.n) as usize, DType::F16);
            let c = gpu.alloc("c", (dims.m * dims.n) as usize, DType::F16);
            let g = GemmBuilder::new("classic", dims, tile)
                .operands(a, b, c)
                .occupancy(1)
                .build(gpu.config())
                .expect("operands set");
            let stream = gpu.create_stream(0);
            gpu.launch(stream, Arc::new(g));
            gpu.run().unwrap().total
        };
        let streamk_time = {
            let mut gpu = quiet_gpu(4);
            let a = gpu.alloc("a", (dims.m * dims.k) as usize, DType::F16);
            let b = gpu.alloc("b", (dims.k * dims.n) as usize, DType::F16);
            let c = gpu.alloc("c", (dims.m * dims.n) as usize, DType::F16);
            let sk = StreamKBuilder::new("sk", dims, tile)
                .operands(a, b, c)
                .occupancy(1)
                .build()
                .expect("operands set");
            let stream = gpu.create_stream(0);
            sk.launch(&mut gpu, stream);
            gpu.run().unwrap().total
        };
        assert!(
            streamk_time < classic_time,
            "stream-k {streamk_time} should beat classic {classic_time}"
        );
    }
}
