//! CUDA C++ code emission.
//!
//! The paper's cuSyncGen emits CUDA code for the generated policies and
//! tile orders, which the user plugs into cuSync's `CuStage`. This module
//! reproduces that surface: for each generated policy it renders the
//! `sem`/`value` device functions of Fig. 4b, and for each generated order
//! the `prodOrder` function of Section IV-A. The Rust reproduction executes
//! the *runtime objects* ([`NamedPolicy`](crate::NamedPolicy)); the emitted
//! CUDA is the artifact a user would paste into a real CUDA build, and is
//! exercised by snapshot tests.

use std::fmt::Write as _;

use cusync_sim::Dim3;

use crate::dsl::{DepDecl, DepSpec, Pattern};
use crate::policies::NamedPolicy;

/// Renders the CUDA `sem`/`value` pair for `policy` applied to the
/// producer grid of `dep`. The struct name is qualified by both ends of
/// the dependence (`Policy_producer_to_consumer`) so a producer feeding
/// several consumers — or several policies of one dependence — never
/// emits colliding type names in one generated header.
pub fn emit_policy(spec: &DepSpec, dep: &DepDecl, policy: &NamedPolicy) -> String {
    let producer = spec.name(dep.producer);
    let consumer = spec.name(dep.consumer);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// {} for producer {} (grid {}), consumed by {}",
        policy.name,
        producer,
        spec.extent(dep.producer),
        consumer,
    );
    let _ = writeln!(
        out,
        "struct {}_{}_to_{} {{",
        policy.name, producer, consumer
    );
    match policy.name.as_str() {
        "TileSync" => {
            out.push_str(
                "  __device__ int sem(dim3 tile, dim3 grid) {\n    \
                 // Distinct semaphore for each tile\n    \
                 return tile.y * grid.x + tile.x;\n  }\n",
            );
            out.push_str("  __device__ int value(dim3 tile, dim3 grid) { return grid.z; }\n");
        }
        "RowSync" => {
            out.push_str(
                "  __device__ int sem(dim3 tile, dim3 grid) {\n    \
                 // Tiles of the same row share a semaphore\n    \
                 return tile.y;\n  }\n",
            );
            out.push_str(
                "  __device__ int value(dim3 tile, dim3 grid) { return grid.x * grid.z; }\n",
            );
        }
        "StridedSync" => {
            let (stride, count) = strided_params(dep).unwrap_or((1, 1));
            let _ = writeln!(
                out,
                "  __device__ int sem(dim3 tile, dim3 grid) {{\n    \
                 // {count} strided tiles share a semaphore (stride {stride})\n    \
                 return tile.y * {stride} + tile.x % {stride};\n  }}"
            );
            let _ = writeln!(
                out,
                "  __device__ int value(dim3 tile, dim3 grid) {{ return {count} * grid.z; }}"
            );
        }
        "Conv2DTileSync" => {
            let rs = fold_params(dep).unwrap_or(1);
            let _ = writeln!(
                out,
                "  __device__ int sem(dim3 tile, dim3 grid) {{\n    \
                 // Consumer k-steps fold onto the producing channel tile\n    \
                 return tile.y * grid.x + min(tile.x / {rs}, grid.x - 1);\n  }}"
            );
            out.push_str("  __device__ int value(dim3 tile, dim3 grid) { return grid.z; }\n");
        }
        "Pdl" => {
            out.push_str(
                "  // Programmatic Dependent Launch: no semaphores. Launch the consumer\n  \
                 // with cudaLaunchAttributeProgrammaticStreamSerialization; ordering is\n  \
                 // whole-grid, enforced by the hardware grid dependency barrier.\n",
            );
            out.push_str(
                "  __device__ void sync() {\n    \
                 // Ends the consumer's preamble: every producer block has completed\n    \
                 // once this returns. No per-tile waits follow.\n    \
                 cudaGridDependencySynchronize();\n  }\n",
            );
            out.push_str(
                "  __device__ void trigger() {\n    \
                 // Producer epilogue: allow dependents to launch once no further\n    \
                 // global-memory writes remain (SM90 griddepcontrol.launch_dependents).\n    \
                 cudaTriggerProgrammaticLaunchCompletion();\n  }\n",
            );
        }
        other => {
            let _ = writeln!(out, "  // unrecognized policy {other}: emit runtime table");
        }
    }
    out.push_str("};\n");
    out
}

fn strided_params(dep: &DepDecl) -> Option<(i64, usize)> {
    let Pattern::Tiles(refs) = &dep.pattern else {
        return None;
    };
    if refs.len() < 2 {
        return None;
    }
    Some((refs[1].0.offset - refs[0].0.offset, refs.len()))
}

fn fold_params(dep: &DepDecl) -> Option<i64> {
    let Pattern::Tiles(refs) = &dep.pattern else {
        return None;
    };
    match refs.as_slice() {
        [(ex, _)] if ex.divisor > 1 => Some(ex.divisor),
        _ => None,
    }
}

/// Renders the producer tile-order function of Section IV-A: groups of `n`
/// producer tiles are scheduled consecutively per consumer tile. Like
/// [`emit_policy`], the function name is qualified by both ends of the
/// dependence so one producer's orders toward different consumers don't
/// collide.
pub fn emit_order(spec: &DepSpec, dep: &DepDecl) -> String {
    let producer = spec.name(dep.producer);
    let consumer = spec.name(dep.consumer);
    let grid = spec.extent(dep.producer);
    let n = group_size(spec, dep);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// Producer order for {producer} (toward {consumer}): {n} tiles per consumer \
         scheduled consecutively"
    );
    let _ = writeln!(
        out,
        "__device__ int prodOrder_{producer}_to_{consumer}(dim3 tile, dim3 grid) {{"
    );
    out.push_str("  int linear = tile.y * grid.x + tile.x;\n");
    if n <= 1 {
        out.push_str("  return linear; // row-major\n");
    } else {
        let stride = grid.x / n.max(1);
        let _ = writeln!(
            out,
            "  int group = tile.x % {stride};\n  int member = tile.x / {stride};\n  \
             return (tile.y * grid.x) + group * {n} + member;"
        );
    }
    out.push_str("}\n");
    out
}

fn group_size(spec: &DepSpec, dep: &DepDecl) -> u32 {
    spec.producers_of(dep, Dim3::new(0, 0, 0)).len() as u32
}

/// Renders the full generated header for a specification: all policies and
/// orders for every dependence.
pub fn emit_spec(spec: &DepSpec) -> String {
    let mut out = String::from(
        "// Generated by cuSyncGen (Rust reproduction).\n\
         // Plug these policies and orders into CuStage<Order, Policy>.\n\n",
    );
    for dep in spec.deps() {
        for policy in crate::policies::policies_for(spec, dep) {
            out.push_str(&emit_policy(spec, dep, &policy));
            out.push('\n');
        }
        out.push_str(&emit_order(spec, dep));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{AffineExpr, Pattern};

    fn mlp_spec() -> DepSpec {
        let mut spec = DepSpec::new();
        let g1 = spec.grid("g1", Dim3::new(24, 2, 1));
        let g2 = spec.grid("g2", Dim3::new(48, 2, 1));
        spec.depend(g2, g1, Pattern::ForAllX(AffineExpr::y()));
        spec
    }

    #[test]
    fn emits_rowsync_matching_fig4b() {
        let spec = mlp_spec();
        let code = emit_spec(&spec);
        assert!(code.contains("return tile.y;"), "{code}");
        assert!(code.contains("return grid.x * grid.z;"), "{code}");
        assert!(code.contains("return tile.y * grid.x + tile.x;"), "{code}");
    }

    #[test]
    fn emits_strided_sync_for_attention() {
        let mut spec = DepSpec::new();
        let g1 = spec.grid("g1", Dim3::new(9, 2, 1));
        let gp = spec.grid("gP", Dim3::new(3, 2, 1));
        spec.depend(
            gp,
            g1,
            Pattern::Tiles(vec![
                (AffineExpr::x(), AffineExpr::y()),
                (AffineExpr::x().plus(3), AffineExpr::y()),
                (AffineExpr::x().plus(6), AffineExpr::y()),
            ]),
        );
        let code = emit_spec(&spec);
        assert!(code.contains("tile.x % 3"), "{code}");
        assert!(code.contains("return 3 * grid.z;"), "{code}");
    }

    #[test]
    fn emits_conv_fold() {
        let mut spec = DepSpec::new();
        let g1 = spec.grid("conv1", Dim3::new(2, 4, 1));
        let g2 = spec.grid("conv2", Dim3::new(18, 4, 1));
        spec.depend(
            g2,
            g1,
            Pattern::Tiles(vec![(AffineExpr::x().div(9), AffineExpr::y())]),
        );
        let code = emit_spec(&spec);
        assert!(code.contains("tile.x / 9"), "{code}");
        assert!(code.contains("Conv2DTileSync_conv1"), "{code}");
    }

    #[test]
    fn emits_pdl_grid_barrier_variant() {
        let spec = mlp_spec();
        let pdl = NamedPolicy {
            name: "Pdl".to_owned(),
            policy: std::sync::Arc::new(cusync::NoSync),
        };
        let code = emit_policy(&spec, &spec.deps()[0], &pdl);
        assert!(code.contains("struct Pdl_g1_to_g2 {"), "{code}");
        assert!(code.contains("cudaGridDependencySynchronize();"), "{code}");
        assert!(
            code.contains("cudaTriggerProgrammaticLaunchCompletion();"),
            "{code}"
        );
        assert!(
            code.contains("cudaLaunchAttributeProgrammaticStreamSerialization"),
            "{code}"
        );
    }

    #[test]
    fn order_for_row_major_dependence_is_linear() {
        let spec = mlp_spec();
        let code = emit_order(&spec, &spec.deps()[0]);
        // 24 producers per consumer = whole row: emitted as row-major
        // grouping over the row.
        assert!(code.contains("prodOrder_g1"), "{code}");
    }

    /// Builds one dependence per pattern class so `policies_for` yields
    /// every [`NamedPolicy`] variant, and asserts `emit_policy` renders a
    /// struct with a `sem`/`value` pair for each of them — not just
    /// `Conv2DTileSync`.
    #[test]
    fn emit_policy_covers_every_named_policy_variant() {
        let cases: Vec<(Pattern, Vec<&str>)> = vec![
            // MLP ForAllX → TileSync + RowSync.
            (
                Pattern::ForAllX(AffineExpr::y()),
                vec!["TileSync", "RowSync"],
            ),
            // Attention strided tiles → TileSync + StridedSync + RowSync.
            (
                Pattern::Tiles(vec![
                    (AffineExpr::x(), AffineExpr::y()),
                    (AffineExpr::x().plus(3), AffineExpr::y()),
                    (AffineExpr::x().plus(6), AffineExpr::y()),
                ]),
                vec!["TileSync", "StridedSync", "RowSync"],
            ),
            // Conv fold → Conv2DTileSync + RowSync.
            (
                Pattern::Tiles(vec![(AffineExpr::x().div(3), AffineExpr::y())]),
                vec!["Conv2DTileSync", "RowSync"],
            ),
        ];
        for (pattern, expected) in cases {
            let mut spec = DepSpec::new();
            let prod = spec.grid("p", Dim3::new(9, 2, 1));
            let cons = spec.grid("c", Dim3::new(9, 2, 1));
            spec.depend(cons, prod, pattern);
            let dep = &spec.deps()[0];
            let policies = crate::policies::policies_for(&spec, dep);
            let names: Vec<&str> = policies.iter().map(|p| p.name.as_str()).collect();
            assert_eq!(names, expected);
            for policy in &policies {
                let code = emit_policy(&spec, dep, policy);
                assert!(
                    code.contains(&format!("struct {}_p_to_c {{", policy.name)),
                    "{code}"
                );
                assert!(
                    code.contains("__device__ int sem(dim3 tile, dim3 grid)"),
                    "{code}"
                );
                assert!(
                    code.contains("__device__ int value(dim3 tile, dim3 grid)"),
                    "{code}"
                );
            }
        }
    }

    /// One producer feeding two consumers (plus a second producer) must
    /// emit distinct struct and prodOrder names for every dependence —
    /// the generated header has to compile as one translation unit.
    #[test]
    fn emitted_code_names_are_unique_per_dependence() {
        let mut spec = DepSpec::new();
        let g1 = spec.grid("g1", Dim3::new(6, 2, 1));
        let g2 = spec.grid("g2", Dim3::new(6, 2, 1));
        let g3 = spec.grid("g3", Dim3::new(6, 2, 1));
        // g1 feeds both g2 and g3 with the same pattern; g2 feeds g3.
        spec.depend(g2, g1, Pattern::ForAllX(AffineExpr::y()));
        spec.depend(g3, g1, Pattern::ForAllX(AffineExpr::y()));
        spec.depend(g3, g2, Pattern::ForAllX(AffineExpr::y()));
        let code = emit_spec(&spec);
        let mut names: Vec<&str> = Vec::new();
        for line in code.lines() {
            if let Some(rest) = line.strip_prefix("struct ") {
                names.push(rest.trim_end_matches(" {"));
            }
            if let Some(rest) = line.strip_prefix("__device__ int prodOrder_") {
                names.push(rest.split('(').next().unwrap());
            }
        }
        assert!(
            names.len() >= 9,
            "3 deps x (2 policies + 1 order): {names:?}"
        );
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(
            unique.len(),
            names.len(),
            "duplicate emitted names: {names:?}"
        );
    }
}
