//! CUDA C++ code emission.
//!
//! The paper's cuSyncGen emits CUDA code for the generated policies and
//! tile orders, which the user plugs into cuSync's `CuStage`. This module
//! reproduces that surface: for each generated policy it renders the
//! `sem`/`value` device functions of Fig. 4b, and for each generated order
//! the `prodOrder` function of Section IV-A. The Rust reproduction executes
//! the *runtime objects* ([`NamedPolicy`](crate::NamedPolicy)); the emitted
//! CUDA is the artifact a user would paste into a real CUDA build, and is
//! exercised by snapshot tests.

use std::fmt::Write as _;

use cusync_sim::Dim3;

use crate::dsl::{DepDecl, DepSpec, Pattern};
use crate::policies::NamedPolicy;

/// Renders the CUDA `sem`/`value` pair for `policy` applied to the
/// producer grid of `dep`.
pub fn emit_policy(spec: &DepSpec, dep: &DepDecl, policy: &NamedPolicy) -> String {
    let producer = spec.name(dep.producer);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// {} for producer {} (grid {})",
        policy.name,
        producer,
        spec.extent(dep.producer)
    );
    let _ = writeln!(out, "struct {}_{} {{", policy.name, producer);
    match policy.name.as_str() {
        "TileSync" => {
            out.push_str(
                "  __device__ int sem(dim3 tile, dim3 grid) {\n    \
                 // Distinct semaphore for each tile\n    \
                 return tile.y * grid.x + tile.x;\n  }\n",
            );
            out.push_str("  __device__ int value(dim3 tile, dim3 grid) { return grid.z; }\n");
        }
        "RowSync" => {
            out.push_str(
                "  __device__ int sem(dim3 tile, dim3 grid) {\n    \
                 // Tiles of the same row share a semaphore\n    \
                 return tile.y;\n  }\n",
            );
            out.push_str(
                "  __device__ int value(dim3 tile, dim3 grid) { return grid.x * grid.z; }\n",
            );
        }
        "StridedSync" => {
            let (stride, count) = strided_params(dep).unwrap_or((1, 1));
            let _ = writeln!(
                out,
                "  __device__ int sem(dim3 tile, dim3 grid) {{\n    \
                 // {count} strided tiles share a semaphore (stride {stride})\n    \
                 return tile.y * {stride} + tile.x % {stride};\n  }}"
            );
            let _ = writeln!(
                out,
                "  __device__ int value(dim3 tile, dim3 grid) {{ return {count} * grid.z; }}"
            );
        }
        "Conv2DTileSync" => {
            let rs = fold_params(dep).unwrap_or(1);
            let _ = writeln!(
                out,
                "  __device__ int sem(dim3 tile, dim3 grid) {{\n    \
                 // Consumer k-steps fold onto the producing channel tile\n    \
                 return tile.y * grid.x + min(tile.x / {rs}, grid.x - 1);\n  }}"
            );
            out.push_str("  __device__ int value(dim3 tile, dim3 grid) { return grid.z; }\n");
        }
        other => {
            let _ = writeln!(out, "  // unrecognized policy {other}: emit runtime table");
        }
    }
    out.push_str("};\n");
    out
}

fn strided_params(dep: &DepDecl) -> Option<(i64, usize)> {
    let Pattern::Tiles(refs) = &dep.pattern else {
        return None;
    };
    if refs.len() < 2 {
        return None;
    }
    Some((refs[1].0.offset - refs[0].0.offset, refs.len()))
}

fn fold_params(dep: &DepDecl) -> Option<i64> {
    let Pattern::Tiles(refs) = &dep.pattern else {
        return None;
    };
    match refs.as_slice() {
        [(ex, _)] if ex.divisor > 1 => Some(ex.divisor),
        _ => None,
    }
}

/// Renders the producer tile-order function of Section IV-A: groups of `n`
/// producer tiles are scheduled consecutively per consumer tile.
pub fn emit_order(spec: &DepSpec, dep: &DepDecl) -> String {
    let producer = spec.name(dep.producer);
    let grid = spec.extent(dep.producer);
    let n = group_size(spec, dep);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// Producer order for {producer}: {n} tiles per consumer scheduled consecutively"
    );
    let _ = writeln!(
        out,
        "__device__ int prodOrder_{producer}(dim3 tile, dim3 grid) {{"
    );
    out.push_str("  int linear = tile.y * grid.x + tile.x;\n");
    if n <= 1 {
        out.push_str("  return linear; // row-major\n");
    } else {
        let stride = grid.x / n.max(1);
        let _ = writeln!(
            out,
            "  int group = tile.x % {stride};\n  int member = tile.x / {stride};\n  \
             return (tile.y * grid.x) + group * {n} + member;"
        );
    }
    out.push_str("}\n");
    out
}

fn group_size(spec: &DepSpec, dep: &DepDecl) -> u32 {
    spec.producers_of(dep, Dim3::new(0, 0, 0)).len() as u32
}

/// Renders the full generated header for a specification: all policies and
/// orders for every dependence.
pub fn emit_spec(spec: &DepSpec) -> String {
    let mut out = String::from(
        "// Generated by cuSyncGen (Rust reproduction).\n\
         // Plug these policies and orders into CuStage<Order, Policy>.\n\n",
    );
    for dep in spec.deps() {
        for policy in crate::policies::policies_for(spec, dep) {
            out.push_str(&emit_policy(spec, dep, &policy));
            out.push('\n');
        }
        out.push_str(&emit_order(spec, dep));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{AffineExpr, Pattern};

    fn mlp_spec() -> DepSpec {
        let mut spec = DepSpec::new();
        let g1 = spec.grid("g1", Dim3::new(24, 2, 1));
        let g2 = spec.grid("g2", Dim3::new(48, 2, 1));
        spec.depend(g2, g1, Pattern::ForAllX(AffineExpr::y()));
        spec
    }

    #[test]
    fn emits_rowsync_matching_fig4b() {
        let spec = mlp_spec();
        let code = emit_spec(&spec);
        assert!(code.contains("return tile.y;"), "{code}");
        assert!(code.contains("return grid.x * grid.z;"), "{code}");
        assert!(code.contains("return tile.y * grid.x + tile.x;"), "{code}");
    }

    #[test]
    fn emits_strided_sync_for_attention() {
        let mut spec = DepSpec::new();
        let g1 = spec.grid("g1", Dim3::new(9, 2, 1));
        let gp = spec.grid("gP", Dim3::new(3, 2, 1));
        spec.depend(
            gp,
            g1,
            Pattern::Tiles(vec![
                (AffineExpr::x(), AffineExpr::y()),
                (AffineExpr::x().plus(3), AffineExpr::y()),
                (AffineExpr::x().plus(6), AffineExpr::y()),
            ]),
        );
        let code = emit_spec(&spec);
        assert!(code.contains("tile.x % 3"), "{code}");
        assert!(code.contains("return 3 * grid.z;"), "{code}");
    }

    #[test]
    fn emits_conv_fold() {
        let mut spec = DepSpec::new();
        let g1 = spec.grid("conv1", Dim3::new(2, 4, 1));
        let g2 = spec.grid("conv2", Dim3::new(18, 4, 1));
        spec.depend(
            g2,
            g1,
            Pattern::Tiles(vec![(AffineExpr::x().div(9), AffineExpr::y())]),
        );
        let code = emit_spec(&spec);
        assert!(code.contains("tile.x / 9"), "{code}");
        assert!(code.contains("Conv2DTileSync_conv1"), "{code}");
    }

    #[test]
    fn order_for_row_major_dependence_is_linear() {
        let spec = mlp_spec();
        let code = emit_order(&spec, &spec.deps()[0]);
        // 24 producers per consumer = whole row: emitted as row-major
        // grouping over the row.
        assert!(code.contains("prodOrder_g1"), "{code}");
    }
}
