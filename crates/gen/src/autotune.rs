//! Auto-tuning over generated policies and optimizations (Section IV:
//! "the user can execute all generated policies and obtain the policy with
//! least execution time").

use std::fmt;

use cusync::OptFlags;
use cusync_sim::SimTime;

/// One policy/optimization combination to evaluate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneCandidate {
    /// Display name, e.g. `"RowSync+WRT"`.
    pub name: String,
    /// Per-stage policy names, in stage declaration order.
    pub policy_names: Vec<String>,
    /// Optimization flags applied to consumer stages.
    pub opts: OptFlags,
}

impl TuneCandidate {
    /// Creates a candidate from per-stage policy names and flags.
    pub fn new(policy_names: Vec<String>, opts: OptFlags) -> Self {
        let base = policy_names.last().cloned().unwrap_or_default();
        TuneCandidate {
            name: format!("{base}{opts}"),
            policy_names,
            opts,
        }
    }
}

/// Result of evaluating one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneResult {
    /// The candidate evaluated.
    pub candidate: TuneCandidate,
    /// Total simulated execution time.
    pub time: SimTime,
}

/// Outcome of an auto-tuning sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneReport {
    /// All evaluated candidates, in evaluation order.
    pub results: Vec<TuneResult>,
}

impl TuneReport {
    /// The fastest candidate.
    ///
    /// # Panics
    ///
    /// Panics if no candidates were evaluated.
    pub fn best(&self) -> &TuneResult {
        self.results
            .iter()
            .min_by_key(|r| r.time)
            .expect("autotune evaluated no candidates")
    }

    /// Speedup of the best candidate over the named baseline result.
    ///
    /// # Panics
    ///
    /// Panics if `baseline` is not among the evaluated candidates.
    pub fn speedup_over(&self, baseline: &str) -> f64 {
        let base = self
            .results
            .iter()
            .find(|r| r.candidate.name == baseline)
            .unwrap_or_else(|| panic!("no candidate named {baseline:?}"));
        base.time.as_picos() as f64 / self.best().time.as_picos() as f64
    }
}

impl fmt::Display for TuneReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let best = self.best().candidate.name.clone();
        for r in &self.results {
            let marker = if r.candidate.name == best {
                " <== best"
            } else {
                ""
            };
            writeln!(f, "{:>28}: {}{}", r.candidate.name, r.time, marker)?;
        }
        Ok(())
    }
}

/// Evaluates every candidate with `run` (which builds a fresh simulation
/// and returns its total time) and reports the ranking.
pub fn autotune<F>(candidates: Vec<TuneCandidate>, mut run: F) -> TuneReport
where
    F: FnMut(&TuneCandidate) -> SimTime,
{
    let results = candidates
        .into_iter()
        .map(|candidate| {
            let time = run(&candidate);
            TuneResult { candidate, time }
        })
        .collect();
    TuneReport { results }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates() -> Vec<TuneCandidate> {
        vec![
            TuneCandidate::new(vec!["TileSync".into(); 2], OptFlags::NONE),
            TuneCandidate::new(vec!["TileSync".into(); 2], OptFlags::WRT),
            TuneCandidate::new(vec!["RowSync".into(); 2], OptFlags::WRT),
        ]
    }

    #[test]
    fn autotune_picks_minimum_time() {
        let report = autotune(candidates(), |c| {
            // Pretend RowSync+WRT is fastest.
            match c.name.as_str() {
                "TileSync" => SimTime::from_micros(30.0),
                "TileSync+WRT" => SimTime::from_micros(25.0),
                "RowSync+WRT" => SimTime::from_micros(20.0),
                other => panic!("unexpected candidate {other}"),
            }
        });
        assert_eq!(report.best().candidate.name, "RowSync+WRT");
        assert!((report.speedup_over("TileSync") - 1.5).abs() < 1e-9);
    }

    #[test]
    fn candidate_names_follow_paper_convention() {
        let c = TuneCandidate::new(vec!["RowSync".into()], OptFlags::WRT);
        assert_eq!(c.name, "RowSync+WRT");
        let c = TuneCandidate::new(vec!["TileSync".into()], OptFlags::NONE);
        assert_eq!(c.name, "TileSync");
    }

    #[test]
    fn report_displays_ranking() {
        let report = autotune(candidates(), |_| SimTime::from_micros(10.0));
        let s = report.to_string();
        assert!(s.contains("RowSync+WRT"), "{s}");
        assert!(s.contains("<== best"), "{s}");
    }
}
