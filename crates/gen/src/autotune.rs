//! Auto-tuning over generated policies and optimizations (Section IV:
//! "the user can execute all generated policies and obtain the policy with
//! least execution time"), plus a persistent [`TuneCache`] so repeated
//! tunes of the same pipeline skip re-simulation.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, Write as _};
use std::path::Path;

use cusync::OptFlags;
use cusync_sim::SimTime;

/// One policy/optimization combination to evaluate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneCandidate {
    /// Display name, e.g. `"RowSync+WRT"`.
    pub name: String,
    /// Per-stage policy names, in stage declaration order.
    pub policy_names: Vec<String>,
    /// Optimization flags applied to consumer stages.
    pub opts: OptFlags,
}

impl TuneCandidate {
    /// Creates a candidate from per-stage policy names and flags.
    pub fn new(policy_names: Vec<String>, opts: OptFlags) -> Self {
        let base = policy_names.last().cloned().unwrap_or_default();
        TuneCandidate {
            name: format!("{base}{opts}"),
            policy_names,
            opts,
        }
    }

    /// The [`TuneCache`] key: unlike the display `name` (which keeps the
    /// paper's last-stage convention and so can coincide for distinct
    /// multi-stage candidates), this folds in **every** stage's policy,
    /// so two different candidates never share a cache entry.
    pub fn cache_key(&self) -> String {
        format!("{}{}", self.policy_names.join("/"), self.opts)
    }
}

/// Result of evaluating one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneResult {
    /// The candidate evaluated.
    pub candidate: TuneCandidate,
    /// Total simulated execution time.
    pub time: SimTime,
}

/// Outcome of an auto-tuning sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneReport {
    /// All evaluated candidates, in evaluation order.
    pub results: Vec<TuneResult>,
}

impl TuneReport {
    /// The fastest candidate.
    ///
    /// # Panics
    ///
    /// Panics if no candidates were evaluated.
    pub fn best(&self) -> &TuneResult {
        self.results
            .iter()
            .min_by_key(|r| r.time)
            .expect("autotune evaluated no candidates")
    }

    /// Speedup of the best candidate over the named baseline result.
    ///
    /// # Panics
    ///
    /// Panics if `baseline` is not among the evaluated candidates.
    pub fn speedup_over(&self, baseline: &str) -> f64 {
        let base = self
            .results
            .iter()
            .find(|r| r.candidate.name == baseline)
            .unwrap_or_else(|| panic!("no candidate named {baseline:?}"));
        base.time.as_picos() as f64 / self.best().time.as_picos() as f64
    }
}

impl fmt::Display for TuneReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let best = self.best().candidate.name.clone();
        for r in &self.results {
            let marker = if r.candidate.name == best {
                " <== best"
            } else {
                ""
            };
            writeln!(f, "{:>28}: {}{}", r.candidate.name, r.time, marker)?;
        }
        Ok(())
    }
}

/// Evaluates every candidate with `run` (which builds a fresh simulation
/// and returns its total time) and reports the ranking.
pub fn autotune<F>(candidates: Vec<TuneCandidate>, mut run: F) -> TuneReport
where
    F: FnMut(&TuneCandidate) -> SimTime,
{
    let results = candidates
        .into_iter()
        .map(|candidate| {
            let time = run(&candidate);
            TuneResult { candidate, time }
        })
        .collect();
    TuneReport { results }
}

/// A persistent memo of candidate evaluations, keyed by **pipeline
/// fingerprint** (see
/// [`CompiledPipeline::fingerprint`](cusync_sim::CompiledPipeline::fingerprint))
/// × [`TuneCandidate::cache_key`] (the full per-stage policy list plus
/// flags — injective, unlike the last-stage display name). The
/// simulator is deterministic, so a candidate's
/// simulated time for a given pipeline never changes — re-tuning the same
/// graph can answer from the cache instead of re-simulating.
///
/// The cache is a plain value: hold it across [`autotune_cached`] calls in
/// one process, and/or [`TuneCache::save`]/[`TuneCache::load`] it between
/// processes (a line-oriented text file; stable across versions of this
/// crate as long as fingerprints are).
///
/// # Examples
///
/// ```
/// use cusyncgen::{autotune_cached, TuneCache, TuneCandidate};
/// use cusync::OptFlags;
/// use cusync_sim::SimTime;
///
/// let mut cache = TuneCache::new();
/// let candidates =
///     || vec![TuneCandidate::new(vec!["TileSync".into()], OptFlags::WRT)];
/// let fingerprint = 0xC0FFEE; // CompiledPipeline::fingerprint() in practice
/// let first = autotune_cached(&mut cache, fingerprint, candidates(), |_| {
///     SimTime::from_micros(20.0) // simulated
/// });
/// let again = autotune_cached(&mut cache, fingerprint, candidates(), |_| {
///     unreachable!("all candidates cached — never re-simulated")
/// });
/// assert_eq!(first.best().time, again.best().time);
/// assert_eq!((cache.misses(), cache.hits()), (1, 1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TuneCache {
    entries: HashMap<(u64, String), SimTime>,
    hits: u64,
    misses: u64,
}

impl TuneCache {
    /// An empty cache.
    pub fn new() -> Self {
        TuneCache::default()
    }

    /// Number of memoized (fingerprint, candidate) evaluations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from memory since construction (or [`TuneCache::load`]).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to simulate since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The memoized time of `candidate` for the pipeline with `fingerprint`,
    /// if previously evaluated. Does not touch the hit/miss counters.
    /// Applies the same control-character normalization as
    /// [`TuneCache::insert`].
    pub fn peek(&self, fingerprint: u64, candidate: &str) -> Option<SimTime> {
        self.entries
            .get(&(fingerprint, sanitize_name(candidate)))
            .copied()
    }

    /// Memoizes one evaluation directly (what [`autotune_cached`] does for
    /// every miss). Control characters in `candidate` (tabs, newlines, …)
    /// are replaced with `_` so the key survives the line-oriented
    /// tab-separated [`TuneCache::save`] format byte-for-byte;
    /// [`TuneCache::peek`] applies the same normalization, so callers
    /// never observe the substitution.
    pub fn insert(&mut self, fingerprint: u64, candidate: &str, time: SimTime) {
        self.entries
            .insert((fingerprint, sanitize_name(candidate)), time);
    }

    /// Writes the cache to `path` as a line-oriented text file
    /// (`v1<TAB>fingerprint<TAB>picoseconds<TAB>candidate-name` per entry,
    /// sorted for reproducible bytes).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut lines: Vec<String> = self
            .entries
            .iter()
            .map(|((fp, name), time)| format!("v1\t{fp:#018x}\t{}\t{name}", time.as_picos()))
            .collect();
        lines.sort();
        let mut file = std::fs::File::create(path)?;
        for line in &lines {
            writeln!(file, "{line}")?;
        }
        Ok(())
    }

    /// Reads a cache previously written by [`TuneCache::save`]. Counters
    /// start at zero.
    ///
    /// # Errors
    ///
    /// [`TuneCacheLoadError::Io`] on an underlying I/O error (e.g. the
    /// file does not exist); [`TuneCacheLoadError::Parse`] on the first
    /// malformed line, naming the 1-based line number and what was wrong
    /// with it. Use [`TuneCache::load_lossy`] to skip bad lines instead.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TuneCacheLoadError> {
        let text = std::fs::read_to_string(path).map_err(TuneCacheLoadError::Io)?;
        let mut cache = TuneCache::new();
        for (idx, line) in text.lines().enumerate() {
            let (fp, ps, name) = parse_line(line).map_err(|kind| TuneCacheParseError {
                line: idx + 1,
                kind,
            })?;
            cache.insert(fp, name, SimTime::from_picos(ps));
        }
        Ok(cache)
    }

    /// [`TuneCache::load`], but unparsable lines are *skipped* rather than
    /// fatal (a truncated cache costs re-simulation, never correctness).
    /// Returns the cache together with the number of lines skipped, so
    /// callers can surface corruption instead of silently re-simulating.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error (e.g. the file does not exist).
    pub fn load_lossy(path: impl AsRef<Path>) -> io::Result<(Self, usize)> {
        let text = std::fs::read_to_string(path)?;
        let mut cache = TuneCache::new();
        let mut skipped = 0usize;
        for line in text.lines() {
            match parse_line(line) {
                Ok((fp, ps, name)) => cache.insert(fp, name, SimTime::from_picos(ps)),
                Err(_) => skipped += 1,
            }
        }
        Ok((cache, skipped))
    }
}

/// Replaces control characters (anything below `' '`, including the
/// tabs/newlines that would corrupt the TSV cache format) with `_`.
fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| if c < ' ' { '_' } else { c })
        .collect()
}

/// Parses one `v1<TAB>fingerprint<TAB>picoseconds<TAB>name` cache line.
fn parse_line(line: &str) -> Result<(u64, u64, &str), TuneCacheParseErrorKind> {
    let mut fields = line.splitn(4, '\t');
    let (Some(version), Some(fp), Some(ps), Some(name)) =
        (fields.next(), fields.next(), fields.next(), fields.next())
    else {
        return Err(TuneCacheParseErrorKind::BadShape {
            fields: line.split('\t').count(),
        });
    };
    if version != "v1" {
        return Err(TuneCacheParseErrorKind::BadVersion(version.to_owned()));
    }
    let fp = u64::from_str_radix(fp.trim_start_matches("0x"), 16)
        .map_err(|e| TuneCacheParseErrorKind::BadFingerprint(e.to_string()))?;
    let ps = ps
        .parse::<u64>()
        .map_err(|e| TuneCacheParseErrorKind::BadTime(e.to_string()))?;
    Ok((fp, ps, name))
}

/// A [`TuneCache`] file line that could not be parsed, naming the 1-based
/// offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneCacheParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub kind: TuneCacheParseErrorKind,
}

/// The ways one cache line can be malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuneCacheParseErrorKind {
    /// Fewer than 4 tab-separated fields.
    BadShape {
        /// Number of fields actually present.
        fields: usize,
    },
    /// Field 1 is not the `v1` version tag.
    BadVersion(String),
    /// Field 2 is not a hexadecimal `u64` fingerprint.
    BadFingerprint(String),
    /// Field 3 is not a `u64` picosecond time.
    BadTime(String),
}

impl fmt::Display for TuneCacheParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            TuneCacheParseErrorKind::BadShape { fields } => {
                write!(f, "expected 4 tab-separated fields, found {fields}")
            }
            TuneCacheParseErrorKind::BadVersion(v) => {
                write!(f, "unknown version tag {v:?} (expected \"v1\")")
            }
            TuneCacheParseErrorKind::BadFingerprint(e) => {
                write!(f, "bad fingerprint ({e})")
            }
            TuneCacheParseErrorKind::BadTime(e) => write!(f, "bad picosecond time ({e})"),
        }
    }
}

impl std::error::Error for TuneCacheParseError {}

/// Error from [`TuneCache::load`]: the underlying I/O failed, or a line
/// was malformed.
#[derive(Debug)]
pub enum TuneCacheLoadError {
    /// The file could not be read.
    Io(io::Error),
    /// A line could not be parsed.
    Parse(TuneCacheParseError),
}

impl From<TuneCacheParseError> for TuneCacheLoadError {
    fn from(e: TuneCacheParseError) -> Self {
        TuneCacheLoadError::Parse(e)
    }
}

impl fmt::Display for TuneCacheLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneCacheLoadError::Io(e) => write!(f, "{e}"),
            TuneCacheLoadError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TuneCacheLoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TuneCacheLoadError::Io(e) => Some(e),
            TuneCacheLoadError::Parse(e) => Some(e),
        }
    }
}

/// [`autotune`], memoized: candidates already evaluated for this
/// `fingerprint` are answered from `cache` without calling `run`; misses
/// are simulated once and recorded. The returned ranking is identical to
/// an uncached [`autotune`] of the same candidates (the simulator is
/// deterministic), in candidate order.
pub fn autotune_cached<F>(
    cache: &mut TuneCache,
    fingerprint: u64,
    candidates: Vec<TuneCandidate>,
    mut run: F,
) -> TuneReport
where
    F: FnMut(&TuneCandidate) -> SimTime,
{
    let results = candidates
        .into_iter()
        .map(|candidate| {
            let key = candidate.cache_key();
            let time = match cache.peek(fingerprint, &key) {
                Some(time) => {
                    cache.hits += 1;
                    time
                }
                None => {
                    cache.misses += 1;
                    let time = run(&candidate);
                    cache.insert(fingerprint, &key, time);
                    time
                }
            };
            TuneResult { candidate, time }
        })
        .collect();
    TuneReport { results }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates() -> Vec<TuneCandidate> {
        vec![
            TuneCandidate::new(vec!["TileSync".into(); 2], OptFlags::NONE),
            TuneCandidate::new(vec!["TileSync".into(); 2], OptFlags::WRT),
            TuneCandidate::new(vec!["RowSync".into(); 2], OptFlags::WRT),
        ]
    }

    #[test]
    fn autotune_picks_minimum_time() {
        let report = autotune(candidates(), |c| {
            // Pretend RowSync+WRT is fastest.
            match c.name.as_str() {
                "TileSync" => SimTime::from_micros(30.0),
                "TileSync+WRT" => SimTime::from_micros(25.0),
                "RowSync+WRT" => SimTime::from_micros(20.0),
                other => panic!("unexpected candidate {other}"),
            }
        });
        assert_eq!(report.best().candidate.name, "RowSync+WRT");
        assert!((report.speedup_over("TileSync") - 1.5).abs() < 1e-9);
    }

    #[test]
    fn candidate_names_follow_paper_convention() {
        let c = TuneCandidate::new(vec!["RowSync".into()], OptFlags::WRT);
        assert_eq!(c.name, "RowSync+WRT");
        let c = TuneCandidate::new(vec!["TileSync".into()], OptFlags::NONE);
        assert_eq!(c.name, "TileSync");
    }

    #[test]
    fn report_displays_ranking() {
        let report = autotune(candidates(), |_| SimTime::from_micros(10.0));
        let s = report.to_string();
        assert!(s.contains("RowSync+WRT"), "{s}");
        assert!(s.contains("<== best"), "{s}");
    }

    #[test]
    fn cache_distinguishes_fingerprints() {
        let mut cache = TuneCache::new();
        let mut simulated = 0usize;
        for fp in [1u64, 2, 1] {
            autotune_cached(&mut cache, fp, candidates(), |_| {
                simulated += 1;
                SimTime::from_micros(fp as f64)
            });
        }
        // Two distinct pipelines simulate; the third sweep is all hits.
        assert_eq!(simulated, 6);
        assert_eq!(cache.len(), 6);
        assert_eq!((cache.misses(), cache.hits()), (6, 3));
        assert_eq!(
            cache.peek(2, "RowSync/RowSync+WRT"),
            Some(SimTime::from_micros(2.0))
        );
        assert_eq!(cache.peek(3, "RowSync/RowSync+WRT"), None);
    }

    #[test]
    fn cache_roundtrips_through_disk() {
        let mut cache = TuneCache::new();
        autotune_cached(&mut cache, 0xBEEF, candidates(), |c| {
            SimTime::from_picos(c.name.len() as u64 * 1_000)
        });
        let path = std::env::temp_dir().join(format!(
            "cusyncgen-tunecache-unit-{}.tsv",
            std::process::id()
        ));
        cache.save(&path).expect("write cache");
        let reloaded = TuneCache::load(&path).expect("read cache");
        std::fs::remove_file(&path).ok();
        assert_eq!(reloaded.len(), cache.len());
        let report = autotune_cached(&mut TuneCache::new(), 0, vec![], |_| unreachable!());
        assert!(report.results.is_empty());
        for name in [
            "TileSync/TileSync",
            "TileSync/TileSync+WRT",
            "RowSync/RowSync+WRT",
        ] {
            assert_eq!(
                reloaded.peek(0xBEEF, name),
                cache.peek(0xBEEF, name),
                "{name}"
            );
        }
        assert_eq!((reloaded.hits(), reloaded.misses()), (0, 0));
    }

    #[test]
    fn lossy_load_skips_and_counts_malformed_lines() {
        let path = std::env::temp_dir().join(format!(
            "cusyncgen-tunecache-malformed-{}.tsv",
            std::process::id()
        ));
        std::fs::write(
            &path,
            "v1\t0x10\t500\tGood\nnot-a-line\nv1\t0xZZ\t1\tBadFp\nv1\t0x11\tNaN\tBadPs\n",
        )
        .expect("write fixture");
        let (cache, skipped) = TuneCache::load_lossy(&path).expect("read fixture");
        std::fs::remove_file(&path).ok();
        assert_eq!(cache.len(), 1);
        assert_eq!(skipped, 3);
        assert_eq!(cache.peek(0x10, "Good"), Some(SimTime::from_picos(500)));
    }

    #[test]
    fn strict_load_names_the_offending_line() {
        let path = std::env::temp_dir().join(format!(
            "cusyncgen-tunecache-strict-{}.tsv",
            std::process::id()
        ));
        for (text, line) in [
            ("v1\t0x10\t500\tGood\nnot-a-line\n", 2),
            ("v1\t0xZZ\t1\tBadFp\n", 1),
            ("v1\t0x10\t500\tGood\nv1\t0x11\tNaN\tBadPs\n", 2),
            ("v2\t0x10\t500\tFuture\n", 1),
        ] {
            std::fs::write(&path, text).expect("write fixture");
            let err = TuneCache::load(&path).expect_err("malformed line must fail");
            match err {
                TuneCacheLoadError::Parse(e) => {
                    assert_eq!(e.line, line, "{text:?}");
                    assert!(e.to_string().starts_with(&format!("line {line}: ")), "{e}");
                }
                other => panic!("expected parse error, got {other:?}"),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn strict_load_parse_kinds_are_specific() {
        let path = std::env::temp_dir().join(format!(
            "cusyncgen-tunecache-kinds-{}.tsv",
            std::process::id()
        ));
        for (text, want) in [
            ("too\tfew", TuneCacheParseErrorKind::BadShape { fields: 2 }),
            (
                "v9\t0x1\t2\tx",
                TuneCacheParseErrorKind::BadVersion("v9".into()),
            ),
        ] {
            std::fs::write(&path, text).expect("write fixture");
            match TuneCache::load(&path).expect_err("must fail") {
                TuneCacheLoadError::Parse(e) => assert_eq!(e.kind, want, "{text:?}"),
                other => panic!("expected parse error, got {other:?}"),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let path = std::env::temp_dir().join("cusyncgen-tunecache-does-not-exist.tsv");
        assert!(matches!(
            TuneCache::load(&path),
            Err(TuneCacheLoadError::Io(_))
        ));
        assert!(TuneCache::load_lossy(&path).is_err());
    }

    #[test]
    fn control_characters_in_names_are_hardened_at_insert() {
        let mut cache = TuneCache::new();
        let hostile = "Tile\tSync\nv1\t0xDEAD\t1\tForged";
        cache.insert(1, hostile, SimTime::from_picos(42));
        // The caller reads back through the same normalization.
        assert_eq!(cache.peek(1, hostile), Some(SimTime::from_picos(42)));
        let path = std::env::temp_dir().join(format!(
            "cusyncgen-tunecache-hostile-{}.tsv",
            std::process::id()
        ));
        cache.save(&path).expect("write cache");
        let reloaded = TuneCache::load(&path).expect("hardened save must reload strictly");
        std::fs::remove_file(&path).ok();
        assert_eq!(reloaded.len(), 1);
        assert_eq!(reloaded.peek(1, hostile), Some(SimTime::from_picos(42)));
    }
}
