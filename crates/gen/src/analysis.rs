//! Bounds checking of dependency specifications (workflow step 2 of
//! Section IV-A: "cuSyncGen checks bounds of producer and consumer tiles
//! based on grid values").

use std::fmt;

use cusync_sim::Dim3;

use crate::dsl::{DepDecl, DepSpec, GridId};

/// Errors detected while analyzing a [`DepSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// A dependence references a producer tile outside the producer grid.
    OutOfBounds {
        /// Consumer grid name.
        consumer: String,
        /// Producer grid name.
        producer: String,
        /// The consumer tile whose dependence is out of bounds.
        consumer_tile: Dim3,
        /// The offending producer reference.
        produced: Dim3,
        /// Producer grid extent.
        extent: Dim3,
    },
    /// A consumer tile depends on no producer tiles at all — a degenerate
    /// dependence that would make waits vacuous.
    EmptyDependence {
        /// Consumer grid name.
        consumer: String,
        /// The tile with no producers.
        consumer_tile: Dim3,
    },
    /// A grid id was used that does not belong to this specification.
    UnknownGrid {
        /// Index of the unknown grid.
        index: usize,
    },
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::OutOfBounds {
                consumer,
                producer,
                consumer_tile,
                produced,
                extent,
            } => write!(
                f,
                "dependence of {consumer} tile {consumer_tile} references {producer} tile \
                 {produced}, outside grid {extent}"
            ),
            GenError::EmptyDependence {
                consumer,
                consumer_tile,
            } => write!(
                f,
                "{consumer} tile {consumer_tile} has an empty producer set"
            ),
            GenError::UnknownGrid { index } => write!(f, "unknown grid index {index}"),
        }
    }
}

impl std::error::Error for GenError {}

fn check_grid(spec: &DepSpec, id: GridId) -> Result<(), GenError> {
    if id.0 >= spec.num_grids() {
        return Err(GenError::UnknownGrid { index: id.0 });
    }
    Ok(())
}

/// Validates one dependence: every produced reference of every consumer
/// tile must fall inside the producer grid.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_dep(spec: &DepSpec, dep: &DepDecl) -> Result<(), GenError> {
    check_grid(spec, dep.consumer)?;
    check_grid(spec, dep.producer)?;
    let cons = spec.extent(dep.consumer);
    let prod = spec.extent(dep.producer);
    for tile in Dim3::new(cons.x, cons.y, 1).iter() {
        let produced = spec.producers_of(dep, tile);
        if produced.is_empty() {
            return Err(GenError::EmptyDependence {
                consumer: spec.name(dep.consumer).to_owned(),
                consumer_tile: tile,
            });
        }
        for p in produced {
            if p.x >= prod.x || p.y >= prod.y {
                return Err(GenError::OutOfBounds {
                    consumer: spec.name(dep.consumer).to_owned(),
                    producer: spec.name(dep.producer).to_owned(),
                    consumer_tile: tile,
                    produced: p,
                    extent: prod,
                });
            }
        }
    }
    Ok(())
}

/// Validates every dependence of `spec`.
///
/// # Errors
///
/// Returns the first violation found, in declaration order.
pub fn check_spec(spec: &DepSpec) -> Result<(), GenError> {
    for dep in spec.deps() {
        check_dep(spec, dep)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{AffineExpr, Pattern};

    #[test]
    fn valid_mlp_spec_passes() {
        let mut spec = DepSpec::new();
        let g1 = spec.grid("g1", Dim3::new(24, 2, 1));
        let g2 = spec.grid("g2", Dim3::new(48, 2, 1));
        spec.depend(g2, g1, Pattern::ForAllX(AffineExpr::y()));
        assert_eq!(check_spec(&spec), Ok(()));
    }

    #[test]
    fn out_of_bounds_strided_ref_is_caught() {
        let mut spec = DepSpec::new();
        let g1 = spec.grid("g1", Dim3::new(4, 2, 1));
        let gp = spec.grid("gP", Dim3::new(3, 2, 1));
        // x + 3 overflows the 4-wide producer for x >= 1.
        spec.depend(
            gp,
            g1,
            Pattern::Tiles(vec![
                (AffineExpr::x(), AffineExpr::y()),
                (AffineExpr::x().plus(3), AffineExpr::y()),
            ]),
        );
        let err = check_spec(&spec).unwrap_err();
        match err {
            GenError::OutOfBounds { produced, .. } => assert_eq!(produced.x, 4),
            other => panic!("expected OutOfBounds, got {other:?}"),
        }
    }

    #[test]
    fn row_mismatch_is_caught() {
        let mut spec = DepSpec::new();
        let g1 = spec.grid("g1", Dim3::new(4, 1, 1));
        let g2 = spec.grid("g2", Dim3::new(4, 2, 1));
        // Consumer has 2 rows but producer only 1.
        spec.depend(g2, g1, Pattern::ForAllX(AffineExpr::y()));
        assert!(matches!(
            check_spec(&spec),
            Err(GenError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn error_messages_name_the_grids() {
        let mut spec = DepSpec::new();
        let g1 = spec.grid("conv1", Dim3::new(2, 2, 1));
        let g2 = spec.grid("conv2", Dim3::new(30, 2, 1));
        spec.depend(
            g2,
            g1,
            Pattern::Tiles(vec![(AffineExpr::x().div(9), AffineExpr::y())]),
        );
        let err = check_spec(&spec).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("conv2") && msg.contains("conv1"), "{msg}");
    }
}
