//! Bounds checking of dependency specifications (workflow step 2 of
//! Section IV-A: "cuSyncGen checks bounds of producer and consumer tiles
//! based on grid values"), plus mechanism-assignment validation
//! ([`check_mechanisms`]) for the per-edge [`SyncMechanism`] axis.

use std::fmt;

use cusync::SyncMechanism;
use cusync_sim::Dim3;

use crate::dsl::{DepDecl, DepSpec, GridId};

/// Errors detected while analyzing a [`DepSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// A dependence references a producer tile outside the producer grid.
    OutOfBounds {
        /// Consumer grid name.
        consumer: String,
        /// Producer grid name.
        producer: String,
        /// The consumer tile whose dependence is out of bounds.
        consumer_tile: Dim3,
        /// The offending producer reference.
        produced: Dim3,
        /// Producer grid extent.
        extent: Dim3,
    },
    /// A consumer tile depends on no producer tiles at all — a degenerate
    /// dependence that would make waits vacuous.
    EmptyDependence {
        /// Consumer grid name.
        consumer: String,
        /// The tile with no producers.
        consumer_tile: Dim3,
    },
    /// A grid id was used that does not belong to this specification.
    UnknownGrid {
        /// Index of the unknown grid.
        index: usize,
    },
    /// A mechanism assignment did not have one entry per declared
    /// dependence.
    MechanismArity {
        /// Number of dependences in the spec.
        expected: usize,
        /// Number of mechanisms supplied.
        got: usize,
    },
    /// A [`Pdl`](SyncMechanism::Pdl) edge whose consumer reads the
    /// producer's tiles **during its launch preamble** — before the
    /// `cudaGridDependencySynchronize` barrier that ends the preamble, so
    /// the whole-grid ordering PDL provides arrives too late to guard the
    /// read.
    PdlPreambleRead {
        /// Consumer grid name.
        consumer: String,
        /// Producer grid name.
        producer: String,
    },
    /// Coarse (PDL / stream-serial) edges gate the consumer's *launch* on
    /// the producer's progress; a cycle of such gates can never dispatch.
    CoarseCycle {
        /// Name of a grid participating in the cycle.
        grid: String,
    },
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::OutOfBounds {
                consumer,
                producer,
                consumer_tile,
                produced,
                extent,
            } => write!(
                f,
                "dependence of {consumer} tile {consumer_tile} references {producer} tile \
                 {produced}, outside grid {extent}"
            ),
            GenError::EmptyDependence {
                consumer,
                consumer_tile,
            } => write!(
                f,
                "{consumer} tile {consumer_tile} has an empty producer set"
            ),
            GenError::UnknownGrid { index } => write!(f, "unknown grid index {index}"),
            GenError::MechanismArity { expected, got } => write!(
                f,
                "mechanism assignment has {got} entries for {expected} dependences"
            ),
            GenError::PdlPreambleRead { consumer, producer } => write!(
                f,
                "{consumer} reads {producer} tiles in its launch preamble, before the grid \
                 dependency barrier — PDL cannot guard that read"
            ),
            GenError::CoarseCycle { grid } => write!(
                f,
                "coarse launch-gate cycle involving grid {grid}: the gated grids can never \
                 dispatch"
            ),
        }
    }
}

impl std::error::Error for GenError {}

fn check_grid(spec: &DepSpec, id: GridId) -> Result<(), GenError> {
    if id.0 >= spec.num_grids() {
        return Err(GenError::UnknownGrid { index: id.0 });
    }
    Ok(())
}

/// Validates one dependence: every produced reference of every consumer
/// tile must fall inside the producer grid.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_dep(spec: &DepSpec, dep: &DepDecl) -> Result<(), GenError> {
    check_grid(spec, dep.consumer)?;
    check_grid(spec, dep.producer)?;
    let cons = spec.extent(dep.consumer);
    let prod = spec.extent(dep.producer);
    for tile in Dim3::new(cons.x, cons.y, 1).iter() {
        let produced = spec.producers_of(dep, tile);
        if produced.is_empty() {
            return Err(GenError::EmptyDependence {
                consumer: spec.name(dep.consumer).to_owned(),
                consumer_tile: tile,
            });
        }
        for p in produced {
            if p.x >= prod.x || p.y >= prod.y {
                return Err(GenError::OutOfBounds {
                    consumer: spec.name(dep.consumer).to_owned(),
                    producer: spec.name(dep.producer).to_owned(),
                    consumer_tile: tile,
                    produced: p,
                    extent: prod,
                });
            }
        }
    }
    Ok(())
}

/// Validates every dependence of `spec`.
///
/// # Errors
///
/// Returns the first violation found, in declaration order.
pub fn check_spec(spec: &DepSpec) -> Result<(), GenError> {
    for dep in spec.deps() {
        check_dep(spec, dep)?;
    }
    Ok(())
}

/// Validates a per-edge mechanism assignment against `spec` (one
/// mechanism per declared dependence, in declaration order).
///
/// `preamble_reads[i]` declares that the consumer of dependence `i` reads
/// the producer's data during its launch preamble — e.g. a hoisted
/// operand prefetch (the `R` optimization applied to the dependent
/// operand). PDL's whole-grid barrier *ends* the preamble, so such a read
/// precedes the only ordering PDL provides and must be rejected
/// ([`GenError::PdlPreambleRead`]). Fine edges guard every read with a
/// per-tile semaphore and stream-serial edges gate the launch itself, so
/// both tolerate preamble reads.
///
/// Coarse mechanisms (PDL / stream-serial) gate the consumer grid's
/// *dispatch* on the producer grid; a cycle of coarse edges can never
/// dispatch and is rejected ([`GenError::CoarseCycle`]) even when the
/// per-tile dependence pattern would be satisfiable under fine sync.
///
/// # Errors
///
/// [`GenError::MechanismArity`] on a length mismatch (between
/// `mechanisms` and the spec, or `preamble_reads` and the spec), then the
/// first per-edge violation in declaration order.
pub fn check_mechanisms(
    spec: &DepSpec,
    mechanisms: &[SyncMechanism],
    preamble_reads: &[bool],
) -> Result<(), GenError> {
    let n = spec.deps().len();
    for got in [mechanisms.len(), preamble_reads.len()] {
        if got != n {
            return Err(GenError::MechanismArity { expected: n, got });
        }
    }
    for ((dep, &m), &pre) in spec.deps().iter().zip(mechanisms).zip(preamble_reads) {
        check_grid(spec, dep.consumer)?;
        check_grid(spec, dep.producer)?;
        if m == SyncMechanism::Pdl && pre {
            return Err(GenError::PdlPreambleRead {
                consumer: spec.name(dep.consumer).to_owned(),
                producer: spec.name(dep.producer).to_owned(),
            });
        }
    }
    // Coarse edges impose grid-level launch ordering; that relation must
    // be acyclic or the gated grids never dispatch.
    let g = spec.num_grids();
    let mut indegree = vec![0usize; g];
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); g];
    for (dep, &m) in spec.deps().iter().zip(mechanisms) {
        if !m.is_fine() {
            out[dep.producer.0].push(dep.consumer.0);
            indegree[dep.consumer.0] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..g).filter(|&i| indegree[i] == 0).collect();
    let mut seen = 0usize;
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        seen += 1;
        for &c in &out[v] {
            indegree[c] -= 1;
            if indegree[c] == 0 {
                queue.push(c);
            }
        }
    }
    if seen != g {
        let cyclic = (0..g).find(|&i| indegree[i] > 0).unwrap_or(0);
        return Err(GenError::CoarseCycle {
            grid: spec.name(GridId(cyclic)).to_owned(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{AffineExpr, Pattern};

    #[test]
    fn valid_mlp_spec_passes() {
        let mut spec = DepSpec::new();
        let g1 = spec.grid("g1", Dim3::new(24, 2, 1));
        let g2 = spec.grid("g2", Dim3::new(48, 2, 1));
        spec.depend(g2, g1, Pattern::ForAllX(AffineExpr::y()));
        assert_eq!(check_spec(&spec), Ok(()));
    }

    #[test]
    fn out_of_bounds_strided_ref_is_caught() {
        let mut spec = DepSpec::new();
        let g1 = spec.grid("g1", Dim3::new(4, 2, 1));
        let gp = spec.grid("gP", Dim3::new(3, 2, 1));
        // x + 3 overflows the 4-wide producer for x >= 1.
        spec.depend(
            gp,
            g1,
            Pattern::Tiles(vec![
                (AffineExpr::x(), AffineExpr::y()),
                (AffineExpr::x().plus(3), AffineExpr::y()),
            ]),
        );
        let err = check_spec(&spec).unwrap_err();
        match err {
            GenError::OutOfBounds { produced, .. } => assert_eq!(produced.x, 4),
            other => panic!("expected OutOfBounds, got {other:?}"),
        }
    }

    #[test]
    fn row_mismatch_is_caught() {
        let mut spec = DepSpec::new();
        let g1 = spec.grid("g1", Dim3::new(4, 1, 1));
        let g2 = spec.grid("g2", Dim3::new(4, 2, 1));
        // Consumer has 2 rows but producer only 1.
        spec.depend(g2, g1, Pattern::ForAllX(AffineExpr::y()));
        assert!(matches!(
            check_spec(&spec),
            Err(GenError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn mechanism_arity_is_checked() {
        let mut spec = DepSpec::new();
        let g1 = spec.grid("g1", Dim3::new(4, 2, 1));
        let g2 = spec.grid("g2", Dim3::new(4, 2, 1));
        spec.depend(g2, g1, Pattern::ForAllX(AffineExpr::y()));
        assert_eq!(
            check_mechanisms(&spec, &[], &[false]),
            Err(GenError::MechanismArity {
                expected: 1,
                got: 0
            })
        );
        assert_eq!(
            check_mechanisms(&spec, &[SyncMechanism::Pdl], &[]),
            Err(GenError::MechanismArity {
                expected: 1,
                got: 0
            })
        );
        assert_eq!(
            check_mechanisms(&spec, &[SyncMechanism::Pdl], &[false]),
            Ok(())
        );
    }

    #[test]
    fn pdl_preamble_read_is_rejected() {
        let mut spec = DepSpec::new();
        let g1 = spec.grid("g1", Dim3::new(4, 2, 1));
        let g2 = spec.grid("g2", Dim3::new(4, 2, 1));
        spec.depend(g2, g1, Pattern::ForAllX(AffineExpr::y()));
        // Fine sync guards a hoisted read per-tile; PDL cannot.
        assert_eq!(
            check_mechanisms(&spec, &[SyncMechanism::TileSync], &[true]),
            Ok(())
        );
        let err = check_mechanisms(&spec, &[SyncMechanism::Pdl], &[true]).unwrap_err();
        match &err {
            GenError::PdlPreambleRead { consumer, producer } => {
                assert_eq!(consumer, "g2");
                assert_eq!(producer, "g1");
            }
            other => panic!("expected PdlPreambleRead, got {other:?}"),
        }
        assert!(err.to_string().contains("preamble"), "{err}");
        // Stream-serial gates the launch itself: the read is safe.
        assert_eq!(
            check_mechanisms(&spec, &[SyncMechanism::StreamSerial], &[true]),
            Ok(())
        );
    }

    #[test]
    fn coarse_gate_cycles_are_rejected() {
        let mut spec = DepSpec::new();
        let a = spec.grid("a", Dim3::new(2, 2, 1));
        let b = spec.grid("b", Dim3::new(2, 2, 1));
        spec.depend(b, a, Pattern::ForAllX(AffineExpr::y()));
        spec.depend(a, b, Pattern::ForAllX(AffineExpr::y()));
        // Both edges coarse: the launch gates form a cycle.
        assert!(matches!(
            check_mechanisms(
                &spec,
                &[SyncMechanism::Pdl, SyncMechanism::StreamSerial],
                &[false, false],
            ),
            Err(GenError::CoarseCycle { .. })
        ));
        // Breaking the cycle with a fine edge is accepted at this level
        // (fine-sync cycles are the runtime's deadlock domain).
        assert_eq!(
            check_mechanisms(
                &spec,
                &[SyncMechanism::Pdl, SyncMechanism::TileSync],
                &[false, false],
            ),
            Ok(())
        );
    }

    #[test]
    fn error_messages_name_the_grids() {
        let mut spec = DepSpec::new();
        let g1 = spec.grid("conv1", Dim3::new(2, 2, 1));
        let g2 = spec.grid("conv2", Dim3::new(30, 2, 1));
        spec.depend(
            g2,
            g1,
            Pattern::Tiles(vec![(AffineExpr::x().div(9), AffineExpr::y())]),
        );
        let err = check_spec(&spec).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("conv2") && msg.contains("conv1"), "{msg}");
    }
}
