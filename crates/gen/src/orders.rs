//! Tile processing order generation (workflow step 3 of Section IV-A).
//!
//! "We achieve minimum wait time when the consumer kernel consumes tiles in
//! the same order as they are produced by the producer kernel. Thus, we
//! schedule all N producer tiles consecutively for each consumer tile."
//! The consumer follows row-major order; the producer order visits the
//! producer tiles of consumer tile 0, then of consumer tile 1, and so on
//! (each producer tile scheduled at its first use).

use cusync::order::{producer_grouped_order, RowMajor, TableOrder};
use cusync::OrderRef;
use std::sync::Arc;

use crate::dsl::{DepDecl, DepSpec};

/// Generates the producer's tile processing order for `dep`: the N
/// producer tiles of each consumer tile are scheduled consecutively, with
/// consumers visited in row-major order.
pub fn producer_order(spec: &DepSpec, dep: &DepDecl) -> TableOrder {
    let producer_grid = spec.extent(dep.producer);
    let consumer_grid = spec.extent(dep.consumer);
    producer_grouped_order(
        &format!("{}-grouped", spec.name(dep.producer)),
        producer_grid,
        consumer_grid,
        |consumer| spec.producers_of(dep, consumer),
    )
}

/// The generated consumer order (always row-major; Section IV-A: "We also
/// set the consumer kernel to follow the row major order of tiles").
pub fn consumer_order() -> OrderRef {
    Arc::new(RowMajor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{AffineExpr, Pattern};
    use cusync::TileSchedule;
    use cusync_sim::Dim3;

    #[test]
    fn mlp_order_is_row_major_hence_identity() {
        // ForAllX with row-major consumers groups whole producer rows in
        // row order: that is exactly row-major.
        let mut spec = DepSpec::new();
        let g1 = spec.grid("g1", Dim3::new(4, 3, 1));
        let g2 = spec.grid("g2", Dim3::new(8, 3, 1));
        spec.depend(g2, g1, Pattern::ForAllX(AffineExpr::y()));
        let order = producer_order(&spec, &spec.deps()[0]);
        let schedule = TileSchedule::build(&order, Dim3::new(4, 3, 1)).unwrap();
        assert!(schedule.is_identity());
    }

    #[test]
    fn strided_order_groups_qkv_slices_consecutively() {
        // Consumer tile x needs producer tiles {x, x+2, x+4}: the producer
        // order interleaves the three slices.
        let mut spec = DepSpec::new();
        let g1 = spec.grid("g1", Dim3::new(6, 1, 1));
        let gp = spec.grid("gP", Dim3::new(2, 1, 1));
        spec.depend(
            gp,
            g1,
            Pattern::Tiles(vec![
                (AffineExpr::x(), AffineExpr::y()),
                (AffineExpr::x().plus(2), AffineExpr::y()),
                (AffineExpr::x().plus(4), AffineExpr::y()),
            ]),
        );
        let order = producer_order(&spec, &spec.deps()[0]);
        let grid = Dim3::new(6, 1, 1);
        let schedule = TileSchedule::build(&order, grid).unwrap();
        assert!(!schedule.is_identity());
        // First the tiles of consumer 0: {0, 2, 4}, then consumer 1's
        // remaining {1, 3, 5}.
        let positions: Vec<u32> = (0..6).map(|i| schedule.tile_at(i).x).collect();
        assert_eq!(positions, vec![0, 2, 4, 1, 3, 5]);
    }

    #[test]
    fn generated_order_is_always_a_bijection() {
        // Conv fold: many consumers share producer tiles; first-use order
        // must still be a valid permutation.
        let mut spec = DepSpec::new();
        let g1 = spec.grid("conv1", Dim3::new(2, 4, 1));
        let g2 = spec.grid("conv2", Dim3::new(18, 4, 1));
        spec.depend(
            g2,
            g1,
            Pattern::Tiles(vec![(AffineExpr::x().div(9), AffineExpr::y())]),
        );
        let order = producer_order(&spec, &spec.deps()[0]);
        let schedule = TileSchedule::build(&order, Dim3::new(2, 4, 1)).unwrap();
        assert_eq!(schedule.len(), 8);
    }

    #[test]
    fn consumer_order_is_row_major() {
        let order = consumer_order();
        assert_eq!(order.name(), "RowMajor");
    }
}
