//! Per-edge synchronization-mechanism auto-tuning.
//!
//! The paper tunes *policies* for a fixed fine-grained sync scheme; this
//! module tunes the **mechanism axis** instead: for each dependence edge
//! of a graph, choose between fine-grained tile semaphores and the
//! hardware's Programmatic Dependent Launch (or conservative stream
//! serialization). Neither mechanism dominates — PDL saves the per-tile
//! wait/post traffic and overlaps the consumer preamble with the
//! producer's tail wave, but gives only whole-grid ordering — so the best
//! assignment depends on the shape class.
//!
//! The full cross-product over `E` edges is `4^E`;
//! [`autotune_sync_mechanisms`] evaluates the two anchor baselines
//! (all-fine and all-PDL) and then refines the better one greedily, edge
//! by edge, pruning the rest of the cross-product. The result is
//! guaranteed no worse than either baseline because the final answer is
//! the minimum over every assignment actually evaluated. Evaluations are
//! memoized in the shared [`TuneCache`], keyed by a caller-provided shape
//! fingerprint × the mechanism assignment.

use cusync::SyncMechanism;
use cusync_sim::SimTime;

use crate::autotune::TuneCache;

/// The outcome of [`autotune_sync_mechanisms`]: the winning per-edge
/// assignment plus the anchor baselines it is guaranteed to beat-or-match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MechanismPlan {
    /// Chosen mechanism per edge, in the caller's edge order.
    pub assignment: Vec<SyncMechanism>,
    /// Simulated time of the chosen assignment.
    pub time: SimTime,
    /// Time of the all-[`TileSync`](SyncMechanism::TileSync) baseline
    /// (`None` if that combination was invalid for this graph).
    pub all_fine: Option<SimTime>,
    /// Time of the all-[`Pdl`](SyncMechanism::Pdl) baseline (`None` if
    /// invalid).
    pub all_pdl: Option<SimTime>,
    /// Number of distinct assignments evaluated (simulated or answered
    /// from cache) — the pruned sweep size, vs `4^edges` exhaustive.
    pub evaluated: usize,
}

impl MechanismPlan {
    /// `"TileSync/Pdl/..."` — the assignment as a stable string (also the
    /// cache-key suffix).
    pub fn describe(&self) -> String {
        assignment_key(&self.assignment)
    }
}

/// The [`TuneCache`] candidate key of one mechanism assignment. Prefixed
/// so mechanism entries can never collide with policy-candidate keys
/// ([`TuneCandidate::cache_key`](crate::TuneCandidate::cache_key)) under
/// the same fingerprint.
pub fn assignment_key(assignment: &[SyncMechanism]) -> String {
    let names: Vec<&str> = assignment.iter().map(|m| m.name()).collect();
    format!("mech:{}", names.join("/"))
}

/// Tunes the synchronization mechanism of each of `num_edges` dependence
/// edges, evaluating assignments with `run`.
///
/// `run` receives one mechanism per edge (the caller fixes the edge
/// order) and returns the simulated end-to-end time, or `None` when the
/// assignment is invalid for the graph (e.g. two fine edges out of one
/// producer demanding different policies). The all-fine and all-PDL
/// anchors are evaluated first, then a greedy edge-by-edge refinement of
/// the better anchor; the returned plan is the minimum over **all**
/// evaluated assignments, so it is never slower than a valid anchor.
///
/// Valid evaluations are memoized in `cache` under
/// `(fingerprint, `[`assignment_key`]`)`; pass a fingerprint describing
/// the *shape class* (problem sizes, GPU config), since the pipeline
/// itself differs per assignment.
///
/// # Panics
///
/// Panics if `run` returns `None` for every evaluated assignment
/// (including both anchors and the all-stream-serial fallback) — the
/// graph then has no tunable configuration at all.
pub fn autotune_sync_mechanisms<F>(
    num_edges: usize,
    fingerprint: u64,
    cache: &mut TuneCache,
    mut run: F,
) -> MechanismPlan
where
    F: FnMut(&[SyncMechanism]) -> Option<SimTime>,
{
    let mut evaluated: Vec<(Vec<SyncMechanism>, SimTime)> = Vec::new();
    let mut tried: Vec<String> = Vec::new();
    let mut eval = |assignment: &[SyncMechanism],
                    cache: &mut TuneCache,
                    evaluated: &mut Vec<(Vec<SyncMechanism>, SimTime)>,
                    tried: &mut Vec<String>|
     -> Option<SimTime> {
        let key = assignment_key(assignment);
        if tried.contains(&key) {
            // Already evaluated this call (possibly invalid): answer from
            // the evaluated list without re-running.
            return evaluated
                .iter()
                .find(|(a, _)| a == assignment)
                .map(|&(_, t)| t);
        }
        tried.push(key.clone());
        let time = match cache.peek(fingerprint, &key) {
            Some(time) => Some(time),
            None => {
                let time = run(assignment)?;
                cache.insert(fingerprint, &key, time);
                Some(time)
            }
        }?;
        evaluated.push((assignment.to_vec(), time));
        Some(time)
    };

    let all = |m: SyncMechanism| vec![m; num_edges];
    let fine = all(SyncMechanism::TileSync);
    let pdl = all(SyncMechanism::Pdl);
    let all_fine = eval(&fine, cache, &mut evaluated, &mut tried);
    let all_pdl = eval(&pdl, cache, &mut evaluated, &mut tried);

    // Greedy seed: the better valid anchor, else stream-serial (always
    // structurally valid: no semaphores, no policy constraints).
    let mut current = match (all_fine, all_pdl) {
        (Some(f), Some(p)) => {
            if f <= p {
                fine
            } else {
                pdl
            }
        }
        (Some(_), None) => fine,
        (None, Some(_)) => pdl,
        (None, None) => {
            let serial = all(SyncMechanism::StreamSerial);
            eval(&serial, cache, &mut evaluated, &mut tried)
                .expect("no valid mechanism assignment for this graph");
            serial
        }
    };

    // Edge-by-edge refinement: try every alternative mechanism on one
    // edge while the others are held fixed; adopt the best improvement,
    // then move on. Prunes 4^E to O(4·E) evaluations.
    for edge in 0..num_edges {
        let mut best: Option<(SyncMechanism, SimTime)> = None;
        for m in SyncMechanism::ALL {
            let mut candidate = current.clone();
            candidate[edge] = m;
            if let Some(t) = eval(&candidate, cache, &mut evaluated, &mut tried) {
                if best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((m, t));
                }
            }
        }
        if let Some((m, _)) = best {
            current[edge] = m;
        }
    }

    // The answer is the minimum over everything evaluated — by
    // construction never slower than a valid anchor.
    let (assignment, time) = evaluated
        .iter()
        .min_by_key(|(_, t)| *t)
        .expect("at least one assignment evaluated")
        .clone();
    MechanismPlan {
        assignment,
        time,
        all_fine,
        all_pdl,
        evaluated: evaluated.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic 2-edge cost surface where the optimum mixes
    /// mechanisms: edge 0 wants PDL, edge 1 wants TileSync.
    fn cost(assignment: &[SyncMechanism]) -> Option<SimTime> {
        let per_edge = |edge: usize, m: SyncMechanism| match (edge, m) {
            (0, SyncMechanism::Pdl) => Some(10),
            (0, _) => Some(20),
            (1, SyncMechanism::TileSync) => Some(10),
            (1, SyncMechanism::RowSync) => None,
            (1, _) => Some(25),
            _ => Some(30),
        };
        let mut total = 0u64;
        for (i, &m) in assignment.iter().enumerate() {
            total += per_edge(i, m)?;
        }
        Some(SimTime::from_picos(total))
    }

    #[test]
    fn greedy_beats_both_anchors_on_a_mixed_optimum() {
        let mut cache = TuneCache::new();
        let plan = autotune_sync_mechanisms(2, 7, &mut cache, cost);
        assert_eq!(
            plan.assignment,
            vec![SyncMechanism::Pdl, SyncMechanism::TileSync]
        );
        assert_eq!(plan.time, SimTime::from_picos(20));
        assert!(plan.time <= plan.all_fine.unwrap());
        assert!(plan.time <= plan.all_pdl.unwrap());
        // Far fewer than the 16 exhaustive combinations.
        assert!(plan.evaluated < 16, "{}", plan.evaluated);
    }

    #[test]
    fn second_tune_answers_from_cache() {
        let mut cache = TuneCache::new();
        let first = autotune_sync_mechanisms(2, 7, &mut cache, cost);
        let calls = std::cell::Cell::new(0);
        let again = autotune_sync_mechanisms(2, 7, &mut cache, |a| {
            calls.set(calls.get() + 1);
            cost(a)
        });
        assert_eq!(first.assignment, again.assignment);
        assert_eq!(first.time, again.time);
        // Only assignments that were *invalid* (never cached) re-run.
        assert!(calls.get() <= 2, "{}", calls.get());
    }

    #[test]
    fn invalid_anchor_falls_back_to_the_other() {
        let mut cache = TuneCache::new();
        // All-fine invalid; PDL-anchored tuning still works.
        let plan = autotune_sync_mechanisms(1, 8, &mut cache, |a| {
            if a[0].is_fine() {
                None
            } else {
                Some(SimTime::from_picos(5))
            }
        });
        assert!(plan.all_fine.is_none());
        assert_eq!(plan.all_pdl, Some(SimTime::from_picos(5)));
        assert!(!plan.assignment[0].is_fine());
    }

    #[test]
    fn zero_edges_is_a_single_evaluation() {
        let mut cache = TuneCache::new();
        let plan = autotune_sync_mechanisms(0, 9, &mut cache, |_| Some(SimTime::from_picos(3)));
        assert!(plan.assignment.is_empty());
        assert_eq!(plan.time, SimTime::from_picos(3));
        assert_eq!(plan.evaluated, 1);
        assert_eq!(plan.describe(), "mech:");
    }

    #[test]
    fn keys_are_prefixed_and_stable() {
        let key = assignment_key(&[SyncMechanism::Pdl, SyncMechanism::StreamSerial]);
        assert_eq!(key, "mech:Pdl/StreamSerial");
    }
}
