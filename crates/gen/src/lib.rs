//! # cusyncgen: the cuSync policy and tile-order compiler
//!
//! Reproduction of `cuSyncGen` (Section IV of the paper): a DSL for
//! describing tile dependencies between kernels, and a compiler that turns
//! a specification into
//!
//! 1. **bounds checks** over the declared grids ([`check_spec`]),
//! 2. a **tile processing order** that schedules all producer tiles of
//!    each consumer tile consecutively ([`producer_order`]),
//! 3. **synchronization policies** — per dimension, one semaphore per tile
//!    or one shared semaphore per producer group ([`policies_for`]), which
//!    instantiates the paper's `TileSync`, `RowSync`, `StridedSync` and
//!    `Conv2DTileSync`,
//! 4. the equivalent **CUDA C++ source** a user would plug into the real
//!    cuSync ([`emit_spec`]), and
//! 5. an **auto-tuner** that executes all generated (policy x
//!    optimization) combinations on the simulator and picks the fastest
//!    ([`autotune`]).
//!
//! ## Example: compiling the Fig. 5a MLP dependence
//!
//! ```
//! use cusyncgen::{check_spec, emit_spec, policies_for, producer_order};
//! use cusyncgen::{AffineExpr, DepSpec, Pattern};
//! use cusync_sim::Dim3;
//!
//! let mut spec = DepSpec::new();
//! let g1 = spec.grid("g1", Dim3::new(24, 2, 1));
//! let g2 = spec.grid("g2", Dim3::new(48, 2, 1));
//! spec.depend(g2, g1, Pattern::ForAllX(AffineExpr::y()));
//! check_spec(&spec)?;
//!
//! let policies = policies_for(&spec, &spec.deps()[0]);
//! assert_eq!(policies[0].name, "TileSync");
//! assert_eq!(policies[1].name, "RowSync");
//!
//! let cuda = emit_spec(&spec);
//! assert!(cuda.contains("__device__ int sem"));
//! # Ok::<(), cusyncgen::GenError>(())
//! ```

#![warn(missing_docs)]

mod analysis;
mod autotune;
mod codegen;
mod dsl;
mod mechtune;
mod orders;
mod policies;

pub use analysis::{check_dep, check_mechanisms, check_spec, GenError};
pub use autotune::{
    autotune, autotune_cached, TuneCache, TuneCacheLoadError, TuneCacheParseError,
    TuneCacheParseErrorKind, TuneCandidate, TuneReport, TuneResult,
};
pub use codegen::{emit_order, emit_policy, emit_spec};
pub use dsl::{AffineExpr, DepDecl, DepSpec, GridId, Pattern};
pub use mechtune::{assignment_key, autotune_sync_mechanisms, MechanismPlan};
pub use orders::{consumer_order, producer_order};
pub use policies::{policies_for, NamedPolicy};
