//! The dependency-description DSL (Section IV-A, Fig. 5).
//!
//! The paper embeds the DSL in C++; here it is embedded in Rust. A
//! [`DepSpec`] declares kernel grids with exact extents (enabling bounds
//! checking and efficient code), and dependencies between consumer tiles
//! and producer tiles expressed as affine functions (with floor division)
//! of the consumer tile coordinates, plus `ForAll` ranges over a grid
//! dimension.

use std::fmt;

use cusync_sim::Dim3;

/// Handle to a grid declared in a [`DepSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GridId(pub(crate) usize);

impl fmt::Display for GridId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// An affine index expression with floor division over a consumer tile's
/// coordinates: `(cx*x + cy*y + offset) / div`.
///
/// # Examples
///
/// ```
/// use cusyncgen::AffineExpr;
/// use cusync_sim::Dim3;
///
/// // Fig. 5c: the producing channel tile is x / (R*S).
/// let e = AffineExpr::x().div(9);
/// assert_eq!(e.eval(Dim3::new(20, 3, 0)), Some(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffineExpr {
    /// Coefficient of the consumer tile's x coordinate.
    pub cx: i64,
    /// Coefficient of the consumer tile's y coordinate.
    pub cy: i64,
    /// Constant offset.
    pub offset: i64,
    /// Floor divisor (>= 1).
    pub divisor: i64,
}

impl AffineExpr {
    /// The consumer's x coordinate.
    pub const fn x() -> Self {
        AffineExpr {
            cx: 1,
            cy: 0,
            offset: 0,
            divisor: 1,
        }
    }

    /// The consumer's y coordinate.
    pub const fn y() -> Self {
        AffineExpr {
            cy: 1,
            cx: 0,
            offset: 0,
            divisor: 1,
        }
    }

    /// A constant.
    pub const fn constant(c: i64) -> Self {
        AffineExpr {
            cx: 0,
            cy: 0,
            offset: c,
            divisor: 1,
        }
    }

    /// Adds a constant offset.
    pub const fn plus(mut self, off: i64) -> Self {
        self.offset += off;
        self
    }

    /// Applies floor division.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero or negative.
    #[allow(clippy::should_implement_trait)]
    pub fn div(mut self, d: i64) -> Self {
        assert!(d >= 1, "divisor must be positive");
        self.divisor *= d;
        self
    }

    /// Evaluates at a consumer tile, returning `None` when the result is
    /// negative (out of bounds).
    pub fn eval(&self, tile: Dim3) -> Option<u32> {
        let v = (self.cx * tile.x as i64 + self.cy * tile.y as i64 + self.offset) / self.divisor;
        u32::try_from(v).ok()
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut terms = Vec::new();
        match self.cx {
            0 => {}
            1 => terms.push("x".to_owned()),
            c => terms.push(format!("{c}*x")),
        }
        match self.cy {
            0 => {}
            1 => terms.push("y".to_owned()),
            c => terms.push(format!("{c}*y")),
        }
        if self.offset != 0 || terms.is_empty() {
            terms.push(self.offset.to_string());
        }
        let body = terms.join(" + ");
        if self.divisor == 1 {
            write!(f, "{body}")
        } else {
            write!(f, "({body})/{}", self.divisor)
        }
    }
}

/// The set of producer tiles one consumer tile depends on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pattern {
    /// Explicit tile references `P(ex_i(x,y), ey_i(x,y))`.
    Tiles(Vec<(AffineExpr, AffineExpr)>),
    /// All column tiles of the row `ey(x,y)`:
    /// `ForAll(prod, x, Range(grid.x))` in the paper's syntax (Fig. 5a).
    ForAllX(AffineExpr),
    /// All row tiles of the column `ex(x,y)` (used by the Attention
    /// softmax dependence of Fig. 5b, line 15).
    ForAllY(AffineExpr),
}

/// One declared dependence: each tile of `consumer` needs the producer
/// tiles described by `pattern`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepDecl {
    /// Consuming grid.
    pub consumer: GridId,
    /// Producing grid.
    pub producer: GridId,
    /// Producer tiles per consumer tile.
    pub pattern: Pattern,
}

#[derive(Debug, Clone)]
pub(crate) struct GridDecl {
    pub name: String,
    pub extent: Dim3,
}

/// A complete dependency specification: grids plus dependences.
///
/// # Examples
///
/// The GPT-3 MLP dependence of Fig. 5a — the second GeMM's tile `(x, y)`
/// depends on all column tiles of the first GeMM's row `y`:
///
/// ```
/// use cusyncgen::{AffineExpr, DepSpec, Pattern};
/// use cusync_sim::Dim3;
///
/// let mut spec = DepSpec::new();
/// let g1 = spec.grid("g1", Dim3::new(24, 2, 1));
/// let g2 = spec.grid("g2", Dim3::new(48, 2, 1));
/// spec.depend(g2, g1, Pattern::ForAllX(AffineExpr::y()));
/// assert_eq!(spec.producers_of(&spec.deps()[0], Dim3::new(5, 1, 0)).len(), 24);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DepSpec {
    grids: Vec<GridDecl>,
    deps: Vec<DepDecl>,
}

impl DepSpec {
    /// Creates an empty specification.
    pub fn new() -> Self {
        DepSpec::default()
    }

    /// Declares a grid with its exact extent (the "maximum value of all
    /// dimensions" required by the DSL for bounds checking).
    pub fn grid(&mut self, name: &str, extent: Dim3) -> GridId {
        let id = GridId(self.grids.len());
        self.grids.push(GridDecl {
            name: name.to_owned(),
            extent,
        });
        id
    }

    /// Declares that each `consumer` tile depends on the `producer` tiles
    /// given by `pattern`.
    pub fn depend(&mut self, consumer: GridId, producer: GridId, pattern: Pattern) {
        self.deps.push(DepDecl {
            consumer,
            producer,
            pattern,
        });
    }

    /// Extent of grid `id`.
    pub fn extent(&self, id: GridId) -> Dim3 {
        self.grids[id.0].extent
    }

    /// Name of grid `id`.
    pub fn name(&self, id: GridId) -> &str {
        &self.grids[id.0].name
    }

    /// Declared dependences.
    pub fn deps(&self) -> &[DepDecl] {
        &self.deps
    }

    /// Number of declared grids.
    pub fn num_grids(&self) -> usize {
        self.grids.len()
    }

    /// Evaluates the producer tiles of `consumer_tile` under `dep`.
    /// Out-of-range (negative) references are dropped; the bounds checker
    /// reports upper-bound violations.
    pub fn producers_of(&self, dep: &DepDecl, consumer_tile: Dim3) -> Vec<Dim3> {
        let prod = self.extent(dep.producer);
        match &dep.pattern {
            Pattern::Tiles(refs) => refs
                .iter()
                .filter_map(|(ex, ey)| {
                    Some(Dim3::new(
                        ex.eval(consumer_tile)?,
                        ey.eval(consumer_tile)?,
                        0,
                    ))
                })
                .collect(),
            Pattern::ForAllX(ey) => match ey.eval(consumer_tile) {
                Some(y) => (0..prod.x).map(|x| Dim3::new(x, y, 0)).collect(),
                None => Vec::new(),
            },
            Pattern::ForAllY(ex) => match ex.eval(consumer_tile) {
                Some(x) => (0..prod.y).map(|y| Dim3::new(x, y, 0)).collect(),
                None => Vec::new(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_expr_evaluates_with_floor_div() {
        let e = AffineExpr::x().plus(3).div(2);
        assert_eq!(e.eval(Dim3::new(5, 0, 0)), Some(4));
        let neg = AffineExpr::x().plus(-10);
        assert_eq!(neg.eval(Dim3::new(5, 0, 0)), None);
    }

    #[test]
    fn affine_expr_displays_symbolically() {
        assert_eq!(AffineExpr::x().to_string(), "x");
        assert_eq!(AffineExpr::y().plus(2).to_string(), "y + 2");
        assert_eq!(AffineExpr::x().div(9).to_string(), "(x)/9");
        assert_eq!(AffineExpr::constant(0).to_string(), "0");
    }

    #[test]
    fn strided_pattern_yields_strided_tiles() {
        // Fig. 5b dep1P: Tile(x, y) and Tile(x + stride, y).
        let mut spec = DepSpec::new();
        let g1 = spec.grid("g1", Dim3::new(9, 4, 1));
        let gp = spec.grid("gP", Dim3::new(3, 4, 1));
        spec.depend(
            gp,
            g1,
            Pattern::Tiles(vec![
                (AffineExpr::x(), AffineExpr::y()),
                (AffineExpr::x().plus(3), AffineExpr::y()),
                (AffineExpr::x().plus(6), AffineExpr::y()),
            ]),
        );
        let tiles = spec.producers_of(&spec.deps()[0], Dim3::new(1, 2, 0));
        assert_eq!(
            tiles,
            vec![Dim3::new(1, 2, 0), Dim3::new(4, 2, 0), Dim3::new(7, 2, 0)]
        );
    }

    #[test]
    fn conv_pattern_folds_kernel_positions() {
        // Fig. 5c: Tile(x/(R*S), y).
        let mut spec = DepSpec::new();
        let g1 = spec.grid("conv1", Dim3::new(2, 8, 1));
        let g2 = spec.grid("conv2", Dim3::new(18, 8, 1));
        spec.depend(
            g2,
            g1,
            Pattern::Tiles(vec![(AffineExpr::x().div(9), AffineExpr::y())]),
        );
        assert_eq!(
            spec.producers_of(&spec.deps()[0], Dim3::new(10, 3, 0)),
            vec![Dim3::new(1, 3, 0)]
        );
    }

    #[test]
    fn forall_y_spans_rows() {
        let mut spec = DepSpec::new();
        let gp = spec.grid("gP", Dim3::new(4, 3, 1));
        let gr = spec.grid("gR", Dim3::new(4, 1, 1));
        spec.depend(gr, gp, Pattern::ForAllY(AffineExpr::x()));
        let tiles = spec.producers_of(&spec.deps()[0], Dim3::new(2, 0, 0));
        assert_eq!(tiles.len(), 3);
        assert!(tiles.iter().all(|t| t.x == 2));
    }
}
