//! Policy generation (workflow step 4 of Section IV-A).
//!
//! For a dependence where a consumer tile depends on N producer tiles,
//! cuSyncGen generates, per dimension, the policy that maps each tile to a
//! distinct semaphore (M = 1) and the policy that maps all N tiles to one
//! shared semaphore (M = N). Instantiated on the patterns of Section IV-B
//! this yields exactly the paper's named policies:
//!
//! - `ForAllX` (MLP) → `TileSync` and `RowSync`;
//! - strided tile lists (Attention QKV) → `TileSync`, `RowSync`, and
//!   `StridedSync`;
//! - folded single tiles (Conv2D, `x/(R*S)`) → `Conv2DTileSync` and
//!   `RowSync`.

use cusync::{Conv2DTileSync, PolicyRef, RowSync, StridedSync, SyncPolicy, TileSync};
use std::sync::Arc;

use crate::dsl::{DepDecl, DepSpec, Pattern};

/// A generated policy with its display name.
#[derive(Debug, Clone)]
pub struct NamedPolicy {
    /// Name shown in tuning reports ("TileSync", "RowSync", ...).
    pub name: String,
    /// The policy object, pluggable into a
    /// [`CuStage`](cusync::CuStage).
    pub policy: PolicyRef,
}

impl NamedPolicy {
    fn new(policy: impl SyncPolicy + 'static) -> Self {
        let policy: PolicyRef = Arc::new(policy);
        NamedPolicy {
            name: policy.name(),
            policy,
        }
    }
}

/// Detects a constant stride in the x expressions of an explicit tile
/// list: offsets `{o, o + s, o + 2s, ...}` with identical `cx`/`cy`.
fn detect_stride(dep: &DepDecl) -> Option<(u32, u32)> {
    let Pattern::Tiles(refs) = &dep.pattern else {
        return None;
    };
    if refs.len() < 2 {
        return None;
    }
    let first = refs[0].0;
    let mut offsets: Vec<i64> = Vec::with_capacity(refs.len());
    for (ex, _) in refs {
        if ex.cx != first.cx || ex.cy != first.cy || ex.divisor != first.divisor {
            return None;
        }
        offsets.push(ex.offset);
    }
    let stride = offsets[1] - offsets[0];
    if stride <= 0 {
        return None;
    }
    for w in offsets.windows(2) {
        if w[1] - w[0] != stride {
            return None;
        }
    }
    Some((stride as u32, refs.len() as u32))
}

/// Detects the Conv2D fold: a single tile reference `x / d` with `d > 1`.
fn detect_fold(dep: &DepDecl) -> Option<u32> {
    let Pattern::Tiles(refs) = &dep.pattern else {
        return None;
    };
    match refs.as_slice() {
        [(ex, _)] if ex.divisor > 1 && ex.cx == 1 && ex.cy == 0 => Some(ex.divisor as u32),
        _ => None,
    }
}

/// Generates the synchronization policies for the *producer* stage of
/// `dep`, finest first.
pub fn policies_for(_spec: &DepSpec, dep: &DepDecl) -> Vec<NamedPolicy> {
    if let Some(rs) = detect_fold(dep) {
        return vec![
            NamedPolicy::new(Conv2DTileSync::new(rs)),
            NamedPolicy::new(RowSync),
        ];
    }
    if let Some((stride, count)) = detect_stride(dep) {
        return vec![
            NamedPolicy::new(TileSync),
            NamedPolicy::new(StridedSync::new(stride, count)),
            NamedPolicy::new(RowSync),
        ];
    }
    match dep.pattern {
        Pattern::ForAllX(_) | Pattern::ForAllY(_) | Pattern::Tiles(_) => {
            vec![NamedPolicy::new(TileSync), NamedPolicy::new(RowSync)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::AffineExpr;
    use cusync_sim::Dim3;

    fn spec_with(pattern: Pattern) -> (DepSpec, DepDecl) {
        let mut spec = DepSpec::new();
        let g1 = spec.grid("g1", Dim3::new(9, 4, 1));
        let g2 = spec.grid("g2", Dim3::new(3, 4, 1));
        spec.depend(g2, g1, pattern);
        let dep = spec.deps()[0].clone();
        (spec, dep)
    }

    #[test]
    fn mlp_dependence_generates_tile_and_row_sync() {
        let (spec, dep) = spec_with(Pattern::ForAllX(AffineExpr::y()));
        let names: Vec<String> = policies_for(&spec, &dep)
            .into_iter()
            .map(|p| p.name)
            .collect();
        assert_eq!(names, vec!["TileSync", "RowSync"]);
    }

    #[test]
    fn attention_strided_dependence_adds_strided_sync() {
        let (spec, dep) = spec_with(Pattern::Tiles(vec![
            (AffineExpr::x(), AffineExpr::y()),
            (AffineExpr::x().plus(3), AffineExpr::y()),
            (AffineExpr::x().plus(6), AffineExpr::y()),
        ]));
        let policies = policies_for(&spec, &dep);
        let names: Vec<&str> = policies.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["TileSync", "StridedSync", "RowSync"]);
        // The strided policy groups tiles 3 apart.
        let strided = &policies[1].policy;
        let grid = Dim3::new(9, 4, 1);
        assert_eq!(
            strided.post_sem(Dim3::new(1, 0, 0), grid),
            strided.post_sem(Dim3::new(4, 0, 0), grid)
        );
        assert_eq!(strided.expected(Dim3::new(1, 0, 0), grid), 3);
    }

    #[test]
    fn conv_dependence_generates_conv2d_tile_sync() {
        let (spec, dep) = spec_with(Pattern::Tiles(vec![(
            AffineExpr::x().div(9),
            AffineExpr::y(),
        )]));
        let policies = policies_for(&spec, &dep);
        let names: Vec<&str> = policies.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["Conv2DTileSync", "RowSync"]);
    }

    #[test]
    fn irregular_tile_lists_fall_back_to_tile_and_row() {
        let (spec, dep) = spec_with(Pattern::Tiles(vec![
            (AffineExpr::x(), AffineExpr::y()),
            (AffineExpr::x().plus(1), AffineExpr::y()),
            (AffineExpr::x().plus(5), AffineExpr::y()),
        ]));
        let names: Vec<String> = policies_for(&spec, &dep)
            .into_iter()
            .map(|p| p.name)
            .collect();
        assert_eq!(names, vec!["TileSync", "RowSync"]);
    }
}
