//! Property test: [`TuneCache`] save/load round-trips adversarial entries.
//!
//! Fingerprints span the full `u64` range, times are arbitrary picosecond
//! counts, and candidate names are drawn from a pool that includes the
//! bytes the v1 tab-separated line format is most allergic to (tabs,
//! newlines, NUL, escape) plus multi-byte UTF-8. The property is that
//! whatever `insert` accepted, a `save` → `load` cycle reproduces exactly
//! — with zero lines skipped under `load_lossy` and byte-identical bytes
//! on a second save.

use cusync_sim::SimTime;
use cusyncgen::TuneCache;
use proptest::prelude::*;

/// Characters the name generator draws from. The first row is benign;
/// the second row holds the format's separator/terminator characters
/// (which `insert` must harden) and printable-but-odd code points.
const POOL: &[char] = &[
    'a', 'Z', '0', '_', '/', ':', ' ', '~', '\u{3a9}', '\u{2200}', '\t', '\n', '\r', '\u{0}',
    '\u{1}', '\u{1b}', '\u{7f}',
];

/// Deterministically builds a (possibly empty, possibly hostile) name
/// from 64 bits of entropy.
fn name_from(mut bits: u64) -> String {
    let len = (bits % 12) as usize;
    bits /= 12;
    (0..len)
        .map(|_| {
            let c = POOL[(bits % POOL.len() as u64) as usize];
            bits /= POOL.len() as u64;
            c
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn save_load_round_trips_adversarial_entries(
        fp1 in 0u64..u64::MAX,
        fp2 in 0u64..u64::MAX,
        name1 in 0u64..u64::MAX,
        name2 in 0u64..u64::MAX,
        t1 in 0u64..u64::MAX,
        t2 in 0u64..u64::MAX,
    ) {
        let entries = [
            (fp1, name_from(name1), SimTime::from_picos(t1)),
            (fp2, name_from(name2), SimTime::from_picos(t2)),
        ];
        let mut cache = TuneCache::new();
        for (fp, name, time) in &entries {
            cache.insert(*fp, name, *time);
        }

        let path = std::env::temp_dir().join("cusyncgen-tunecache-roundtrip.tsv");
        cache.save(&path).expect("save");
        let first_bytes = std::fs::read(&path).expect("read saved bytes");

        // Strict load accepts every byte the saver produced.
        let loaded = TuneCache::load(&path).expect("strict load of saved bytes");
        prop_assert_eq!(loaded.len(), cache.len());
        // Peek through the *original* hostile names: both sides apply the
        // same normalization, so collisions agree too.
        for (fp, name, _) in &entries {
            prop_assert_eq!(loaded.peek(*fp, name), cache.peek(*fp, name));
        }

        // Lossy load of clean bytes skips nothing.
        let (lossy, skipped) = TuneCache::load_lossy(&path).expect("lossy load");
        prop_assert_eq!(skipped, 0);
        prop_assert_eq!(lossy.len(), cache.len());

        // Saving the loaded cache reproduces the bytes exactly.
        loaded.save(&path).expect("re-save");
        let second_bytes = std::fs::read(&path).expect("read re-saved bytes");
        prop_assert_eq!(first_bytes, second_bytes);
    }
}
