//! Criterion benches wrapping every table/figure workload.
//!
//! These measure the *wall-clock* cost of simulating each experiment (the
//! simulated GPU times that reproduce the paper's numbers are printed by
//! the `table*`/`fig*` binaries). Keeping each experiment as a Criterion
//! target gives regression tracking over the simulator and the harness.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cusync::OptFlags;
use cusync_bench::overhead_experiment;
use cusync_models::{
    attention_time, conv_layer_time, gpt3_mlp_tiling, llm_step_time, mlp_time, vision_step_time,
    AttentionConfig, LlmModel, MlpModel, PolicyKind, SyncMode,
};
use cusync_sim::stats::{utilization, waves};
use cusync_sim::GpuConfig;

fn bench_table1_waves(c: &mut Criterion) {
    let gpu = GpuConfig::tesla_v100();
    c.bench_function("table1_waves", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for bs in [256u32, 512, 1024] {
                let t = gpt3_mlp_tiling(bs);
                let blocks = (bs.div_ceil(t.gemm1.tile.m)
                    * (6144 / t.gemm1.tile.n)
                    * t.gemm1.split_k) as u64;
                let w = waves(blocks, t.gemm1.occupancy, gpu.num_sms);
                acc += utilization(w);
            }
            acc
        })
    });
}

fn bench_table4_mlp_policies(c: &mut Criterion) {
    let gpu = GpuConfig::tesla_v100();
    let mut group = c.benchmark_group("table4_mlp_policies");
    group.sample_size(10);
    for (name, mode) in [
        ("stream_sync", SyncMode::StreamSync),
        (
            "tile_wrt",
            SyncMode::CuSync(PolicyKind::Tile, OptFlags::WRT),
        ),
        ("row_wrt", SyncMode::CuSync(PolicyKind::Row, OptFlags::WRT)),
    ] {
        group.bench_with_input(BenchmarkId::new(name, 256), &mode, |b, mode| {
            b.iter(|| mlp_time(&gpu, MlpModel::Gpt3, 256, *mode))
        });
    }
    group.finish();
}

fn bench_table5_ablation(c: &mut Criterion) {
    let gpu = GpuConfig::tesla_v100();
    let mut group = c.benchmark_group("table5_ablation");
    group.sample_size(10);
    for (name, opts) in [
        ("vanilla", OptFlags::NONE),
        ("r", OptFlags::R),
        ("wr", OptFlags::WR),
        ("wrt", OptFlags::WRT),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                mlp_time(
                    &gpu,
                    MlpModel::Gpt3,
                    64,
                    SyncMode::CuSync(PolicyKind::Tile, opts),
                )
            })
        });
    }
    group.finish();
}

fn bench_fig6_mlp(c: &mut Criterion) {
    let gpu = GpuConfig::tesla_v100();
    let mut group = c.benchmark_group("fig6_mlp");
    group.sample_size(10);
    for bs in [64u32, 512, 2048] {
        group.bench_with_input(BenchmarkId::new("gpt3_tile_wrt", bs), &bs, |b, &bs| {
            b.iter(|| {
                mlp_time(
                    &gpu,
                    MlpModel::Gpt3,
                    bs,
                    SyncMode::CuSync(PolicyKind::Tile, OptFlags::WRT),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("llama_strided_wrt", bs), &bs, |b, &bs| {
            b.iter(|| {
                mlp_time(
                    &gpu,
                    MlpModel::Llama,
                    bs,
                    SyncMode::CuSync(PolicyKind::Strided, OptFlags::WRT),
                )
            })
        });
    }
    group.finish();
}

fn bench_fig6_attention(c: &mut Criterion) {
    let gpu = GpuConfig::tesla_v100();
    let mut group = c.benchmark_group("fig6_attention");
    group.sample_size(10);
    let prompt = AttentionConfig::prompt(12288, 512);
    let generation = AttentionConfig::generation(12288, 2, 1024);
    for (name, cfg) in [("prompt_512", prompt), ("gen_2_1024", generation)] {
        group.bench_function(format!("strided_wrt/{name}"), |b| {
            b.iter(|| {
                attention_time(
                    &gpu,
                    cfg,
                    SyncMode::CuSync(PolicyKind::Strided, OptFlags::WRT),
                )
            })
        });
        group.bench_function(format!("stream_sync/{name}"), |b| {
            b.iter(|| attention_time(&gpu, cfg, SyncMode::StreamSync))
        });
    }
    group.finish();
}

fn bench_fig7_conv(c: &mut Criterion) {
    let gpu = GpuConfig::tesla_v100();
    let mut group = c.benchmark_group("fig7_conv");
    group.sample_size(10);
    for channels in [64u32, 512] {
        let pq = cusync_models::pq_for_channels(channels);
        group.bench_with_input(
            BenchmarkId::new("conv2dtile_wrt", channels),
            &channels,
            |b, &ch| {
                b.iter(|| {
                    conv_layer_time(
                        &gpu,
                        4,
                        pq,
                        ch,
                        2,
                        SyncMode::CuSync(PolicyKind::Conv2DTile, OptFlags::WRT),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_fig8_e2e(c: &mut Criterion) {
    let gpu = GpuConfig::tesla_v100();
    let mut group = c.benchmark_group("fig8_e2e");
    group.sample_size(10);
    let one_layer = LlmModel {
        mlp: MlpModel::Gpt3,
        layers: 1,
    };
    group.bench_function("gpt3_layer_tile_wrt", |b| {
        b.iter(|| {
            llm_step_time(
                &gpu,
                one_layer,
                512,
                0,
                SyncMode::CuSync(PolicyKind::Tile, OptFlags::WRT),
            )
        })
    });
    group.bench_function("resnet_b4_row_wrt", |b| {
        b.iter(|| {
            vision_step_time(
                &gpu,
                &cusync_models::resnet38(),
                4,
                SyncMode::CuSync(PolicyKind::Row, OptFlags::WRT),
            )
        })
    });
    group.finish();
}

fn bench_overhead_bound(c: &mut Criterion) {
    let gpu = GpuConfig::tesla_v100();
    let mut group = c.benchmark_group("overhead_bound");
    group.sample_size(10);
    group.bench_function("copy_chain_16k", |b| {
        b.iter(|| overhead_experiment(&gpu, 16 * 1024))
    });
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
}

criterion_group!(
    name = benches;
    config = configured();
    targets =
    bench_table1_waves,
    bench_table4_mlp_policies,
    bench_table5_ablation,
    bench_fig6_mlp,
    bench_fig6_attention,
    bench_fig7_conv,
    bench_fig8_e2e,
    bench_overhead_bound,
);
criterion_main!(benches);
