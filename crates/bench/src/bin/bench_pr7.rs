//! Benchmarks the device-sharded parallel engine (`ExecMode::Parallel`)
//! against the serial optimized engine, and the intra-device hot-path
//! shave (inline `BlockResume` heap payloads), writing `BENCH_PR7.json`.
//!
//! ```text
//! bench_pr7 [--quick] [--seed N] [--out FILE]
//! ```
//!
//! Three sweeps:
//!
//! - **Thread scaling × device count**: the tensor-parallel overlap layer
//!   on 1/2/4 simulated GPUs, serial (`before`) vs device-sharded with a
//!   1/2/4-thread budget (`parallel-tN`, best recorded as `after`). A
//!   one-thread budget (and any single-device graph) falls back to the
//!   serial engine by design — sharding without parallelism only adds
//!   window overhead — so those cells report serial parity. On a 1-core
//!   host the t2/t4 cells still run the sharded loop (threads contend
//!   for one core) and honestly report its overhead rather than a
//!   speedup; the `host` header records `available_parallelism` so
//!   readers can tell which regime produced the artifact.
//! - **Ring allreduce**: the bare collective on 4 devices, the
//!   communication-dominated extreme of the same comparison.
//! - **Resume-inline shave**: the single-device serial hot path with the
//!   inline `BlockResume` encoding disabled (`before`) vs enabled
//!   (`after`) — the satellite ns/event win, isolated from sharding.
//!
//! Every parallel cell is asserted bit-identical (kernel timelines,
//! totals, utilization) to its serial twin before it is timed, so the
//! artifact can never report a speedup obtained by drift.

use std::time::{Duration, Instant};

use cusync_bench::perf::{render_json, PerfEntry};
use cusync_bench::sweep::SweepOutcome;
use cusync_models::{
    compile_mlp, compile_tp_layer, launch_ring_allreduce, tp_mlp, MlpModel, PolicyKind, SyncMode,
    TpSchedule,
};
use cusync_sim::{
    set_resume_inline, ClusterConfig, CompiledPipeline, EngineMode, ExecMode, Gpu, GpuConfig,
    RunReport, Session, StreamId,
};

/// Runs `pipeline` `repeats` times on a warmed session with the given
/// execution mode and requested thread budget; returns the best-of-three
/// sweep wall time (minimum over three timed sweeps, to shed scheduler
/// and frequency noise on shared hosts), total simulator events of one
/// sweep, and the (per-run identical) report.
fn time_runs(
    pipeline: &CompiledPipeline,
    exec: ExecMode,
    threads: usize,
    repeats: usize,
) -> (Duration, u64, RunReport) {
    let mut session = Session::with_mode(EngineMode::Optimized);
    session.set_exec(Some(exec));
    session.set_threads(threads);
    let warm = session.run(pipeline).expect("warmup run");
    session.run(pipeline).expect("warmup run");
    let mut best: Option<Duration> = None;
    let mut events = 0u64;
    for _ in 0..3 {
        let start = Instant::now();
        events = 0;
        for _ in 0..repeats {
            events += session.run(pipeline).expect("timed run").sim_events;
        }
        let wall = start.elapsed();
        if best.map(|b| wall < b).unwrap_or(true) {
            best = Some(wall);
        }
    }
    (best.expect("three sweeps ran"), events, warm)
}

fn entry(
    figure: &str,
    phase: &str,
    engine: &str,
    threads: usize,
    wall: Duration,
    events: u64,
    cells: usize,
) -> PerfEntry {
    let outcome = SweepOutcome {
        rows: Vec::new(),
        wall,
        events,
        cells,
    };
    PerfEntry::from_outcome(figure, phase, engine, threads, false, &outcome)
}

/// Asserts the timing-observable fields of a parallel run match the
/// serial run bit-for-bit (`sim_events` excluded: the sharded engine
/// counts remote deliveries differently).
fn assert_identical(serial: &RunReport, parallel: &RunReport, what: &str) {
    assert_eq!(serial.kernels, parallel.kernels, "{what}: kernel reports");
    assert_eq!(serial.total, parallel.total, "{what}: total");
    assert_eq!(serial.sem_posts, parallel.sem_posts, "{what}: sem posts");
    assert_eq!(
        serial.sm_utilization, parallel.sm_utilization,
        "{what}: utilization"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR7.json".to_owned());
    let repeats: usize = if quick { 3 } else { 12 };
    let tokens: u32 = if quick { 128 } else { 256 };
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("host available_parallelism = {host_threads}; repeats = {repeats}");

    let mut entries: Vec<PerfEntry> = Vec::new();

    // Thread scaling x device count on the TP overlap layer.
    for devices in [1u32, 2, 4] {
        let figure = format!("tp_overlap_d{devices}");
        let cluster = ClusterConfig::dgx_v100(devices);
        let pipeline = compile_tp_layer(&cluster, tp_mlp(4096, tokens), TpSchedule::Overlap);
        let (wall, events, serial) = time_runs(&pipeline, ExecMode::Serial, 1, repeats);
        entries.push(entry(&figure, "before", "serial", 1, wall, events, repeats));
        let mut best: Option<PerfEntry> = None;
        for threads in [1usize, 2, 4] {
            let (wall, events, report) = time_runs(&pipeline, ExecMode::Parallel, threads, repeats);
            assert_identical(&serial, &report, &format!("{figure} t{threads}"));
            let e = entry(
                &figure,
                &format!("parallel-t{threads}"),
                "parallel",
                threads,
                wall,
                events,
                repeats,
            );
            if best
                .as_ref()
                .map(|b| e.wall_seconds < b.wall_seconds)
                .unwrap_or(true)
            {
                best = Some(e.clone());
            }
            entries.push(e);
            eprintln!(
                "{figure:<16} parallel t{threads}: {:>8.1} ns/event",
                entries.last().unwrap().ns_per_event
            );
        }
        let mut after = best.expect("one parallel cell per figure");
        after.phase = "after".to_owned();
        eprintln!(
            "{figure:<16} serial {:>8.1} ns/event | best parallel {:>8.1} ns/event",
            entries
                .iter()
                .find(|e| e.figure == figure && e.phase == "before")
                .unwrap()
                .ns_per_event,
            after.ns_per_event
        );
        entries.push(after);
    }

    // The bare ring collective on 4 devices.
    {
        let figure = "allreduce_d4";
        let mut gpu = Gpu::new_cluster(ClusterConfig::dgx_v100(4));
        let streams: Vec<StreamId> = (0..4).map(|d| gpu.create_stream_on(d, 0)).collect();
        launch_ring_allreduce(&mut gpu, "ar", 4 << 20, &streams);
        let pipeline = gpu.compile().expect("unrun collective");
        assert!(pipeline.shardable(), "collective waits are home-local");
        let (wall, events, serial) = time_runs(&pipeline, ExecMode::Serial, 1, repeats);
        entries.push(entry(figure, "before", "serial", 1, wall, events, repeats));
        let threads = host_threads.clamp(1, 4);
        let (wall, events, report) = time_runs(&pipeline, ExecMode::Parallel, threads, repeats);
        assert_identical(&serial, &report, figure);
        entries.push(entry(
            figure, "after", "parallel", threads, wall, events, repeats,
        ));
    }

    // The single-device serial hot path, inline-resume off vs on.
    {
        let figure = "resume_inline_1dev";
        let gpu = GpuConfig::tesla_v100();
        let pipeline = compile_mlp(
            &gpu,
            MlpModel::Gpt3,
            if quick { 64 } else { 256 },
            SyncMode::CuSync(PolicyKind::Tile, cusync::OptFlags::WRT),
        );
        // Interleave the off/on sweeps and keep each arm's minimum: the
        // two arms differ by a few percent, which back-to-back blocks
        // would confound with host frequency/scheduler drift.
        let mut session = Session::with_mode(EngineMode::Optimized);
        session.set_exec(Some(ExecMode::Serial));
        let mut sweep = |inline: bool| -> (Duration, u64, RunReport) {
            set_resume_inline(inline);
            let warm = session.run(&pipeline).expect("warmup run");
            let start = Instant::now();
            let mut events = 0u64;
            for _ in 0..repeats {
                events += session.run(&pipeline).expect("timed run").sim_events;
            }
            (start.elapsed(), events, warm)
        };
        let (mut wall_off, mut events_off, plain) = sweep(false);
        let (mut wall_on, mut events_on, inlined) = sweep(true);
        assert_eq!(
            plain, inlined,
            "the inline resume encoding must not change the simulation"
        );
        for _ in 0..6 {
            let (w, e, _) = sweep(false);
            wall_off = wall_off.min(w);
            events_off = e;
            let (w, e, _) = sweep(true);
            wall_on = wall_on.min(w);
            events_on = e;
        }
        set_resume_inline(true);
        entries.push(entry(
            figure, "before", "serial", 1, wall_off, events_off, repeats,
        ));
        entries.push(entry(
            figure, "after", "serial", 1, wall_on, events_on, repeats,
        ));
        let b = &entries[entries.len() - 2];
        let a = &entries[entries.len() - 1];
        eprintln!(
            "{figure}: {:.1} -> {:.1} ns/event ({:+.1}%)",
            b.ns_per_event,
            a.ns_per_event,
            100.0 * (a.ns_per_event - b.ns_per_event) / b.ns_per_event
        );
    }

    let json = render_json("PR7", &entries);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
