//! Sync-overhead attribution over the Fig. 6 MLP grid, writing
//! `BENCH_PR10.json`.
//!
//! ```text
//! bench_pr10 [--quick] [--out FILE] [--trace FILE]
//! ```
//!
//! For every cell of the Fig. 6 MLP panels (GPT-3 / LLaMA × batch), the
//! binary runs the tuned *fine-grained* pipeline (the faster of
//! all-TileSync and all-RowSync on the cell's edges) and the
//! all-StreamSerial pipeline on a traced `Optimized` session, then feeds
//! each `(report, trace)` pair into `cusync_obs::Attribution`. The
//! artifact asserts, per cell:
//!
//! - the attribution partition is exact (`compute + spin + link == busy`,
//!   `busy + idle == capacity`) and the critical-path length is bounded
//!   by the makespan;
//! - the **sync-wait share** — `(spin + gate_hold) / capacity` — is
//!   *strictly lower* under the tuned fine-grained assignment than under
//!   stream serialization.
//!
//! That second inequality is the paper's Figure 6 argument in attribution
//! form: fine-grained per-tile sync turns long launch-gate holds (the
//! consumer parked behind a stream barrier) into short overlapped spins,
//! shrinking the fraction of machine capacity spent waiting.
//!
//! `--trace FILE` additionally exports a validated Chrome trace
//! (`chrome://tracing` / Perfetto) of the largest GPT-3 cell under the
//! tuned fine-grained assignment.

use std::fmt::Write as _;

use cusync::{OptFlags, SyncMechanism};
use cusync_bench::sweep::FIG6_MLP_BATCHES;
use cusync_models::{compile_mlp_mechanisms, MlpModel, MLP_EDGES};
use cusync_obs::{chrome_trace_json, collect_spans, validate_chrome_trace, Attribution};
use cusync_sim::{CompiledPipeline, EngineMode, GpuConfig, Session, SimTime};

/// One profiled pipeline variant of a figure cell.
struct Profile {
    /// Mechanism assigned to every edge.
    mechanism: SyncMechanism,
    /// Simulated makespan.
    total: SimTime,
    /// Attribution of the traced run.
    attr: Attribution,
}

/// One figure cell: the tuned fine-grained variant vs all-StreamSerial.
struct Cell {
    model: MlpModel,
    batch: u32,
    fine: Profile,
    serial: Profile,
    /// `fine` waits strictly less of the machine than `serial`.
    share_win: bool,
}

/// Runs `pipeline` traced on `session` and attributes the run. Also
/// checks the run-level invariants every cell must satisfy: exactness and
/// the by-construction critical-path bound.
fn profile(
    session: &mut Session,
    pipeline: &CompiledPipeline,
    mechanism: SyncMechanism,
    what: &str,
) -> Profile {
    let report = session
        .run(pipeline)
        .unwrap_or_else(|e| panic!("{what}: {e}"));
    let attr = Attribution::analyze(pipeline.cluster(), &report, session.trace());
    assert!(attr.exact, "{what}: attribution partition not exact");
    assert!(
        attr.critical_path.length <= report.total,
        "{what}: critical path {} exceeds makespan {}",
        attr.critical_path.length,
        report.total,
    );
    for dev in &attr.devices {
        assert_eq!(
            dev.busy_slot_ps() + dev.idle_slot_ps,
            dev.capacity_slot_ps,
            "{what}: device {} buckets do not sum to capacity",
            dev.device,
        );
    }
    Profile {
        mechanism,
        total: report.total,
        attr,
    }
}

/// Profiles one cell: the faster fine-grained mechanism (TileSync vs
/// RowSync, picked by simulated makespan) against all-StreamSerial.
fn run_cell(session: &mut Session, gpu: &GpuConfig, model: MlpModel, batch: u32) -> Cell {
    let compile = |m: SyncMechanism| {
        compile_mlp_mechanisms(gpu, model, batch, OptFlags::WRT, &[m; MLP_EDGES])
            .unwrap_or_else(|| panic!("fig6 {model:?} bs{batch}: {m:?} does not compile"))
    };
    let fine = [SyncMechanism::TileSync, SyncMechanism::RowSync]
        .into_iter()
        .map(|m| {
            profile(
                session,
                &compile(m),
                m,
                &format!("{model:?}/bs{batch}/{m:?}"),
            )
        })
        .min_by_key(|p| p.total)
        .expect("two fine candidates");
    let serial = profile(
        session,
        &compile(SyncMechanism::StreamSerial),
        SyncMechanism::StreamSerial,
        &format!("{model:?}/bs{batch}/StreamSerial"),
    );
    let share_win = fine.attr.sync_wait_share() < serial.attr.sync_wait_share();
    eprintln!(
        "fig6_mlp_{:<6} bs{batch:<5} | fine {:?} {} share {:.4} | StreamSerial {} share {:.4}{}",
        format!("{model:?}").to_lowercase(),
        fine.mechanism,
        fine.total,
        fine.attr.sync_wait_share(),
        serial.total,
        serial.attr.sync_wait_share(),
        if share_win { "" } else { "  << NOT LOWER" },
    );
    Cell {
        model,
        batch,
        fine,
        serial,
        share_win,
    }
}

fn render_profile(out: &mut String, key: &str, p: &Profile, comma: &str) {
    let spin: u128 = p.attr.devices.iter().map(|d| d.spin_slot_ps).sum();
    let gate: u128 = p.attr.devices.iter().map(|d| d.gate_hold_slot_ps).sum();
    let _ = writeln!(
        out,
        "      \"{key}\": {{\"mechanism\": \"{:?}\", \"total_ps\": {}, \
         \"sync_wait_share\": {:.6}, \"spin_slot_ps\": {}, \"gate_hold_slot_ps\": {}, \
         \"critical_path_ps\": {}, \"critical_hops\": {}, \"exact\": {}}}{comma}",
        p.mechanism,
        p.total.as_picos(),
        p.attr.sync_wait_share(),
        spin,
        gate,
        p.attr.critical_path.length.as_picos(),
        p.attr.critical_path.hops.len(),
        p.attr.exact,
    );
}

fn render_json(quick: bool, cells: &[Cell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"cusync-bench-attr/1\",");
    let _ = writeln!(out, "  \"pr\": \"PR10\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"figure\": \"fig6_mlp_{}\", \"batch\": {}, \"edges\": {MLP_EDGES},",
            format!("{:?}", c.model).to_lowercase(),
            c.batch,
        );
        render_profile(&mut out, "fine", &c.fine, ",");
        render_profile(&mut out, "stream_serial", &c.serial, ",");
        let _ = writeln!(out, "      \"fine_share_strictly_lower\": {}", c.share_win);
        let _ = writeln!(out, "    }}{}", if i + 1 < cells.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"summary\": {{\"cells\": {}, \"share_wins\": {}, \"all_strictly_lower\": {}}}",
        cells.len(),
        cells.iter().filter(|c| c.share_win).count(),
        cells.iter().all(|c| c.share_win),
    );
    out.push_str("}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR10.json".to_owned());
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let gpu = GpuConfig::tesla_v100();
    let mut session = Session::with_mode(EngineMode::Optimized);
    session.enable_trace();

    let batches: Vec<u32> = if quick {
        vec![1, 256]
    } else {
        FIG6_MLP_BATCHES.to_vec()
    };
    let mut cells: Vec<Cell> = Vec::new();
    for model in [MlpModel::Gpt3, MlpModel::Llama] {
        for &bs in &batches {
            cells.push(run_cell(&mut session, &gpu, model, bs));
        }
    }

    let losses: Vec<String> = cells
        .iter()
        .filter(|c| !c.share_win)
        .map(|c| format!("{:?}/bs{}", c.model, c.batch))
        .collect();
    assert!(
        losses.is_empty(),
        "sync-wait share not strictly lower under fine sync: {losses:?}",
    );

    // The fine-grained win must come from eliminating gate holds, not
    // from shifting wait time between buckets: StreamSerial's share is
    // gate-hold dominated, the fine assignments hold no gates at all.
    for c in &cells {
        let fine_gate: u128 = c
            .fine
            .attr
            .devices
            .iter()
            .map(|d| d.gate_hold_slot_ps)
            .sum();
        assert_eq!(
            fine_gate, 0,
            "{:?}/bs{}: fine-grained cell holds launch gates",
            c.model, c.batch,
        );
        let serial_gate: u128 = c
            .serial
            .attr
            .devices
            .iter()
            .map(|d| d.gate_hold_slot_ps)
            .sum();
        assert!(
            serial_gate > 0,
            "{:?}/bs{}: StreamSerial cell held no gates",
            c.model,
            c.batch,
        );
    }

    if let Some(path) = &trace_path {
        // Export the largest GPT-3 cell under its tuned fine mechanism.
        let cell = cells
            .iter()
            .filter(|c| c.model == MlpModel::Gpt3)
            .max_by_key(|c| c.batch)
            .expect("at least one GPT-3 cell");
        let pipeline = compile_mlp_mechanisms(
            &gpu,
            cell.model,
            cell.batch,
            OptFlags::WRT,
            &[cell.fine.mechanism; MLP_EDGES],
        )
        .expect("profiled assignment recompiles");
        let report = session.run(&pipeline).expect("traced export run");
        let spans = collect_spans(pipeline.cluster(), &report, session.trace());
        let chrome = chrome_trace_json(&spans);
        let stats = validate_chrome_trace(&chrome)
            .unwrap_or_else(|e| panic!("exported chrome trace invalid: {e}"));
        std::fs::write(path, &chrome).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!(
            "wrote {path}: {} events, {} spans on {} lanes",
            stats.events, stats.spans, stats.lanes,
        );
    }

    let json = render_json(quick, &cells);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    eprintln!(
        "wrote {out_path}: {} cells, all fine-grained sync-wait shares strictly lower",
        cells.len(),
    );
}
