//! Ablation of the simulator's calibration decisions (DESIGN.md section 6):
//! how sensitive is the headline result — the Table IV batch-256/512
//! improvement and the policy ranking — to each model constant?
//!
//! A reproduction whose conclusions flip when a calibrated constant moves
//! by 2x would be fragile; this harness shows the cuSync-vs-StreamSync
//! ordering is robust across the plausible ranges.

use cusync::OptFlags;
use cusync_bench::{header, pct, row};
use cusync_models::{mlp_improvement, MlpModel, PolicyKind, SyncMode};
use cusync_sim::GpuConfig;

fn improvements(gpu: &GpuConfig) -> (f64, f64) {
    let tile = SyncMode::CuSync(PolicyKind::Tile, OptFlags::WRT);
    (
        mlp_improvement(gpu, MlpModel::Gpt3, 256, tile),
        mlp_improvement(gpu, MlpModel::Gpt3, 512, tile),
    )
}

fn main() {
    println!("# Ablation: GPT-3 MLP improvement (TileSync+WRT) vs model constants\n");

    println!("## Per-block jitter (default 0.10)\n");
    println!("{}", header(&["block_jitter", "gain @256", "gain @512"]));
    for jitter in [0.0, 0.05, 0.10, 0.20] {
        let gpu = GpuConfig {
            block_jitter: jitter,
            ..GpuConfig::tesla_v100()
        };
        let (a, b) = improvements(&gpu);
        println!("{}", row(&[format!("{jitter:.2}"), pct(a), pct(b)]));
    }

    println!("\n## Residency boost (default 0.35)\n");
    println!("{}", header(&["residency_boost", "gain @256", "gain @512"]));
    for boost in [0.0, 0.2, 0.35, 0.6] {
        let gpu = GpuConfig {
            residency_boost: boost,
            ..GpuConfig::tesla_v100()
        };
        let (a, b) = improvements(&gpu);
        println!("{}", row(&[format!("{boost:.2}"), pct(a), pct(b)]));
    }

    println!("\n## DRAM saturation fraction (default 0.50)\n");
    println!("{}", header(&["saturation", "gain @256", "gain @512"]));
    for sat in [0.25, 0.5, 0.75, 1.0] {
        let gpu = GpuConfig {
            dram_saturation_fraction: sat,
            ..GpuConfig::tesla_v100()
        };
        let (a, b) = improvements(&gpu);
        println!("{}", row(&[format!("{sat:.2}"), pct(a), pct(b)]));
    }

    println!("\n## Compute efficiency (default 0.72)\n");
    println!("{}", header(&["efficiency", "gain @256", "gain @512"]));
    for eff in [0.6, 0.72, 0.85] {
        let gpu = GpuConfig {
            compute_efficiency: eff,
            ..GpuConfig::tesla_v100()
        };
        let (a, b) = improvements(&gpu);
        println!("{}", row(&[format!("{eff:.2}"), pct(a), pct(b)]));
    }

    println!("\n## Architecture (the paper notes the best policy is GPU-dependent)\n");
    println!("{}", header(&["GPU", "gain @256", "gain @512"]));
    for gpu in [GpuConfig::tesla_v100(), GpuConfig::ampere_a100()] {
        let (a, b) = improvements(&gpu);
        println!("{}", row(&[gpu.name.to_string(), pct(a), pct(b)]));
    }

    println!(
        "\nConclusion: the partial-wave gains at 256/512 persist (>8%) across \
         every sweep; only their magnitude moves. The reproduction's shape \
         claims do not hinge on any single calibrated constant."
    );
}
