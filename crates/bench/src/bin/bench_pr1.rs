//! Measures the figure sweeps under the pre-refactor harness
//! reconstruction ("before": reference engine, serial, per-cell
//! baselines) and the shipping harness ("after": optimized engine,
//! parallel, shared baselines), then writes `BENCH_PR1.json`.
//!
//! Usage: `bench_pr1 [--quick] [--out PATH]`
//!
//! `--quick` runs each phase once instead of best-of-3 (for CI smoke
//! jobs). The JSON schema is documented in `crates/bench/src/perf.rs` and
//! `crates/sim/README.md`.

use cusync_bench::perf::{render_json, PerfEntry};
use cusync_bench::sweep::{fig6_sweep, fig7_sweep, fig8_sweep, SweepOptions, SweepOutcome};
use cusync_sim::GpuConfig;

fn best_of<F: FnMut() -> SweepOutcome>(reps: usize, mut f: F) -> SweepOutcome {
    let mut best: Option<SweepOutcome> = None;
    for _ in 0..reps {
        let outcome = f();
        let better = match &best {
            Some(b) => outcome.wall < b.wall,
            None => true,
        };
        if better {
            best = Some(outcome);
        }
    }
    best.expect("reps >= 1")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR1.json".to_owned());
    let reps = if quick { 1 } else { 3 };

    let gpu = GpuConfig::tesla_v100();
    let before = SweepOptions::baseline();
    let after = SweepOptions::fast();
    let mut entries = Vec::new();

    type SweepFn = fn(&GpuConfig, &SweepOptions) -> SweepOutcome;
    let sweeps: [(&str, SweepFn); 3] = [
        ("fig6", |gpu, o| fig6_sweep(gpu, o, "all")),
        ("fig7", |gpu, o| fig7_sweep(gpu, o)),
        ("fig8", |gpu, o| fig8_sweep(gpu, o, "all")),
    ];

    for (name, sweep) in sweeps {
        eprintln!("measuring {name} (before: reference engine, serial, per-cell baselines)...");
        let b = best_of(reps, || sweep(&gpu, &before));
        eprintln!(
            "  before: {:>8.1} ms, {} events, {:.0} ns/event",
            b.wall.as_secs_f64() * 1e3,
            b.events,
            b.ns_per_event()
        );
        eprintln!(
            "measuring {name} (after: optimized engine, {} thread(s), shared baselines)...",
            after.threads
        );
        let a = best_of(reps, || sweep(&gpu, &after));
        eprintln!(
            "  after:  {:>8.1} ms, {} events, {:.0} ns/event  (speedup {:.2}x)",
            a.wall.as_secs_f64() * 1e3,
            a.events,
            a.ns_per_event(),
            b.wall.as_secs_f64() / a.wall.as_secs_f64()
        );
        entries.push(PerfEntry::from_outcome(
            name,
            "before",
            "reference",
            1,
            false,
            &b,
        ));
        entries.push(PerfEntry::from_outcome(
            name,
            "after",
            "optimized",
            after.threads,
            true,
            &a,
        ));
    }

    let json = render_json("PR1", &entries);
    std::fs::write(&out_path, &json).expect("write BENCH json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
