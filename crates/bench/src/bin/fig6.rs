//! Fig. 6: improvement of cuSync's policies and Stream-K over StreamSync
//! for the MLP and Attention of GPT-3 and LLaMA.
//!
//! Rows are simulated in parallel by the sweep driver (each simulated GPU
//! is independent); StreamSync baselines are shared across a row's modes.
//!
//! Usage: `fig6 [mlp|attention|all]`

use cusync_bench::sweep::{
    fig6_attention_configs, fig6_attention_modes, fig6_attention_row, fig6_mlp_modes, fig6_mlp_row,
    parallel_map, SweepOptions, FIG6_MLP_BATCHES,
};
use cusync_bench::{header, pct, row};
use cusync_models::MlpModel;
use cusync_sim::GpuConfig;

fn mlp_figure(gpu: &GpuConfig, opts: &SweepOptions, model: MlpModel, label: &str) {
    println!("## Fig. 6 ({label} MLP): improvement over StreamSync\n");
    let modes = fig6_mlp_modes();
    let mut cols = vec!["BxS".to_string()];
    cols.extend(modes.iter().map(|m| m.to_string()));
    println!(
        "{}",
        header(&cols.iter().map(String::as_str).collect::<Vec<_>>())
    );
    let rows = parallel_map(opts, FIG6_MLP_BATCHES.to_vec(), |bs| {
        fig6_mlp_row(gpu, model, bs, opts.memoize)
    });
    for r in rows {
        let mut cells = vec![r.label];
        cells.extend(r.values.iter().map(|&v| pct(v)));
        println!("{}", row(&cells));
    }
    println!();
}

fn attention_figure(gpu: &GpuConfig, opts: &SweepOptions, hidden: u32, label: &str) {
    println!("## Fig. 6 ({label} Attention): improvement over StreamSync\n");
    let modes = fig6_attention_modes();
    let mut cols = vec!["BxS, S'".to_string()];
    cols.extend(modes.iter().map(|m| m.to_string()));
    println!(
        "{}",
        header(&cols.iter().map(String::as_str).collect::<Vec<_>>())
    );
    let rows = parallel_map(opts, fig6_attention_configs(hidden), |(name, cfg)| {
        fig6_attention_row(gpu, &name, cfg, opts.memoize)
    });
    for r in rows {
        let mut cells = vec![r.label];
        cells.extend(r.values.iter().map(|&v| pct(v)));
        println!("{}", row(&cells));
    }
    println!();
}

fn main() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    let gpu = GpuConfig::tesla_v100();
    let opts = SweepOptions::fast();
    println!("# Fig. 6: MLP and Attention improvements over StreamSync\n");
    if what == "mlp" || what == "all" {
        mlp_figure(&gpu, &opts, MlpModel::Gpt3, "GPT-3");
        mlp_figure(&gpu, &opts, MlpModel::Llama, "LLaMA");
    }
    if what == "attention" || what == "all" {
        attention_figure(&gpu, &opts, 12288, "GPT-3");
        attention_figure(&gpu, &opts, 8192, "LLaMA");
    }
    println!(
        "Paper peaks: GPT-3 MLP up to 15-21% (mid sizes), LLaMA MLP up to 20%, GPT-3 \
         Attention 7-16%, LLaMA Attention 6-16%; gains shrink at BxS = 2048 as waves grow."
    );
}
