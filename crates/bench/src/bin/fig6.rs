//! Fig. 6: improvement of cuSync's policies and Stream-K over StreamSync
//! for the MLP and Attention of GPT-3 and LLaMA.
//!
//! Usage: `fig6 [mlp|attention|all]`

use cusync_bench::{header, pct, row};
use cusync_models::{
    attention_improvement, mlp_improvement, AttentionConfig, MlpModel, SyncMode,
};
use cusync_sim::GpuConfig;

fn mlp_figure(gpu: &GpuConfig, model: MlpModel, label: &str) {
    println!("## Fig. 6 ({label} MLP): improvement over StreamSync\n");
    let modes: Vec<SyncMode> = SyncMode::llm_policies()
        .into_iter()
        .chain([SyncMode::StreamK])
        .collect();
    let mut cols = vec!["BxS".to_string()];
    cols.extend(modes.iter().map(|m| m.to_string()));
    println!(
        "{}",
        header(&cols.iter().map(String::as_str).collect::<Vec<_>>())
    );
    for bs in [1u32, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048] {
        let mut cells = vec![bs.to_string()];
        for mode in &modes {
            cells.push(pct(mlp_improvement(gpu, model, bs, *mode)));
        }
        println!("{}", row(&cells));
    }
    println!();
}

fn attention_figure(gpu: &GpuConfig, hidden: u32, label: &str) {
    println!("## Fig. 6 ({label} Attention): improvement over StreamSync\n");
    let modes: Vec<SyncMode> = SyncMode::attention_policies()
        .into_iter()
        .chain([SyncMode::StreamK])
        .collect();
    let mut cols = vec!["BxS, S'".to_string()];
    cols.extend(modes.iter().map(|m| m.to_string()));
    println!(
        "{}",
        header(&cols.iter().map(String::as_str).collect::<Vec<_>>())
    );
    // Prompt processing: S' = 0, BxS in {512, 1024, 2048}.
    let mut configs: Vec<(String, AttentionConfig)> = [512u32, 1024, 2048]
        .into_iter()
        .map(|bs| (format!("{bs}, 0"), AttentionConfig::prompt(hidden, bs)))
        .collect();
    // Token generation: B in {1, 2, 4}, S' in {512, 1024, 2048}.
    for s_prime in [512u32, 1024, 2048] {
        for b in [1u32, 2, 4] {
            configs.push((
                format!("{b}, {s_prime}"),
                AttentionConfig::generation(hidden, b, s_prime),
            ));
        }
    }
    for (name, cfg) in configs {
        let mut cells = vec![name];
        for mode in &modes {
            cells.push(pct(attention_improvement(gpu, cfg, *mode)));
        }
        println!("{}", row(&cells));
    }
    println!();
}

fn main() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    let gpu = GpuConfig::tesla_v100();
    println!("# Fig. 6: MLP and Attention improvements over StreamSync\n");
    if what == "mlp" || what == "all" {
        mlp_figure(&gpu, MlpModel::Gpt3, "GPT-3");
        mlp_figure(&gpu, MlpModel::Llama, "LLaMA");
    }
    if what == "attention" || what == "all" {
        attention_figure(&gpu, 12288, "GPT-3");
        attention_figure(&gpu, 8192, "LLaMA");
    }
    println!(
        "Paper peaks: GPT-3 MLP up to 15-21% (mid sizes), LLaMA MLP up to 20%, GPT-3 \
         Attention 7-16%, LLaMA Attention 6-16%; gains shrink at BxS = 2048 as waves grow."
    );
}
