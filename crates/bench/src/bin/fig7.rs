//! Fig. 7: improvement of cuSync policies over StreamSync for the Conv2D
//! layers of ResNet-38 and VGG-19 (Table II shapes).

use cusync_bench::{header, pct, row};
use cusync_models::{conv_improvement, pq_for_channels, SyncMode};
use cusync_sim::GpuConfig;

const BATCHES: [u32; 9] = [1, 4, 8, 12, 16, 20, 24, 28, 32];

fn panel(gpu: &GpuConfig, title: &str, channels: &[u32], convs: u32) {
    println!("## {title}\n");
    let modes = SyncMode::conv_policies();
    let mut cols = vec!["Channels".to_string(), "B".to_string()];
    cols.extend(modes.iter().map(|m| m.to_string()));
    println!(
        "{}",
        header(&cols.iter().map(String::as_str).collect::<Vec<_>>())
    );
    for &c in channels {
        let pq = pq_for_channels(c);
        for b in BATCHES {
            let mut cells = vec![c.to_string(), b.to_string()];
            for mode in &modes {
                cells.push(pct(conv_improvement(gpu, b, pq, c, convs, *mode)));
            }
            println!("{}", row(&cells));
        }
    }
    println!();
}

fn main() {
    let gpu = GpuConfig::tesla_v100();
    println!("# Fig. 7: Conv2D improvements over StreamSync\n");
    panel(
        &gpu,
        "Fig. 7a: 2x Conv2Ds per layer (ResNet-38 and VGG-19), channels 64/128",
        &[64, 128],
        2,
    );
    panel(&gpu, "Fig. 7b: 2x Conv2Ds per layer (ResNet-38), channels 256/512", &[256, 512], 2);
    panel(&gpu, "Fig. 7c: 4x Conv2Ds per layer (VGG-19), channels 256/512", &[256, 512], 4);
    println!(
        "Paper: up to 24% improvement; per channel count the gain oscillates with batch \
         size as the final-wave fraction changes (e.g. C=128: 20% at B=1, 24% at B=4, 3% \
         at B=8, 18% at B=12)."
    );
}
