//! Fig. 7: improvement of cuSync policies over StreamSync for the Conv2D
//! layers of ResNet-38 and VGG-19 (Table II shapes).
//!
//! Rows are simulated in parallel by the sweep driver; StreamSync
//! baselines are shared across a row's modes.

use cusync_bench::sweep::{fig7_jobs, fig7_row, parallel_map, SweepOptions};
use cusync_bench::{header, pct, row};
use cusync_models::SyncMode;
use cusync_sim::GpuConfig;

fn panel(gpu: &GpuConfig, opts: &SweepOptions, title: &str, channels: &[u32], convs: u32) {
    println!("## {title}\n");
    let modes = SyncMode::conv_policies();
    let mut cols = vec!["Channels".to_string(), "B".to_string()];
    cols.extend(modes.iter().map(|m| m.to_string()));
    println!(
        "{}",
        header(&cols.iter().map(String::as_str).collect::<Vec<_>>())
    );
    let rows = parallel_map(opts, fig7_jobs(channels, convs), |(c, pq, b, convs)| {
        (c, b, fig7_row(gpu, c, pq, b, convs, opts.memoize))
    });
    for (c, b, r) in rows {
        let mut cells = vec![c.to_string(), b.to_string()];
        cells.extend(r.values.iter().map(|&v| pct(v)));
        println!("{}", row(&cells));
    }
    println!();
}

fn main() {
    let gpu = GpuConfig::tesla_v100();
    let opts = SweepOptions::fast();
    println!("# Fig. 7: Conv2D improvements over StreamSync\n");
    panel(
        &gpu,
        &opts,
        "Fig. 7a: 2x Conv2Ds per layer (ResNet-38 and VGG-19), channels 64/128",
        &[64, 128],
        2,
    );
    panel(
        &gpu,
        &opts,
        "Fig. 7b: 2x Conv2Ds per layer (ResNet-38), channels 256/512",
        &[256, 512],
        2,
    );
    panel(
        &gpu,
        &opts,
        "Fig. 7c: 4x Conv2Ds per layer (VGG-19), channels 256/512",
        &[256, 512],
        4,
    );
    println!(
        "Paper: up to 24% improvement; per channel count the gain oscillates with batch \
         size as the final-wave fraction changes (e.g. C=128: 20% at B=1, 24% at B=4, 3% \
         at B=8, 18% at B=12)."
    );
}
