//! Fig. 8: reduction in end-to-end inference times of GPT-3, LLaMA,
//! ResNet-38 and VGG-19 using cuSync-synchronized kernels.
//!
//! Rows are simulated in parallel by the sweep driver; per-row StreamSync
//! baselines are shared across the candidate policies.
//!
//! Usage: `fig8 [llm|vision|all]`

use cusync_bench::sweep::{
    fig8_llm_configs, fig8_llm_row, fig8_vision_row, parallel_map, SweepOptions, FIG7_BATCHES,
};
use cusync_bench::{header, pct, row};
use cusync_sim::GpuConfig;

fn main() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    let gpu = GpuConfig::tesla_v100();
    let opts = SweepOptions::fast();
    println!("# Fig. 8: end-to-end inference time reductions with cuSync\n");

    if what == "llm" || what == "all" {
        println!("## Fig. 8a: language models (best policy per configuration)\n");
        println!("{}", header(&["BxS, S'", "GPT-3", "LLaMA"]));
        let rows = parallel_map(&opts, fig8_llm_configs(), |(name, tokens, cached)| {
            fig8_llm_row(&gpu, &name, tokens, cached, opts.memoize)
        });
        for r in rows {
            println!(
                "{}",
                row(&[r.label.clone(), pct(r.values[0]), pct(r.values[1])])
            );
        }
        println!("\nPaper: GPT-3 6-15% (18/13/14% prompt, 8-9% generation), LLaMA 9-13%.\n");
    }

    if what == "vision" || what == "all" {
        println!("## Fig. 8b: vision models (best policy per batch)\n");
        println!("{}", header(&["Batch", "ResNet-38", "VGG-19"]));
        let rows = parallel_map(&opts, FIG7_BATCHES.to_vec(), |batch| {
            fig8_vision_row(&gpu, batch, opts.memoize)
        });
        for r in rows {
            println!(
                "{}",
                row(&[r.label.clone(), pct(r.values[0]), pct(r.values[1])])
            );
        }
        println!("\nPaper: ResNet-38 5-22%, VGG-19 6-16%.");
    }
}
