//! Fig. 8: reduction in end-to-end inference times of GPT-3, LLaMA,
//! ResNet-38 and VGG-19 using cuSync-synchronized kernels.
//!
//! Usage: `fig8 [llm|vision|all]`

use cusync::OptFlags;
use cusync_bench::{header, pct, row};
use cusync_models::{
    llm_e2e_improvement, resnet38, vgg19, vision_e2e_improvement, PolicyKind, SyncMode, GPT3,
    LLAMA,
};
use cusync_sim::GpuConfig;

fn best_llm(gpu: &GpuConfig, model: cusync_models::LlmModel, tokens: u32, cached: u32) -> f64 {
    SyncMode::attention_policies()
        .into_iter()
        .map(|mode| llm_e2e_improvement(gpu, model, tokens, cached, mode))
        .fold(f64::MIN, f64::max)
}

fn best_vision(gpu: &GpuConfig, stages: &[cusync_models::ConvStage], batch: u32) -> f64 {
    [
        SyncMode::CuSync(PolicyKind::Row, OptFlags::WRT),
        SyncMode::CuSync(PolicyKind::Conv2DTile, OptFlags::WRT),
    ]
    .into_iter()
    .map(|mode| vision_e2e_improvement(gpu, stages, batch, mode))
    .fold(f64::MIN, f64::max)
}

fn main() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    let gpu = GpuConfig::tesla_v100();
    println!("# Fig. 8: end-to-end inference time reductions with cuSync\n");

    if what == "llm" || what == "all" {
        println!("## Fig. 8a: language models (best policy per configuration)\n");
        println!("{}", header(&["BxS, S'", "GPT-3", "LLaMA"]));
        let mut configs: Vec<(String, u32, u32)> = [512u32, 1024, 2048]
            .into_iter()
            .map(|bs| (format!("{bs}, 0"), bs, 0))
            .collect();
        for s_prime in [512u32, 1024, 2048] {
            for b in [1u32, 2, 4] {
                configs.push((format!("{b}, {s_prime}"), b, s_prime));
            }
        }
        for (name, tokens, cached) in configs {
            println!(
                "{}",
                row(&[
                    name,
                    pct(best_llm(&gpu, GPT3, tokens, cached)),
                    pct(best_llm(&gpu, LLAMA, tokens, cached)),
                ])
            );
        }
        println!("\nPaper: GPT-3 6-15% (18/13/14% prompt, 8-9% generation), LLaMA 9-13%.\n");
    }

    if what == "vision" || what == "all" {
        println!("## Fig. 8b: vision models (best policy per batch)\n");
        println!("{}", header(&["Batch", "ResNet-38", "VGG-19"]));
        for batch in [1u32, 4, 8, 12, 16, 20, 24, 28, 32] {
            println!(
                "{}",
                row(&[
                    batch.to_string(),
                    pct(best_vision(&gpu, &resnet38(), batch)),
                    pct(best_vision(&gpu, &vgg19(), batch)),
                ])
            );
        }
        println!("\nPaper: ResNet-38 5-22%, VGG-19 6-16%.");
    }
}
