//! Per-edge sync-mechanism autotuning over the paper's figure cells,
//! writing `BENCH_PR9.json`.
//!
//! ```text
//! bench_pr9 [--quick] [--out FILE]
//! ```
//!
//! For every cell of the Fig. 6 panels (GPT-3 / LLaMA MLP batches, the
//! attention prompt/generation grid) and the Fig. 7 conv panels
//! (channels × batch × chain depth), `cusyncgen::autotune_sync_mechanisms`
//! sweeps the per-edge mechanism axis — `TileSync` / `RowSync` / `Pdl` /
//! `StreamSerial` — against two fixed anchors:
//!
//! - **all-TileSync**: the paper's fine-grained default on every edge;
//! - **all-PDL**: Programmatic Dependent Launch on every edge (launch
//!   gate + grid semaphore, no per-tile waits).
//!
//! The artifact asserts, per cell, that the tuned assignment is never
//! slower than either valid anchor (the tuner returns the minimum over
//! everything it evaluated), and that the tuned pipeline is bit-identical
//! between the `Reference` and `Optimized` engines. Across cells it
//! asserts at least one strict win over both anchors and at least two
//! distinct chosen assignments — the evidence that neither mechanism
//! dominates and the per-edge choice is worth tuning.

use std::fmt::Write as _;

use cusync::{OptFlags, SyncMechanism};
use cusync_bench::sweep::{fig8_llm_configs, FIG6_MLP_BATCHES, FIG7_BATCHES};
use cusync_models::{
    compile_attention_mechanisms, compile_conv_layer_mechanisms, compile_mlp_mechanisms,
    conv_chain_edges, pq_for_channels, AttentionConfig, MlpModel, ATTENTION_EDGES, MLP_EDGES,
};
use cusync_sim::{splitmix64, CompiledPipeline, EngineMode, GpuConfig, Session};
use cusyncgen::{autotune_sync_mechanisms, MechanismPlan, TuneCache};

/// One tuned figure cell, flattened for the JSON artifact.
struct Cell {
    figure: String,
    label: String,
    edges: usize,
    plan: MechanismPlan,
    /// Strictly faster than *both* valid anchors.
    strict_win: bool,
}

/// Shape-class fingerprint: a stable hash of the cell's identity (figure
/// family + sizes), independent of the mechanism assignment — the
/// [`TuneCache`] key space `autotune_sync_mechanisms` memoizes under.
fn shape_fingerprint(parts: &[u64]) -> u64 {
    let mut fp = 0xC60_2024u64;
    for &p in parts {
        fp = splitmix64(fp ^ splitmix64(p));
    }
    fp
}

/// Autotunes one cell and checks its invariants: anchors bound the tuned
/// time, and the tuned pipeline is engine-invariant (Reference vs
/// Optimized bit-identity on kernel timelines and totals).
fn tune_cell(
    figure: &str,
    label: &str,
    edges: usize,
    fingerprint: u64,
    cache: &mut TuneCache,
    compile: impl Fn(&[SyncMechanism]) -> Option<CompiledPipeline>,
) -> Cell {
    let mut optimized = Session::with_mode(EngineMode::Optimized);
    let plan = autotune_sync_mechanisms(edges, fingerprint, cache, |ms| {
        let pipeline = compile(ms)?;
        // A deadlocking assignment is *invalid*, not fatal: gating an
        // intermediate stage while downstream fine-sync consumers run
        // with `avoid_wait_kernel` can reproduce the paper's Section
        // III-B occupancy deadlock (spinning consumer blocks starve the
        // gated producer of SMs). The tuner simply never picks it.
        optimized.run(&pipeline).ok().map(|report| report.total)
    });
    for (anchor, time) in [("all-TileSync", plan.all_fine), ("all-Pdl", plan.all_pdl)] {
        if let Some(t) = time {
            assert!(
                plan.time <= t,
                "{figure}/{label}: tuned {} slower than {anchor} {}",
                plan.time,
                t,
            );
        }
    }
    let tuned = compile(&plan.assignment).expect("the tuned assignment compiles");
    let mut reference = Session::with_mode(EngineMode::Reference);
    let ref_report = reference.run(&tuned).expect("reference run");
    let opt_report = optimized.run(&tuned).expect("optimized run");
    assert_eq!(
        ref_report.kernels, opt_report.kernels,
        "{figure}/{label}: Reference vs Optimized kernel timelines",
    );
    assert_eq!(
        ref_report.total, opt_report.total,
        "{figure}/{label}: Reference vs Optimized totals",
    );
    let strict_win = [plan.all_fine, plan.all_pdl]
        .iter()
        .flatten()
        .all(|&t| plan.time < t);
    eprintln!(
        "{figure:<14} {label:<12} tuned {} ({}) | all-TileSync {:?} all-Pdl {:?}{}",
        plan.time,
        plan.describe(),
        plan.all_fine,
        plan.all_pdl,
        if strict_win { "  << strict win" } else { "" },
    );
    Cell {
        figure: figure.to_owned(),
        label: label.to_owned(),
        edges,
        plan,
        strict_win,
    }
}

fn render_json(quick: bool, cells: &[Cell], cache: &TuneCache) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"cusync-bench-mechtune/1\",");
    let _ = writeln!(out, "  \"pr\": \"PR9\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let fmt_opt = |t: Option<cusync_sim::SimTime>| {
            t.map(|t| t.as_picos().to_string())
                .unwrap_or_else(|| "null".to_owned())
        };
        let _ = writeln!(
            out,
            "    {{\"figure\": \"{}\", \"label\": \"{}\", \"edges\": {}, \
             \"all_tilesync_ps\": {}, \"all_pdl_ps\": {}, \"tuned_ps\": {}, \
             \"assignment\": \"{}\", \"evaluated\": {}, \"bit_identical\": true, \
             \"strict_win\": {}}}{}",
            c.figure,
            c.label,
            c.edges,
            fmt_opt(c.plan.all_fine),
            fmt_opt(c.plan.all_pdl),
            c.plan.time.as_picos(),
            c.plan.describe(),
            c.plan.evaluated,
            c.strict_win,
            if i + 1 < cells.len() { "," } else { "" },
        );
    }
    let _ = writeln!(out, "  ],");
    let mut assignments: Vec<String> = cells.iter().map(|c| c.plan.describe()).collect();
    assignments.sort();
    assignments.dedup();
    let _ = writeln!(
        out,
        "  \"summary\": {{\"cells\": {}, \"strict_wins\": {}, \
         \"distinct_assignments\": {}, \"cache_entries\": {}}}",
        cells.len(),
        cells.iter().filter(|c| c.strict_win).count(),
        assignments.len(),
        cache.len(),
    );
    out.push_str("}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR9.json".to_owned());
    let gpu = GpuConfig::tesla_v100();
    let mut cache = TuneCache::new();
    let mut cells: Vec<Cell> = Vec::new();

    // Fig. 6 MLP panels: one gemm1 -> gemm2 edge per cell.
    let mlp_batches: Vec<u32> = if quick {
        vec![1, 256]
    } else {
        FIG6_MLP_BATCHES.to_vec()
    };
    for model in [MlpModel::Gpt3, MlpModel::Llama] {
        for &bs in &mlp_batches {
            let figure = format!("fig6_mlp_{model:?}").to_lowercase();
            let fp = shape_fingerprint(&[1, model as u64, bs as u64]);
            cells.push(tune_cell(
                &figure,
                &format!("bs{bs}"),
                MLP_EDGES,
                fp,
                &mut cache,
                |ms| compile_mlp_mechanisms(&gpu, model, bs, OptFlags::WRT, ms),
            ));
        }
    }

    // Fig. 6 Attention panels: the six-edge chain over the
    // prompt/generation grid.
    let attn_configs = fig8_llm_configs();
    let attn_configs: Vec<&(String, u32, u32)> = if quick {
        attn_configs.iter().step_by(4).collect()
    } else {
        attn_configs.iter().collect()
    };
    for &&(ref label, tokens, cached) in &attn_configs {
        let cfg = AttentionConfig {
            hidden: 12288,
            tokens,
            cached,
        };
        let fp = shape_fingerprint(&[2, 12288, tokens as u64, cached as u64]);
        cells.push(tune_cell(
            "fig6_attention",
            &label.replace(", ", "-"),
            ATTENTION_EDGES,
            fp,
            &mut cache,
            |ms| compile_attention_mechanisms(&gpu, cfg, OptFlags::WRT, ms),
        ));
    }

    // Fig. 7 conv panels: convs-1 chain edges per cell.
    let (channels, batches, depths): (Vec<u32>, Vec<u32>, Vec<u32>) = if quick {
        (vec![64, 256], vec![8], vec![2, 4])
    } else {
        (
            vec![64, 128, 256, 512],
            FIG7_BATCHES.iter().copied().step_by(3).collect(),
            vec![2, 4],
        )
    };
    for &c in &channels {
        for &b in &batches {
            for &convs in &depths {
                let pq = pq_for_channels(c);
                let fp = shape_fingerprint(&[3, c as u64, b as u64, convs as u64]);
                cells.push(tune_cell(
                    "fig7_conv",
                    &format!("c{c}-b{b}-x{convs}"),
                    conv_chain_edges(convs),
                    fp,
                    &mut cache,
                    |ms| compile_conv_layer_mechanisms(&gpu, b, pq, c, convs, OptFlags::WRT, ms),
                ));
            }
        }
    }

    // Retuning any cell against the now-warm cache must re-simulate
    // nothing: every evaluation answers from the persisted-format
    // TuneCache entries keyed by (shape fingerprint, assignment).
    {
        let fp = shape_fingerprint(&[1, MlpModel::Gpt3 as u64, mlp_batches[0] as u64]);
        let replay = autotune_sync_mechanisms(MLP_EDGES, fp, &mut cache, |ms| {
            panic!("cache miss on replay of {}", cusyncgen::assignment_key(ms))
        });
        assert_eq!(
            replay.assignment, cells[0].plan.assignment,
            "replayed plan diverged from the first tuning pass",
        );
    }

    let strict_wins = cells.iter().filter(|c| c.strict_win).count();
    assert!(
        strict_wins >= 1,
        "no cell's tuned assignment strictly beat both anchors",
    );
    let mut assignments: Vec<String> = cells.iter().map(|c| c.plan.describe()).collect();
    assignments.sort();
    assignments.dedup();
    assert!(
        assignments.len() >= 2,
        "every cell chose the same assignment: {assignments:?}",
    );

    let json = render_json(quick, &cells, &cache);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    eprintln!(
        "wrote {out_path}: {} cells, {strict_wins} strict wins, {} distinct assignments",
        cells.len(),
        assignments.len(),
    );
}
