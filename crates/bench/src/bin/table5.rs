//! Table V: execution times of TileSync (GPT-3 MLP) and Conv2DTileSync
//! (ResNet) with the optimizations applied incrementally:
//! Vanilla, +R, +WR, +WRT (Section IV-C).

use cusync::OptFlags;
use cusync_bench::{header, row, us};
use cusync_models::{conv_layer_time, mlp_time, MlpModel, PolicyKind, SyncMode};
use cusync_sim::GpuConfig;

const LADDER: [(&str, OptFlags); 4] = [
    ("Vanilla", OptFlags::NONE),
    ("+R", OptFlags::R),
    ("+WR", OptFlags::WR),
    ("+WRT", OptFlags::WRT),
];

fn main() {
    let gpu = GpuConfig::tesla_v100();

    println!("# Table V(a): TileSync optimization ablation, GPT-3 MLP\n");
    println!(
        "{}",
        header(&["Batch", "Vanilla (us)", "+R", "+WR", "+WRT"])
    );
    for bs in [64u32, 128, 256] {
        let mut cells = vec![format!("1-{bs}")
            .replace("1-64", "1-64")
            .replace("1-128", "128")
            .replace("1-256", "256")];
        for (_, opts) in LADDER {
            let t = mlp_time(
                &gpu,
                MlpModel::Gpt3,
                bs,
                SyncMode::CuSync(PolicyKind::Tile, opts),
            );
            cells.push(us(t));
        }
        println!("{}", row(&cells));
    }
    println!("\nPaper (B=1-64): 378 / 365 / 360 / 355 us.\n");

    println!("# Table V(b): Conv2DTileSync ablation, ResNet-38 Conv2D pairs\n");
    println!(
        "{}",
        header(&["C", "B", "Vanilla (us)", "+R", "+WR", "+WRT"])
    );
    let cases = [(64u32, 1u32), (128, 1), (256, 1), (512, 1), (512, 4)];
    for (channels, batch) in cases {
        let pq = cusync_models::pq_for_channels(channels);
        let mut cells = vec![channels.to_string(), batch.to_string()];
        for (_, opts) in LADDER {
            let t = conv_layer_time(
                &gpu,
                batch,
                pq,
                channels,
                2,
                SyncMode::CuSync(PolicyKind::Conv2DTile, opts),
            );
            cells.push(us(t));
        }
        println!("{}", row(&cells));
    }
    println!(
        "\nPaper: each added optimization monotonically reduces time, e.g. C=64 B=1: \
         50 / 45 / 41 / 37 us; C=512 B=4: 135 / 128 / 120 / 115 us."
    );
}
