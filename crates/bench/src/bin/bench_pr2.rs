//! Measures the compile/execute split: rebuild-per-run vs compiled-reuse
//! (serial) vs a pooled `Runtime` fan-out, over the Fig. 6 cell set, then
//! writes `BENCH_PR2.json`.
//!
//! Usage: `bench_pr2 [--quick] [--reps N] [--out PATH]`
//!
//! `--quick` shrinks the cell set and runs one measurement round instead
//! of best-of-3 (for CI smoke jobs). The JSON schema is shared with
//! `BENCH_PR1.json` (see `crates/bench/src/perf.rs` and
//! `crates/sim/README.md`); phase `"before"` is rebuild-per-run and
//! `"after"` is compiled-reuse / pooled.

use cusync_bench::perf::{render_json, PerfEntry};
use cusync_bench::reuse::{
    fig6_cells, measure_compiled, measure_pooled, measure_rebuild, ReuseOutcome,
};
use cusync_bench::sweep::default_threads;
use cusync_sim::GpuConfig;

fn best_of<F: FnMut() -> ReuseOutcome>(reps: usize, mut f: F) -> ReuseOutcome {
    let mut best: Option<ReuseOutcome> = None;
    for _ in 0..reps {
        let outcome = f();
        let better = match &best {
            Some(b) => outcome.wall < b.wall,
            None => true,
        };
        if better {
            best = Some(outcome);
        }
    }
    best.expect("reps >= 1")
}

fn entry(figure: &str, phase: &str, threads: usize, memoized: bool, o: &ReuseOutcome) -> PerfEntry {
    PerfEntry {
        figure: figure.to_owned(),
        phase: phase.to_owned(),
        engine: "optimized".to_owned(),
        threads,
        memoized,
        wall_seconds: o.wall.as_secs_f64(),
        sim_events: o.events,
        cells: o.runs,
        ns_per_event: o.ns_per_event(),
        events_per_sec: o.events_per_sec(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR2.json".to_owned());
    let reps: usize = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 2 } else { 5 });
    let rounds = if quick { 1 } else { 3 };

    let gpu = GpuConfig::tesla_v100();
    let cells = fig6_cells(quick);
    let workers = default_threads();
    eprintln!(
        "fig6 cell set: {} cells x {} repeated runs each (quick={quick})",
        cells.len(),
        reps
    );

    eprintln!("measuring rebuild-per-run (fresh Gpu + graph bind per run, serial)...");
    let rebuild = best_of(rounds, || measure_rebuild(&gpu, &cells, reps));
    eprintln!(
        "  rebuild:  {:>8.1} ms, {} runs, {:.0} ns/event",
        rebuild.wall.as_secs_f64() * 1e3,
        rebuild.runs,
        rebuild.ns_per_event()
    );

    eprintln!("measuring compiled-reuse (compile once, warmed Session, serial)...");
    let compiled = best_of(rounds, || measure_compiled(&gpu, &cells, reps));
    eprintln!(
        "  compiled: {:>8.1} ms, {} runs, {:.0} ns/event  (speedup {:.2}x)",
        compiled.wall.as_secs_f64() * 1e3,
        compiled.runs,
        compiled.ns_per_event(),
        rebuild.wall.as_secs_f64() / compiled.wall.as_secs_f64()
    );

    eprintln!("measuring pooled Runtime ({workers} worker session(s))...");
    let pooled = best_of(rounds, || measure_pooled(&gpu, &cells, reps, workers));
    eprintln!(
        "  pooled:   {:>8.1} ms, {} runs  (speedup over rebuild {:.2}x)",
        pooled.wall.as_secs_f64() * 1e3,
        pooled.runs,
        rebuild.wall.as_secs_f64() / pooled.wall.as_secs_f64()
    );

    // The strategies must be observationally identical: same simulated
    // total and event count for every (cell, repetition) pair.
    assert_eq!(
        rebuild.checksums, compiled.checksums,
        "compiled-reuse diverged from rebuild-per-run"
    );
    assert_eq!(
        rebuild.checksums, pooled.checksums,
        "pooled runtime diverged from rebuild-per-run"
    );

    let entries = vec![
        entry("fig6_serial", "before", 1, false, &rebuild),
        entry("fig6_serial", "after", 1, true, &compiled),
        entry("fig6_pooled", "before", 1, false, &rebuild),
        entry("fig6_pooled", "after", workers, true, &pooled),
    ];
    let json = render_json("PR2", &entries);
    std::fs::write(&out_path, &json).expect("write BENCH json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
