//! Table IV: grid size, waves, and execution time under StreamSync vs
//! cuSync's best policy for both GeMMs of GPT-3's MLP.

use cusync::OptFlags;
use cusync_bench::{header, pct, row, us};
use cusync_models::{gpt3_mlp_tiling, mlp_time, MlpModel, PolicyKind, SyncMode};
use cusync_sim::stats::waves;
use cusync_sim::GpuConfig;

fn main() {
    let gpu = GpuConfig::tesla_v100();
    println!("# Table IV: StreamSync vs cuSync for GPT-3 MLP GeMMs\n");
    println!(
        "{}",
        header(&[
            "Batch",
            "GeMM1 grid",
            "GeMM1 waves",
            "GeMM2 grid",
            "GeMM2 waves",
            "StreamSync (us)",
            "cuSync (us)",
            "Best policy",
            "Decrease",
        ])
    );
    for bs in [64u32, 128, 256, 512, 1024, 2048] {
        let t = gpt3_mlp_tiling(bs);
        let g1 = (
            bs.div_ceil(t.gemm1.tile.m),
            6144 / t.gemm1.tile.n,
            t.gemm1.split_k,
        );
        let g2 = (
            bs.div_ceil(t.gemm2.tile.m),
            12288 / t.gemm2.tile.n,
            t.gemm2.split_k,
        );
        let w1 = waves((g1.0 * g1.1 * g1.2) as u64, t.gemm1.occupancy, gpu.num_sms);
        let w2 = waves((g2.0 * g2.1 * g2.2) as u64, t.gemm2.occupancy, gpu.num_sms);

        let base = mlp_time(&gpu, MlpModel::Gpt3, bs, SyncMode::StreamSync);
        let candidates = [
            ("Tile", SyncMode::CuSync(PolicyKind::Tile, OptFlags::WRT)),
            ("Row", SyncMode::CuSync(PolicyKind::Row, OptFlags::WRT)),
        ];
        let (best_name, best_time) = candidates
            .iter()
            .map(|(name, mode)| (*name, mlp_time(&gpu, MlpModel::Gpt3, bs, *mode)))
            .min_by_key(|(_, time)| *time)
            .expect("candidates non-empty");
        let decrease =
            100.0 * (base.as_picos() as f64 - best_time.as_picos() as f64) / base.as_picos() as f64;
        println!(
            "{}",
            row(&[
                bs.to_string(),
                format!("{}x{}x{}", g1.0, g1.1, g1.2),
                format!("{w1:.1}"),
                format!("{}x{}x{}", g2.0, g2.1, g2.2),
                format!("{w2:.1}"),
                us(base),
                us(best_time),
                best_name.to_string(),
                pct(decrease),
            ])
        );
    }
    println!(
        "\nPaper (times on real V100): 378->355us (Tile, 5-6%) at 1-64, 862->728us (Tile, \
         16%) at 256, 1500->1196us (Row, 21%) at 512, 2111->1901us (Row, 10%) at 1024, \
         3730->3574us (Row, 4%) at 2048."
    );
}
