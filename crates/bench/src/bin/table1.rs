//! Table I: thread blocks, blocks per wave, waves, and GPU utilization of
//! the two dependent GeMMs of the GPT-3 MLP on a Tesla V100 (80 SMs).

use cusync_bench::{header, row};
use cusync_models::gpt3_mlp_tiling;
use cusync_sim::stats::{utilization, waves};
use cusync_sim::GpuConfig;

fn main() {
    let gpu = GpuConfig::tesla_v100();
    println!("# Table I: waves and utilization of GPT-3 MLP GeMMs (V100, 80 SMs)\n");
    println!(
        "{}",
        header(&["Batch", "GeMM", "TBs", "TBs/Wave", "Waves", "Utilization"])
    );
    for bs in [256u32, 512, 1024] {
        let t = gpt3_mlp_tiling(bs);
        let gemms = [
            (
                "Producer",
                bs.div_ceil(t.gemm1.tile.m),
                6144 / t.gemm1.tile.n,
                t.gemm1,
            ),
            (
                "Consumer",
                bs.div_ceil(t.gemm2.tile.m),
                12288 / t.gemm2.tile.n,
                t.gemm2,
            ),
        ];
        for (role, gy, gx, tiling) in gemms {
            let blocks = (gy * gx * tiling.split_k) as u64;
            let per_wave = gpu.blocks_per_wave(tiling.occupancy);
            let w = waves(blocks, tiling.occupancy, gpu.num_sms);
            println!(
                "{}",
                row(&[
                    bs.to_string(),
                    role.to_string(),
                    format!("[{gy}, {gx}, {}]", tiling.split_k),
                    format!("{}x{}", tiling.occupancy, gpu.num_sms),
                    format!("{w:.1}"),
                    format!("{:.0}%", utilization(w) * 100.0),
                ])
            );
            let _ = per_wave;
        }
    }
    println!("\nPaper: 1.2 waves / 60% at 256 and 512; 2.4 waves / 80% at 1024.");
}
