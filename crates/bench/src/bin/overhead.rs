//! Section V-D: maximum overhead of synchronization.
//!
//! Two copy kernels of exactly one full wave at maximum occupancy
//! (80 x 16 = 1280 thread blocks on the V100) with a same-block
//! dependency — the least compute per synchronization the framework can
//! encounter. The paper bounds cuSync's overhead at 2-3% over StreamSync.

use cusync_bench::{header, overhead_experiment, row, us};
use cusync_sim::GpuConfig;

fn main() {
    let gpu = GpuConfig::tesla_v100();
    println!("# Section V-D: maximum synchronization overhead (copy kernels, 1280 TBs)\n");
    println!(
        "{}",
        header(&[
            "Elems/block",
            "StreamSync (us)",
            "cuSync (us)",
            "End-to-end delta",
            "Per-block sync cost",
        ])
    );
    for elems in [4u32 * 1024, 16 * 1024, 64 * 1024] {
        let r = overhead_experiment(&gpu, elems);
        println!(
            "{}",
            row(&[
                elems.to_string(),
                us(r.stream_sync),
                us(r.cusync),
                format!("{:+.1}%", r.overhead_pct),
                format!("{:.1}%", r.per_block_sync_pct),
            ])
        );
    }
    println!(
        "\nPaper: 2-3% overhead over StreamSync. The per-block sync cost column is the \
         direct analogue (fence + atomic post + wait poll vs copy time); the end-to-end \
         delta also includes the kernel-dispatch gap cuSync hides, so it can be negative."
    );
}
