//! Table III: fraction of lines changed in each kernel to support cuSync.
//!
//! The paper counts the lines added/changed in CUTLASS GeMM and Conv2D and
//! in its fused Softmax-Dropout to plug in cuSync (25 / 22 / 5 lines,
//! 0.5–1%). This binary performs the same audit on this repository's
//! kernels: it counts the lines that invoke the stage hook API
//! (`start_op`, `tile_counter` / `tile_at`, `wait_op`, `post_ops`) against
//! each kernel's total line count.

use cusync_bench::{header, row};

struct KernelAudit {
    name: &'static str,
    implementation: &'static str,
    source: &'static str,
}

const HOOKS: [&str; 6] = [
    ".start_op(",
    ".tile_counter(",
    ".tile_at(",
    ".wait_op(",
    ".post_ops(",
    "stage.wait",
];

fn main() {
    let kernels_src = concat!(env!("CARGO_MANIFEST_DIR"), "/../kernels/src");
    let audits = [
        KernelAudit {
            name: "GeMM",
            implementation: "CUTLASS-style",
            source: "gemm.rs",
        },
        KernelAudit {
            name: "Softmax-Dropout",
            implementation: "Ours",
            source: "softmax_dropout.rs",
        },
        KernelAudit {
            name: "Conv2D",
            implementation: "CUTLASS-style",
            source: "conv2d.rs",
        },
    ];
    println!("# Table III: lines changed to support cuSync\n");
    println!(
        "{}",
        header(&[
            "Kernel",
            "Implementation",
            "Hook lines",
            "Total lines",
            "Fraction"
        ])
    );
    for audit in audits {
        let path = format!("{kernels_src}/{}", audit.source);
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let total = text.lines().count();
        let hooks = text
            .lines()
            .filter(|line| {
                let line = line.trim_start();
                !line.starts_with("//") && HOOKS.iter().any(|h| line.contains(h))
            })
            .count();
        println!(
            "{}",
            row(&[
                audit.name.to_string(),
                audit.implementation.to_string(),
                hooks.to_string(),
                total.to_string(),
                format!("{:.1}%", 100.0 * hooks as f64 / total as f64),
            ])
        );
    }
    println!("\nPaper: GeMM 25 lines (0.5%), Softmax-Dropout 5 (1%), Conv2D 22 (0.6%).");
}
