//! Measures the tensor-parallel allreduce-overlap scenario on the
//! multi-device simulator: for each (workload, tokens, devices) cell, the
//! simulated layer-boundary time under the serialized baseline vs the
//! fine-grained overlap schedule, plus the simulated ring allreduce
//! checked against the analytic oracle. Writes `BENCH_PR3.json`.
//!
//! Every cell is also executed under **both** engine modes and asserted
//! bit-identical, so the benchmark doubles as a multi-device
//! reference↔optimized equivalence smoke.
//!
//! Usage: `bench_pr3 [--quick] [--out PATH]`

use std::time::Instant;

use cusync_models::{
    allreduce_time, ring_allreduce_time, tp_attention, tp_layer_time, tp_mlp, TpLayerConfig,
    TpSchedule,
};
use cusync_sim::{with_engine_mode, ClusterConfig, EngineMode, GpuConfig, SimTime};

struct Cell {
    workload: &'static str,
    cfg: TpLayerConfig,
    devices: u32,
    serialized: SimTime,
    overlap: SimTime,
    ar_sim: SimTime,
    ar_analytic: SimTime,
}

impl Cell {
    fn improvement_pct(&self) -> f64 {
        100.0 * (1.0 - self.overlap.as_picos() as f64 / self.serialized.as_picos() as f64)
    }

    fn ar_err_pct(&self) -> f64 {
        100.0 * (self.ar_sim.as_picos() as f64 - self.ar_analytic.as_picos() as f64)
            / self.ar_analytic.as_picos() as f64
    }
}

fn measure(workload: &'static str, cfg: TpLayerConfig, devices: u32) -> Cell {
    let cluster = ClusterConfig::dgx_v100(devices);
    let both = |schedule: TpSchedule| {
        let optimized = with_engine_mode(EngineMode::Optimized, || {
            tp_layer_time(&cluster, cfg, schedule)
        });
        let reference = with_engine_mode(EngineMode::Reference, || {
            tp_layer_time(&cluster, cfg, schedule)
        });
        assert_eq!(
            optimized, reference,
            "{workload} tokens={} devices={devices} {schedule:?}: engines diverged",
            cfg.tokens
        );
        optimized
    };
    let serialized = both(TpSchedule::Serialized);
    let overlap = both(TpSchedule::Overlap);
    let bytes = cfg.tokens as u64 * cfg.hidden as u64 * 2;
    Cell {
        workload,
        cfg,
        devices,
        serialized,
        overlap,
        ar_sim: ring_allreduce_time(&GpuConfig::tesla_v100(), bytes, devices),
        ar_analytic: allreduce_time(bytes, devices),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR3.json".to_owned());

    let token_set: &[u32] = if quick {
        &[512]
    } else {
        &[256, 512, 1024, 2048]
    };
    let device_set: &[u32] = if quick { &[4, 8] } else { &[2, 4, 8] };
    let hidden = 12288u32; // GPT-3 145B class

    let started = Instant::now();
    let mut cells = Vec::new();
    for &devices in device_set {
        for &tokens in token_set {
            for (workload, cfg) in [
                ("tp_mlp", tp_mlp(hidden, tokens)),
                ("tp_attention", tp_attention(hidden, tokens)),
            ] {
                let cell = measure(workload, cfg, devices);
                eprintln!(
                    "{workload:>13} tokens={tokens:>4} devices={devices}: \
                     serialized {:>9.1}us  overlap {:>9.1}us  ({:+.1}%)  \
                     [ar sim {:.1}us vs analytic {:.1}us, {:+.1}%]",
                    cell.serialized.as_micros(),
                    cell.overlap.as_micros(),
                    cell.improvement_pct(),
                    cell.ar_sim.as_micros(),
                    cell.ar_analytic.as_micros(),
                    cell.ar_err_pct(),
                );
                cells.push(cell);
            }
        }
    }
    let wall = started.elapsed().as_secs_f64();

    let improvements: Vec<f64> = cells.iter().map(Cell::improvement_pct).collect();
    let mean = improvements.iter().sum::<f64>() / improvements.len() as f64;
    let min = improvements.iter().cloned().fold(f64::INFINITY, f64::min);
    let max_ar_err = cells
        .iter()
        .map(|c| c.ar_err_pct().abs())
        .fold(0.0f64, f64::max);
    let all_win = improvements.iter().all(|&i| i > 0.0);
    assert!(
        all_win,
        "the overlap schedule must beat the serialized allreduce baseline in every cell"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"cusync-bench/1\",\n");
    json.push_str("  \"pr\": \"PR3\",\n");
    json.push_str(&format!(
        "  \"scenario\": {{ \"hidden\": {hidden}, \"cluster\": \"dgx_v100\", \"quick\": {quick} }},\n"
    ));
    json.push_str("  \"entries\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"workload\": \"{}\", \"tokens\": {}, \"devices\": {}, \
             \"serialized_us\": {:.3}, \"overlap_us\": {:.3}, \"improvement_pct\": {:.2}, \
             \"allreduce_sim_us\": {:.3}, \"allreduce_analytic_us\": {:.3}, \
             \"allreduce_err_pct\": {:.2} }}{}\n",
            c.workload,
            c.cfg.tokens,
            c.devices,
            c.serialized.as_micros(),
            c.overlap.as_micros(),
            c.improvement_pct(),
            c.ar_sim.as_micros(),
            c.ar_analytic.as_micros(),
            c.ar_err_pct(),
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"summary\": {\n");
    json.push_str(&format!(
        "    \"mean_improvement_pct\": {mean:.2},\n    \"min_improvement_pct\": {min:.2},\n"
    ));
    json.push_str(&format!(
        "    \"max_allreduce_err_pct\": {max_ar_err:.2},\n"
    ));
    json.push_str(&format!(
        "    \"overlap_beats_serialized_everywhere\": {all_win},\n"
    ));
    json.push_str(&format!("    \"wall_seconds\": {wall:.3}\n"));
    json.push_str("  }\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
