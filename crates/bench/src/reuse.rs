//! Compile-once/run-many measurement: the `bench_pr2` harness.
//!
//! PR 1 made each simulated run cheaper; this harness measures what the
//! compile/execute split adds on top: the **rebuild-per-run** world (every
//! invocation builds a fresh [`Gpu`], re-registers kernels, re-binds the
//! sync graph, then runs once — the pre-split shape of every model/bench
//! call site) against the **compiled-reuse** world (each workload is
//! compiled once into a [`CompiledPipeline`] and executed repeatedly on
//! one warmed [`Session`], allocation-free after warmup), and against the
//! **pooled** world (the same compiled pipelines fanned out over a
//! [`Runtime`] worker pool — the multi-tenant serving story, which
//! multiplies on multi-core hosts).
//!
//! The workload is the Fig. 6 cell set (every MLP and Attention
//! configuration × sync mode of the paper's Fig. 6 sweep), each cell run
//! `reps` times — the shape of a server answering repeated requests over
//! a fixed set of models. Simulated results are asserted identical across
//! strategies; only wall-clock differs.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cusync_models::{
    build_attention, build_mlp, compile_attention, compile_mlp, AttentionConfig, MlpModel, SyncMode,
};
use cusync_sim::{CompiledPipeline, Gpu, GpuConfig, RunReport, Runtime, Session};

use crate::sweep::{
    fig6_attention_configs, fig6_attention_modes, fig6_mlp_modes, FIG6_MLP_BATCHES,
};

/// One cell of the reuse workload: a workload configuration × sync mode.
#[derive(Debug, Clone)]
pub enum Cell {
    /// An MLP block configuration.
    Mlp(MlpModel, u32, SyncMode),
    /// An attention chain configuration.
    Attention(AttentionConfig, SyncMode),
}

impl Cell {
    /// Builds this cell into a fresh one-shot [`Gpu`] (the
    /// rebuild-per-run path).
    pub fn build(&self, gpu_cfg: &GpuConfig) -> Gpu {
        let mut gpu = Gpu::new(gpu_cfg.clone());
        match self {
            Cell::Mlp(model, bs, mode) => build_mlp(&mut gpu, *model, *bs, *mode),
            Cell::Attention(cfg, mode) => build_attention(&mut gpu, *cfg, *mode),
        }
        gpu
    }

    /// Compiles this cell once (the compiled-reuse path).
    pub fn compile(&self, gpu_cfg: &GpuConfig) -> CompiledPipeline {
        match self {
            Cell::Mlp(model, bs, mode) => compile_mlp(gpu_cfg, *model, *bs, *mode),
            Cell::Attention(cfg, mode) => compile_attention(gpu_cfg, *cfg, *mode),
        }
    }
}

/// The Fig. 6 cell set: every (configuration × mode) pair of the MLP and
/// Attention panels, including the StreamSync baselines. `quick` keeps
/// one MLP model and a third of the configurations for CI smoke runs.
pub fn fig6_cells(quick: bool) -> Vec<Cell> {
    let mut cells = Vec::new();
    let mlp_models: &[MlpModel] = if quick {
        &[MlpModel::Gpt3]
    } else {
        &[MlpModel::Gpt3, MlpModel::Llama]
    };
    let stride = if quick { 3 } else { 1 };
    for &model in mlp_models {
        for bs in FIG6_MLP_BATCHES.iter().step_by(stride) {
            cells.push(Cell::Mlp(model, *bs, SyncMode::StreamSync));
            for mode in fig6_mlp_modes() {
                cells.push(Cell::Mlp(model, *bs, mode));
            }
        }
    }
    let hiddens: &[u32] = if quick { &[12288] } else { &[12288, 8192] };
    for &hidden in hiddens {
        for (i, (_, cfg)) in fig6_attention_configs(hidden).into_iter().enumerate() {
            if i % stride != 0 {
                continue;
            }
            cells.push(Cell::Attention(cfg, SyncMode::StreamSync));
            for mode in fig6_attention_modes() {
                cells.push(Cell::Attention(cfg, mode));
            }
        }
    }
    cells
}

/// Outcome of one measured strategy.
#[derive(Debug, Clone)]
pub struct ReuseOutcome {
    /// Wall-clock time for all runs.
    pub wall: Duration,
    /// Total runs executed (`cells × reps`).
    pub runs: usize,
    /// Total simulator events handled.
    pub events: u64,
    /// `(simulated total, sim_events)` of **every** run, in cell-major
    /// `(cell, rep)` order — the cross-strategy equality witness: any
    /// divergence of any repetition, in timing or in event count, shows
    /// up here.
    pub checksums: Vec<(u64, u64)>,
}

impl ReuseOutcome {
    /// Mean wall nanoseconds per simulated event.
    pub fn ns_per_event(&self) -> f64 {
        if self.events == 0 {
            return 0.0;
        }
        self.wall.as_nanos() as f64 / self.events as f64
    }

    /// Simulated events per wall second.
    pub fn events_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s == 0.0 {
            return 0.0;
        }
        self.events as f64 / s
    }
}

fn accumulate(outcome: &mut ReuseOutcome, report: &RunReport) {
    outcome.runs += 1;
    outcome.events += report.sim_events;
    outcome
        .checksums
        .push((report.total.as_picos(), report.sim_events));
}

/// The pre-split shape: every run rebuilds the workload from scratch on a
/// fresh one-shot [`Gpu`] and executes it once.
pub fn measure_rebuild(gpu_cfg: &GpuConfig, cells: &[Cell], reps: usize) -> ReuseOutcome {
    let mut outcome = ReuseOutcome {
        wall: Duration::ZERO,
        runs: 0,
        events: 0,
        checksums: Vec::with_capacity(cells.len()),
    };
    let t0 = Instant::now();
    for cell in cells {
        for _ in 0..reps {
            let mut gpu = cell.build(gpu_cfg);
            let report = gpu.run().expect("fig6 cell deadlocked");
            accumulate(&mut outcome, &report);
        }
    }
    outcome.wall = t0.elapsed();
    outcome
}

/// The compiled-reuse shape: each cell is compiled once, then executed
/// `reps` times on one warmed [`Session`] shared across all cells.
pub fn measure_compiled(gpu_cfg: &GpuConfig, cells: &[Cell], reps: usize) -> ReuseOutcome {
    let mut outcome = ReuseOutcome {
        wall: Duration::ZERO,
        runs: 0,
        events: 0,
        checksums: Vec::with_capacity(cells.len()),
    };
    let mut session = Session::new();
    let t0 = Instant::now();
    for cell in cells {
        let pipeline = cell.compile(gpu_cfg);
        for _ in 0..reps {
            let report = session.run(&pipeline).expect("fig6 cell deadlocked");
            accumulate(&mut outcome, &report);
        }
    }
    outcome.wall = t0.elapsed();
    outcome
}

/// The multi-tenant shape: each cell compiled once and shared as an
/// `Arc`, `cells × reps` submissions fanned out over a [`Runtime`] pool
/// of `workers` sessions.
pub fn measure_pooled(
    gpu_cfg: &GpuConfig,
    cells: &[Cell],
    reps: usize,
    workers: usize,
) -> ReuseOutcome {
    let mut outcome = ReuseOutcome {
        wall: Duration::ZERO,
        runs: 0,
        events: 0,
        checksums: Vec::with_capacity(cells.len()),
    };
    let runtime = Runtime::new(workers);
    let t0 = Instant::now();
    let pipelines: Vec<Arc<CompiledPipeline>> =
        cells.iter().map(|c| Arc::new(c.compile(gpu_cfg))).collect();
    // Submit cell-major so the checksum vector aligns with the serial
    // strategies' (cell, rep) order; workers still interleave cells.
    let tickets: Vec<_> = pipelines
        .iter()
        .flat_map(|p| (0..reps).map(|_| runtime.submit(Arc::clone(p))))
        .collect();
    for ticket in tickets {
        let report = ticket.wait().expect("fig6 cell deadlocked");
        accumulate(&mut outcome, &report);
    }
    outcome.wall = t0.elapsed();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_agree_on_simulated_results() {
        let gpu = GpuConfig::tesla_v100();
        // A tiny cell subset keeps this test fast.
        let cells: Vec<Cell> = fig6_cells(true).into_iter().take(4).collect();
        let rebuild = measure_rebuild(&gpu, &cells, 2);
        let compiled = measure_compiled(&gpu, &cells, 2);
        let pooled = measure_pooled(&gpu, &cells, 2, 2);
        assert_eq!(rebuild.runs, 8);
        assert_eq!(rebuild.checksums.len(), 8, "every rep is checked");
        assert_eq!(rebuild.checksums, compiled.checksums);
        assert_eq!(rebuild.checksums, pooled.checksums);
        assert_eq!(rebuild.events, compiled.events);
        assert_eq!(rebuild.events, pooled.events);
    }

    #[test]
    fn fig6_cell_set_covers_both_panels() {
        let cells = fig6_cells(false);
        let mlps = cells.iter().filter(|c| matches!(c, Cell::Mlp(..))).count();
        let atts = cells
            .iter()
            .filter(|c| matches!(c, Cell::Attention(..)))
            .count();
        assert!(mlps > 0 && atts > 0);
        let quick = fig6_cells(true);
        assert!(quick.len() < cells.len());
    }
}
