//! # cusync-bench: the paper's evaluation harness
//!
//! One binary per table/figure of the paper (run with `--release`):
//!
//! | Target | Reproduces |
//! |---|---|
//! | `table1` | Table I — waves and utilization of the GPT-3 MLP GeMMs |
//! | `table3` | Table III — lines changed to adopt cuSync |
//! | `table4` | Table IV — StreamSync vs best cuSync policy per batch |
//! | `table5` | Table V — the W/R/T optimization ablation |
//! | `fig6` | Fig. 6 — MLP and Attention improvements (GPT-3, LLaMA) |
//! | `fig7` | Fig. 7 — Conv2D improvements (ResNet-38, VGG-19) |
//! | `fig8` | Fig. 8 — end-to-end inference reductions |
//! | `overhead` | Section V-D — the maximum synchronization overhead bound |
//! | `bench_pr1` | `BENCH_PR1.json` — event-loop overhaul perf trajectory |
//! | `bench_pr2` | `BENCH_PR2.json` — rebuild-per-run vs compiled-reuse vs pooled `Runtime` |
//! | `bench_pr3` | `BENCH_PR3.json` — tensor-parallel allreduce overlap vs serialized baseline |
//!
//! The Criterion benches in `benches/paper.rs` wrap the same workloads for
//! wall-clock regression tracking of the simulator itself.

#![warn(missing_docs)]

pub mod perf;
pub mod reuse;
pub mod sweep;

use std::sync::Arc;

use cusync::{launch_stream_sync, CuStage, NoSync, OptFlags, SyncGraph, TileSync};
use cusync_kernels::CopyKernel;
use cusync_sim::{DType, Gpu, GpuConfig, KernelSource, SimTime, MAX_OCCUPANCY};

/// Formats a markdown table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Formats a markdown header + separator from column names.
pub fn header(cols: &[&str]) -> String {
    let head = row(&cols.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    let sep = row(&cols.iter().map(|_| "---".to_string()).collect::<Vec<_>>());
    format!("{head}\n{sep}")
}

/// Formats a percentage with sign, e.g. `+15.2%`.
pub fn pct(p: f64) -> String {
    format!("{p:+.1}%")
}

/// Formats a simulated time in microseconds.
pub fn us(t: SimTime) -> String {
    format!("{:.0}", t.as_micros())
}

/// Result of the Section V-D overhead-bound experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadResult {
    /// StreamSync time for the two copy kernels.
    pub stream_sync: SimTime,
    /// cuSync (TileSync, wait-kernel elided per Section IV-C) time.
    pub cusync: SimTime,
    /// `(cusync - stream_sync) / stream_sync`, percent. The paper bounds
    /// this at 2-3%.
    pub overhead_pct: f64,
    /// Analytic per-block cost of the synchronization ops (fence + atomic
    /// post + wait poll) as a fraction of the block's copy time, percent.
    pub per_block_sync_pct: f64,
}

/// Runs the Section V-D experiment: producer and consumer copy kernels of
/// exactly one full wave at maximum occupancy (80 x 16 = 1280 thread
/// blocks on the V100), each block copying `elems_per_block` f16 elements,
/// with the consumer's block `i` waiting on producer block `i`.
pub fn overhead_experiment(gpu_cfg: &GpuConfig, elems_per_block: u32) -> OverheadResult {
    let blocks = gpu_cfg.blocks_per_wave(MAX_OCCUPANCY) as u32;
    let len = blocks * elems_per_block;

    let stream_sync = {
        let mut gpu = Gpu::new(gpu_cfg.clone());
        let input = gpu.alloc("input", len as usize, DType::F16);
        let mid = gpu.alloc("mid", len as usize, DType::F16);
        let out = gpu.alloc("out", len as usize, DType::F16);
        launch_stream_sync(
            &mut gpu,
            [
                Arc::new(CopyKernel::new(
                    "producer",
                    len,
                    elems_per_block,
                    input,
                    mid,
                )) as Arc<dyn KernelSource>,
                Arc::new(CopyKernel::new("consumer", len, elems_per_block, mid, out)),
            ],
        );
        gpu.run().expect("stream-sync copy chain").total
    };

    let cusync = {
        let mut gpu = Gpu::new(gpu_cfg.clone());
        let input = gpu.alloc("input", len as usize, DType::F16);
        let mid = gpu.alloc("mid", len as usize, DType::F16);
        let out = gpu.alloc("out", len as usize, DType::F16);
        let grid = cusync_sim::Dim3::linear(blocks);
        let mut graph = SyncGraph::new();
        // Both kernels fit in one wave, so Section IV-C elides the
        // wait-kernel; TileSync synchronizes same-index blocks.
        let opts = OptFlags {
            avoid_wait_kernel: true,
            ..OptFlags::NONE
        };
        let s1 = graph.add_stage(CuStage::new("producer", grid).policy(TileSync).opts(opts));
        let s2 = graph.add_stage(CuStage::new("consumer", grid).policy(NoSync).opts(opts));
        graph.dependency(s1, s2, mid).expect("copy dep");
        let bound = graph.bind(&mut gpu).expect("bindable copy graph");
        let producer = CopyKernel::new("producer", len, elems_per_block, input, mid)
            .with_stage(Arc::clone(bound.stage(s1)), false);
        let consumer = CopyKernel::new("consumer", len, elems_per_block, mid, out)
            .with_stage(Arc::clone(bound.stage(s2)), true);
        bound
            .launch(&mut gpu, s1, Arc::new(producer))
            .expect("launch producer");
        bound
            .launch(&mut gpu, s2, Arc::new(consumer))
            .expect("launch consumer");
        gpu.run().expect("cusync copy chain").total
    };

    let overhead_pct = 100.0 * (cusync.as_picos() as f64 - stream_sync.as_picos() as f64)
        / stream_sync.as_picos() as f64;

    // Analytic per-block bound: fence + atomic post (producer side) and
    // one satisfied poll (consumer side) against the block's copy time.
    let sync_cycles =
        gpu_cfg.fence_cycles + gpu_cfg.atomic_latency_cycles + gpu_cfg.poll_latency_cycles;
    let sync_time = gpu_cfg.cycles(sync_cycles);
    let bytes = elems_per_block as u64 * 2;
    let copy_time = gpu_cfg.cycles(2 * gpu_cfg.global_latency_cycles)
        + gpu_cfg.mem_time(bytes, MAX_OCCUPANCY)
        + gpu_cfg.mem_time(bytes, MAX_OCCUPANCY);
    let per_block_sync_pct = 100.0 * sync_time.as_picos() as f64 / copy_time.as_picos() as f64;

    OverheadResult {
        stream_sync,
        cusync,
        overhead_pct,
        per_block_sync_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_helpers_format_markdown() {
        let h = header(&["a", "b"]);
        assert!(h.contains("| a | b |"));
        assert!(h.contains("| --- | --- |"));
        assert_eq!(pct(15.23), "+15.2%");
        assert_eq!(pct(-3.0), "-3.0%");
    }

    #[test]
    fn overhead_is_single_digit_percent() {
        // Section V-D: "synchronization using cuSync leads to 2-3%
        // overhead over StreamSync". Our simulator additionally lets the
        // consumer wave start without the kernel-dispatch gap, so the
        // measured delta can differ slightly; the per-block sync cost must
        // stay in the low single digits.
        let result = overhead_experiment(&GpuConfig::tesla_v100(), 16 * 1024);
        assert!(
            result.per_block_sync_pct > 0.5 && result.per_block_sync_pct < 6.0,
            "per-block sync {:.2}%",
            result.per_block_sync_pct
        );
        assert!(
            result.overhead_pct.abs() < 8.0,
            "end-to-end overhead {:.2}%",
            result.overhead_pct
        );
    }
}
