//! The parallel sweep driver behind the figure binaries.
//!
//! Every simulated GPU is an independent deterministic state machine, so a
//! figure's grid of (configuration × sync-mode) cells is embarrassingly
//! parallel: [`parallel_map`] fans row jobs out over OS threads, pinning
//! each worker to the requested [`EngineMode`] (the engine default is
//! thread-local). Within a row, [`Memoize::Shared`] computes the StreamSync
//! baseline once instead of once per mode — the sweep's one source of
//! redundant simulation.
//!
//! The same jobs run in two harness configurations:
//!
//! - [`SweepOptions::baseline`] — the *pre-refactor* shape: reference
//!   engine, serial, every cell re-simulating its own baseline. This is
//!   the "before" half of `BENCH_PR1.json`.
//! - [`SweepOptions::fast`] — optimized engine, one worker per core,
//!   shared baselines: the "after" half, and what the `fig*` binaries use.
//!
//! Since the compile/execute split, every cell the model helpers run
//! (`run_mlp`/`run_attention`/`run_conv_layer`) executes through the
//! calling worker's pooled thread session (`cusync_sim::run_compiled`),
//! so a sweep's cells share one warmed engine per worker instead of
//! reallocating a fresh `Gpu` per cell; the compile-once/run-many
//! trajectory itself is measured separately by `bench_pr2`
//! (`crate::reuse`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use cusync_models::{
    llm_step_report, resnet38, run_attention, run_conv_layer, run_mlp, vgg19, vision_step_report,
    AttentionConfig, MlpModel, PolicyKind, SyncMode, GPT3, LLAMA,
};
use cusync_sim::{with_engine_mode, EngineMode, GpuConfig};

use cusync::OptFlags;

/// Whether rows share their StreamSync baseline simulation across modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Memoize {
    /// Each cell re-simulates its own baseline (the original harness).
    PerCell,
    /// One baseline simulation per row, shared by every mode. Values are
    /// identical either way — the simulator is deterministic.
    Shared,
}

/// How a sweep executes: which engine, how many workers, baseline sharing.
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// Engine implementation every worker pins via [`with_engine_mode`].
    pub engine: EngineMode,
    /// Worker threads (1 = fully serial).
    pub threads: usize,
    /// Baseline sharing policy.
    pub memoize: Memoize,
}

impl SweepOptions {
    /// The production configuration: optimized engine, one worker per
    /// available core, shared baselines.
    pub fn fast() -> Self {
        SweepOptions {
            engine: EngineMode::Optimized,
            threads: default_threads(),
            memoize: Memoize::Shared,
        }
    }

    /// The pre-refactor harness reconstruction: reference engine, serial,
    /// per-cell baselines. Used as the "before" of `BENCH_PR1.json`.
    pub fn baseline() -> Self {
        SweepOptions {
            engine: EngineMode::Reference,
            threads: 1,
            memoize: Memoize::PerCell,
        }
    }
}

/// Worker count: `CUSYNC_BENCH_THREADS` if set, else the machine's
/// available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("CUSYNC_BENCH_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Order-preserving parallel map: runs `f` over `items` on
/// `opts.threads` workers, each pinned to `opts.engine`.
pub fn parallel_map<T, R, F>(opts: &SweepOptions, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if opts.threads <= 1 || items.len() <= 1 {
        let engine = opts.engine;
        return items
            .into_iter()
            .map(|item| with_engine_mode(engine, || f(item)))
            .collect();
    }
    let queue: Vec<Mutex<Option<T>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(queue.len()));
    let workers = opts.threads.min(queue.len());
    let engine = opts.engine;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                with_engine_mode(engine, || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= queue.len() {
                        break;
                    }
                    let item = queue[i].lock().unwrap().take().expect("item taken twice");
                    let r = f(item);
                    results.lock().unwrap().push((i, r));
                });
            });
        }
    });
    let mut results = results.into_inner().unwrap();
    results.sort_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, r)| r).collect()
}

/// One table row: a label plus one value per sync mode.
#[derive(Debug, Clone)]
pub struct Row {
    /// First column of the printed table.
    pub label: String,
    /// Improvement percentages, one per mode, in mode order.
    pub values: Vec<f64>,
    /// Simulator heap events this row's simulations handled.
    pub events: u64,
    /// Simulations (kernel-graph runs) this row performed.
    pub cells: usize,
}

/// Outcome of one measured sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Rows in job order.
    pub rows: Vec<Row>,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
    /// Total simulator events across all cells.
    pub events: u64,
    /// Number of simulated cells (mode runs + baseline runs).
    pub cells: usize,
}

impl SweepOutcome {
    /// Mean wall nanoseconds per simulated event.
    pub fn ns_per_event(&self) -> f64 {
        if self.events == 0 {
            return 0.0;
        }
        self.wall.as_nanos() as f64 / self.events as f64
    }

    /// Simulated events per wall second.
    pub fn events_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s == 0.0 {
            return 0.0;
        }
        self.events as f64 / s
    }
}

fn run_jobs<J, F>(opts: &SweepOptions, jobs: Vec<J>, f: F) -> SweepOutcome
where
    J: Send,
    F: Fn(&J) -> Row + Sync,
{
    let t0 = Instant::now();
    let rows = parallel_map(opts, jobs, |job| f(&job));
    let wall = t0.elapsed();
    let events = rows.iter().map(|r| r.events).sum();
    let cells = rows.iter().map(|r| r.cells).sum();
    SweepOutcome {
        rows,
        wall,
        events,
        cells,
    }
}

/// Percentage improvement of `t` over the StreamSync baseline `base`.
fn improvement_pct(base: cusync_sim::SimTime, t: cusync_sim::SimTime) -> f64 {
    100.0 * (1.0 - t.as_picos() as f64 / base.as_picos() as f64)
}

/// Shared row builder: improvement of each `mode` over StreamSync, with
/// the baseline simulated once ([`Memoize::Shared`]) or per cell
/// ([`Memoize::PerCell`] — the original harness). Values are identical
/// either way; only the amount of simulation differs.
fn improvement_row<F>(label: String, modes: &[SyncMode], memoize: Memoize, run: F) -> Row
where
    F: Fn(SyncMode) -> cusync_sim::RunReport,
{
    let improvement = |base: &cusync_sim::RunReport, r: &cusync_sim::RunReport| {
        improvement_pct(base.total, r.total)
    };
    let mut events = 0u64;
    let mut cells = 0usize;
    let mut values = Vec::with_capacity(modes.len());
    match memoize {
        Memoize::Shared => {
            let base = run(SyncMode::StreamSync);
            events += base.sim_events;
            cells += 1;
            for mode in modes {
                let r = run(*mode);
                events += r.sim_events;
                cells += 1;
                values.push(improvement(&base, &r));
            }
        }
        Memoize::PerCell => {
            for mode in modes {
                let base = run(SyncMode::StreamSync);
                let r = run(*mode);
                events += base.sim_events + r.sim_events;
                cells += 2;
                values.push(improvement(&base, &r));
            }
        }
    }
    Row {
        label,
        values,
        events,
        cells,
    }
}

// ---------------------------------------------------------------------------
// Fig. 6 — MLP and Attention improvements over StreamSync
// ---------------------------------------------------------------------------

/// Batch sizes of the Fig. 6 MLP panels.
pub const FIG6_MLP_BATCHES: [u32; 12] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048];

/// Modes plotted in the Fig. 6 MLP panels.
pub fn fig6_mlp_modes() -> Vec<SyncMode> {
    SyncMode::llm_policies()
        .into_iter()
        .chain([SyncMode::StreamK])
        .collect()
}

/// Modes plotted in the Fig. 6 Attention panels.
pub fn fig6_attention_modes() -> Vec<SyncMode> {
    SyncMode::attention_policies()
        .into_iter()
        .chain([SyncMode::StreamK])
        .collect()
}

/// The paper's prompt/generation configuration grid, shared by the
/// Fig. 6 Attention panels and Fig. 8a: `(label, tokens, cached)`.
fn llm_config_grid() -> Vec<(String, u32, u32)> {
    let mut configs: Vec<(String, u32, u32)> = [512u32, 1024, 2048]
        .into_iter()
        .map(|bs| (format!("{bs}, 0"), bs, 0))
        .collect();
    for s_prime in [512u32, 1024, 2048] {
        for b in [1u32, 2, 4] {
            configs.push((format!("{b}, {s_prime}"), b, s_prime));
        }
    }
    configs
}

/// The `(label, config)` pairs of one Fig. 6 Attention panel.
pub fn fig6_attention_configs(hidden: u32) -> Vec<(String, AttentionConfig)> {
    llm_config_grid()
        .into_iter()
        .map(|(label, tokens, cached)| {
            (
                label,
                AttentionConfig {
                    hidden,
                    tokens,
                    cached,
                },
            )
        })
        .collect()
}

/// Runs one Fig. 6 MLP row (all modes at one batch size).
pub fn fig6_mlp_row(gpu: &GpuConfig, model: MlpModel, bs: u32, memoize: Memoize) -> Row {
    improvement_row(bs.to_string(), &fig6_mlp_modes(), memoize, |mode| {
        run_mlp(gpu, model, bs, mode)
    })
}

/// Runs one Fig. 6 Attention row (all modes at one configuration).
pub fn fig6_attention_row(
    gpu: &GpuConfig,
    label: &str,
    cfg: AttentionConfig,
    memoize: Memoize,
) -> Row {
    improvement_row(label.to_owned(), &fig6_attention_modes(), memoize, |mode| {
        run_attention(gpu, cfg, mode)
    })
}

/// The full Fig. 6 sweep (both MLP panels and both Attention panels),
/// measured. `what` filters like the binary's CLI: `mlp`, `attention` or
/// `all`.
pub fn fig6_sweep(gpu: &GpuConfig, opts: &SweepOptions, what: &str) -> SweepOutcome {
    enum Job {
        Mlp(MlpModel, u32),
        Att(String, AttentionConfig),
    }
    let mut jobs = Vec::new();
    if what == "mlp" || what == "all" {
        for model in [MlpModel::Gpt3, MlpModel::Llama] {
            for bs in FIG6_MLP_BATCHES {
                jobs.push(Job::Mlp(model, bs));
            }
        }
    }
    if what == "attention" || what == "all" {
        for hidden in [12288u32, 8192] {
            for (label, cfg) in fig6_attention_configs(hidden) {
                jobs.push(Job::Att(label, cfg));
            }
        }
    }
    let memoize = opts.memoize;
    run_jobs(opts, jobs, |job| match job {
        Job::Mlp(model, bs) => fig6_mlp_row(gpu, *model, *bs, memoize),
        Job::Att(label, cfg) => fig6_attention_row(gpu, label, *cfg, memoize),
    })
}

// ---------------------------------------------------------------------------
// Fig. 7 — Conv2D improvements over StreamSync
// ---------------------------------------------------------------------------

/// Batch sizes of the Fig. 7 panels.
pub const FIG7_BATCHES: [u32; 9] = [1, 4, 8, 12, 16, 20, 24, 28, 32];

/// Runs one Fig. 7 row (all conv policies at one `(channels, batch)`).
pub fn fig7_row(
    gpu: &GpuConfig,
    channels: u32,
    pq: u32,
    batch: u32,
    convs: u32,
    memoize: Memoize,
) -> Row {
    improvement_row(
        format!("{channels}, {batch}"),
        &SyncMode::conv_policies(),
        memoize,
        |mode| run_conv_layer(gpu, batch, pq, channels, convs, mode),
    )
}

/// One Fig. 7 panel's `(channels, pq, batch, convs)` jobs.
pub fn fig7_jobs(channels: &[u32], convs: u32) -> Vec<(u32, u32, u32, u32)> {
    let mut jobs = Vec::new();
    for &c in channels {
        let pq = cusync_models::pq_for_channels(c);
        for b in FIG7_BATCHES {
            jobs.push((c, pq, b, convs));
        }
    }
    jobs
}

/// The full Fig. 7 sweep (all three panels), measured.
pub fn fig7_sweep(gpu: &GpuConfig, opts: &SweepOptions) -> SweepOutcome {
    let mut jobs = fig7_jobs(&[64, 128], 2);
    jobs.extend(fig7_jobs(&[256, 512], 2));
    jobs.extend(fig7_jobs(&[256, 512], 4));
    let memoize = opts.memoize;
    run_jobs(opts, jobs, |&(c, pq, b, convs)| {
        fig7_row(gpu, c, pq, b, convs, memoize)
    })
}

// ---------------------------------------------------------------------------
// Fig. 8 — end-to-end inference reductions
// ---------------------------------------------------------------------------

/// The `(label, tokens, cached)` configurations of Fig. 8a — the same
/// prompt/generation grid Fig. 6's Attention panels use.
pub fn fig8_llm_configs() -> Vec<(String, u32, u32)> {
    llm_config_grid()
}

/// Best improvement over StreamSync across `candidates`, accumulating the
/// events and cells simulated into the caller's row accounting. The
/// `Memoize` semantics mirror [`improvement_row`].
fn best_improvement<F>(
    candidates: &[SyncMode],
    memoize: Memoize,
    events: &mut u64,
    cells: &mut usize,
    run: F,
) -> f64
where
    F: Fn(SyncMode) -> (cusync_sim::SimTime, u64),
{
    match memoize {
        Memoize::Shared => {
            let (base, base_ev) = run(SyncMode::StreamSync);
            *events += base_ev;
            *cells += 1;
            candidates
                .iter()
                .map(|mode| {
                    let (t, ev) = run(*mode);
                    *events += ev;
                    *cells += 1;
                    improvement_pct(base, t)
                })
                .fold(f64::MIN, f64::max)
        }
        Memoize::PerCell => candidates
            .iter()
            .map(|mode| {
                let (base, base_ev) = run(SyncMode::StreamSync);
                let (t, ev) = run(*mode);
                *events += base_ev + ev;
                *cells += 2;
                improvement_pct(base, t)
            })
            .fold(f64::MIN, f64::max),
    }
}

/// Runs one Fig. 8a row: best attention policy per model.
pub fn fig8_llm_row(
    gpu: &GpuConfig,
    label: &str,
    tokens: u32,
    cached: u32,
    memoize: Memoize,
) -> Row {
    let candidates = SyncMode::attention_policies();
    let mut events = 0u64;
    let mut cells = 0usize;
    let values = [GPT3, LLAMA]
        .into_iter()
        .map(|model| {
            best_improvement(&candidates, memoize, &mut events, &mut cells, |mode| {
                llm_step_report(gpu, model, tokens, cached, mode)
            })
        })
        .collect();
    Row {
        label: label.to_owned(),
        values,
        events,
        cells,
    }
}

/// Runs one Fig. 8b row: best conv policy per vision model.
pub fn fig8_vision_row(gpu: &GpuConfig, batch: u32, memoize: Memoize) -> Row {
    let candidates = [
        SyncMode::CuSync(PolicyKind::Row, OptFlags::WRT),
        SyncMode::CuSync(PolicyKind::Conv2DTile, OptFlags::WRT),
    ];
    let mut events = 0u64;
    let mut cells = 0usize;
    let values = [resnet38(), vgg19()]
        .into_iter()
        .map(|stages| {
            best_improvement(&candidates, memoize, &mut events, &mut cells, |mode| {
                vision_step_report(gpu, &stages, batch, mode)
            })
        })
        .collect();
    Row {
        label: batch.to_string(),
        values,
        events,
        cells,
    }
}

/// The full Fig. 8 sweep (LLM and vision), measured. `what` filters like
/// the binary's CLI: `llm`, `vision` or `all`.
pub fn fig8_sweep(gpu: &GpuConfig, opts: &SweepOptions, what: &str) -> SweepOutcome {
    enum Job {
        Llm(String, u32, u32),
        Vision(u32),
    }
    let mut jobs = Vec::new();
    if what == "llm" || what == "all" {
        for (label, tokens, cached) in fig8_llm_configs() {
            jobs.push(Job::Llm(label, tokens, cached));
        }
    }
    if what == "vision" || what == "all" {
        for batch in FIG7_BATCHES {
            jobs.push(Job::Vision(batch));
        }
    }
    let memoize = opts.memoize;
    run_jobs(opts, jobs, |job| match job {
        Job::Llm(label, tokens, cached) => fig8_llm_row(gpu, label, *tokens, *cached, memoize),
        Job::Vision(batch) => fig8_vision_row(gpu, *batch, memoize),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order_and_engine() {
        let opts = SweepOptions {
            engine: EngineMode::Reference,
            threads: 4,
            memoize: Memoize::Shared,
        };
        let out = parallel_map(&opts, (0..64).collect::<Vec<_>>(), |i| {
            assert_eq!(cusync_sim::default_engine_mode(), EngineMode::Reference);
            i * 2
        });
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn memoized_and_per_cell_rows_agree_exactly() {
        // The simulator is deterministic, so sharing the baseline cannot
        // change any printed value.
        let gpu = GpuConfig::tesla_v100();
        let shared = fig6_mlp_row(&gpu, MlpModel::Gpt3, 64, Memoize::Shared);
        let per_cell = fig6_mlp_row(&gpu, MlpModel::Gpt3, 64, Memoize::PerCell);
        assert_eq!(shared.values, per_cell.values);
        assert!(
            shared.events < per_cell.events,
            "sharing must simulate less"
        );
    }

    #[test]
    fn sweep_outcome_rates_are_consistent() {
        let outcome = SweepOutcome {
            rows: Vec::new(),
            wall: Duration::from_secs(2),
            events: 1_000_000,
            cells: 10,
        };
        assert!((outcome.ns_per_event() - 2000.0).abs() < 1e-9);
        assert!((outcome.events_per_sec() - 500_000.0).abs() < 1e-6);
    }
}
