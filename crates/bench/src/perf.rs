//! Machine-readable performance trajectory (`BENCH_*.json`).
//!
//! Each PR that touches the simulator's hot paths appends a
//! `BENCH_PR<N>.json` produced by the `bench_pr1` binary. The schema is
//! deliberately tiny and hand-rolled (the build environment vendors no
//! serde): a list of measurement entries, one per (figure × phase), where
//! phase `"before"` is the pre-refactor harness reconstruction (reference
//! engine, serial, per-cell baselines) and `"after"` is the shipping
//! configuration (optimized engine, parallel, shared baselines). See
//! `crates/sim/README.md` for how to read the numbers.

use std::fmt::Write as _;

use crate::sweep::SweepOutcome;

/// One measured sweep, flattened for JSON.
#[derive(Debug, Clone)]
pub struct PerfEntry {
    /// Which figure/table sweep was measured (e.g. `"fig6"`).
    pub figure: String,
    /// `"before"` (pre-refactor reconstruction) or `"after"`.
    pub phase: String,
    /// Engine the sweep ran on (`"reference"` / `"optimized"`).
    pub engine: String,
    /// Worker threads used.
    pub threads: usize,
    /// Whether StreamSync baselines were shared within rows.
    pub memoized: bool,
    /// Wall-clock seconds for the whole sweep.
    pub wall_seconds: f64,
    /// Simulator heap events handled across all cells.
    pub sim_events: u64,
    /// Simulated cells (kernel-graph runs).
    pub cells: usize,
    /// `wall / sim_events`, in nanoseconds.
    pub ns_per_event: f64,
    /// `sim_events / wall`, per second.
    pub events_per_sec: f64,
}

impl PerfEntry {
    /// Flattens a measured sweep into an entry.
    pub fn from_outcome(
        figure: &str,
        phase: &str,
        engine: &str,
        threads: usize,
        memoized: bool,
        outcome: &SweepOutcome,
    ) -> Self {
        PerfEntry {
            figure: figure.to_owned(),
            phase: phase.to_owned(),
            engine: engine.to_owned(),
            threads,
            memoized,
            wall_seconds: outcome.wall.as_secs_f64(),
            sim_events: outcome.events,
            cells: outcome.cells,
            ns_per_event: outcome.ns_per_event(),
            events_per_sec: outcome.events_per_sec(),
        }
    }
}

use cusync_sim::json_escape;

/// Renders the `BENCH_*.json` document: environment header, entries, and
/// per-figure before/after speedups.
pub fn render_json(pr: &str, entries: &[PerfEntry]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"cusync-bench/1\",");
    let _ = writeln!(out, "  \"pr\": \"{}\",", json_escape(pr));
    let _ = writeln!(
        out,
        "  \"host\": {{ \"available_parallelism\": {} }},",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{ \"figure\": \"{}\", \"phase\": \"{}\", \"engine\": \"{}\", \
             \"threads\": {}, \"memoized\": {}, \"wall_seconds\": {:.6}, \
             \"sim_events\": {}, \"cells\": {}, \"ns_per_event\": {:.1}, \
             \"events_per_sec\": {:.0} }}{}",
            json_escape(&e.figure),
            json_escape(&e.phase),
            json_escape(&e.engine),
            e.threads,
            e.memoized,
            e.wall_seconds,
            e.sim_events,
            e.cells,
            e.ns_per_event,
            e.events_per_sec,
            comma,
        );
    }
    out.push_str("  ],\n");
    out.push_str("  \"speedups\": {\n");
    let figures: Vec<&str> = {
        let mut seen = Vec::new();
        for e in entries {
            if !seen.contains(&e.figure.as_str()) {
                seen.push(e.figure.as_str());
            }
        }
        seen
    };
    let mut lines = Vec::new();
    for fig in figures {
        let before = entries
            .iter()
            .find(|e| e.figure == fig && e.phase == "before");
        let after = entries
            .iter()
            .find(|e| e.figure == fig && e.phase == "after");
        if let (Some(b), Some(a)) = (before, after) {
            if a.wall_seconds > 0.0 {
                lines.push(format!(
                    "    \"{}\": {:.2}",
                    json_escape(fig),
                    b.wall_seconds / a.wall_seconds
                ));
            }
        }
    }
    out.push_str(&lines.join(",\n"));
    out.push('\n');
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn outcome(ms: u64, events: u64) -> SweepOutcome {
        SweepOutcome {
            rows: Vec::new(),
            wall: Duration::from_millis(ms),
            events,
            cells: 4,
        }
    }

    #[test]
    fn json_contains_entries_and_speedups() {
        let entries = vec![
            PerfEntry::from_outcome("fig6", "before", "reference", 1, false, &outcome(100, 1000)),
            PerfEntry::from_outcome("fig6", "after", "optimized", 4, true, &outcome(20, 800)),
        ];
        let json = render_json("PR1", &entries);
        assert!(json.contains("\"figure\": \"fig6\""));
        assert!(json.contains("\"phase\": \"before\""));
        assert!(json.contains("\"fig6\": 5.00"), "{json}");
        // Sanity: a JSON-ish shape (balanced braces).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
