//! CI smoke: schedule-space exploration over fixed-seed random sync
//! graphs, failing on any invariant violation and emitting the summary
//! JSON artifact.
//!
//! ```text
//! explore_smoke [--quick] [--out FILE]
//! ```
//!
//! `--quick` shrinks the sweep (fewer graphs and shuffles) for the CI
//! budget; the default exercises more of the space. The JSON maps each
//! `graph seed × regime` cell to its per-schedule outcomes, mirroring the
//! `BENCH_*.json` artifact convention.

use std::fmt::Write as _;

use cusync_sim::explore::{explore, Expectation, ExploreConfig};
use cusync_suite::randgraph::generate;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let (seeds, shuffles): (&[u64], usize) = if quick {
        (&[0xC60_2024, 7, 42], 8)
    } else {
        (&[0xC60_2024, 3, 7, 11, 42, 1337], 16)
    };
    let mut failures = 0usize;
    let mut json = String::from("{\n  \"cells\": [\n");
    let mut first_cell = true;
    for &seed in seeds {
        let graph = generate(seed, 2);
        let cells = [
            (
                "safe+wait_kernels",
                graph.build(&graph.safe_cluster(), true),
                Expectation::Terminates,
            ),
            (
                "starved+no_wait_kernels",
                graph.build(&graph.starved_cluster(), false),
                Expectation::Deadlocks,
            ),
        ];
        for (regime, pipeline, expectation) in cells {
            let pipeline = match pipeline {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("graph {seed} {regime}: build failed: {e}");
                    failures += 1;
                    continue;
                }
            };
            let cfg = ExploreConfig::seeded(shuffles, seed)
                .expecting(expectation)
                .cross_checked();
            let summary = explore(&pipeline, &cfg);
            println!("graph {seed:#x} [{regime}]: {summary}");
            if !summary.ok() {
                failures += 1;
            }
            if !first_cell {
                json.push_str(",\n");
            }
            first_cell = false;
            let indented = summary
                .to_json()
                .lines()
                .collect::<Vec<_>>()
                .join("\n      ");
            let _ = write!(
                json,
                "    {{\"graph_seed\": {seed}, \"regime\": \"{regime}\", \"summary\": {indented}}}",
            );
        }
    }
    let _ = write!(json, "\n  ],\n  \"failures\": {failures}\n}}\n");
    if let Some(path) = out {
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
    if failures > 0 {
        eprintln!("{failures} exploration cell(s) violated invariants");
        std::process::exit(1);
    }
}
