//! Random sync-graph generation for schedule-space exploration.
//!
//! Derives a whole randomized multi-stage pipeline from one `u64` seed: a
//! stage DAG (a chain plus random skip edges) over the paper's kernel
//! archetypes (GeMM / Conv2D / SoftmaxDropout / elementwise cost shapes),
//! with a random [`SyncPolicy`] per producer stage
//! ([`TileSync`] / [`RowSync`] / [`Conv2DTileSync`]; sinks get
//! [`NoSync`]), random occupancies, and random device placement on a
//! multi-GPU node (so dependence edges randomly cross the interconnect).
//! A random subset of the non-sink skip edges is promoted to
//! [`SyncMechanism::Pdl`] — launch-gated, grid-semaphore-parked edges —
//! so exploration also covers the coarse mechanism; chain edges stay
//! fine-grained so the starved regime keeps its deterministic wedge.
//!
//! Every stage's kernel is *functional*: each thread block, after its
//! policy waits, reads the exact producer elements its waits cover, and
//! writes `f(stage, tile) + inputs` into its own poisoned output buffer.
//! Correct synchronization therefore makes the final memory a pure
//! function of the graph — independent of the schedule — while any
//! under-synchronization surfaces as NaN-poison races and
//! schedule-dependent fingerprints, which
//! [`cusync_sim::explore`] flags.
//!
//! Two hardware sizings per graph:
//!
//! - [`RandomGraph::safe_cluster`] gives every device one SM per resident
//!   thread block (stages + wait-kernels). Any set of blocks then always
//!   places (at most `blocks - 1` SMs can be non-empty when one more
//!   block arrives, so some SM is whole-free), which makes termination
//!   **schedule-independent by construction** — the provable regime for
//!   the deadlock-freedom half of exploration.
//! - [`RandomGraph::starved_cluster`] shrinks the sink consumer's device
//!   until the consumer's grid alone covers it. With wait-kernels
//!   disabled and an adversarial consumer-first launch order, the
//!   consumer's busy-waiting blocks wedge that device — the Section
//!   III-B deadlock, reproduced on demand for the classified
//!   [`DeadlockReport`](cusync_sim::DeadlockReport) half.

use std::sync::Arc;

use cusync::{
    Conv2DTileSync, CuStage, NoSync, OptFlags, PolicyRef, RowSync, StageId, SyncGraph,
    SyncMechanism, TileSync,
};
use cusync_sim::{
    BlockBody, BlockCtx, BufferId, ClusterConfig, CompiledPipeline, DType, Dim3, FnKernel, Gpu,
    GpuConfig, KernelSource, Op, SimError, SimTime, Step, MAX_OCCUPANCY, SM_CAPACITY_UNITS,
};

/// A SplitMix64 stream over the simulator's shared mixer
/// ([`cusync_sim::splitmix64`]): one seed, one graph.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let out = cusync_sim::splitmix64(self.0);
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        out
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// The four kernel cost shapes stages are styled after.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Archetype {
    /// Tiled GeMM: big read, one fused load+math main step.
    Gemm,
    /// Implicit-GeMM Conv2D: read plus several main steps (the R·S fold).
    Conv2D,
    /// Softmax + dropout: read, two compute passes.
    SoftmaxDropout,
    /// Elementwise epilogue: read, small compute.
    Elementwise,
}

impl Archetype {
    /// Timing ops of one thread block of this archetype (excluding the
    /// shared functional read/write and sync ops).
    fn body_ops(self, rng: &mut Rng) -> Vec<Op> {
        match self {
            Archetype::Gemm => vec![
                Op::read(rng.range(32, 128) * 1024),
                Op::main_step(rng.range(16, 64) * 1024, rng.range(20_000, 80_000)),
                Op::Syncthreads,
            ],
            Archetype::Conv2D => vec![
                Op::read(rng.range(16, 64) * 1024),
                Op::main_step(rng.range(8, 32) * 1024, rng.range(10_000, 40_000)),
                Op::main_step(rng.range(8, 32) * 1024, rng.range(10_000, 40_000)),
                Op::Syncthreads,
            ],
            Archetype::SoftmaxDropout => vec![
                Op::read(rng.range(8, 32) * 1024),
                Op::compute(rng.range(10_000, 30_000)),
                Op::compute(rng.range(5_000, 20_000)),
            ],
            Archetype::Elementwise => {
                vec![
                    Op::read(rng.range(4, 16) * 1024),
                    Op::compute(rng.range(2_000, 10_000)),
                ]
            }
        }
    }
}

/// One edge of the generated DAG.
#[derive(Debug, Clone, Copy)]
pub struct EdgeDesc {
    /// Producer stage index.
    pub producer: usize,
    /// Consumer stage index.
    pub consumer: usize,
    /// `Some(Pdl)` for skip edges randomly promoted to Programmatic
    /// Dependent Launch; `None` for classic fine edges following the
    /// producer's policy. Chain edges and edges into the sink stay fine so
    /// the starved regime keeps its Section III-B wedge: a PDL gate on the
    /// sink would defer its dispatch until the producer is fully resident,
    /// which un-wedges the under-provisioned device by construction.
    pub mechanism: Option<SyncMechanism>,
}

/// One generated stage.
#[derive(Debug, Clone)]
pub struct StageDesc {
    /// Stage name (`"s<i>.<archetype>"`).
    pub name: String,
    /// Cost shape.
    pub archetype: Archetype,
    /// Synchronization policy name ("TileSync", ..., "NoSync" for sinks).
    pub policy_name: String,
    /// Thread blocks per SM.
    pub occupancy: u32,
    /// Device the stage (stream + semaphores) is placed on.
    pub device: u32,
    policy: PolicyRef,
    /// `R*S` fold factor when the policy is [`Conv2DTileSync`].
    conv_fold: Option<u32>,
}

/// A seed-derived random sync graph: the description is pure data, and
/// [`RandomGraph::build`] materializes it on any [`ClusterConfig`], so one
/// graph can be compiled for full-size and downscaled hardware.
#[derive(Debug, Clone)]
pub struct RandomGraph {
    /// The seed the graph was derived from.
    pub seed: u64,
    /// Shared tile grid of every stage.
    pub grid: Dim3,
    /// Stages in topological (chain) order.
    pub stages: Vec<StageDesc>,
    /// Dependence edges (chain plus random skips).
    pub edges: Vec<EdgeDesc>,
    /// Number of devices stages are placed across.
    pub devices: u32,
}

/// Generates the graph for `seed`: 3–5 stages on a shared 2-dimensional
/// tile grid, chained, with extra skip edges, placed across `devices`
/// devices. The final (sink) stage always shares a device with its chain
/// producer so the starved sizing can wedge them against each other.
pub fn generate(seed: u64, devices: u32) -> RandomGraph {
    assert!(devices >= 1, "need at least one device");
    let mut rng = Rng(seed);
    let grid = Dim3::new(rng.range(2, 5) as u32, rng.range(2, 4) as u32, 1);
    let num_stages = rng.range(3, 6) as usize;
    let archetypes = [
        Archetype::Gemm,
        Archetype::Conv2D,
        Archetype::SoftmaxDropout,
        Archetype::Elementwise,
    ];
    let mut stages: Vec<StageDesc> = Vec::with_capacity(num_stages);
    for i in 0..num_stages {
        let archetype = archetypes[rng.range(0, archetypes.len() as u64) as usize];
        let is_sink = i == num_stages - 1;
        let (policy, policy_name, conv_fold): (PolicyRef, String, Option<u32>) = if is_sink {
            (Arc::new(NoSync), "NoSync".to_owned(), None)
        } else {
            match rng.range(0, 3) {
                0 => (Arc::new(TileSync), "TileSync".to_owned(), None),
                1 => (Arc::new(RowSync), "RowSync".to_owned(), None),
                _ => {
                    // Fold factor ≤ grid.x so the folded tile is in range
                    // without relying on the policy's clamp.
                    let rs = rng.range(1, 1 + grid.x.min(3) as u64) as u32;
                    (
                        Arc::new(Conv2DTileSync::new(rs)),
                        "Conv2DTileSync".to_owned(),
                        Some(rs),
                    )
                }
            }
        };
        let device = if is_sink {
            // Pinned to the chain producer's device (set below).
            0
        } else {
            rng.range(0, devices as u64) as u32
        };
        stages.push(StageDesc {
            name: format!("s{i}.{}", format!("{archetype:?}").to_lowercase()),
            archetype,
            policy_name,
            occupancy: rng.range(1, 3) as u32,
            device,
            policy,
            conv_fold,
        });
    }
    let sink_device = stages[num_stages - 2].device;
    stages[num_stages - 1].device = sink_device;
    let mut edges: Vec<EdgeDesc> = (1..num_stages)
        .map(|i| EdgeDesc {
            producer: i - 1,
            consumer: i,
            mechanism: None,
        })
        .collect();
    for consumer in 2..num_stages {
        for producer in 0..consumer - 1 {
            if rng.range(0, 3) == 0 {
                edges.push(EdgeDesc {
                    producer,
                    consumer,
                    mechanism: None,
                });
            }
        }
    }
    // Second pass (after the structural draws, so the stage/edge layout of
    // a seed is unchanged by the mechanism axis): promote a random subset
    // of non-sink skip edges to PDL. Chain edges and sink edges stay fine
    // — see `EdgeDesc::mechanism`.
    for edge in &mut edges {
        let is_skip = edge.consumer > edge.producer + 1;
        if is_skip && edge.consumer < num_stages - 1 && rng.range(0, 2) == 0 {
            edge.mechanism = Some(SyncMechanism::Pdl);
        }
    }
    RandomGraph {
        seed,
        grid,
        stages,
        edges,
        devices,
    }
}

impl RandomGraph {
    /// Names of the stages with at least one outgoing PDL edge — the
    /// producers whose one-element `"{name}.grid"` semaphores PDL
    /// consumers park on. Empty when no skip edge was promoted.
    pub fn pdl_producer_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .edges
            .iter()
            .filter(|e| e.mechanism == Some(SyncMechanism::Pdl))
            .map(|e| self.stages[e.producer].name.clone())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    fn quiet_gpu(sms: u32) -> GpuConfig {
        GpuConfig {
            num_sms: sms,
            host_launch_gap: SimTime::ZERO,
            kernel_dispatch_latency: SimTime::ZERO,
            block_jitter: 0.0,
            ..GpuConfig::tesla_v100()
        }
    }

    /// Thread blocks homed on each device, wait-kernel blocks included.
    fn blocks_per_device(&self) -> Vec<u64> {
        let mut blocks = vec![0u64; self.devices as usize];
        for (i, stage) in self.stages.iter().enumerate() {
            blocks[stage.device as usize] += self.grid.count();
            // One wait-kernel block per stage with *fine* producers (PDL
            // edges are enforced by launch gates, not wait-kernels).
            if self
                .edges
                .iter()
                .any(|e| e.consumer == i && e.mechanism.is_none_or(SyncMechanism::is_fine))
            {
                blocks[stage.device as usize] += 1;
            }
        }
        blocks
    }

    /// The provably schedule-independent sizing: one SM per resident
    /// block on each device. With at most `blocks` resident and `blocks`
    /// SMs, a new block always finds a whole-free SM, so no issue order
    /// can starve a kernel of capacity — termination depends only on the
    /// DAG being acyclic.
    pub fn safe_cluster(&self) -> ClusterConfig {
        ClusterConfig {
            devices: self
                .blocks_per_device()
                .iter()
                .map(|&b| Self::quiet_gpu(b.max(1) as u32))
                .collect(),
            link_latency: SimTime::from_nanos(2_500),
            link_bytes_per_sec: 100e9,
        }
    }

    /// The under-provisioned sizing: the sink consumer's device gets only
    /// as many SMs as the consumer's own grid fills completely, so its
    /// spinning blocks can hold the whole device hostage. Other devices
    /// keep the safe sizing.
    pub fn starved_cluster(&self) -> ClusterConfig {
        let sink = self.stages.last().expect("non-empty graph");
        let sink_units = self.grid.count() * (SM_CAPACITY_UNITS / sink.occupancy) as u64;
        let sink_sms = (sink_units / SM_CAPACITY_UNITS as u64).max(1) as u32;
        let mut cluster = self.safe_cluster();
        cluster.devices[sink.device as usize] = Self::quiet_gpu(sink_sms);
        cluster
    }

    /// Materializes the graph on `cluster` and compiles it.
    ///
    /// With `wait_kernels` true, stages launch in topological order with
    /// the paper's wait-kernel protocol (Fig. 4a). With it false, the
    /// wait-kernels are elided **and** stages launch in reverse order —
    /// the adversarial cross-stream schedule the CUDA runtime permits —
    /// which on a starved cluster reproduces the Section III-B deadlock.
    ///
    /// # Errors
    ///
    /// Propagates graph binding or compilation failures.
    pub fn build(
        &self,
        cluster: &ClusterConfig,
        wait_kernels: bool,
    ) -> Result<CompiledPipeline, SimError> {
        let mut gpu = Gpu::new_cluster(cluster.clone());
        // One poisoned functional output buffer per stage.
        let buffers: Vec<BufferId> = self
            .stages
            .iter()
            .map(|s| {
                gpu.mem_mut().alloc_poisoned(
                    &format!("{}.out", s.name),
                    self.grid.count() as usize,
                    DType::F16,
                )
            })
            .collect();
        let mut graph = SyncGraph::new();
        let ids: Vec<StageId> = self
            .stages
            .iter()
            .map(|s| {
                let opts = OptFlags {
                    avoid_wait_kernel: !wait_kernels,
                    // Hardware tile order: the schedule axis under test is
                    // the block scheduler, not the tile-order counter.
                    avoid_custom_order: true,
                    ..OptFlags::NONE
                };
                graph.add_stage(
                    CuStage::new(&s.name, self.grid)
                        .policy_ref(Arc::clone(&s.policy))
                        .opts(opts)
                        .on_device(s.device),
                )
            })
            .collect();
        for edge in &self.edges {
            // Duplicate edges (chain + skip collisions) are impossible by
            // construction: skips only target consumer > producer + 1.
            let declared = match edge.mechanism {
                Some(m) => graph.dependency_via(
                    ids[edge.producer],
                    ids[edge.consumer],
                    buffers[edge.producer],
                    m,
                ),
                None => graph.dependency(
                    ids[edge.producer],
                    ids[edge.consumer],
                    buffers[edge.producer],
                ),
            };
            declared.map_err(|e| {
                cusync_sim::BuildError::invalid("RandomGraph", format!("dependency: {e}"))
            })?;
        }
        let bound = graph.bind(&mut gpu).map_err(|e| {
            cusync_sim::BuildError::invalid("RandomGraph", format!("bind failed: {e}"))
        })?;
        // Kernel bodies: per-block op lists + functional effects derived
        // from the same seed stream.
        let mut rng = Rng(self.seed ^ 0xC0FF_EE00_D15E_A5E5);
        let mut kernels: Vec<Arc<dyn KernelSource>> = Vec::with_capacity(self.stages.len());
        for (i, stage) in self.stages.iter().enumerate() {
            let runtime = bound.stage(ids[i]);
            let body_ops = stage.archetype.body_ops(&mut rng);
            let mut blocks: Vec<SynthBlock> = Vec::with_capacity(self.grid.count() as usize);
            for linear in 0..self.grid.count() {
                let tile = self.grid.delinear(linear);
                let mut ops: Vec<Op> = Vec::new();
                ops.extend(runtime.start_op(tile));
                let mut reads: Vec<(BufferId, usize)> = Vec::new();
                for edge in self.edges.iter().filter(|e| e.consumer == i) {
                    let producer = &self.stages[edge.producer];
                    if let Some(wait) = runtime.wait_op(buffers[edge.producer], tile) {
                        ops.push(wait);
                    }
                    // Read exactly the producer element the wait covers:
                    // same tile, or the folded channel tile for the conv
                    // policy.
                    let src = match producer.conv_fold {
                        Some(rs) => Dim3::new((tile.x / rs).min(self.grid.x - 1), tile.y, tile.z),
                        None => tile,
                    };
                    reads.push((buffers[edge.producer], self.grid.linear_of(src) as usize));
                }
                // The PDL preamble barrier: one grid-semaphore wait per
                // distinct PDL producer, once per block, after tile
                // acquisition and the fine waits, before the first read of
                // any PDL-synchronized buffer.
                ops.extend(runtime.grid_wait_ops());
                let read_at = ops.len();
                ops.extend(body_ops.iter().copied());
                ops.push(Op::write(rng.range(4, 32) * 1024));
                let write_at = ops.len();
                if let Some(post) = runtime.post_ops(tile) {
                    ops.extend(post);
                }
                let base = (i as f32) * 1000.0 + linear as f32 * 0.25;
                blocks.push(SynthBlock {
                    ops,
                    read_at,
                    write_at,
                    reads,
                    write: (buffers[i], linear as usize, base),
                });
            }
            let blocks = Arc::new(blocks);
            let grid = self.grid;
            kernels.push(Arc::new(FnKernel::new(
                &stage.name,
                grid,
                stage.occupancy.min(MAX_OCCUPANCY),
                move |idx| {
                    let spec = &blocks[grid.linear_of(idx) as usize];
                    Box::new(SynthBody {
                        ops: spec.ops.clone(),
                        pc: 0,
                        read_at: spec.read_at,
                        write_at: spec.write_at,
                        reads: spec.reads.clone(),
                        write: spec.write,
                        acc: 0.0,
                    }) as Box<dyn BlockBody>
                },
            )));
        }
        // Launch: protocol order with wait-kernels, adversarial reverse
        // order without.
        let order: Vec<usize> = if wait_kernels {
            (0..self.stages.len()).collect()
        } else {
            (0..self.stages.len()).rev().collect()
        };
        for i in order {
            bound
                .launch(&mut gpu, ids[i], Arc::clone(&kernels[i]))
                .map_err(|e| {
                    cusync_sim::BuildError::invalid("RandomGraph", format!("launch failed: {e}"))
                })?;
        }
        gpu.compile()
    }
}

/// Per-block recipe shared by the closure kernel.
struct SynthBlock {
    ops: Vec<Op>,
    read_at: usize,
    write_at: usize,
    reads: Vec<(BufferId, usize)>,
    write: (BufferId, usize, f32),
}

/// The functional block body: replays a fixed op list, reading producer
/// elements once its waits completed and writing its own output element
/// after its `GlobalWrite` op completed (per the [`BlockBody`]
/// effect-ordering contract the post ops come later still).
struct SynthBody {
    ops: Vec<Op>,
    pc: usize,
    read_at: usize,
    write_at: usize,
    reads: Vec<(BufferId, usize)>,
    write: (BufferId, usize, f32),
    acc: f32,
}

impl BlockBody for SynthBody {
    fn resume(&mut self, ctx: &mut BlockCtx<'_>) -> Step {
        if self.pc == self.read_at {
            for &(buffer, index) in &self.reads {
                self.acc += ctx.mem.read(buffer, index, ctx.now);
            }
        }
        if self.pc == self.write_at {
            let (buffer, index, base) = self.write;
            ctx.mem.write(buffer, index, base + self.acc * 0.125);
        }
        match self.ops.get(self.pc) {
            Some(&op) => {
                self.pc += 1;
                Step::Op(op)
            }
            None => Step::Done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(42, 2);
        let b = generate(42, 2);
        assert_eq!(a.grid, b.grid);
        assert_eq!(a.stages.len(), b.stages.len());
        for (x, y) in a.stages.iter().zip(&b.stages) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.policy_name, y.policy_name);
            assert_eq!(x.device, y.device);
        }
        assert_ne!(generate(43, 2).seed, a.seed);
    }

    #[test]
    fn sinks_are_nosync_and_interiors_sync() {
        for seed in 0..20 {
            let g = generate(seed, 2);
            assert_eq!(g.stages.last().unwrap().policy_name, "NoSync");
            for s in &g.stages[..g.stages.len() - 1] {
                assert_ne!(s.policy_name, "NoSync", "seed {seed}");
            }
        }
    }

    #[test]
    fn safe_cluster_runs_clean_under_launch_order() {
        let g = generate(7, 2);
        let pipeline = g.build(&g.safe_cluster(), true).unwrap();
        let mut session = cusync_sim::Session::new();
        let report = session.run(&pipeline).unwrap();
        assert_eq!(report.races, 0, "synchronized graph must be race-free");
    }

    #[test]
    fn starved_cluster_without_wait_kernels_deadlocks() {
        let g = generate(7, 2);
        let pipeline = g.build(&g.starved_cluster(), false).unwrap();
        let mut session = cusync_sim::Session::new();
        let err = session.run(&pipeline).unwrap_err();
        assert!(matches!(err, SimError::Deadlock(_)), "{err}");
    }

    #[test]
    fn pdl_edges_land_only_on_non_sink_skip_edges() {
        let mut promoted = 0usize;
        for seed in 0..64u64 {
            let g = generate(seed, 2);
            let sink = g.stages.len() - 1;
            for e in &g.edges {
                if e.mechanism == Some(SyncMechanism::Pdl) {
                    promoted += 1;
                    assert!(
                        e.consumer > e.producer + 1,
                        "seed {seed}: chain edge got PDL"
                    );
                    assert_ne!(e.consumer, sink, "seed {seed}: sink edge got PDL");
                } else {
                    assert_eq!(e.mechanism, None, "seed {seed}: unexpected mechanism");
                }
            }
        }
        assert!(promoted >= 1, "no seed in 0..64 promoted a skip edge");
    }

    #[test]
    fn graphs_with_pdl_edges_run_clean_on_the_safe_cluster() {
        let g = (0..64u64)
            .map(|seed| generate(seed, 2))
            .find(|g| !g.pdl_producer_names().is_empty())
            .expect("a seed with a PDL edge");
        let pipeline = g.build(&g.safe_cluster(), true).unwrap();
        let mut session = cusync_sim::Session::new();
        let report = session.run(&pipeline).unwrap();
        assert_eq!(report.races, 0, "PDL-synchronized graph must be race-free");
    }
}
