//! Cross-crate integration test host (see `/tests`) and home of the
//! random sync-graph generator feeding schedule-space exploration
//! ([`randgraph`]).

pub mod randgraph;
