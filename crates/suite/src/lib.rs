//! Cross-crate integration test host; see `/tests`.
