//! Simulated GPU global memory: buffers, functional data, race detection.
//!
//! Buffers exist in two fidelity modes. *Timing-only* buffers have a size but
//! no backing data; kernels charge byte costs against them without moving
//! values. *Functional* buffers carry real `f32` data so kernels compute real
//! results that tests compare against CPU oracles. Intermediate functional
//! buffers are poisoned with NaN at allocation: a consumer that reads an
//! element before its producer wrote it observes NaN, the read is logged as a
//! race, and the final output fails numeric verification — exactly how an
//! under-synchronized kernel pair corrupts results on real hardware.

use std::fmt;

use crate::time::SimTime;

/// Element type of a buffer, used only for byte accounting (functional data
/// is always stored as `f32`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DType {
    /// 16-bit half precision, the type used for all paper workloads.
    #[default]
    F16,
    /// 32-bit single precision.
    F32,
}

impl DType {
    /// Size of one element in bytes.
    pub const fn size_bytes(self) -> u64 {
        match self {
            DType::F16 => 2,
            DType::F32 => 4,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DType::F16 => write!(f, "f16"),
            DType::F32 => write!(f, "f32"),
        }
    }
}

/// Handle to a buffer allocated in [`GlobalMemory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(pub(crate) usize);

impl fmt::Display for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "buf{}", self.0)
    }
}

/// One read of not-yet-written data, evidence of a synchronization bug.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceEvent {
    /// Buffer whose element was read before being written.
    pub buffer: BufferId,
    /// Name of the buffer, for diagnostics.
    pub buffer_name: String,
    /// Element index read.
    pub index: usize,
    /// Simulated time of the offending read.
    pub time: SimTime,
}

impl fmt::Display for RaceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "race: read of unwritten {}[{}] at {}",
            self.buffer_name, self.index, self.time
        )
    }
}

#[derive(Debug, Clone)]
struct Buffer {
    name: String,
    len: usize,
    dtype: DType,
    /// Backing data when functional; `None` for timing-only buffers.
    data: Option<Vec<f32>>,
    /// Whether unwritten reads should be reported as races.
    poisoned: bool,
}

/// The simulated GPU's global memory.
///
/// # Examples
///
/// ```
/// use cusync_sim::{DType, GlobalMemory, SimTime};
///
/// let mut mem = GlobalMemory::new();
/// let a = mem.alloc_data("a", vec![1.0, 2.0], DType::F16);
/// let out = mem.alloc_poisoned("out", 2, DType::F16);
/// let v = mem.read(a, 1, SimTime::ZERO);
/// mem.write(out, 0, v * 2.0);
/// assert_eq!(mem.read(out, 0, SimTime::ZERO), 4.0);
/// assert!(mem.races().is_empty());
/// ```
#[derive(Debug, Default, Clone)]
pub struct GlobalMemory {
    buffers: Vec<Buffer>,
    races: Vec<RaceEvent>,
    /// Cap on recorded race events to bound memory on badly broken runs.
    race_cap: usize,
    races_total: u64,
}

impl GlobalMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        GlobalMemory {
            buffers: Vec::new(),
            races: Vec::new(),
            race_cap: 1024,
            races_total: 0,
        }
    }

    /// Allocates a timing-only buffer: it has a size for byte accounting but
    /// no backing data, so functional reads return 0.0 and writes are
    /// dropped. Use for large benchmark shapes where computing real values
    /// would be wasteful.
    pub fn alloc(&mut self, name: &str, len: usize, dtype: DType) -> BufferId {
        self.push(Buffer {
            name: name.to_owned(),
            len,
            dtype,
            data: None,
            poisoned: false,
        })
    }

    /// Allocates a functional buffer initialized with `data`.
    pub fn alloc_data(&mut self, name: &str, data: Vec<f32>, dtype: DType) -> BufferId {
        self.push(Buffer {
            name: name.to_owned(),
            len: data.len(),
            dtype,
            data: Some(data),
            poisoned: false,
        })
    }

    /// Allocates a functional buffer of `len` elements filled with NaN
    /// poison. Reading an element before it is written records a
    /// [`RaceEvent`] and returns 0.0 so downstream verification fails loudly
    /// rather than propagating NaN everywhere.
    pub fn alloc_poisoned(&mut self, name: &str, len: usize, dtype: DType) -> BufferId {
        self.push(Buffer {
            name: name.to_owned(),
            len,
            dtype,
            data: Some(vec![f32::NAN; len]),
            poisoned: true,
        })
    }

    fn push(&mut self, buffer: Buffer) -> BufferId {
        let id = BufferId(self.buffers.len());
        self.buffers.push(buffer);
        id
    }

    /// Number of elements in `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a buffer of this memory.
    pub fn len(&self, id: BufferId) -> usize {
        self.buffers[id.0].len
    }

    /// True if the memory holds no buffers.
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }

    /// Element type of `id`.
    pub fn dtype(&self, id: BufferId) -> DType {
        self.buffers[id.0].dtype
    }

    /// Size of `id` in bytes.
    pub fn size_bytes(&self, id: BufferId) -> u64 {
        let b = &self.buffers[id.0];
        b.len as u64 * b.dtype.size_bytes()
    }

    /// Name given to `id` at allocation.
    pub fn name(&self, id: BufferId) -> &str {
        &self.buffers[id.0].name
    }

    /// True if `id` carries functional data.
    pub fn is_functional(&self, id: BufferId) -> bool {
        self.buffers[id.0].data.is_some()
    }

    /// Reads element `index`, recording a race if the element is still
    /// poisoned. Timing-only buffers read as 0.0.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds for a functional buffer.
    pub fn read(&mut self, id: BufferId, index: usize, now: SimTime) -> f32 {
        let buffer = &self.buffers[id.0];
        match &buffer.data {
            None => 0.0,
            Some(data) => {
                let v = data[index];
                if buffer.poisoned && v.is_nan() {
                    self.races_total += 1;
                    if self.races.len() < self.race_cap {
                        self.races.push(RaceEvent {
                            buffer: id,
                            buffer_name: buffer.name.clone(),
                            index,
                            time: now,
                        });
                    }
                    0.0
                } else {
                    v
                }
            }
        }
    }

    /// Reads element `index` without race accounting: poisoned (NaN)
    /// elements are returned as NaN rather than logged. Used for
    /// read-modify-write accumulation where the reader owns the element
    /// (split-K partial sums).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds for a functional buffer.
    pub fn read_raw(&self, id: BufferId, index: usize) -> f32 {
        match &self.buffers[id.0].data {
            None => 0.0,
            Some(data) => data[index],
        }
    }

    /// Writes element `index`; dropped for timing-only buffers.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds for a functional buffer.
    pub fn write(&mut self, id: BufferId, index: usize, value: f32) {
        if let Some(data) = &mut self.buffers[id.0].data {
            data[index] = value;
        }
    }

    /// Returns the full contents of a functional buffer, or `None` for a
    /// timing-only buffer.
    pub fn snapshot(&self, id: BufferId) -> Option<&[f32]> {
        self.buffers[id.0].data.as_deref()
    }

    /// Restores this memory to the state of `template`, reusing existing
    /// allocations when the buffer layouts match (the common case: a
    /// [`Session`](crate::Session) re-running one compiled pipeline).
    /// Timing-only buffers carry no data, so resetting them is free;
    /// functional buffers copy their template contents in place. Race
    /// accounting is cleared.
    ///
    /// When the layouts differ (the session was rebound to a different
    /// pipeline), the memory is re-cloned wholesale.
    pub fn reset_from(&mut self, template: &GlobalMemory) {
        let compatible = self.buffers.len() == template.buffers.len()
            && self.buffers.iter().zip(&template.buffers).all(|(b, t)| {
                b.len == t.len
                    && b.dtype == t.dtype
                    && b.data.is_some() == t.data.is_some()
                    && b.name == t.name
            });
        if compatible {
            for (b, t) in self.buffers.iter_mut().zip(&template.buffers) {
                if let (Some(data), Some(tdata)) = (&mut b.data, &t.data) {
                    data.copy_from_slice(tdata);
                }
                b.poisoned = t.poisoned;
            }
        } else {
            self.buffers.clone_from(&template.buffers);
            self.race_cap = template.race_cap;
        }
        self.races.clear();
        self.races_total = 0;
    }

    /// A deterministic 64-bit digest of the memory's buffer layout and
    /// functional contents (FNV-1a over names, lengths, dtypes and the
    /// exact `f32` bit patterns). Two memories fingerprint equal iff they
    /// are bit-identical to a functional observer, which is how the
    /// schedule-space explorer ([`crate::explore`]) asserts that every
    /// schedule of a pipeline produced the same final state. Timing-only
    /// buffers contribute layout only (they carry no data).
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= b as u64;
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        };
        for buffer in &self.buffers {
            eat(buffer.name.as_bytes());
            eat(&(buffer.len as u64).to_le_bytes());
            eat(&[buffer.dtype.size_bytes() as u8, buffer.data.is_some() as u8]);
            if let Some(data) = &buffer.data {
                for v in data {
                    eat(&v.to_bits().to_le_bytes());
                }
            }
        }
        hash
    }

    /// Race events recorded so far (capped; see [`GlobalMemory::races_total`]).
    pub fn races(&self) -> &[RaceEvent] {
        &self.races
    }

    /// Total number of racy reads observed, including those beyond the
    /// recording cap.
    pub fn races_total(&self) -> u64 {
        self.races_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_only_buffers_have_size_but_no_data() {
        let mut mem = GlobalMemory::new();
        let b = mem.alloc("weights", 1024, DType::F16);
        assert_eq!(mem.len(b), 1024);
        assert_eq!(mem.size_bytes(b), 2048);
        assert!(!mem.is_functional(b));
        mem.write(b, 3, 7.0);
        assert_eq!(mem.read(b, 3, SimTime::ZERO), 0.0);
        assert!(mem.races().is_empty());
    }

    #[test]
    fn functional_buffer_roundtrips_data() {
        let mut mem = GlobalMemory::new();
        let b = mem.alloc_data("x", vec![1.0, 2.0, 3.0], DType::F32);
        assert_eq!(mem.size_bytes(b), 12);
        assert_eq!(mem.read(b, 2, SimTime::ZERO), 3.0);
        mem.write(b, 0, -1.0);
        assert_eq!(mem.snapshot(b).unwrap()[0], -1.0);
    }

    #[test]
    fn poisoned_read_records_race_and_returns_zero() {
        let mut mem = GlobalMemory::new();
        let b = mem.alloc_poisoned("intermediate", 4, DType::F16);
        let v = mem.read(b, 1, SimTime::from_nanos(5));
        assert_eq!(v, 0.0);
        assert_eq!(mem.races().len(), 1);
        assert_eq!(mem.races()[0].index, 1);
        assert_eq!(mem.races_total(), 1);
        // After the producer writes, reads are clean.
        mem.write(b, 1, 9.0);
        assert_eq!(mem.read(b, 1, SimTime::from_nanos(6)), 9.0);
        assert_eq!(mem.races_total(), 1);
    }

    #[test]
    fn race_recording_is_capped_but_counted() {
        let mut mem = GlobalMemory::new();
        let b = mem.alloc_poisoned("i", 5000, DType::F16);
        for i in 0..2000 {
            mem.read(b, i, SimTime::ZERO);
        }
        assert_eq!(mem.races_total(), 2000);
        assert!(mem.races().len() <= 1024);
    }

    #[test]
    fn race_event_displays_buffer_name() {
        let mut mem = GlobalMemory::new();
        let b = mem.alloc_poisoned("xw1", 2, DType::F16);
        mem.read(b, 0, SimTime::ZERO);
        let msg = mem.races()[0].to_string();
        assert!(msg.contains("xw1[0]"), "{msg}");
    }
}
