//! Simulated time, kept in integer picoseconds for exact determinism.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or duration of) simulated time, measured in picoseconds.
///
/// Integer picoseconds make the discrete-event engine exactly deterministic:
/// no floating-point accumulation error, no platform-dependent rounding. At
/// picosecond resolution a `u64` covers ~213 days of simulated time, far more
/// than any kernel timeline here.
///
/// # Examples
///
/// ```
/// use cusync_sim::SimTime;
///
/// let t = SimTime::from_micros(6.0);
/// assert_eq!(t.as_micros(), 6.0);
/// let cycles = SimTime::from_cycles(1380, 1.38e9); // 1380 cycles at 1.38 GHz
/// assert_eq!(cycles.as_micros(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero time, origin of every simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable time, used as the clamp target of checked
    /// conversions from untrusted floating-point durations.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw picoseconds.
    pub const fn from_picos(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates a time from milliseconds — the natural unit of serving
    /// horizons and SLO budgets (`crates/serve`).
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Creates a time from (possibly fractional) microseconds.
    pub fn from_micros(us: f64) -> Self {
        SimTime((us * 1e6) as u64)
    }

    /// Converts a cycle count at `clock_hz` into simulated time, rounding to
    /// the nearest picosecond.
    pub fn from_cycles(cycles: u64, clock_hz: f64) -> Self {
        SimTime(((cycles as f64) * 1e12 / clock_hz).round() as u64)
    }

    /// Raw picosecond value.
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// Time in microseconds (lossy, for reporting only).
    pub fn as_micros(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time in nanoseconds (lossy, for reporting only).
    pub fn as_nanos(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Time in seconds (lossy, for rate reporting: requests per second of
    /// *virtual* time in the serving layer).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction; useful for durations that may be negative due
    /// to zero-width intervals.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Saturating addition; arrival generators use it so a clamped-huge gap
    /// pins the next arrival at [`SimTime::MAX`] (past any horizon) instead
    /// of wrapping around to early virtual time in release builds.
    pub fn saturating_add(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(other.0))
    }

    /// Checked conversion from a duration in seconds. Returns `None` for
    /// NaN or negative inputs; values beyond the representable range clamp
    /// to [`SimTime::MAX`]. This is the safe form of the `(secs * 1e12) as
    /// u64` cast, whose silent NaN→0 / negative→0 saturation turned bad
    /// workload rates into zero-length gaps.
    pub fn try_from_secs_f64(secs: f64) -> Option<SimTime> {
        if secs.is_nan() || secs < 0.0 {
            return None;
        }
        let ps = secs * 1e12;
        if ps >= u64::MAX as f64 {
            return Some(SimTime::MAX);
        }
        Some(SimTime(ps.round() as u64))
    }

    /// Larger of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Smaller of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_nanos(5).as_picos(), 5_000);
        assert_eq!(SimTime::from_micros(2.5).as_nanos(), 2_500.0);
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000.0));
        assert_eq!(SimTime::from_millis(250).as_secs_f64(), 0.25);
    }

    #[test]
    fn cycles_at_clock() {
        // 1000 cycles at 1 GHz is exactly 1 us.
        assert_eq!(SimTime::from_cycles(1_000, 1e9).as_micros(), 1.0);
        // 1 cycle at 1.38 GHz is ~725 ps, rounded to nearest.
        assert_eq!(SimTime::from_cycles(1, 1.38e9).as_picos(), 725);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(4);
        assert_eq!((a + b).as_picos(), 14_000);
        assert_eq!((a - b).as_picos(), 6_000);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert!(a > b);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = (1..=3).map(SimTime::from_nanos).sum();
        assert_eq!(total, SimTime::from_nanos(6));
    }

    #[test]
    fn display_in_microseconds() {
        assert_eq!(SimTime::from_micros(12.5).to_string(), "12.500us");
    }

    #[test]
    fn saturating_add_pins_at_max() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimTime::from_nanos(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimTime::from_nanos(1).saturating_add(SimTime::from_nanos(2)),
            SimTime::from_nanos(3)
        );
    }

    #[test]
    fn try_from_secs_rejects_non_finite_and_negative() {
        assert_eq!(SimTime::try_from_secs_f64(f64::NAN), None);
        assert_eq!(SimTime::try_from_secs_f64(-1.0), None);
        assert_eq!(SimTime::try_from_secs_f64(-0.0), Some(SimTime::ZERO));
        assert_eq!(
            SimTime::try_from_secs_f64(1e-12),
            Some(SimTime::from_picos(1))
        );
        assert_eq!(
            SimTime::try_from_secs_f64(f64::INFINITY),
            Some(SimTime::MAX)
        );
        assert_eq!(SimTime::try_from_secs_f64(1e30), Some(SimTime::MAX));
        assert_eq!(
            SimTime::try_from_secs_f64(0.25),
            Some(SimTime::from_millis(250))
        );
    }
}
