//! Schedule-space exploration: run one compiled pipeline under many block
//! schedulers and check that the outcomes are the ones the sync protocol
//! promises.
//!
//! The paper's deadlock-freedom argument (Section III-B) is made against
//! one progress model — blocks issue in kernel launch order. Sorensen et
//! al. show such arguments must be validated *across* schedules, so this
//! driver searches the schedule space instead of sampling one point of
//! it: a [`CompiledPipeline`] is executed once per [`SchedPolicyKind`]
//! (typically [`Fifo`](crate::Fifo), [`Lifo`](crate::Lifo),
//! [`SemStarver`](crate::SemStarver) and K
//! [`SeededShuffle`](crate::SeededShuffle)s), and every run is checked
//! against the invariants that must hold no matter which schedule the
//! hardware picks:
//!
//! - **Trace sanity** — event times are monotone; every issued block
//!   blocks/finishes no earlier than it was issued; a completed run
//!   issues exactly each kernel's grid (a permutation of its blocks).
//! - **Functional determinism** — all runs that complete agree on the
//!   functional outcome: bit-identical final memory
//!   ([`GlobalMemory::fingerprint`]), race counts and semaphore post
//!   totals; correct synchronization makes results schedule-*independent*
//!   even though timelines are schedule-dependent.
//! - **Classified failures** — a run that stalls must produce a
//!   [`DeadlockReport`] that actually names the wait cycle (blocked
//!   blocks, polled semaphores, starved kernels), not an opaque hang.
//! - **Expected outcome** — callers assert [`Expectation::Terminates`]
//!   for protocol-complete graphs (wait-kernels on, capacity-safe) and
//!   [`Expectation::Deadlocks`] for adversarial ones (wait-kernel
//!   disabled on a downscaled GPU).
//!
//! The optional cross-engine check re-runs every schedule on the other
//! [`EngineMode`] and demands bit-identical reports: the ref ↔ opt
//! equivalence contract extended from one schedule to the whole space.
//!
//! Downscaled hardware variants (fewer SMs — the knob that turns benign
//! schedules hostile by shrinking the capacity the spinners fight over)
//! run through [`explore_scaled`], which rebuilds the pipeline per
//! variant via a caller-supplied builder.

use std::fmt;
use std::fmt::Write as _;

use crate::config::ClusterConfig;
use crate::engine::{DeadlockReport, EngineMode, SimError};
use crate::session::{CompiledPipeline, Session};
use crate::stats::RunReport;
use crate::trace::TraceEvent;
use crate::SchedPolicyKind;

/// What a caller asserts about every schedule's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Expectation {
    /// Record outcomes; only the unconditional invariants are enforced.
    #[default]
    Either,
    /// Every schedule must run to completion (the deadlock-freedom claim
    /// for a protocol-complete graph).
    Terminates,
    /// At least one schedule must deadlock (the adversarial half: the
    /// graph is known to be unsafe without its wait-kernels).
    Deadlocks,
}

/// Configuration of one exploration sweep.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Schedules to run, in order. The first entry is the baseline the
    /// functional-determinism check compares against.
    pub schedules: Vec<SchedPolicyKind>,
    /// Engine the sweep runs on.
    pub mode: EngineMode,
    /// Outcome assertion (see [`Expectation`]).
    pub expectation: Expectation,
    /// Re-run every schedule on the other engine and require bit-identical
    /// reports and final memory.
    pub cross_check_modes: bool,
}

impl ExploreConfig {
    /// The standard sweep: [`Fifo`](SchedPolicyKind::Fifo) (the baseline),
    /// [`Lifo`](SchedPolicyKind::Lifo),
    /// [`SemStarver`](SchedPolicyKind::SemStarver), and `num_shuffles`
    /// seeded shuffles derived from `base_seed`.
    pub fn seeded(num_shuffles: usize, base_seed: u64) -> Self {
        let mut schedules = vec![
            SchedPolicyKind::Fifo,
            SchedPolicyKind::Lifo,
            SchedPolicyKind::SemStarver,
        ];
        schedules.extend((0..num_shuffles as u64).map(|i| {
            SchedPolicyKind::SeededShuffle(base_seed.wrapping_add(i.wrapping_mul(0x9E37)))
        }));
        ExploreConfig {
            schedules,
            mode: EngineMode::Optimized,
            expectation: Expectation::Either,
            cross_check_modes: false,
        }
    }

    /// Sets the outcome assertion.
    pub fn expecting(mut self, expectation: Expectation) -> Self {
        self.expectation = expectation;
        self
    }

    /// Enables the cross-engine bit-identity check.
    pub fn cross_checked(mut self) -> Self {
        self.cross_check_modes = true;
        self
    }

    /// Pins the sweep's engine mode.
    pub fn on_mode(mut self, mode: EngineMode) -> Self {
        self.mode = mode;
        self
    }
}

/// Outcome of one schedule's run.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleOutcome {
    /// The pipeline ran to completion.
    Completed {
        /// The run's report (timeline, utilization, posts).
        report: RunReport,
        /// Digest of the final memory ([`crate::GlobalMemory::fingerprint`]).
        mem_fingerprint: u64,
    },
    /// The pipeline stalled; the report names the wait cycle.
    Deadlocked(Box<DeadlockReport>),
}

/// One schedule's result within an [`ExploreSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleResult {
    /// The schedule that ran.
    pub schedule: SchedPolicyKind,
    /// What happened.
    pub outcome: ScheduleOutcome,
}

impl ScheduleResult {
    /// True if this schedule ran to completion.
    pub fn completed(&self) -> bool {
        matches!(self.outcome, ScheduleOutcome::Completed { .. })
    }
}

/// Everything one exploration sweep observed: per-schedule outcomes plus
/// every invariant violation found. An empty
/// [`violations`](ExploreSummary::violations) list means the sweep passed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExploreSummary {
    /// Per-schedule outcomes, in sweep order.
    pub results: Vec<ScheduleResult>,
    /// Human-readable invariant violations (empty = pass).
    pub violations: Vec<String>,
}

impl ExploreSummary {
    /// True when no invariant was violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of schedules that completed.
    pub fn completed(&self) -> usize {
        self.results.iter().filter(|r| r.completed()).count()
    }

    /// Number of schedules that deadlocked.
    pub fn deadlocked(&self) -> usize {
        self.results.len() - self.completed()
    }

    /// Number of distinct end-to-end completion times among the completed
    /// schedules — a coarse measure of how much of the timeline space the
    /// sweep actually reached (1 means every schedule collapsed to the
    /// same timeline).
    pub fn distinct_timelines(&self) -> usize {
        let mut totals: Vec<u64> = self
            .results
            .iter()
            .filter_map(|r| match &r.outcome {
                ScheduleOutcome::Completed { report, .. } => Some(report.total.as_picos()),
                ScheduleOutcome::Deadlocked(_) => None,
            })
            .collect();
        totals.sort_unstable();
        totals.dedup();
        totals.len()
    }

    /// The first deadlock report observed, if any.
    pub fn first_deadlock(&self) -> Option<&DeadlockReport> {
        self.results.iter().find_map(|r| match &r.outcome {
            ScheduleOutcome::Deadlocked(report) => Some(report.as_ref()),
            ScheduleOutcome::Completed { .. } => None,
        })
    }

    /// Renders the summary as a small JSON document (schedule → outcome,
    /// violations), the artifact the CI smoke job uploads. Hand-rolled —
    /// the workspace takes no serialization dependency.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schedules\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 == self.results.len() { "" } else { "," };
            match &r.outcome {
                ScheduleOutcome::Completed {
                    report,
                    mem_fingerprint,
                } => {
                    let _ = writeln!(
                        out,
                        "    {{\"schedule\": \"{}\", \"outcome\": \"completed\", \
                         \"total_ps\": {}, \"sem_posts\": {}, \"mem_fingerprint\": \"{:016x}\"}}{}",
                        r.schedule,
                        report.total.as_picos(),
                        report.sem_posts,
                        mem_fingerprint,
                        comma,
                    );
                }
                ScheduleOutcome::Deadlocked(report) => {
                    let _ = writeln!(
                        out,
                        "    {{\"schedule\": \"{}\", \"outcome\": \"deadlock\", \
                         \"time_ps\": {}, \"blocked\": {}, \"starved\": {}}}{}",
                        r.schedule,
                        report.time.as_picos(),
                        report.blocked.len(),
                        report.starved().count(),
                        comma,
                    );
                }
            }
        }
        out.push_str("  ],\n  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            let comma = if i + 1 == self.violations.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(out, "    \"{}\"{comma}", crate::json_escape(v));
        }
        let _ = write!(
            out,
            "  ],\n  \"completed\": {},\n  \"deadlocked\": {},\n  \
             \"distinct_timelines\": {},\n  \"ok\": {}\n}}",
            self.completed(),
            self.deadlocked(),
            self.distinct_timelines(),
            self.ok(),
        );
        out
    }
}

impl fmt::Display for ExploreSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "explored {} schedule(s): {} completed, {} deadlocked, {} distinct timeline(s), {}",
            self.results.len(),
            self.completed(),
            self.deadlocked(),
            self.distinct_timelines(),
            if self.ok() {
                "all invariants held".to_owned()
            } else {
                format!("{} violation(s)", self.violations.len())
            },
        )?;
        for v in &self.violations {
            write!(f, "\n  violation: {v}")?;
        }
        Ok(())
    }
}

/// Per-run trace invariants that hold under *every* schedule: times are
/// monotone, blocks block/finish only after they issue, and a completed
/// run issues each kernel's grid exactly (the issue order is a
/// permutation of the blocks).
fn check_trace(
    schedule: SchedPolicyKind,
    trace: &[TraceEvent],
    grids: &[crate::Dim3],
    completed: bool,
    violations: &mut Vec<String>,
) {
    let mut last = crate::SimTime::ZERO;
    for event in trace {
        let t = event.time();
        if t < last {
            violations.push(format!(
                "{schedule}: trace time went backwards ({t} after {last})"
            ));
            return;
        }
        last = t;
    }
    use std::collections::BTreeMap;
    type IssueMap = BTreeMap<(crate::KernelId, crate::Dim3), crate::SimTime>;
    fn check_after_issue(
        issued: &IssueMap,
        schedule: SchedPolicyKind,
        kernel: crate::KernelId,
        block: crate::Dim3,
        time: crate::SimTime,
        violations: &mut Vec<String>,
    ) {
        match issued.get(&(kernel, block)) {
            None => violations.push(format!(
                "{schedule}: block {block} of {kernel} progressed before being issued"
            )),
            Some(&at) if time < at => violations.push(format!(
                "{schedule}: block {block} of {kernel} progressed at {time}, \
                 before its issue at {at}"
            )),
            Some(_) => {}
        }
    }
    let mut issued: IssueMap = BTreeMap::new();
    let mut finished = 0usize;
    for event in trace {
        match *event {
            TraceEvent::BlockIssued {
                kernel,
                block,
                time,
                ..
            } => {
                // The insert must run unconditionally (it records the
                // issue time); a duplicate key is the violation.
                let duplicate = issued.insert((kernel, block), time).is_some();
                if duplicate {
                    violations.push(format!(
                        "{schedule}: block {block} of {kernel} issued twice"
                    ));
                }
            }
            TraceEvent::BlockBlocked {
                kernel,
                block,
                time,
                ..
            } => {
                check_after_issue(&issued, schedule, kernel, block, time, violations);
            }
            TraceEvent::BlockFinished {
                kernel,
                block,
                time,
            } => {
                check_after_issue(&issued, schedule, kernel, block, time, violations);
                finished += 1;
            }
            _ => {}
        }
    }
    if completed && finished != issued.len() {
        violations.push(format!(
            "{schedule}: run completed but {} issued block(s) never finished",
            issued.len() - finished,
        ));
    }
    if completed {
        // Permutation invariant: a completed run must have issued each
        // kernel's grid exactly — no block dropped, none invented. (The
        // no-duplicate check above plus set equality makes the issue
        // order a permutation of the blocks.)
        for (k, &grid) in grids.iter().enumerate() {
            let kernel = crate::KernelId(k);
            let mut seen: Vec<crate::Dim3> = issued
                .keys()
                .filter(|(kid, _)| *kid == kernel)
                .map(|&(_, block)| block)
                .collect();
            seen.sort();
            let mut expected: Vec<crate::Dim3> = grid.iter().collect();
            expected.sort();
            if seen != expected {
                violations.push(format!(
                    "{schedule}: kernel {kernel} issued {} block(s), expected its grid \
                     {grid} ({} blocks) exactly",
                    seen.len(),
                    grid.count(),
                ));
            }
        }
    }
}

/// Runs `pipeline` under every schedule of `cfg` and checks the
/// invariants described in the [module docs](self). Never panics on a
/// "failing" pipeline — failures become entries of
/// [`ExploreSummary::violations`].
pub fn explore(pipeline: &CompiledPipeline, cfg: &ExploreConfig) -> ExploreSummary {
    let mut summary = ExploreSummary::default();
    let mut session = Session::with_mode(cfg.mode);
    session.enable_trace();
    let grids: Vec<crate::Dim3> = pipeline.kernel_grids().collect();
    // Baseline functional outcome of the first completed schedule: final
    // memory digest, race count and semaphore post total — everything a
    // correctly synchronized pipeline keeps schedule-independent.
    let mut baseline: Option<(SchedPolicyKind, u64, u64, u64)> = None;
    for &schedule in &cfg.schedules {
        session.set_sched(Some(schedule.instantiate()));
        let run = session.run(pipeline);
        let completed = run.is_ok();
        check_trace(
            schedule,
            session.trace(),
            &grids,
            completed,
            &mut summary.violations,
        );
        let outcome = match run {
            Ok(report) => {
                let fingerprint = session.mem().fingerprint();
                match baseline {
                    None => {
                        baseline = Some((schedule, fingerprint, report.races, report.sem_posts))
                    }
                    Some((base, mem, races, posts)) => {
                        if fingerprint != mem {
                            summary.violations.push(format!(
                                "{schedule}: final memory {fingerprint:016x} differs from \
                                 {base}'s {mem:016x} — results are schedule-dependent",
                            ));
                        }
                        if report.races != races {
                            summary.violations.push(format!(
                                "{schedule}: {} race(s) vs {base}'s {races} — \
                                 synchronization coverage is schedule-dependent",
                                report.races,
                            ));
                        }
                        if report.sem_posts != posts {
                            summary.violations.push(format!(
                                "{schedule}: {} sem post(s) vs {base}'s {posts} — \
                                 synchronization work is schedule-dependent",
                                report.sem_posts,
                            ));
                        }
                    }
                }
                ScheduleOutcome::Completed {
                    report,
                    mem_fingerprint: fingerprint,
                }
            }
            Err(SimError::Deadlock(report)) => {
                if report.blocked.is_empty() || report.pending.is_empty() {
                    summary.violations.push(format!(
                        "{schedule}: deadlock report is unclassified (no blocked blocks \
                         or no pending kernels)",
                    ));
                }
                ScheduleOutcome::Deadlocked(report)
            }
            Err(other) => {
                summary
                    .violations
                    .push(format!("{schedule}: unexpected error: {other}"));
                continue;
            }
        };
        if cfg.cross_check_modes {
            cross_check(
                pipeline,
                schedule,
                cfg.mode,
                &outcome,
                &mut summary.violations,
            );
        }
        summary.results.push(ScheduleResult { schedule, outcome });
    }
    match cfg.expectation {
        Expectation::Either => {}
        Expectation::Terminates => {
            for r in &summary.results {
                if let ScheduleOutcome::Deadlocked(report) = &r.outcome {
                    summary.violations.push(format!(
                        "{}: expected termination under every schedule, but: {}",
                        r.schedule,
                        report
                            .wait_cycle()
                            .unwrap_or_else(|| "stalled without an occupancy cycle".to_owned()),
                    ));
                }
            }
        }
        Expectation::Deadlocks => {
            if summary.deadlocked() == 0 {
                summary.violations.push(
                    "expected at least one schedule to deadlock, but every schedule completed"
                        .to_owned(),
                );
            }
        }
    }
    summary
}

/// Re-runs `schedule` on the other engine and demands a bit-identical
/// outcome — the ref ↔ opt equivalence contract, enforced per schedule.
fn cross_check(
    pipeline: &CompiledPipeline,
    schedule: SchedPolicyKind,
    mode: EngineMode,
    outcome: &ScheduleOutcome,
    violations: &mut Vec<String>,
) {
    let other = match mode {
        EngineMode::Reference => EngineMode::Optimized,
        EngineMode::Optimized => EngineMode::Reference,
    };
    let mut session = Session::with_mode(other);
    session.set_sched(Some(schedule.instantiate()));
    match (session.run(pipeline), outcome) {
        (
            Ok(report),
            ScheduleOutcome::Completed {
                report: expected,
                mem_fingerprint,
            },
        ) => {
            // `sim_events` measures simulation *work*, which differs
            // between engines by design; every timing-observable field
            // must match bit for bit.
            if report.kernels != expected.kernels
                || report.total != expected.total
                || report.races != expected.races
                || report.sem_posts != expected.sem_posts
                || report.sm_utilization.to_bits() != expected.sm_utilization.to_bits()
            {
                violations.push(format!(
                    "{schedule}: {other} engine timeline diverged from {mode}",
                ));
            }
            if session.mem().fingerprint() != *mem_fingerprint {
                violations.push(format!(
                    "{schedule}: {other} engine final memory diverged from {mode}",
                ));
            }
        }
        (Err(SimError::Deadlock(report)), ScheduleOutcome::Deadlocked(expected)) => {
            if &report != expected {
                violations.push(format!(
                    "{schedule}: {other} engine deadlock report diverged from {mode}",
                ));
            }
        }
        (got, _) => {
            violations.push(format!(
                "{schedule}: engines disagree on the outcome ({mode} vs {other}: {})",
                match got {
                    Ok(_) => "completed".to_owned(),
                    Err(e) => format!("{e}"),
                },
            ));
        }
    }
}

/// `cluster` with every device's SM count divided by `divisor` (floored at
/// one SM) — the downscaling knob that shrinks the capacity spinning
/// blocks and unlaunched producers fight over.
pub fn downscale_sms(cluster: &ClusterConfig, divisor: u32) -> ClusterConfig {
    let mut scaled = cluster.clone();
    for device in &mut scaled.devices {
        device.num_sms = (device.num_sms / divisor.max(1)).max(1);
    }
    scaled
}

/// One hardware variant's sweep within [`explore_scaled`].
#[derive(Debug, Clone)]
pub struct ScaledExplore {
    /// The SM-count divisor this variant ran with.
    pub divisor: u32,
    /// Its sweep summary.
    pub summary: ExploreSummary,
}

/// Runs the `cfg` sweep across hardware variants: for each divisor the
/// pipeline is rebuilt (grids and occupancies depend on the SM count)
/// against [`downscale_sms`] of `base` and explored.
///
/// # Errors
///
/// Propagates the first builder failure; individual schedule outcomes
/// never error (they land in the summaries).
pub fn explore_scaled<B>(
    build: B,
    base: &ClusterConfig,
    divisors: &[u32],
    cfg: &ExploreConfig,
) -> Result<Vec<ScaledExplore>, SimError>
where
    B: Fn(&ClusterConfig) -> Result<CompiledPipeline, SimError>,
{
    let mut out = Vec::with_capacity(divisors.len());
    for &divisor in divisors {
        let cluster = downscale_sms(base, divisor);
        let pipeline = build(&cluster)?;
        out.push(ScaledExplore {
            divisor,
            summary: explore(&pipeline, cfg),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dim3, FixedKernel, Gpu, GpuConfig, Op, SimTime};
    use std::sync::Arc;

    fn quiet_config(sms: u32) -> GpuConfig {
        GpuConfig {
            host_launch_gap: SimTime::ZERO,
            kernel_dispatch_latency: SimTime::ZERO,
            block_jitter: 0.0,
            ..GpuConfig::toy(sms)
        }
    }

    /// Producer posts 4 tile sems; consumer blocks each wait for all 4.
    /// On 8 SMs everything fits and any order terminates; on 2 SMs a
    /// consumer-first order wedges the machine.
    fn producer_consumer(sms: u32) -> CompiledPipeline {
        let mut gpu = Gpu::new(quiet_config(sms));
        let sem = gpu.alloc_sems("tiles", 1, 0);
        let s1 = gpu.create_stream(0);
        let s2 = gpu.create_stream(0);
        gpu.launch(
            s1,
            Arc::new(FixedKernel::new(
                "producer",
                Dim3::linear(4),
                1,
                vec![Op::compute(50_000), Op::Fence, Op::post(sem, 0)],
            )),
        );
        gpu.launch(
            s2,
            Arc::new(FixedKernel::new(
                "consumer",
                Dim3::linear(4),
                1,
                vec![Op::wait(sem, 0, 4), Op::compute(1_000)],
            )),
        );
        gpu.compile().unwrap()
    }

    #[test]
    fn capacity_safe_graph_terminates_under_every_schedule() {
        let pipeline = producer_consumer(8);
        let cfg = ExploreConfig::seeded(6, 42)
            .expecting(Expectation::Terminates)
            .cross_checked();
        let summary = explore(&pipeline, &cfg);
        assert!(summary.ok(), "{summary}");
        assert_eq!(summary.completed(), summary.results.len());
    }

    #[test]
    fn starved_graph_deadlocks_on_an_adversarial_schedule() {
        // 2 SMs: if the consumer's 4 spinners grab freed slots before the
        // producer's remaining blocks, the machine wedges. Lifo and
        // SemStarver both find it; Fifo (launch order) does not.
        let pipeline = producer_consumer(2);
        let cfg = ExploreConfig::seeded(6, 7).expecting(Expectation::Deadlocks);
        let summary = explore(&pipeline, &cfg);
        assert!(summary.ok(), "{summary}");
        assert!(summary.deadlocked() >= 1, "{summary}");
        // Fifo is the paper's progress model: launch order keeps the
        // producer ahead of its consumer, so the baseline completes.
        assert!(
            summary.results[0].completed(),
            "launch order must not deadlock: {summary}"
        );
        let report = summary.first_deadlock().unwrap();
        let cycle = report.wait_cycle().expect("classified cycle");
        assert!(cycle.contains("consumer"), "{cycle}");
        assert!(cycle.contains("producer"), "{cycle}");
    }

    #[test]
    fn summary_json_names_every_schedule() {
        let pipeline = producer_consumer(8);
        let summary = explore(&pipeline, &ExploreConfig::seeded(2, 1));
        let json = summary.to_json();
        assert!(json.contains("\"Fifo\""), "{json}");
        assert!(json.contains("\"Lifo\""), "{json}");
        assert!(json.contains("\"SemStarver\""), "{json}");
        assert!(json.contains("SeededShuffle"), "{json}");
        assert!(json.contains("\"ok\": true"), "{json}");
    }

    #[test]
    fn downscale_floors_at_one_sm() {
        let base = crate::ClusterConfig::single(quiet_config(8));
        assert_eq!(downscale_sms(&base, 2).devices[0].num_sms, 4);
        assert_eq!(downscale_sms(&base, 100).devices[0].num_sms, 1);
        assert_eq!(downscale_sms(&base, 0).devices[0].num_sms, 8);
    }

    #[test]
    fn explore_scaled_rebuilds_per_variant() {
        let base = crate::ClusterConfig::single(quiet_config(8));
        let cfg = ExploreConfig::seeded(4, 3);
        let sweeps = explore_scaled(
            |cluster| {
                let mut gpu = Gpu::new_cluster(cluster.clone());
                let sem = gpu.alloc_sems("tiles", 1, 0);
                let s1 = gpu.create_stream(0);
                let s2 = gpu.create_stream(0);
                gpu.launch(
                    s1,
                    Arc::new(FixedKernel::new(
                        "producer",
                        Dim3::linear(4),
                        1,
                        vec![Op::compute(50_000), Op::post(sem, 0)],
                    )),
                );
                gpu.launch(
                    s2,
                    Arc::new(FixedKernel::new(
                        "consumer",
                        Dim3::linear(4),
                        1,
                        vec![Op::wait(sem, 0, 4), Op::compute(1_000)],
                    )),
                );
                gpu.compile()
            },
            &base,
            &[1, 4],
            &cfg,
        )
        .unwrap();
        assert_eq!(sweeps.len(), 2);
        // Full capacity: everything fits, all schedules complete.
        assert_eq!(sweeps[0].summary.deadlocked(), 0, "{}", sweeps[0].summary);
        // Downscaled to 2 SMs: the spinners can wedge the machine.
        assert!(sweeps[1].summary.deadlocked() >= 1, "{}", sweeps[1].summary);
    }
}
