//! Minimal hand-rolled JSON string escaping, shared by every artifact
//! writer in the workspace.
//!
//! The repo deliberately carries no serde dependency; each crate that
//! renders JSON (bench artifacts, serve metrics, explore summaries, the
//! chrome-trace exporter in `cusync-obs`) hand-writes its document
//! structure and only needs one thing done right: string escaping. This
//! module is that one thing, factored out of the three divergent copies
//! that used to live in `serve::metrics`, `bench::perf`, and
//! `sim::explore`.

use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a double-quoted JSON string literal.
///
/// Handles the two mandatory escapes (`"` and `\`), the common control
/// characters (`\n`, `\r`, `\t`) by name, and every remaining C0 control
/// character as a `\u00XX` escape, so the output is valid JSON for any
/// Rust string.
///
/// ```
/// use cusync_sim::json_escape;
/// assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
/// assert_eq!(json_escape("bell\u{7}"), "bell\\u0007");
/// ```
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::json_escape;

    #[test]
    fn passthrough_is_identity() {
        assert_eq!(json_escape("plain ascii 123"), "plain ascii 123");
        assert_eq!(json_escape("unicode: é λ 🚀"), "unicode: é λ 🚀");
    }

    #[test]
    fn mandatory_and_named_escapes() {
        assert_eq!(json_escape("\"quoted\""), "\\\"quoted\\\"");
        assert_eq!(json_escape("back\\slash"), "back\\\\slash");
        assert_eq!(json_escape("a\nb\rc\td"), "a\\nb\\rc\\td");
    }

    #[test]
    fn control_characters_become_unicode_escapes() {
        assert_eq!(json_escape("\u{0}\u{1}\u{1f}"), "\\u0000\\u0001\\u001f");
    }
}
