//! Wave arithmetic and per-run reports.
//!
//! The *static* quantities here implement Section II-A of the paper: a grid
//! of `B` thread blocks at occupancy `o` on `S` SMs runs in
//! `ceil(B / (o*S))` waves, the initial full waves executing `o*S` blocks
//! each and the final partial wave executing the remainder. Average
//! utilization across waves is `waves / ceil(waves)`, which reproduces the
//! 60–80% figures of Table I.

use std::fmt;

use crate::dim::Dim3;
use crate::time::SimTime;

/// Fractional number of thread-block waves: `blocks / (occupancy * sms)`.
///
/// # Examples
///
/// ```
/// use cusync_sim::stats::waves;
///
/// // Table I, batch 256 producer GeMM: grid [1,48,4] = 192 blocks,
/// // occupancy 2 on 80 SMs -> 1.2 waves.
/// assert!((waves(192, 2, 80) - 1.2).abs() < 1e-9);
/// ```
pub fn waves(blocks: u64, occupancy: u32, sms: u32) -> f64 {
    blocks as f64 / (occupancy as f64 * sms as f64)
}

/// Average GPU utilization across all waves of one kernel:
/// `waves / ceil(waves)` (100% when the block count divides evenly).
///
/// # Examples
///
/// ```
/// use cusync_sim::stats::{utilization, waves};
///
/// // Table I: 1.2 waves -> 60%, 2.4 waves -> 80%.
/// assert!((utilization(waves(192, 2, 80)) - 0.6).abs() < 1e-9);
/// assert!((utilization(waves(384, 2, 80)) - 0.8).abs() < 1e-9);
/// ```
pub fn utilization(waves: f64) -> f64 {
    if waves == 0.0 {
        return 0.0;
    }
    waves / waves.ceil()
}

/// Per-kernel outcome of a simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelReport {
    /// Kernel name.
    pub name: String,
    /// Grid launched.
    pub grid: Dim3,
    /// Device the kernel ran on (0 for single-GPU pipelines).
    pub device: u32,
    /// Occupancy used.
    pub occupancy: u32,
    /// Total thread blocks.
    pub blocks: u64,
    /// Static fractional waves for this kernel alone on an idle GPU.
    pub static_waves: f64,
    /// Time the kernel became ready to issue blocks.
    pub ready: SimTime,
    /// Time its first block was issued.
    pub start: SimTime,
    /// Time its last block completed.
    pub end: SimTime,
    /// `end - start`.
    pub duration: SimTime,
    /// Peak number of concurrently resident blocks observed.
    pub max_concurrent: u64,
}

impl KernelReport {
    /// Static average utilization over this kernel's waves.
    pub fn static_utilization(&self) -> f64 {
        utilization(self.static_waves)
    }
}

impl fmt::Display for KernelReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: grid {} ({} TBs, occ {}), {:.2} waves, util {:.0}%, {} -> {} ({})",
            self.name,
            self.grid,
            self.blocks,
            self.occupancy,
            self.static_waves,
            self.static_utilization() * 100.0,
            self.start,
            self.end,
            self.duration,
        )
    }
}

/// Outcome of one [`Gpu::run`](crate::Gpu::run).
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Completion time of the last kernel (total simulated time).
    pub total: SimTime,
    /// Per-kernel reports, in launch order.
    pub kernels: Vec<KernelReport>,
    /// Number of racy (read-before-write) accesses observed.
    pub races: u64,
    /// Average fraction of total SM capacity occupied between the first
    /// block issue and the last block completion.
    pub sm_utilization: f64,
    /// Total semaphore post operations performed during the run.
    pub sem_posts: u64,
    /// Heap events the engine handled to simulate the run — a measure of
    /// simulation *work*, not of simulated time. The optimized engine
    /// coalesces non-synchronizing ops, so this is typically much smaller
    /// than under [`EngineMode::Reference`](crate::EngineMode) for the
    /// same (bit-identical) timeline; `BENCH_*.json` divides wall time by
    /// it to report ns/sim-event.
    pub sim_events: u64,
}

impl RunReport {
    /// Report of the kernel named `name`.
    ///
    /// # Panics
    ///
    /// Panics if no kernel has that name (kernel names in one run are
    /// expected to be distinct in tests that use this).
    pub fn kernel(&self, name: &str) -> &KernelReport {
        self.kernels
            .iter()
            .find(|k| k.name == name)
            .unwrap_or_else(|| panic!("no kernel named {name:?} in report"))
    }

    /// Sum of per-kernel durations (what a serialized execution would
    /// roughly cost); useful to quantify overlap.
    pub fn serial_duration(&self) -> SimTime {
        self.kernels.iter().map(|k| k.duration).sum()
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run: total {} | sm util {:.0}% | {} sem posts | {} races",
            self.total,
            self.sm_utilization * 100.0,
            self.sem_posts,
            self.races
        )?;
        for k in &self.kernels {
            writeln!(f, "  {k}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_wave_arithmetic() {
        // Table I of the paper, NVIDIA V100 with 80 SMs.
        // batch 256: producer [1,48,4] occ 2 -> 1.2 waves, 60%.
        let w = waves(48 * 4, 2, 80);
        assert!((w - 1.2).abs() < 1e-9);
        assert!((utilization(w) - 0.60).abs() < 1e-9);
        // batch 1024: producer [4,24,2] occ 2 -> 1.2? No: 192 blocks occ 1.
        // Table I lists 2.4 waves at 80% for batch 1024 (occupancy 1).
        let w = waves(4 * 24 * 2, 1, 80);
        assert!((w - 2.4).abs() < 1e-9);
        assert!((utilization(w) - 0.80).abs() < 1e-9);
    }

    #[test]
    fn full_waves_are_fully_utilized() {
        assert_eq!(utilization(waves(160, 2, 80)), 1.0);
        assert_eq!(utilization(0.0), 0.0);
    }

    #[test]
    fn kernel_report_displays_waves() {
        let r = KernelReport {
            name: "gemm".into(),
            grid: Dim3::new(24, 1, 4),
            device: 0,
            occupancy: 2,
            blocks: 96,
            static_waves: 0.6,
            ready: SimTime::ZERO,
            start: SimTime::ZERO,
            end: SimTime::from_micros(10.0),
            duration: SimTime::from_micros(10.0),
            max_concurrent: 96,
        };
        let s = r.to_string();
        assert!(s.contains("0.60 waves"), "{s}");
        assert!(s.contains("24x1x4"), "{s}");
    }
}
