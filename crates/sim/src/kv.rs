//! Paged KV-cache block pool: the per-device memory-pressure hook.
//!
//! Autoregressive decode grows a per-sequence KV cache by one token per
//! step; vLLM-style serving carves each device's DRAM into fixed-size
//! *blocks* (pages) and allocates them to sequences on demand. This module
//! models exactly the allocator side of that design — block accounting, a
//! deterministic eviction cache, and conservation-law checking — without
//! touching the timing engine. The serving layer (`cusync-serve`) consults
//! a [`KvPool`] at every decode-step boundary: a sequence that cannot grow
//! triggers eviction of retained blocks, then preemption-and-recompute of
//! a victim sequence.
//!
//! Everything here is integer arithmetic over explicit state, so a pool
//! drive sequence is bit-reproducible — the same determinism contract the
//! rest of the simulator keeps.
//!
//! # Examples
//!
//! ```
//! use cusync_sim::KvPool;
//!
//! let mut pool = KvPool::new(4);
//! assert!(pool.try_grow(1, 3)); // sequence 1 takes 3 blocks
//! assert!(!pool.try_grow(2, 2)); // no room: 1 free, nothing to evict
//! pool.release(1); // sequence 1 finished; blocks go to the retained cache
//! assert!(pool.try_grow(2, 4)); // evicts the retained blocks to satisfy
//! pool.discard(2);
//! pool.stats().check().unwrap();
//! ```

use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;

use crate::config::GpuConfig;

/// Counters of everything a [`KvPool`] has done, with conservation laws
/// checked by [`KvStats::check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KvStats {
    /// Pool capacity in blocks.
    pub total: u64,
    /// Blocks ever handed out by [`KvPool::try_grow`] (cumulative).
    pub allocated: u64,
    /// Blocks moved to the retained cache by [`KvPool::release`]
    /// (cumulative) — a completed sequence's pages, kept warm until space
    /// pressure evicts them.
    pub released: u64,
    /// Blocks returned straight to the free list by [`KvPool::discard`]
    /// (cumulative) — a preempted or evacuated sequence's pages, whose
    /// contents will be recomputed.
    pub discarded: u64,
    /// Retained blocks reclaimed under pressure (cumulative, FIFO order).
    pub evicted: u64,
    /// High-water mark of live (sequence-held) blocks.
    pub peak_active: u64,
    /// `try_grow` calls that failed even after eviction.
    pub alloc_failures: u64,
    /// Blocks currently held by live sequences.
    pub active_now: u64,
    /// Blocks currently in the retained cache.
    pub retained_now: u64,
}

impl KvStats {
    /// Verifies the pool's conservation laws; returns the first violated
    /// law on failure. Holds at every instant, not just at quiescence:
    ///
    /// - every allocated block was released, discarded, or is still active;
    /// - the retained cache holds exactly the released-minus-evicted blocks;
    /// - active + retained never exceed capacity;
    /// - the peak is at least the current active count.
    pub fn check(&self) -> Result<(), String> {
        if self.allocated != self.released + self.discarded + self.active_now {
            return Err(format!(
                "kv blocks leak: allocated {} != released {} + discarded {} + active {}",
                self.allocated, self.released, self.discarded, self.active_now
            ));
        }
        if self.retained_now != self.released - self.evicted.min(self.released) {
            return Err(format!(
                "kv retained cache off: retained {} != released {} - evicted {}",
                self.retained_now, self.released, self.evicted
            ));
        }
        if self.evicted > self.released {
            return Err(format!(
                "kv evicted {} > released {}",
                self.evicted, self.released
            ));
        }
        if self.active_now + self.retained_now > self.total {
            return Err(format!(
                "kv overcommit: active {} + retained {} > total {}",
                self.active_now, self.retained_now, self.total
            ));
        }
        if self.peak_active < self.active_now {
            return Err(format!(
                "kv peak {} < active {}",
                self.peak_active, self.active_now
            ));
        }
        Ok(())
    }
}

impl fmt::Display for KvStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kv[{}/{} active, {} retained, {} evicted, {} failures]",
            self.active_now, self.total, self.retained_now, self.evicted, self.alloc_failures
        )
    }
}

/// A paged KV-cache allocator over one device's block budget.
///
/// Blocks are abstract units (the serving layer decides how many tokens a
/// block holds and how many bytes a block costs). Owners are opaque `u64`
/// sequence ids chosen by the caller; each owner's holding only ever grows
/// ([`KvPool::try_grow`]) until it ends — either [`KvPool::release`]
/// (finished: pages parked in a retained cache, reclaimable FIFO) or
/// [`KvPool::discard`] (preempted: pages freed immediately, contents lost).
///
/// The retained cache models vLLM's freed-but-warm pages: releasing is not
/// the same as freeing, so eviction is an observable, counted event with a
/// deterministic (release-order) victim sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct KvPool {
    /// Blocks not held by anyone.
    free: u64,
    /// Live allocations, by owner id.
    active: HashMap<u64, u64>,
    /// Released-but-not-evicted block counts, oldest release first.
    retained: VecDeque<u64>,
    stats: KvStats,
}

impl KvPool {
    /// A pool of `total_blocks` blocks, all free.
    pub fn new(total_blocks: u64) -> Self {
        KvPool {
            free: total_blocks,
            active: HashMap::new(),
            retained: VecDeque::new(),
            stats: KvStats {
                total: total_blocks,
                ..KvStats::default()
            },
        }
    }

    /// Sizes a pool from a device's DRAM: `share_permille`/1000 of
    /// [`GpuConfig::dram_capacity_bytes`] divided into `block_bytes` blocks.
    /// Permille (not a float fraction) keeps the sizing exact and
    /// platform-independent.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is zero or `share_permille` exceeds 1000.
    pub fn for_device(gpu: &GpuConfig, block_bytes: u64, share_permille: u32) -> Self {
        assert!(block_bytes > 0, "KV block size must be positive");
        assert!(
            share_permille <= 1000,
            "KV share {share_permille} exceeds 1000 permille"
        );
        let budget = (gpu.dram_capacity_bytes as u128 * share_permille as u128 / 1000) as u64;
        KvPool::new(budget / block_bytes)
    }

    /// Pool capacity in blocks.
    pub fn total_blocks(&self) -> u64 {
        self.stats.total
    }

    /// Blocks currently unheld (excludes the retained cache).
    pub fn free_blocks(&self) -> u64 {
        self.free
    }

    /// Blocks currently held by live owner `owner` (0 if none).
    pub fn held_by(&self, owner: u64) -> u64 {
        self.active.get(&owner).copied().unwrap_or(0)
    }

    /// Grows `owner`'s allocation by `blocks`, evicting retained blocks
    /// (oldest release first) if the free list alone cannot satisfy it.
    /// Returns `false` — and changes nothing except the failure counter —
    /// if even full eviction would not suffice. Growing by zero blocks
    /// succeeds without creating an allocation.
    pub fn try_grow(&mut self, owner: u64, blocks: u64) -> bool {
        if blocks == 0 {
            return true;
        }
        if self.free + self.retained_blocks() < blocks {
            self.stats.alloc_failures += 1;
            return false;
        }
        while self.free < blocks {
            let oldest = self
                .retained
                .pop_front()
                .expect("retained cache covers the shortfall");
            self.free += oldest;
            self.stats.evicted += oldest;
            self.stats.retained_now -= oldest;
        }
        self.free -= blocks;
        *self.active.entry(owner).or_insert(0) += blocks;
        self.stats.allocated += blocks;
        self.stats.active_now += blocks;
        self.stats.peak_active = self.stats.peak_active.max(self.stats.active_now);
        true
    }

    /// Ends `owner`'s allocation normally: its blocks move to the retained
    /// cache (newest entry), to be evicted FIFO under future pressure.
    /// Releasing an unknown owner is a no-op (a zero-block sequence).
    pub fn release(&mut self, owner: u64) {
        if let Some(blocks) = self.active.remove(&owner) {
            self.retained.push_back(blocks);
            self.stats.active_now -= blocks;
            self.stats.released += blocks;
            self.stats.retained_now += blocks;
        }
    }

    /// Ends `owner`'s allocation by preemption: its blocks go straight back
    /// to the free list and their contents are gone (the caller recomputes).
    /// Discarding an unknown owner is a no-op.
    pub fn discard(&mut self, owner: u64) {
        if let Some(blocks) = self.active.remove(&owner) {
            self.free += blocks;
            self.stats.active_now -= blocks;
            self.stats.discarded += blocks;
        }
    }

    /// Current counters (see [`KvStats::check`] for the laws they obey).
    pub fn stats(&self) -> KvStats {
        self.stats
    }

    /// Number of live owners.
    pub fn active_owners(&self) -> usize {
        self.active.len()
    }

    fn retained_blocks(&self) -> u64 {
        self.stats.retained_now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_release_evict_cycle() {
        let mut pool = KvPool::new(10);
        assert!(pool.try_grow(1, 4));
        assert!(pool.try_grow(2, 6));
        assert_eq!(pool.free_blocks(), 0);
        assert!(!pool.try_grow(3, 1), "full pool with no retained blocks");
        pool.release(1);
        // Release parks blocks; they are not free until evicted.
        assert_eq!(pool.free_blocks(), 0);
        assert!(pool.try_grow(3, 3), "eviction reclaims the retained pages");
        assert_eq!(pool.stats().evicted, 4);
        assert_eq!(pool.free_blocks(), 1);
        pool.discard(2);
        pool.discard(3);
        let s = pool.stats();
        s.check().unwrap();
        assert_eq!(s.allocated, 13);
        assert_eq!(s.discarded, 9);
        assert_eq!(s.peak_active, 10);
        assert_eq!(s.active_now, 0);
    }

    #[test]
    fn failed_grow_changes_nothing_but_the_counter() {
        let mut pool = KvPool::new(4);
        assert!(pool.try_grow(7, 3));
        let before = pool.clone();
        assert!(!pool.try_grow(8, 5));
        assert_eq!(pool.stats().alloc_failures, 1);
        assert_eq!(pool.free_blocks(), before.free_blocks());
        assert_eq!(pool.held_by(7), 3);
        assert_eq!(pool.held_by(8), 0);
        pool.stats().check().unwrap();
    }

    #[test]
    fn eviction_is_fifo_by_release_order() {
        let mut pool = KvPool::new(6);
        assert!(pool.try_grow(1, 2));
        assert!(pool.try_grow(2, 3));
        pool.release(2); // released first: evicted first
        pool.release(1);
        // Need 4 free, have 1: evicts owner 2's 3 blocks (the oldest
        // retained entry) and stops — owner 1's pages stay warm.
        assert!(pool.try_grow(3, 4));
        assert_eq!(pool.stats().evicted, 3);
        assert_eq!(pool.stats().retained_now, 2);
        assert_eq!(pool.free_blocks(), 0);
        pool.stats().check().unwrap();
    }

    #[test]
    fn partial_eviction_stops_at_enough() {
        let mut pool = KvPool::new(6);
        assert!(pool.try_grow(1, 2));
        assert!(pool.try_grow(2, 2));
        pool.release(1);
        pool.release(2);
        // 2 free + 4 retained; growing by 3 must evict only the oldest entry.
        assert!(pool.try_grow(3, 3));
        assert_eq!(pool.stats().evicted, 2);
        assert_eq!(pool.stats().retained_now, 2);
        pool.stats().check().unwrap();
    }

    #[test]
    fn zero_growth_and_unknown_owners_are_noops() {
        let mut pool = KvPool::new(3);
        assert!(pool.try_grow(1, 0));
        assert_eq!(pool.active_owners(), 0);
        pool.release(99);
        pool.discard(99);
        assert_eq!(
            pool.stats(),
            KvStats {
                total: 3,
                ..KvStats::default()
            }
        );
    }

    #[test]
    fn device_sizing_uses_permille_of_dram() {
        let gpu = GpuConfig::tesla_v100(); // 32 GiB
        let pool = KvPool::for_device(&gpu, 1 << 20, 500); // 1 MiB blocks, 50%
        assert_eq!(pool.total_blocks(), 16 << 10);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_rejected() {
        KvPool::for_device(&GpuConfig::tesla_v100(), 0, 100);
    }

    #[test]
    #[should_panic(expected = "permille")]
    fn overfull_share_rejected() {
        KvPool::for_device(&GpuConfig::tesla_v100(), 1 << 20, 1001);
    }
}
