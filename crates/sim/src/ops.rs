//! The per-thread-block instruction set of the simulator.

use crate::sem::SemArrayId;

/// One timed operation issued by a thread block.
///
/// A [`BlockBody`](crate::BlockBody) yields a sequence of `Op`s; the engine
/// charges each with a latency from the [`GpuConfig`](crate::GpuConfig) cost
/// model and resumes the body when the operation completes. Functional
/// side-effects (actual reads and writes of buffer values) are performed by
/// the body itself between operations; see the contract on
/// [`BlockBody::resume`](crate::BlockBody::resume).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Pure computation taking `cycles` SM cycles.
    Compute {
        /// SM cycles consumed.
        cycles: u64,
    },
    /// One software-pipelined mainloop step: `bytes` of global-memory
    /// traffic overlap `cycles` of math (double buffering), so the step
    /// costs `max(memory time, compute time)`. The engine computes the
    /// memory time from the GPU-wide population of active blocks: DRAM is
    /// a shared resource that a fraction of the SMs can saturate, so a
    /// sparse grid's blocks see more bandwidth each, but the aggregate
    /// never exceeds the DRAM peak.
    MainStep {
        /// Bytes transferred during the step.
        bytes: u64,
        /// SM cycles of overlapped computation.
        cycles: u64,
    },
    /// Read `bytes` from global memory (charged latency + bandwidth share).
    GlobalRead {
        /// Bytes transferred.
        bytes: u64,
    },
    /// Write `bytes` to global memory (charged latency + bandwidth share).
    GlobalWrite {
        /// Bytes transferred.
        bytes: u64,
    },
    /// Busy-wait until semaphore `index` of `table` is at least `value`
    /// (Fig. 4b `wait`). The block keeps occupying its SM slot while
    /// waiting — this is what makes consumer-before-producer scheduling
    /// hazardous (Section III-B) and the simulator reproduces the deadlock.
    SemWait {
        /// Semaphore array.
        table: SemArrayId,
        /// Index within the array.
        index: u32,
        /// Minimum value to proceed.
        value: u32,
    },
    /// Atomically add `inc` to semaphore `index` of `table` (Fig. 4b
    /// `post`). The increment becomes visible to waiters when the atomic
    /// completes.
    SemPost {
        /// Semaphore array.
        table: SemArrayId,
        /// Index within the array.
        index: u32,
        /// Amount added.
        inc: u32,
    },
    /// Atomic fetch-add whose *previous* value is delivered to the block via
    /// [`BlockCtx::atomic_result`](crate::BlockCtx::atomic_result); used for
    /// the tile-order counters of Section III-C.
    AtomicAdd {
        /// Counter array.
        table: SemArrayId,
        /// Index within the array.
        index: u32,
        /// Amount added.
        inc: u32,
    },
    /// Block-wide barrier (`__syncthreads`).
    Syncthreads,
    /// System-wide memory fence (`__threadfence_system`).
    Fence,
    /// Push `bytes` over this device's inter-device (NVLink-class) link:
    /// the per-hop send of a simulated collective. Charged pure wire time
    /// at [`ClusterConfig::link_bytes_per_sec`](crate::ClusterConfig) —
    /// unscaled by SM residency or block jitter, since link bandwidth is
    /// not an SM resource. Propagation latency is *not* charged here; it
    /// is paid by the cross-device semaphore post that signals delivery,
    /// so a send + remote post models one hop without double counting.
    LinkSend {
        /// Bytes pushed over the link.
        bytes: u64,
    },
}

impl Op {
    /// Convenience constructor for [`Op::Compute`].
    pub const fn compute(cycles: u64) -> Op {
        Op::Compute { cycles }
    }

    /// Convenience constructor for [`Op::MainStep`].
    pub const fn main_step(bytes: u64, cycles: u64) -> Op {
        Op::MainStep { bytes, cycles }
    }

    /// Convenience constructor for [`Op::GlobalRead`].
    pub const fn read(bytes: u64) -> Op {
        Op::GlobalRead { bytes }
    }

    /// Convenience constructor for [`Op::GlobalWrite`].
    pub const fn write(bytes: u64) -> Op {
        Op::GlobalWrite { bytes }
    }

    /// Convenience constructor for [`Op::SemWait`].
    pub const fn wait(table: SemArrayId, index: u32, value: u32) -> Op {
        Op::SemWait {
            table,
            index,
            value,
        }
    }

    /// Convenience constructor for [`Op::SemPost`] with increment 1.
    pub const fn post(table: SemArrayId, index: u32) -> Op {
        Op::SemPost {
            table,
            index,
            inc: 1,
        }
    }

    /// Convenience constructor for [`Op::LinkSend`].
    pub const fn link_send(bytes: u64) -> Op {
        Op::LinkSend { bytes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_expected_variants() {
        assert_eq!(Op::compute(10), Op::Compute { cycles: 10 });
        assert_eq!(Op::read(64), Op::GlobalRead { bytes: 64 });
        assert_eq!(Op::write(64), Op::GlobalWrite { bytes: 64 });
        let t = SemArrayId(0);
        assert_eq!(
            Op::wait(t, 3, 2),
            Op::SemWait {
                table: t,
                index: 3,
                value: 2
            }
        );
        assert_eq!(
            Op::post(t, 3),
            Op::SemPost {
                table: t,
                index: 3,
                inc: 1
            }
        );
    }
}
