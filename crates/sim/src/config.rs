//! GPU hardware model configuration.

use crate::time::SimTime;

/// Normalized per-SM capacity units.
///
/// An SM has `SM_CAPACITY_UNITS` units; a thread block of a kernel with
/// occupancy `o` consumes `SM_CAPACITY_UNITS / o` units. 720720 is divisible
/// by every integer in `1..=16`, so any documented occupancy divides exactly
/// and co-residency of blocks from different kernels is modeled without
/// rounding.
pub const SM_CAPACITY_UNITS: u32 = 720_720;

/// Maximum thread blocks resident per SM on the architectures we model.
pub const MAX_OCCUPANCY: u32 = 16;

/// Parameters of the simulated GPU.
///
/// All latency constants are in cycles of the SM clock unless stated
/// otherwise; see the field docs for the provenance of each default. Presets
/// for the GPUs used in the paper are provided by [`GpuConfig::tesla_v100`]
/// (the evaluation machine) and [`GpuConfig::ampere_a100`].
///
/// # Examples
///
/// ```
/// use cusync_sim::GpuConfig;
///
/// let gpu = GpuConfig::tesla_v100();
/// assert_eq!(gpu.num_sms, 80);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Human-readable name of the modeled GPU.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// SM clock frequency in Hz.
    pub clock_hz: f64,
    /// Peak f16 tensor-core throughput per SM, in FLOP per cycle.
    /// V100: 8 tensor cores x 64 FMA x 2 = 1024 FLOP/cycle/SM.
    pub tensor_flop_per_cycle_sm: f64,
    /// Peak f32 FMA throughput per SM, in FLOP per cycle (64 cores x 2).
    pub fma_flop_per_cycle_sm: f64,
    /// Aggregate DRAM bandwidth in bytes per second.
    pub dram_bytes_per_sec: f64,
    /// Fraction of peak compute throughput a well-tuned tiled kernel
    /// sustains. CUTLASS GeMMs reach 70-90% of peak on V100.
    pub compute_efficiency: f64,
    /// Global memory access latency in cycles (uncontended).
    pub global_latency_cycles: u64,
    /// Latency of a global-memory atomic add in cycles.
    pub atomic_latency_cycles: u64,
    /// Latency of one semaphore poll (volatile global read) in cycles.
    pub poll_latency_cycles: u64,
    /// Cost of `__threadfence_system` in cycles.
    pub fence_cycles: u64,
    /// Cost of `__syncthreads` in cycles.
    pub syncthreads_cycles: u64,
    /// How strongly a block speeds up when its SM is under-occupied, in
    /// `[0, 1]`. A block owns only its own warps, so a lone block on an SM
    /// tuned for occupancy 2 does not run 2x faster; it gains only reduced
    /// contention for tensor cores, L1 and scheduler slots. 0 = no effect,
    /// 1 = fully proportional speedup. Calibrated so partial-wave kernels
    /// run ~15-25% faster per block when alone, consistent with CUTLASS
    /// occupancy sweeps on V100.
    pub residency_boost: f64,
    /// Deterministic per-block duration variance, as a fraction. Real
    /// thread blocks of one kernel differ by several percent (DRAM bank
    /// conflicts, L2 hit rates, scheduler interleaving); each block's
    /// timed operations are scaled by a hash-derived factor in
    /// `[1-jitter, 1+jitter]`. This staggers a wave's completions — the
    /// stream of early-finished tiles that fine-grained synchronization
    /// consumes. 0 disables (lockstep waves).
    pub block_jitter: f64,
    /// Fraction of the GPU's SM capacity whose memory requests suffice to
    /// saturate DRAM. On V100 roughly half the SMs streaming already reach
    /// the 900 GB/s peak, so sparse grids get proportionally more
    /// bandwidth per block down to this floor.
    pub dram_saturation_fraction: f64,
    /// CPU-side cost of enqueueing one kernel launch; consecutive launches
    /// from the host are separated by at least this much.
    pub host_launch_gap: SimTime,
    /// GPU-side latency from a kernel becoming ready (its stream
    /// predecessors finished and the host has issued it) to its first thread
    /// block starting. Together with `host_launch_gap` this reproduces the
    /// ~6us kernel invocation time the paper measures (Section V-E1).
    pub kernel_dispatch_latency: SimTime,
}

impl GpuConfig {
    /// The NVIDIA Tesla V100 (SXM2 32GB) used throughout the paper's
    /// evaluation: 80 SMs at 1.38 GHz boost, 125 TFLOP/s f16 tensor peak,
    /// 900 GB/s HBM2.
    pub fn tesla_v100() -> Self {
        GpuConfig {
            name: "Tesla V100",
            num_sms: 80,
            clock_hz: 1.38e9,
            tensor_flop_per_cycle_sm: 1024.0,
            fma_flop_per_cycle_sm: 128.0,
            dram_bytes_per_sec: 900e9,
            compute_efficiency: 0.72,
            global_latency_cycles: 450,
            atomic_latency_cycles: 350,
            poll_latency_cycles: 250,
            fence_cycles: 400,
            syncthreads_cycles: 40,
            residency_boost: 0.35,
            block_jitter: 0.10,
            dram_saturation_fraction: 0.5,
            host_launch_gap: SimTime::from_micros(1.2),
            kernel_dispatch_latency: SimTime::from_micros(4.8),
        }
    }

    /// An NVIDIA A100 (SXM4 80GB): 108 SMs at 1.41 GHz, 312 TFLOP/s f16
    /// tensor peak, ~2 TB/s HBM2e. Used to check that policy rankings carry
    /// across architectures (the paper notes the best policy is
    /// architecture-dependent).
    pub fn ampere_a100() -> Self {
        GpuConfig {
            name: "A100",
            num_sms: 108,
            clock_hz: 1.41e9,
            tensor_flop_per_cycle_sm: 2048.0,
            fma_flop_per_cycle_sm: 128.0,
            dram_bytes_per_sec: 2.0e12,
            compute_efficiency: 0.70,
            global_latency_cycles: 500,
            atomic_latency_cycles: 350,
            poll_latency_cycles: 250,
            fence_cycles: 400,
            syncthreads_cycles: 40,
            residency_boost: 0.35,
            block_jitter: 0.10,
            dram_saturation_fraction: 0.5,
            host_launch_gap: SimTime::from_micros(1.2),
            kernel_dispatch_latency: SimTime::from_micros(4.0),
        }
    }

    /// A small 4-SM GPU matching the worked example of Fig. 1, handy for
    /// unit tests and for reproducing the paper's introduction figure.
    pub fn toy(num_sms: u32) -> Self {
        GpuConfig {
            name: "Toy",
            num_sms,
            ..GpuConfig::tesla_v100()
        }
    }

    /// Converts a cycle count into simulated time at this GPU's clock.
    pub fn cycles(&self, cycles: u64) -> SimTime {
        SimTime::from_cycles(cycles, self.clock_hz)
    }

    /// Inverse of [`GpuConfig::cycles`]: the cycle count closest to `time`
    /// at this GPU's clock. Used by kernels that model software pipelining
    /// by charging `max(memory time, compute time)` as one operation.
    pub fn cycles_for(&self, time: SimTime) -> u64 {
        ((time.as_picos() as f64) * self.clock_hz / 1e12).round() as u64
    }

    /// Time to move `bytes` through this GPU's DRAM, assuming each SM gets a
    /// uniform `1/num_sms` share of the aggregate bandwidth. A deliberate
    /// simplification: tiled ML kernels keep all SMs loaded, so the uniform
    /// share is the steady-state rate; modeling transient bandwidth
    /// redistribution would add noise without changing any ranking.
    pub fn mem_time_per_block(&self, bytes: u64) -> SimTime {
        self.mem_time(bytes, 1)
    }

    /// Per-block memory time at the given occupancy: the `occupancy`
    /// blocks resident on an SM contend for that SM's bandwidth share, so
    /// each sees `dram_bw / (num_sms * occupancy)`.
    pub fn mem_time(&self, bytes: u64, occupancy: u32) -> SimTime {
        let share = self.dram_bytes_per_sec / (self.num_sms as f64 * occupancy.max(1) as f64);
        SimTime::from_picos(((bytes as f64) / share * 1e12).round() as u64)
    }

    /// Capacity units consumed per block of a kernel with `occupancy` blocks
    /// per SM.
    ///
    /// # Panics
    ///
    /// Panics if `occupancy` is zero or exceeds [`MAX_OCCUPANCY`].
    pub fn units_per_block(&self, occupancy: u32) -> u32 {
        assert!(
            (1..=MAX_OCCUPANCY).contains(&occupancy),
            "occupancy {occupancy} outside 1..={MAX_OCCUPANCY}"
        );
        SM_CAPACITY_UNITS / occupancy
    }

    /// Thread blocks that fit in one full wave for a kernel with the given
    /// occupancy: `occupancy x num_sms` (Section II-A).
    pub fn blocks_per_wave(&self, occupancy: u32) -> u64 {
        occupancy as u64 * self.num_sms as u64
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::tesla_v100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_units_divide_exactly_for_all_occupancies() {
        for occ in 1..=MAX_OCCUPANCY {
            assert_eq!(SM_CAPACITY_UNITS % occ, 0, "occupancy {occ}");
        }
    }

    #[test]
    fn v100_preset_matches_paper_constants() {
        let gpu = GpuConfig::tesla_v100();
        assert_eq!(gpu.num_sms, 80);
        // 80 SMs x 16 blocks = 1280 blocks per wave at max occupancy,
        // the figure used in the Section V-D overhead experiment.
        assert_eq!(gpu.blocks_per_wave(MAX_OCCUPANCY), 1280);
    }

    #[test]
    fn units_per_block_scales_with_occupancy() {
        let gpu = GpuConfig::tesla_v100();
        assert_eq!(gpu.units_per_block(1), SM_CAPACITY_UNITS);
        assert_eq!(gpu.units_per_block(2) * 2, SM_CAPACITY_UNITS);
        assert_eq!(gpu.units_per_block(16) * 16, SM_CAPACITY_UNITS);
    }

    #[test]
    #[should_panic(expected = "occupancy")]
    fn zero_occupancy_rejected() {
        GpuConfig::tesla_v100().units_per_block(0);
    }

    #[test]
    fn mem_time_uses_per_sm_share() {
        let gpu = GpuConfig::tesla_v100();
        // 900 GB/s over 80 SMs = 11.25 GB/s per block-share;
        // 11250 bytes should take exactly 1 us.
        let t = gpu.mem_time_per_block(11_250);
        assert!((t.as_micros() - 1.0).abs() < 1e-6, "{t}");
    }

    #[test]
    fn toy_gpu_has_requested_sms() {
        assert_eq!(GpuConfig::toy(4).num_sms, 4);
    }
}
