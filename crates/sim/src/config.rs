//! GPU hardware model configuration.

use crate::engine::ExecMode;
use crate::sched::SchedPolicyKind;
use crate::time::SimTime;

/// Normalized per-SM capacity units.
///
/// An SM has `SM_CAPACITY_UNITS` units; a thread block of a kernel with
/// occupancy `o` consumes `SM_CAPACITY_UNITS / o` units. 720720 is divisible
/// by every integer in `1..=16`, so any documented occupancy divides exactly
/// and co-residency of blocks from different kernels is modeled without
/// rounding.
pub const SM_CAPACITY_UNITS: u32 = 720_720;

/// Maximum thread blocks resident per SM on the architectures we model.
pub const MAX_OCCUPANCY: u32 = 16;

/// Parameters of the simulated GPU.
///
/// All latency constants are in cycles of the SM clock unless stated
/// otherwise; see the field docs for the provenance of each default. Presets
/// for the GPUs used in the paper are provided by [`GpuConfig::tesla_v100`]
/// (the evaluation machine) and [`GpuConfig::ampere_a100`].
///
/// # Examples
///
/// ```
/// use cusync_sim::GpuConfig;
///
/// let gpu = GpuConfig::tesla_v100();
/// assert_eq!(gpu.num_sms, 80);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Human-readable name of the modeled GPU.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// SM clock frequency in Hz.
    pub clock_hz: f64,
    /// Peak f16 tensor-core throughput per SM, in FLOP per cycle.
    /// V100: 8 tensor cores x 64 FMA x 2 = 1024 FLOP/cycle/SM.
    pub tensor_flop_per_cycle_sm: f64,
    /// Peak f32 FMA throughput per SM, in FLOP per cycle (64 cores x 2).
    pub fma_flop_per_cycle_sm: f64,
    /// Aggregate DRAM bandwidth in bytes per second.
    pub dram_bytes_per_sec: f64,
    /// Total DRAM (HBM) capacity in bytes. Capacity, unlike bandwidth, is a
    /// hard resource: the serving layer carves per-device KV-cache block
    /// pools out of a share of it (see [`crate::kv::KvPool`]), and a decode
    /// step that cannot get blocks must evict or preempt.
    pub dram_capacity_bytes: u64,
    /// Fraction of peak compute throughput a well-tuned tiled kernel
    /// sustains. CUTLASS GeMMs reach 70-90% of peak on V100.
    pub compute_efficiency: f64,
    /// Global memory access latency in cycles (uncontended).
    pub global_latency_cycles: u64,
    /// Latency of a global-memory atomic add in cycles.
    pub atomic_latency_cycles: u64,
    /// Latency of one semaphore poll (volatile global read) in cycles.
    pub poll_latency_cycles: u64,
    /// Cost of `__threadfence_system` in cycles.
    pub fence_cycles: u64,
    /// Cost of `__syncthreads` in cycles.
    pub syncthreads_cycles: u64,
    /// How strongly a block speeds up when its SM is under-occupied, in
    /// `[0, 1]`. A block owns only its own warps, so a lone block on an SM
    /// tuned for occupancy 2 does not run 2x faster; it gains only reduced
    /// contention for tensor cores, L1 and scheduler slots. 0 = no effect,
    /// 1 = fully proportional speedup. Calibrated so partial-wave kernels
    /// run ~15-25% faster per block when alone, consistent with CUTLASS
    /// occupancy sweeps on V100.
    pub residency_boost: f64,
    /// Deterministic per-block duration variance, as a fraction. Real
    /// thread blocks of one kernel differ by several percent (DRAM bank
    /// conflicts, L2 hit rates, scheduler interleaving); each block's
    /// timed operations are scaled by a hash-derived factor in
    /// `[1-jitter, 1+jitter]`. This staggers a wave's completions — the
    /// stream of early-finished tiles that fine-grained synchronization
    /// consumes. 0 disables (lockstep waves).
    pub block_jitter: f64,
    /// Fraction of the GPU's SM capacity whose memory requests suffice to
    /// saturate DRAM. On V100 roughly half the SMs streaming already reach
    /// the 900 GB/s peak, so sparse grids get proportionally more
    /// bandwidth per block down to this floor.
    pub dram_saturation_fraction: f64,
    /// CPU-side cost of enqueueing one kernel launch; consecutive launches
    /// from the host are separated by at least this much.
    pub host_launch_gap: SimTime,
    /// GPU-side latency from a kernel becoming ready (its stream
    /// predecessors finished and the host has issued it) to its first thread
    /// block starting. Together with `host_launch_gap` this reproduces the
    /// ~6us kernel invocation time the paper measures (Section V-E1).
    pub kernel_dispatch_latency: SimTime,
    /// Block-issue ordering of this device's work distributor (see
    /// [`crate::sched`]). The default, [`SchedPolicyKind::Fifo`], is the
    /// launch-order behaviour the paper observed on Volta/Ampere and the
    /// only ordering preserving the seed engine's bit-identical
    /// timelines; the others explore the schedule space. Multi-device
    /// nodes follow device 0's setting
    /// ([`ClusterConfig::effective_sched`]).
    pub sched: SchedPolicyKind,
    /// Event-loop execution scheme for runs on this device's node: serial
    /// (the default) or device-sharded parallel where provably safe (see
    /// [`ExecMode`](crate::ExecMode)). Multi-device nodes follow device
    /// 0's setting ([`ClusterConfig::effective_exec`]);
    /// [`ClusterConfig::with_exec`] sets the whole node at once.
    pub exec: ExecMode,
}

impl GpuConfig {
    /// The NVIDIA Tesla V100 (SXM2 32GB) used throughout the paper's
    /// evaluation: 80 SMs at 1.38 GHz boost, 125 TFLOP/s f16 tensor peak,
    /// 900 GB/s HBM2.
    pub fn tesla_v100() -> Self {
        GpuConfig {
            name: "Tesla V100",
            num_sms: 80,
            clock_hz: 1.38e9,
            tensor_flop_per_cycle_sm: 1024.0,
            fma_flop_per_cycle_sm: 128.0,
            dram_bytes_per_sec: 900e9,
            dram_capacity_bytes: 32 << 30,
            compute_efficiency: 0.72,
            global_latency_cycles: 450,
            atomic_latency_cycles: 350,
            poll_latency_cycles: 250,
            fence_cycles: 400,
            syncthreads_cycles: 40,
            residency_boost: 0.35,
            block_jitter: 0.10,
            dram_saturation_fraction: 0.5,
            host_launch_gap: SimTime::from_micros(1.2),
            kernel_dispatch_latency: SimTime::from_micros(4.8),
            sched: SchedPolicyKind::Fifo,
            exec: ExecMode::Serial,
        }
    }

    /// An NVIDIA A100 (SXM4 80GB): 108 SMs at 1.41 GHz, 312 TFLOP/s f16
    /// tensor peak, ~2 TB/s HBM2e. Used to check that policy rankings carry
    /// across architectures (the paper notes the best policy is
    /// architecture-dependent).
    pub fn ampere_a100() -> Self {
        GpuConfig {
            name: "A100",
            num_sms: 108,
            clock_hz: 1.41e9,
            tensor_flop_per_cycle_sm: 2048.0,
            fma_flop_per_cycle_sm: 128.0,
            dram_bytes_per_sec: 2.0e12,
            dram_capacity_bytes: 80 << 30,
            compute_efficiency: 0.70,
            global_latency_cycles: 500,
            atomic_latency_cycles: 350,
            poll_latency_cycles: 250,
            fence_cycles: 400,
            syncthreads_cycles: 40,
            residency_boost: 0.35,
            block_jitter: 0.10,
            dram_saturation_fraction: 0.5,
            host_launch_gap: SimTime::from_micros(1.2),
            kernel_dispatch_latency: SimTime::from_micros(4.0),
            sched: SchedPolicyKind::Fifo,
            exec: ExecMode::Serial,
        }
    }

    /// A small 4-SM GPU matching the worked example of Fig. 1, handy for
    /// unit tests and for reproducing the paper's introduction figure.
    pub fn toy(num_sms: u32) -> Self {
        GpuConfig {
            name: "Toy",
            num_sms,
            ..GpuConfig::tesla_v100()
        }
    }

    /// Converts a cycle count into simulated time at this GPU's clock.
    pub fn cycles(&self, cycles: u64) -> SimTime {
        SimTime::from_cycles(cycles, self.clock_hz)
    }

    /// Inverse of [`GpuConfig::cycles`]: the cycle count closest to `time`
    /// at this GPU's clock. Used by kernels that model software pipelining
    /// by charging `max(memory time, compute time)` as one operation.
    pub fn cycles_for(&self, time: SimTime) -> u64 {
        ((time.as_picos() as f64) * self.clock_hz / 1e12).round() as u64
    }

    /// Time to move `bytes` through this GPU's DRAM, assuming each SM gets a
    /// uniform `1/num_sms` share of the aggregate bandwidth. A deliberate
    /// simplification: tiled ML kernels keep all SMs loaded, so the uniform
    /// share is the steady-state rate; modeling transient bandwidth
    /// redistribution would add noise without changing any ranking.
    pub fn mem_time_per_block(&self, bytes: u64) -> SimTime {
        self.mem_time(bytes, 1)
    }

    /// Per-block memory time at the given occupancy: the `occupancy`
    /// blocks resident on an SM contend for that SM's bandwidth share, so
    /// each sees `dram_bw / (num_sms * occupancy)`.
    pub fn mem_time(&self, bytes: u64, occupancy: u32) -> SimTime {
        let share = self.dram_bytes_per_sec / (self.num_sms as f64 * occupancy.max(1) as f64);
        SimTime::from_picos(((bytes as f64) / share * 1e12).round() as u64)
    }

    /// Capacity units consumed per block of a kernel with `occupancy` blocks
    /// per SM.
    ///
    /// # Panics
    ///
    /// Panics if `occupancy` is zero or exceeds [`MAX_OCCUPANCY`].
    pub fn units_per_block(&self, occupancy: u32) -> u32 {
        assert!(
            (1..=MAX_OCCUPANCY).contains(&occupancy),
            "occupancy {occupancy} outside 1..={MAX_OCCUPANCY}"
        );
        SM_CAPACITY_UNITS / occupancy
    }

    /// Thread blocks that fit in one full wave for a kernel with the given
    /// occupancy: `occupancy x num_sms` (Section II-A).
    pub fn blocks_per_wave(&self, occupancy: u32) -> u64 {
        occupancy as u64 * self.num_sms as u64
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::tesla_v100()
    }
}

/// Hardware model of a multi-GPU node: per-device [`GpuConfig`]s plus the
/// point-to-point interconnect (NVLink-class) linking them in a ring.
///
/// Every single-GPU workload is the 1-device special case
/// ([`ClusterConfig::single`]); the link parameters are then unused. The
/// interconnect model is deliberately simple and deterministic:
///
/// - [`Op::LinkSend`](crate::Op::LinkSend) charges pure **wire time**
///   (`bytes / link_bytes_per_sec`) on the sending block, unscaled by
///   SM residency or jitter — link bandwidth is not an SM resource.
/// - The **post → observe** edge of a cross-device semaphore pays
///   [`ClusterConfig::link_latency`] once: a post to an array homed on a
///   remote device becomes visible `link_latency` later than a local
///   post, and a wait polling a remote array pays `link_latency` on top
///   of the local poll cost. This is the qualitative asymmetry between
///   intra- and inter-device synchronization reported by Zhang et al.
///   ("A Study of Single and Multi-device Synchronization Methods in
///   Nvidia GPUs").
///
/// # Examples
///
/// ```
/// use cusync_sim::ClusterConfig;
///
/// let node = ClusterConfig::dgx_v100(4);
/// assert_eq!(node.num_devices(), 4);
/// assert_eq!(node.total_sms(), 4 * 80);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Hardware model of each device. Device ids are indexes into this
    /// vector; device 0 is the default target of the single-GPU API.
    pub devices: Vec<GpuConfig>,
    /// One-way propagation latency of the inter-device link, paid by the
    /// post→observe edge of every cross-device semaphore operation.
    pub link_latency: SimTime,
    /// Per-direction wire bandwidth of one inter-device link, bytes/s.
    pub link_bytes_per_sec: f64,
}

impl ClusterConfig {
    /// Peak NVLink ring bandwidth per GPU on a DGX-2 class machine.
    pub const NVLINK_BYTES_PER_SEC: f64 = 130e9;

    /// End-to-end cost of one cross-device signal hop on a DGX-class
    /// machine, in nanoseconds: what NCCL-style collectives observe per
    /// ring step. [`ClusterConfig::dgx_v100`] calibrates
    /// [`ClusterConfig::link_latency`] so that `fence + post + link +
    /// observe-poll` adds up to this figure.
    pub const DGX_HOP_NANOS: u64 = 4_000;

    /// A single-device cluster (the degenerate case every pre-cluster
    /// workload runs as).
    pub fn single(gpu: GpuConfig) -> Self {
        ClusterConfig {
            devices: vec![gpu],
            link_latency: SimTime::ZERO,
            link_bytes_per_sec: Self::NVLINK_BYTES_PER_SEC,
        }
    }

    /// `n` identical devices on a ring with the given link parameters.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn homogeneous(
        n: u32,
        gpu: GpuConfig,
        link_latency: SimTime,
        link_bytes_per_sec: f64,
    ) -> Self {
        assert!(n > 0, "a cluster needs at least one device");
        ClusterConfig {
            devices: vec![gpu; n as usize],
            link_latency,
            link_bytes_per_sec,
        }
    }

    /// `n` copies of `gpu` on an NVLink ring, with the link latency
    /// calibrated so one signal hop (`fence + post + link + observe-poll`,
    /// at `gpu`'s clock) costs [`ClusterConfig::DGX_HOP_NANOS`] end to end
    /// — the per-hop constant of the analytic allreduce model this
    /// simulator's ring collective is regression-tested against.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn nvlink_ring(n: u32, gpu: GpuConfig) -> Self {
        // The measured hop constant includes the software signaling around
        // the link: the sender's fence + atomic post and the receiver's
        // observing poll. The raw propagation latency is what remains.
        // Each cost is rounded to picoseconds separately, exactly as the
        // engine charges them.
        let signaling = gpu.cycles(gpu.fence_cycles)
            + gpu.cycles(gpu.atomic_latency_cycles)
            + gpu.cycles(gpu.poll_latency_cycles);
        let link_latency = SimTime::from_nanos(Self::DGX_HOP_NANOS).saturating_sub(signaling);
        Self::homogeneous(n, gpu, link_latency, Self::NVLINK_BYTES_PER_SEC)
    }

    /// A DGX-class node of `n` V100s on an NVLink ring (see
    /// [`ClusterConfig::nvlink_ring`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn dgx_v100(n: u32) -> Self {
        Self::nvlink_ring(n, GpuConfig::tesla_v100())
    }

    /// Number of devices in the cluster.
    pub fn num_devices(&self) -> u32 {
        self.devices.len() as u32
    }

    /// Hardware model of device `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn device(&self, d: u32) -> &GpuConfig {
        &self.devices[d as usize]
    }

    /// Total SMs across all devices.
    pub fn total_sms(&self) -> u32 {
        self.devices.iter().map(|g| g.num_sms).sum()
    }

    /// Wire time of `bytes` over one link at
    /// [`ClusterConfig::link_bytes_per_sec`] (propagation latency not
    /// included; that is paid by the cross-device semaphore edge).
    pub fn link_wire_time(&self, bytes: u64) -> SimTime {
        SimTime::from_picos((bytes as f64 / self.link_bytes_per_sec * 1e12).round() as u64)
    }

    /// The node's effective block-issue ordering: device 0's
    /// [`GpuConfig::sched`]. Issue order is a property of the whole
    /// placement round (kernels on different devices never contend for the
    /// same SM, so a per-device split would be indistinguishable), and
    /// every cluster constructor builds homogeneous devices, so device 0
    /// speaks for the node.
    pub fn effective_sched(&self) -> SchedPolicyKind {
        self.devices[0].sched
    }

    /// The node's effective event-loop execution scheme: device 0's
    /// [`GpuConfig::exec`] (the same device-0-speaks-for-the-node
    /// convention as [`ClusterConfig::effective_sched`]). A session-level
    /// override ([`Session::set_exec`](crate::Session::set_exec)) or the
    /// `CUSYNC_EXEC` environment variable takes precedence over this.
    pub fn effective_exec(&self) -> ExecMode {
        self.devices[0].exec
    }

    /// Returns the cluster with every device's [`GpuConfig::exec`] set to
    /// `exec` — the builder-style way to opt a whole node into the
    /// parallel engine.
    ///
    /// ```
    /// use cusync_sim::{ClusterConfig, ExecMode};
    ///
    /// let node = ClusterConfig::dgx_v100(4).with_exec(ExecMode::Parallel);
    /// assert_eq!(node.effective_exec(), ExecMode::Parallel);
    /// ```
    pub fn with_exec(mut self, exec: ExecMode) -> Self {
        for d in &mut self.devices {
            d.exec = exec;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_units_divide_exactly_for_all_occupancies() {
        for occ in 1..=MAX_OCCUPANCY {
            assert_eq!(SM_CAPACITY_UNITS % occ, 0, "occupancy {occ}");
        }
    }

    #[test]
    fn v100_preset_matches_paper_constants() {
        let gpu = GpuConfig::tesla_v100();
        assert_eq!(gpu.num_sms, 80);
        // 80 SMs x 16 blocks = 1280 blocks per wave at max occupancy,
        // the figure used in the Section V-D overhead experiment.
        assert_eq!(gpu.blocks_per_wave(MAX_OCCUPANCY), 1280);
    }

    #[test]
    fn units_per_block_scales_with_occupancy() {
        let gpu = GpuConfig::tesla_v100();
        assert_eq!(gpu.units_per_block(1), SM_CAPACITY_UNITS);
        assert_eq!(gpu.units_per_block(2) * 2, SM_CAPACITY_UNITS);
        assert_eq!(gpu.units_per_block(16) * 16, SM_CAPACITY_UNITS);
    }

    #[test]
    #[should_panic(expected = "occupancy")]
    fn zero_occupancy_rejected() {
        GpuConfig::tesla_v100().units_per_block(0);
    }

    #[test]
    fn mem_time_uses_per_sm_share() {
        let gpu = GpuConfig::tesla_v100();
        // 900 GB/s over 80 SMs = 11.25 GB/s per block-share;
        // 11250 bytes should take exactly 1 us.
        let t = gpu.mem_time_per_block(11_250);
        assert!((t.as_micros() - 1.0).abs() < 1e-6, "{t}");
    }

    #[test]
    fn toy_gpu_has_requested_sms() {
        assert_eq!(GpuConfig::toy(4).num_sms, 4);
    }

    #[test]
    fn single_cluster_wraps_one_device() {
        let c = ClusterConfig::single(GpuConfig::toy(4));
        assert_eq!(c.num_devices(), 1);
        assert_eq!(c.total_sms(), 4);
        assert_eq!(c.link_latency, SimTime::ZERO);
    }

    #[test]
    fn dgx_hop_calibration_sums_to_the_measured_constant() {
        let c = ClusterConfig::dgx_v100(8);
        let gpu = c.device(0);
        let hop = c.link_latency
            + gpu.cycles(gpu.fence_cycles)
            + gpu.cycles(gpu.atomic_latency_cycles)
            + gpu.cycles(gpu.poll_latency_cycles);
        assert_eq!(
            hop,
            SimTime::from_nanos(ClusterConfig::DGX_HOP_NANOS),
            "signal hop must add up to the measured 4us"
        );
    }

    #[test]
    fn link_wire_time_scales_with_bytes() {
        let c = ClusterConfig::dgx_v100(2);
        // 130 GB/s: 130 bytes per nanosecond.
        assert_eq!(c.link_wire_time(130_000), SimTime::from_nanos(1_000));
        assert!(c.link_wire_time(1 << 20) > c.link_wire_time(1 << 10));
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_cluster_rejected() {
        ClusterConfig::homogeneous(0, GpuConfig::tesla_v100(), SimTime::ZERO, 1e9);
    }
}
