//! The discrete-event execution engine.
//!
//! [`Gpu`] owns the hardware model ([`GpuConfig`]), global memory, semaphore
//! storage, CUDA-style streams, and the event loop that issues thread blocks
//! onto SM slots in kernel launch order — the scheduling behaviour the paper
//! observes on Volta/Ampere GPUs (Section III-B). Busy-waiting blocks keep
//! occupying their SM slot, so an under-provisioned schedule can deadlock;
//! the engine detects this and reports which semaphores were being waited
//! on.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;
use std::sync::Arc;

use crate::config::{GpuConfig, SM_CAPACITY_UNITS};
use crate::dim::Dim3;
use crate::kernel::{BlockCtx, KernelSource, Step};
use crate::mem::{BufferId, DType, GlobalMemory};
use crate::ops::Op;
use crate::sem::{SemArrayId, SemTable};
use crate::stats::{waves, KernelReport, RunReport};
use crate::time::SimTime;
use crate::trace::{KernelId, TraceEvent};

/// Identifier of a CUDA stream created on a [`Gpu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(usize);

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream{}", self.0)
    }
}

/// Error raised by [`Gpu::run`].
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// No event can make progress but kernels remain incomplete: every
    /// resident block is busy-waiting on a semaphore and no SM slot is free
    /// for the blocks that would post — the hazard of omitting the
    /// wait-kernel (Section III-B).
    Deadlock {
        /// Time at which progress stopped.
        time: SimTime,
        /// Human-readable description of each blocked thread block.
        blocked: Vec<String>,
        /// Kernels that had not finished.
        pending: Vec<String>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { time, blocked, pending } => {
                write!(
                    f,
                    "deadlock at {time}: {} blocked thread block(s), pending kernels [{}]",
                    blocked.len(),
                    pending.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum EventKind {
    KernelReady(usize),
    BlockResume(usize),
    PostApply { block: usize, table: SemArrayId, index: u32, inc: u32 },
    AtomicApply { block: usize, table: SemArrayId, index: u32, inc: u32 },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct StreamState {
    priority: i32,
    queue: Vec<usize>,
    next: usize,
}

struct KernelState {
    source: Arc<dyn KernelSource>,
    name: String,
    stream: usize,
    priority: i32,
    host_ready: SimTime,
    grid: Dim3,
    total: u64,
    occupancy: u32,
    units: u32,
    issued: u64,
    completed: u64,
    ready: bool,
    ready_at: SimTime,
    start: Option<SimTime>,
    end: Option<SimTime>,
    concurrent: u64,
    max_concurrent: u64,
}

struct BlockSlot {
    kernel: usize,
    idx: Dim3,
    sm: u32,
    units: u32,
    body: Option<Box<dyn crate::kernel::BlockBody>>,
    atomic_result: Option<u32>,
    waiting: Option<(SemArrayId, u32, u32)>,
}

/// The simulated GPU: hardware model, memory, streams, and event loop.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use cusync_sim::{Dim3, FixedKernel, Gpu, GpuConfig, Op};
///
/// let mut gpu = Gpu::new(GpuConfig::toy(4));
/// let stream = gpu.create_stream(0);
/// gpu.launch(stream, Arc::new(FixedKernel::new(
///     "copy", Dim3::linear(6), 1, vec![Op::read(4096), Op::write(4096)],
/// )));
/// let report = gpu.run()?;
/// assert_eq!(report.kernels[0].blocks, 6);
/// // 6 blocks on 4 SMs at occupancy 1 is 1.5 waves.
/// assert!((report.kernels[0].static_waves - 1.5).abs() < 1e-9);
/// # Ok::<(), cusync_sim::SimError>(())
/// ```
pub struct Gpu {
    config: GpuConfig,
    mem: GlobalMemory,
    sems: SemTable,
    streams: Vec<StreamState>,
    kernels: Vec<KernelState>,
    host_time: SimTime,
    now: SimTime,
    events: BinaryHeap<Reverse<Event>>,
    event_seq: u64,
    sm_free: Vec<u32>,
    /// Units of *actively executing* (not semaphore-waiting) blocks per
    /// SM; busy-wait spinners occupy their slot but consume negligible
    /// execution throughput.
    sm_active: Vec<u32>,
    /// GPU-wide sum of `sm_active`, for the dynamic DRAM-share model.
    active_units: u64,
    blocks: Vec<BlockSlot>,
    waiters: BTreeMap<(usize, u32), Vec<usize>>,
    trace: Vec<TraceEvent>,
    trace_enabled: bool,
    busy_units: u64,
    util_integral: u128,
    last_util_update: SimTime,
    first_issue: Option<SimTime>,
    last_finish: SimTime,
    ran: bool,
}

impl fmt::Debug for Gpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gpu")
            .field("config", &self.config.name)
            .field("kernels", &self.kernels.len())
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

impl Gpu {
    /// Creates a GPU with the given hardware model.
    pub fn new(config: GpuConfig) -> Self {
        let sms = config.num_sms as usize;
        Gpu {
            config,
            mem: GlobalMemory::new(),
            sems: SemTable::new(),
            streams: Vec::new(),
            kernels: Vec::new(),
            host_time: SimTime::ZERO,
            now: SimTime::ZERO,
            events: BinaryHeap::new(),
            event_seq: 0,
            sm_free: vec![SM_CAPACITY_UNITS; sms],
            sm_active: vec![0; sms],
            active_units: 0,
            blocks: Vec::new(),
            waiters: BTreeMap::new(),
            trace: Vec::new(),
            trace_enabled: false,
            busy_units: 0,
            util_integral: 0,
            last_util_update: SimTime::ZERO,
            first_issue: None,
            last_finish: SimTime::ZERO,
            ran: false,
        }
    }

    /// The hardware model in use.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Read access to global memory.
    pub fn mem(&self) -> &GlobalMemory {
        &self.mem
    }

    /// Mutable access to global memory (allocation, verification).
    pub fn mem_mut(&mut self) -> &mut GlobalMemory {
        &mut self.mem
    }

    /// Read access to the semaphore table.
    pub fn sems(&self) -> &SemTable {
        &self.sems
    }

    /// Mutable access to the semaphore table (allocation, re-init).
    pub fn sems_mut(&mut self) -> &mut SemTable {
        &mut self.sems
    }

    /// Allocates a timing-only buffer (convenience for [`GlobalMemory::alloc`]).
    pub fn alloc(&mut self, name: &str, len: usize, dtype: DType) -> BufferId {
        self.mem.alloc(name, len, dtype)
    }

    /// Allocates a semaphore array (convenience for [`SemTable::alloc`]).
    pub fn alloc_sems(&mut self, name: &str, len: usize, init: u32) -> SemArrayId {
        self.sems.alloc(name, len, init)
    }

    /// Creates a stream. Streams with numerically higher `priority` issue
    /// their thread blocks first when competing for SM slots.
    pub fn create_stream(&mut self, priority: i32) -> StreamId {
        let id = StreamId(self.streams.len());
        self.streams.push(StreamState {
            priority,
            queue: Vec::new(),
            next: 0,
        });
        id
    }

    /// Enqueues `kernel` on `stream`. Kernels on one stream execute in
    /// order; kernels on different streams may overlap. Each host launch is
    /// separated by [`GpuConfig::host_launch_gap`].
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty or the stream id is foreign.
    pub fn launch(&mut self, stream: StreamId, kernel: Arc<dyn KernelSource>) -> KernelId {
        let grid = kernel.grid();
        assert!(grid.count() > 0, "kernel {} has an empty grid", kernel.name());
        assert!(stream.0 < self.streams.len(), "unknown {stream}");
        let occupancy = kernel.occupancy();
        let units = self.config.units_per_block(occupancy);
        let id = self.kernels.len();
        self.kernels.push(KernelState {
            name: kernel.name().to_owned(),
            source: kernel,
            stream: stream.0,
            priority: self.streams[stream.0].priority,
            host_ready: self.host_time,
            grid,
            total: grid.count(),
            occupancy,
            units,
            issued: 0,
            completed: 0,
            ready: false,
            ready_at: SimTime::ZERO,
            start: None,
            end: None,
            concurrent: 0,
            max_concurrent: 0,
        });
        self.host_time += self.config.host_launch_gap;
        self.streams[stream.0].queue.push(id);
        KernelId(id)
    }

    /// Records scheduling events for inspection by [`Gpu::trace`].
    pub fn enable_trace(&mut self) {
        self.trace_enabled = true;
    }

    /// The recorded trace (empty unless [`Gpu::enable_trace`] was called).
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.event_seq;
        self.event_seq += 1;
        self.events.push(Reverse(Event { time, seq, kind }));
    }

    fn record(&mut self, event: TraceEvent) {
        if self.trace_enabled {
            self.trace.push(event);
        }
    }

    /// Runs all launched kernels to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if execution stalls with incomplete
    /// kernels — every resident block waiting on a semaphore that nothing
    /// can post.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        assert!(!self.ran, "Gpu::run may only be called once per Gpu");
        self.ran = true;
        for s in 0..self.streams.len() {
            self.schedule_stream_head(s);
        }
        while let Some(Reverse(event)) = self.events.pop() {
            debug_assert!(event.time >= self.now, "time went backwards");
            self.now = event.time;
            self.handle(event.kind);
            // Drain every event at this timestamp before issuing blocks, so
            // that kernels becoming ready at the same instant compete for SM
            // slots by priority rather than by event arrival order.
            while let Some(Reverse(next)) = self.events.peek() {
                if next.time != self.now {
                    break;
                }
                let Reverse(event) = self.events.pop().expect("peeked event");
                self.handle(event.kind);
            }
            self.try_issue();
        }
        let incomplete: Vec<usize> = (0..self.kernels.len())
            .filter(|&k| self.kernels[k].completed < self.kernels[k].total)
            .collect();
        if !incomplete.is_empty() {
            return Err(self.deadlock_error(&incomplete));
        }
        Ok(self.report())
    }

    fn handle(&mut self, kind: EventKind) {
        match kind {
            EventKind::KernelReady(k) => {
                self.kernels[k].ready = true;
                self.kernels[k].ready_at = self.now;
                self.record(TraceEvent::KernelReady {
                    kernel: KernelId(k),
                    time: self.now,
                });
            }
            EventKind::BlockResume(b) => self.step_block(b),
            EventKind::PostApply { block, table, index, inc } => {
                self.apply_post(block, table, index, inc);
            }
            EventKind::AtomicApply { block, table, index, inc } => {
                let prev = self.sems.add(table, index, inc);
                self.blocks[block].atomic_result = Some(prev);
                self.push_event(self.now, EventKind::BlockResume(block));
            }
        }
    }

    fn deadlock_error(&self, incomplete: &[usize]) -> SimError {
        let blocked = self
            .blocks
            .iter()
            .filter_map(|slot| {
                let (table, index, value) = slot.waiting?;
                Some(format!(
                    "{} block {} waits {}[{}] >= {} (currently {})",
                    self.kernels[slot.kernel].name,
                    slot.idx,
                    self.sems.name(table),
                    index,
                    value,
                    self.sems.value(table, index),
                ))
            })
            .collect();
        let pending = incomplete
            .iter()
            .map(|&k| self.kernels[k].name.clone())
            .collect();
        SimError::Deadlock {
            time: self.now,
            blocked,
            pending,
        }
    }

    fn schedule_stream_head(&mut self, stream: usize) {
        let s = &self.streams[stream];
        if let Some(&k) = s.queue.get(s.next) {
            let ready = self.now.max(self.kernels[k].host_ready) + self.config.kernel_dispatch_latency;
            self.push_event(ready, EventKind::KernelReady(k));
        }
    }

    fn try_issue(&mut self) {
        let mut order: Vec<usize> = (0..self.kernels.len())
            .filter(|&k| self.kernels[k].ready && self.kernels[k].issued < self.kernels[k].total)
            .collect();
        if order.is_empty() {
            return;
        }
        order.sort_by_key(|&k| (Reverse(self.kernels[k].priority), k));
        for k in order {
            loop {
                if self.kernels[k].issued >= self.kernels[k].total {
                    break;
                }
                let units = self.kernels[k].units;
                // Least-loaded SM first: the hardware work distributor
                // spreads blocks across SMs, so sparse grids get whole SMs
                // to themselves (and run faster; see `residency_scale`).
                let Some((sm, &free)) = self
                    .sm_free
                    .iter()
                    .enumerate()
                    .filter(|&(_, &f)| f >= units)
                    .max_by_key(|&(i, &f)| (f, std::cmp::Reverse(i)))
                else {
                    break;
                };
                let _ = free;
                self.issue_block(k, sm as u32);
            }
        }
    }

    fn update_util(&mut self) {
        let dt = (self.now - self.last_util_update).as_picos() as u128;
        self.util_integral += dt * self.busy_units as u128;
        self.last_util_update = self.now;
    }

    fn issue_block(&mut self, k: usize, sm: u32) {
        self.update_util();
        let kernel = &mut self.kernels[k];
        let idx = kernel.grid.delinear(kernel.issued);
        kernel.issued += 1;
        kernel.concurrent += 1;
        kernel.max_concurrent = kernel.max_concurrent.max(kernel.concurrent);
        if kernel.start.is_none() {
            kernel.start = Some(self.now);
        }
        let units = kernel.units;
        let body = kernel.source.block(idx);
        self.sm_free[sm as usize] -= units;
        self.sm_active[sm as usize] += units;
        self.active_units += units as u64;
        self.busy_units += units as u64;
        if self.first_issue.is_none() {
            self.first_issue = Some(self.now);
        }
        let bid = self.blocks.len();
        self.blocks.push(BlockSlot {
            kernel: k,
            idx,
            sm,
            units,
            body: Some(body),
            atomic_result: None,
            waiting: None,
        });
        self.record(TraceEvent::BlockIssued {
            kernel: KernelId(k),
            block: idx,
            sm,
            time: self.now,
        });
        self.push_event(self.now, EventKind::BlockResume(bid));
    }

    fn step_block(&mut self, bid: usize) {
        let mut body = self.blocks[bid].body.take().expect("block body missing");
        let block_idx = self.blocks[bid].idx;
        let atomic_result = self.blocks[bid].atomic_result;
        let step = {
            let mut ctx = BlockCtx {
                block: block_idx,
                now: self.now,
                mem: &mut self.mem,
                sems: &self.sems,
                atomic_result,
            };
            body.resume(&mut ctx)
        };
        match step {
            Step::Done => {
                drop(body);
                self.finish_block(bid);
            }
            Step::Op(op) => {
                self.blocks[bid].body = Some(body);
                self.apply_op(bid, op);
            }
        }
    }

    /// How much faster this block runs than its cost model assumes.
    ///
    /// Kernel cost models charge each block `1/occupancy` of an SM's
    /// throughput — the fully-packed steady state. When the block's SM is
    /// only partially occupied (sparse grids, draining waves), the block's
    /// fair share grows proportionally, so durations shrink by
    /// `used_units / SM_CAPACITY_UNITS`. This is also what staggers the
    /// completion times of a partial wave: doubled-up blocks finish later
    /// than blocks holding an SM alone.
    fn residency_scale(&self, bid: usize) -> f64 {
        let sm = self.blocks[bid].sm as usize;
        let active = self.sm_active[sm].max(self.blocks[bid].units) as f64;
        let fraction = (active / SM_CAPACITY_UNITS as f64).clamp(0.0, 1.0);
        1.0 - self.config.residency_boost * (1.0 - fraction)
    }

    /// Deterministic per-block duration factor in
    /// `[1 - jitter, 1 + jitter]`, derived from a SplitMix64 hash of the
    /// block's kernel and grid index (identical inputs always produce the
    /// identical timeline).
    fn jitter_factor(&self, bid: usize) -> f64 {
        let j = self.config.block_jitter;
        if j == 0.0 {
            return 1.0;
        }
        let slot = &self.blocks[bid];
        let key = (slot.kernel as u64) << 48
            ^ self.kernels[slot.kernel].grid.linear_of(slot.idx);
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        1.0 + j * (2.0 * unit - 1.0)
    }

    fn scaled(&self, bid: usize, t: SimTime) -> SimTime {
        let factor = self.residency_scale(bid) * self.jitter_factor(bid);
        SimTime::from_picos((t.as_picos() as f64 * factor).round() as u64)
    }

    /// Time for this block to move `bytes` through DRAM under the dynamic
    /// share model: bandwidth divides over all currently active blocks,
    /// but a `dram_saturation_fraction` of the GPU already saturates the
    /// bus, so sparse populations gain bandwidth per block only down to
    /// that floor (and the aggregate never exceeds the DRAM peak).
    fn dyn_mem_time(&self, bid: usize, bytes: u64) -> SimTime {
        let cfg = &self.config;
        let capacity = cfg.num_sms as f64 * SM_CAPACITY_UNITS as f64;
        let saturation = cfg.dram_saturation_fraction * capacity;
        let competing = (self.active_units as f64).max(saturation).max(1.0);
        let units = self.blocks[bid].units as f64;
        let share = cfg.dram_bytes_per_sec * units / competing;
        SimTime::from_picos((bytes as f64 / share * 1e12).round() as u64)
    }

    fn apply_op(&mut self, bid: usize, op: Op) {
        let cfg = &self.config;
        match op {
            Op::Compute { cycles } => {
                let d = self.scaled(bid, cfg.cycles(cycles));
                let t = self.now + d;
                self.push_event(t, EventKind::BlockResume(bid));
            }
            Op::GlobalRead { bytes } | Op::GlobalWrite { bytes } => {
                let mem = self.dyn_mem_time(bid, bytes);
                let jitter = self.jitter_factor(bid);
                let d = SimTime::from_picos((mem.as_picos() as f64 * jitter).round() as u64);
                let t = self.now + cfg.cycles(cfg.global_latency_cycles) + d;
                self.push_event(t, EventKind::BlockResume(bid));
            }
            Op::MainStep { bytes, cycles } => {
                // Loads overlap math: the step costs the slower of the two.
                let mem = self.dyn_mem_time(bid, bytes);
                let compute = self.scaled(bid, cfg.cycles(cycles));
                let jitter = self.jitter_factor(bid);
                let mem =
                    SimTime::from_picos((mem.as_picos() as f64 * jitter).round() as u64);
                let t = self.now
                    + cfg.cycles(cfg.global_latency_cycles)
                    + mem.max(compute);
                self.push_event(t, EventKind::BlockResume(bid));
            }
            Op::Syncthreads => {
                let t = self.now + cfg.cycles(cfg.syncthreads_cycles);
                self.push_event(t, EventKind::BlockResume(bid));
            }
            Op::Fence => {
                let t = self.now + cfg.cycles(cfg.fence_cycles);
                self.push_event(t, EventKind::BlockResume(bid));
            }
            Op::SemWait { table, index, value } => {
                if self.sems.value(table, index) >= value {
                    let t = self.now + cfg.cycles(cfg.poll_latency_cycles);
                    self.push_event(t, EventKind::BlockResume(bid));
                } else {
                    self.blocks[bid].waiting = Some((table, index, value));
                    self.waiters.entry((table.0, index)).or_default().push(bid);
                    // Parked: stops competing for execution throughput.
                    let sm = self.blocks[bid].sm as usize;
                    self.sm_active[sm] -= self.blocks[bid].units;
                    self.active_units -= self.blocks[bid].units as u64;
                    let kernel = self.blocks[bid].kernel;
                    self.record(TraceEvent::BlockBlocked {
                        kernel: KernelId(kernel),
                        block: self.blocks[bid].idx,
                        table,
                        index,
                        value,
                        time: self.now,
                    });
                }
            }
            Op::SemPost { table, index, inc } => {
                let t = self.now + cfg.cycles(cfg.atomic_latency_cycles);
                self.push_event(t, EventKind::PostApply { block: bid, table, index, inc });
            }
            Op::AtomicAdd { table, index, inc } => {
                let t = self.now + cfg.cycles(cfg.atomic_latency_cycles);
                self.push_event(t, EventKind::AtomicApply { block: bid, table, index, inc });
            }
        }
    }

    fn apply_post(&mut self, poster: usize, table: SemArrayId, index: u32, inc: u32) {
        self.sems.add(table, index, inc);
        let new_value = self.sems.value(table, index);
        self.record(TraceEvent::SemPosted {
            table,
            index,
            new_value,
            time: self.now,
        });
        let wake_at = self.now + self.config.cycles(self.config.poll_latency_cycles);
        if let Some(list) = self.waiters.get_mut(&(table.0, index)) {
            let mut still = Vec::new();
            let mut woken = Vec::new();
            for &wbid in list.iter() {
                let (_, _, target) = self.blocks[wbid].waiting.expect("waiter without target");
                if new_value >= target {
                    woken.push(wbid);
                } else {
                    still.push(wbid);
                }
            }
            *list = still;
            for wbid in woken {
                self.blocks[wbid].waiting = None;
                let sm = self.blocks[wbid].sm as usize;
                self.sm_active[sm] += self.blocks[wbid].units;
                self.active_units += self.blocks[wbid].units as u64;
                self.push_event(wake_at, EventKind::BlockResume(wbid));
            }
        }
        self.push_event(self.now, EventKind::BlockResume(poster));
    }

    fn finish_block(&mut self, bid: usize) {
        self.update_util();
        let (k, sm, units, idx) = {
            let slot = &self.blocks[bid];
            (slot.kernel, slot.sm, slot.units, slot.idx)
        };
        self.sm_free[sm as usize] += units;
        self.sm_active[sm as usize] -= units;
        self.active_units -= units as u64;
        self.busy_units -= units as u64;
        self.last_finish = self.now;
        self.record(TraceEvent::BlockFinished {
            kernel: KernelId(k),
            block: idx,
            time: self.now,
        });
        let kernel = &mut self.kernels[k];
        kernel.completed += 1;
        kernel.concurrent -= 1;
        if kernel.completed == kernel.total {
            kernel.end = Some(self.now);
            let stream = kernel.stream;
            self.record(TraceEvent::KernelFinished {
                kernel: KernelId(k),
                time: self.now,
            });
            self.streams[stream].next += 1;
            self.schedule_stream_head(stream);
        }
    }

    fn report(&self) -> RunReport {
        let sms = self.config.num_sms;
        let kernels: Vec<KernelReport> = self
            .kernels
            .iter()
            .map(|k| {
                let start = k.start.unwrap_or(k.ready_at);
                let end = k.end.unwrap_or(start);
                KernelReport {
                    name: k.name.clone(),
                    grid: k.grid,
                    occupancy: k.occupancy,
                    blocks: k.total,
                    static_waves: waves(k.total, k.occupancy, sms),
                    ready: k.ready_at,
                    start,
                    end,
                    duration: end.saturating_sub(start),
                    max_concurrent: k.max_concurrent,
                }
            })
            .collect();
        let total = kernels
            .iter()
            .map(|k| k.end)
            .max()
            .unwrap_or(SimTime::ZERO);
        let span = match self.first_issue {
            Some(first) => self.last_finish.saturating_sub(first),
            None => SimTime::ZERO,
        };
        let capacity = sms as u128 * SM_CAPACITY_UNITS as u128;
        let sm_utilization = if span > SimTime::ZERO {
            self.util_integral as f64 / (capacity as f64 * span.as_picos() as f64)
        } else {
            0.0
        };
        let sem_posts = self.sems.ids().map(|id| self.sems.posts(id)).sum();
        RunReport {
            total,
            kernels,
            races: self.mem.races_total(),
            sm_utilization,
            sem_posts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::FixedKernel;

    fn quiet_config() -> GpuConfig {
        GpuConfig {
            host_launch_gap: SimTime::ZERO,
            kernel_dispatch_latency: SimTime::ZERO,
            block_jitter: 0.0,
            ..GpuConfig::toy(4)
        }
    }

    #[test]
    fn single_kernel_runs_in_waves() {
        let mut gpu = Gpu::new(quiet_config());
        let s = gpu.create_stream(0);
        // 6 blocks, occupancy 1, 4 SMs: two waves (4 then 2), like Fig. 1b.
        gpu.launch(
            s,
            Arc::new(FixedKernel::new("k", Dim3::linear(6), 1, vec![Op::compute(1000)])),
        );
        let report = gpu.run().unwrap();
        let k = &report.kernels[0];
        assert_eq!(k.blocks, 6);
        assert!((k.static_waves - 1.5).abs() < 1e-9);
        assert_eq!(k.max_concurrent, 4);
        // Two sequential waves of compute(1000 cycles).
        let one_wave = GpuConfig::toy(4).cycles(1000);
        assert_eq!(k.duration, one_wave + one_wave);
    }

    #[test]
    fn same_stream_kernels_serialize() {
        let mut gpu = Gpu::new(quiet_config());
        let s = gpu.create_stream(0);
        gpu.launch(
            s,
            Arc::new(FixedKernel::new("a", Dim3::linear(2), 1, vec![Op::compute(500)])),
        );
        gpu.launch(
            s,
            Arc::new(FixedKernel::new("b", Dim3::linear(2), 1, vec![Op::compute(500)])),
        );
        let report = gpu.run().unwrap();
        assert!(report.kernel("b").start >= report.kernel("a").end);
    }

    #[test]
    fn different_streams_overlap() {
        let mut gpu = Gpu::new(quiet_config());
        let s1 = gpu.create_stream(0);
        let s2 = gpu.create_stream(0);
        gpu.launch(
            s1,
            Arc::new(FixedKernel::new("a", Dim3::linear(2), 1, vec![Op::compute(10_000)])),
        );
        gpu.launch(
            s2,
            Arc::new(FixedKernel::new("b", Dim3::linear(2), 1, vec![Op::compute(10_000)])),
        );
        let report = gpu.run().unwrap();
        // 4 SMs fit both 2-block kernels at once.
        assert!(report.kernel("b").start < report.kernel("a").end);
    }

    #[test]
    fn semaphore_wait_blocks_until_post() {
        let mut gpu = Gpu::new(quiet_config());
        let sem = gpu.alloc_sems("sem", 1, 0);
        let s1 = gpu.create_stream(0);
        let s2 = gpu.create_stream(0);
        gpu.launch(
            s1,
            Arc::new(FixedKernel::new(
                "producer",
                Dim3::linear(1),
                1,
                vec![Op::compute(100_000), Op::post(sem, 0)],
            )),
        );
        gpu.launch(
            s2,
            Arc::new(FixedKernel::new(
                "consumer",
                Dim3::linear(1),
                1,
                vec![Op::wait(sem, 0, 1), Op::compute(10)],
            )),
        );
        let report = gpu.run().unwrap();
        let producer_end = report.kernel("producer").end;
        let consumer_end = report.kernel("consumer").end;
        assert!(consumer_end > producer_end);
        assert_eq!(report.sem_posts, 1);
    }

    #[test]
    fn deadlock_is_detected_and_described() {
        let mut gpu = Gpu::new(quiet_config());
        let sem = gpu.alloc_sems("never", 1, 0);
        let s = gpu.create_stream(0);
        gpu.launch(
            s,
            Arc::new(FixedKernel::new(
                "stuck",
                Dim3::linear(1),
                1,
                vec![Op::wait(sem, 0, 1)],
            )),
        );
        let err = gpu.run().unwrap_err();
        match err {
            SimError::Deadlock { blocked, pending, .. } => {
                assert_eq!(pending, vec!["stuck".to_string()]);
                assert_eq!(blocked.len(), 1);
                assert!(blocked[0].contains("never[0] >= 1"), "{}", blocked[0]);
            }
        }
    }

    #[test]
    fn busy_wait_occupies_sm_slots_causing_deadlock() {
        // Consumer fills all 4 SMs busy-waiting; producer (launched later)
        // can never run: the Section III-B hazard.
        let mut gpu = Gpu::new(quiet_config());
        let sem = gpu.alloc_sems("tile", 1, 0);
        let s1 = gpu.create_stream(0);
        let s2 = gpu.create_stream(1); // higher priority: consumer issues first
        gpu.launch(
            s1,
            Arc::new(FixedKernel::new(
                "producer",
                Dim3::linear(4),
                1,
                vec![Op::compute(100), Op::post(sem, 0)],
            )),
        );
        gpu.launch(
            s2,
            Arc::new(FixedKernel::new(
                "consumer",
                Dim3::linear(4),
                1,
                vec![Op::wait(sem, 0, 4), Op::compute(10)],
            )),
        );
        let err = gpu.run().unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }), "{err}");
    }

    #[test]
    fn priority_orders_block_issue() {
        let mut gpu = Gpu::new(quiet_config());
        gpu.enable_trace();
        let lo = gpu.create_stream(0);
        let hi = gpu.create_stream(5);
        gpu.launch(
            lo,
            Arc::new(FixedKernel::new("lo", Dim3::linear(4), 1, vec![Op::compute(100)])),
        );
        gpu.launch(
            hi,
            Arc::new(FixedKernel::new("hi", Dim3::linear(4), 1, vec![Op::compute(100)])),
        );
        let _ = gpu.run().unwrap();
        let first_issue = gpu
            .trace()
            .iter()
            .find_map(|e| match e {
                TraceEvent::BlockIssued { kernel, .. } => Some(*kernel),
                _ => None,
            })
            .unwrap();
        // Both kernels become ready at t=0 (zero latencies); the
        // higher-priority stream's kernel issues first.
        assert_eq!(first_issue, KernelId(1));
    }

    #[test]
    fn atomic_add_returns_previous_value_in_order() {
        // Three blocks each fetch-add the counter; results must be 0,1,2 in
        // issue order (deterministic engine).
        use crate::kernel::{BlockBody, FnKernel};
        struct CounterBody {
            counter: SemArrayId,
            state: u8,
            seen: Option<u32>,
        }
        impl BlockBody for CounterBody {
            fn resume(&mut self, ctx: &mut BlockCtx<'_>) -> Step {
                match self.state {
                    0 => {
                        self.state = 1;
                        Step::Op(Op::AtomicAdd { table: self.counter, index: 0, inc: 1 })
                    }
                    1 => {
                        self.seen = ctx.atomic_result;
                        self.state = 2;
                        // Write our observation so the test can assert it.
                        Step::Op(Op::compute(10))
                    }
                    _ => Step::Done,
                }
            }
        }
        let mut gpu = Gpu::new(quiet_config());
        let counter = gpu.alloc_sems("ctr", 1, 0);
        let s = gpu.create_stream(0);
        gpu.launch(
            s,
            Arc::new(FnKernel::new("count", Dim3::linear(3), 1, move |_| {
                Box::new(CounterBody { counter, state: 0, seen: None })
            })),
        );
        gpu.run().unwrap();
        assert_eq!(gpu.sems().value(counter, 0), 3);
    }

    #[test]
    fn run_is_single_shot() {
        let mut gpu = Gpu::new(quiet_config());
        let s = gpu.create_stream(0);
        gpu.launch(
            s,
            Arc::new(FixedKernel::new("k", Dim3::linear(1), 1, vec![])),
        );
        gpu.run().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| gpu.run()));
        assert!(result.is_err());
    }

    #[test]
    fn utilization_reflects_partial_waves() {
        let mut gpu = Gpu::new(quiet_config());
        let s = gpu.create_stream(0);
        // 2 blocks on 4 SMs: utilization 50% for the whole run.
        gpu.launch(
            s,
            Arc::new(FixedKernel::new("k", Dim3::linear(2), 1, vec![Op::compute(1000)])),
        );
        let report = gpu.run().unwrap();
        assert!((report.sm_utilization - 0.5).abs() < 1e-6, "{}", report.sm_utilization);
    }
}
