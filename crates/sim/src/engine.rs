//! The discrete-event execution engine.
//!
//! [`Gpu`] owns the hardware model ([`GpuConfig`]), global memory, semaphore
//! storage, CUDA-style streams, and the event loop that issues thread blocks
//! onto SM slots in kernel launch order — the scheduling behaviour the paper
//! observes on Volta/Ampere GPUs (Section III-B). Busy-waiting blocks keep
//! occupying their SM slot, so an under-provisioned schedule can deadlock;
//! the engine detects this and reports which semaphores were being waited
//! on.
//!
//! Two interchangeable event loops implement the same semantics (see
//! [`EngineMode`] and `crates/sim/README.md`):
//!
//! - [`EngineMode::Reference`] — the original engine: after every event
//!   batch it rescans all kernels and all SMs, and every block micro-op is
//!   a separate heap event. Kept as the executable specification and the
//!   perf baseline for `BENCH_*.json`.
//! - [`EngineMode::Optimized`] — the O(1)-amortized hot paths: an
//!   incrementally maintained ready-queue of issuable kernels, a per-SM
//!   free-capacity index, coalesced runs of non-synchronizing ops, and
//!   dense per-semaphore wait-lists. Produces bit-identical timelines; the
//!   equivalence is enforced by `tests/engine_equivalence.rs`.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::fmt;
use std::sync::Arc;

use crate::config::{GpuConfig, SM_CAPACITY_UNITS};
use crate::dim::Dim3;
use crate::kernel::{BlockCtx, KernelSource, Step};
use crate::mem::{BufferId, DType, GlobalMemory};
use crate::ops::Op;
use crate::sem::{SemArrayId, SemTable, WaitLists};
use crate::stats::{waves, KernelReport, RunReport};
use crate::time::SimTime;
use crate::trace::{KernelId, TraceEvent};

/// Identifier of a CUDA stream created on a [`Gpu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(usize);

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream{}", self.0)
    }
}

/// Which event-loop implementation a [`Gpu`] uses.
///
/// Both modes produce **identical** simulated timelines ([`RunReport`]
/// kernel start/end times, traces, deadlock reports); they differ only in
/// wall-clock cost. The default for new [`Gpu`]s is
/// [`EngineMode::Optimized`]; use [`with_engine_mode`] to run a scope of
/// code (e.g. a perf baseline sweep) on the reference engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineMode {
    /// The original O(kernels × SMs)-per-event engine, kept as the
    /// executable specification and perf baseline.
    Reference,
    /// Incremental ready-queue, SM capacity index, op coalescing, dense
    /// wait-lists.
    #[default]
    Optimized,
}

impl fmt::Display for EngineMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineMode::Reference => write!(f, "reference"),
            EngineMode::Optimized => write!(f, "optimized"),
        }
    }
}

thread_local! {
    static DEFAULT_ENGINE: Cell<EngineMode> = const { Cell::new(EngineMode::Optimized) };
}

/// The engine mode [`Gpu::new`] will use on this thread.
pub fn default_engine_mode() -> EngineMode {
    DEFAULT_ENGINE.with(Cell::get)
}

/// Sets the engine mode used by subsequent [`Gpu::new`] calls on this
/// thread. Prefer the scoped [`with_engine_mode`] where possible.
pub fn set_default_engine_mode(mode: EngineMode) {
    DEFAULT_ENGINE.with(|m| m.set(mode));
}

/// Runs `f` with the thread's default engine mode set to `mode`, restoring
/// the previous default afterwards. This is how harness code runs existing
/// workload builders (which call [`Gpu::new`] internally) on a chosen
/// engine without threading a parameter through every layer.
pub fn with_engine_mode<R>(mode: EngineMode, f: impl FnOnce() -> R) -> R {
    struct Restore(EngineMode);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_default_engine_mode(self.0);
        }
    }
    // Restore on unwind too: a panicking closure (e.g. a failed test
    // assertion inside a scoped Reference-mode run) must not leave the
    // thread's default pinned to `mode`.
    let _restore = Restore(default_engine_mode());
    set_default_engine_mode(mode);
    f()
}

/// Error raised by [`Gpu::run`].
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// No event can make progress but kernels remain incomplete: every
    /// resident block is busy-waiting on a semaphore and no SM slot is free
    /// for the blocks that would post — the hazard of omitting the
    /// wait-kernel (Section III-B).
    Deadlock {
        /// Time at which progress stopped.
        time: SimTime,
        /// Human-readable description of each blocked thread block.
        blocked: Vec<String>,
        /// Kernels that had not finished.
        pending: Vec<String>,
    },
    /// [`Gpu::run`] was called a second time on the same [`Gpu`]. A run
    /// consumes the launched kernels and leaves memory/semaphores in their
    /// final state, so a `Gpu` is single-shot; build a fresh one (library
    /// callers such as the parallel bench harness get this as an error
    /// instead of an abort).
    AlreadyRan,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock {
                time,
                blocked,
                pending,
            } => {
                write!(
                    f,
                    "deadlock at {time}: {} blocked thread block(s), pending kernels [{}]",
                    blocked.len(),
                    pending.join(", ")
                )
            }
            SimError::AlreadyRan => {
                write!(f, "Gpu::run may only be called once per Gpu")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    KernelReady(usize),
    BlockResume(usize),
    PostApply {
        block: usize,
        table: SemArrayId,
        index: u32,
        inc: u32,
    },
    AtomicApply {
        block: usize,
        table: SemArrayId,
        index: u32,
        inc: u32,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct StreamState {
    priority: i32,
    queue: Vec<usize>,
    next: usize,
}

struct KernelState {
    source: Arc<dyn KernelSource>,
    name: String,
    stream: usize,
    priority: i32,
    host_ready: SimTime,
    grid: Dim3,
    total: u64,
    occupancy: u32,
    units: u32,
    issued: u64,
    completed: u64,
    ready: bool,
    ready_at: SimTime,
    start: Option<SimTime>,
    end: Option<SimTime>,
    concurrent: u64,
    max_concurrent: u64,
    /// Optimized mode: this kernel's bodies are context-independent
    /// ([`KernelSource::timing_static`]), so blocks are pre-driven into
    /// flat op programs at issue.
    predrive: bool,
}

/// A step the block already yielded whose application was deferred to the
/// end of a coalesced run of non-synchronizing ops.
#[derive(Debug, Clone, Copy)]
enum PendingStep {
    Op(Op),
    Done,
}

struct BlockSlot {
    kernel: usize,
    idx: Dim3,
    sm: u32,
    units: u32,
    body: Option<Box<dyn crate::kernel::BlockBody>>,
    atomic_result: Option<u32>,
    waiting: Option<(SemArrayId, u32, u32)>,
    pending: Option<PendingStep>,
    /// The block's deterministic duration-variance factor, computed once
    /// at issue. The reference engine ignores this and recomputes the
    /// hash per op, as the original engine did.
    jitter: f64,
    /// Pre-driven op program: `[prog_start, prog_start + prog_len)` into
    /// the engine's `block_ops` arena, or `prog_start == u32::MAX` for
    /// coroutine-driven blocks. Program blocks have no side effects, so
    /// the cursor path may re-read an op after deferral.
    prog_start: u32,
    prog_len: u32,
    prog_pc: u32,
}

impl BlockSlot {
    #[inline]
    fn has_program(&self) -> bool {
        self.prog_start != u32::MAX
    }
}

/// Fixed-latency op costs converted to [`SimTime`] once at construction,
/// so the per-event hot path never re-runs the cycles→picoseconds float
/// conversion for constants.
#[derive(Debug, Clone, Copy)]
struct FixedCosts {
    global_latency: SimTime,
    atomic: SimTime,
    poll: SimTime,
    fence: SimTime,
    syncthreads: SimTime,
}

impl FixedCosts {
    fn of(config: &GpuConfig) -> Self {
        FixedCosts {
            global_latency: config.cycles(config.global_latency_cycles),
            atomic: config.cycles(config.atomic_latency_cycles),
            poll: config.cycles(config.poll_latency_cycles),
            fence: config.cycles(config.fence_cycles),
            syncthreads: config.cycles(config.syncthreads_cycles),
        }
    }
}

/// The simulated GPU: hardware model, memory, streams, and event loop.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use cusync_sim::{Dim3, FixedKernel, Gpu, GpuConfig, Op};
///
/// let mut gpu = Gpu::new(GpuConfig::toy(4));
/// let stream = gpu.create_stream(0);
/// gpu.launch(stream, Arc::new(FixedKernel::new(
///     "copy", Dim3::linear(6), 1, vec![Op::read(4096), Op::write(4096)],
/// )));
/// let report = gpu.run()?;
/// assert_eq!(report.kernels[0].blocks, 6);
/// // 6 blocks on 4 SMs at occupancy 1 is 1.5 waves.
/// assert!((report.kernels[0].static_waves - 1.5).abs() < 1e-9);
/// # Ok::<(), cusync_sim::SimError>(())
/// ```
pub struct Gpu {
    config: GpuConfig,
    mode: EngineMode,
    costs: FixedCosts,
    mem: GlobalMemory,
    sems: SemTable,
    streams: Vec<StreamState>,
    kernels: Vec<KernelState>,
    host_time: SimTime,
    now: SimTime,
    events: BinaryHeap<Reverse<Event>>,
    /// Optimized-mode event queue: `(time << 64) | seq` keys ordered by a
    /// single `u128` compare, payloads in [`Gpu::event_slab`]. Heap sifts
    /// move 24-byte copies instead of full [`Event`] structs.
    fast_events: BinaryHeap<Reverse<(u128, u32)>>,
    event_slab: Vec<EventKind>,
    event_free: Vec<u32>,
    event_seq: u64,
    events_handled: u64,
    sm_free: Vec<u32>,
    /// Units of *actively executing* (not semaphore-waiting) blocks per
    /// SM; busy-wait spinners occupy their slot but consume negligible
    /// execution throughput.
    sm_active: Vec<u32>,
    /// GPU-wide sum of `sm_active`, for the dynamic DRAM-share model.
    active_units: u64,
    blocks: Vec<BlockSlot>,
    /// Arena of pre-driven block programs (see `BlockSlot::prog_start`):
    /// each program's ops are contiguous, so the cursor path walks memory
    /// sequentially instead of chasing a `Box<dyn BlockBody>`.
    block_ops: Vec<Op>,
    predrive_scratch: Vec<Op>,
    /// Reference-mode waiter registry (the original representation).
    waiters: BTreeMap<(usize, u32), Vec<usize>>,
    /// Optimized-mode waiter registry: dense per-array wait-lists.
    wait_lists: WaitLists,
    /// Optimized mode: kernels that are ready and still have unissued
    /// blocks, ordered exactly like the reference scan's sort key.
    ready_queue: BTreeSet<(Reverse<i32>, usize)>,
    /// Optimized mode: `(free_units, Reverse(sm))` per SM, so the
    /// least-loaded-first placement is a `last()` lookup.
    sm_index: BTreeSet<(u32, Reverse<usize>)>,
    /// Optimized mode: set when SM capacity was freed or a kernel became
    /// ready — the only transitions after which `try_issue` can place a
    /// block.
    issue_dirty: bool,
    issue_scratch: Vec<usize>,
    wake_scratch: Vec<usize>,
    trace: Vec<TraceEvent>,
    trace_enabled: bool,
    busy_units: u64,
    util_integral: u128,
    last_util_update: SimTime,
    first_issue: Option<SimTime>,
    last_finish: SimTime,
    ran: bool,
}

impl fmt::Debug for Gpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gpu")
            .field("config", &self.config.name)
            .field("mode", &self.mode)
            .field("kernels", &self.kernels.len())
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

impl Gpu {
    /// Creates a GPU with the given hardware model, using the thread's
    /// default [`EngineMode`] (see [`with_engine_mode`]).
    pub fn new(config: GpuConfig) -> Self {
        Gpu::with_mode(config, default_engine_mode())
    }

    /// Creates a GPU pinned to a specific engine implementation.
    pub fn with_mode(config: GpuConfig, mode: EngineMode) -> Self {
        let sms = config.num_sms as usize;
        let costs = FixedCosts::of(&config);
        Gpu {
            config,
            mode,
            costs,
            mem: GlobalMemory::new(),
            sems: SemTable::new(),
            streams: Vec::new(),
            kernels: Vec::new(),
            host_time: SimTime::ZERO,
            now: SimTime::ZERO,
            events: BinaryHeap::new(),
            fast_events: BinaryHeap::new(),
            event_slab: Vec::new(),
            event_free: Vec::new(),
            event_seq: 0,
            events_handled: 0,
            sm_free: vec![SM_CAPACITY_UNITS; sms],
            sm_active: vec![0; sms],
            active_units: 0,
            blocks: Vec::new(),
            block_ops: Vec::new(),
            predrive_scratch: Vec::new(),
            waiters: BTreeMap::new(),
            wait_lists: WaitLists::new(),
            ready_queue: BTreeSet::new(),
            sm_index: BTreeSet::new(),
            issue_dirty: false,
            issue_scratch: Vec::new(),
            wake_scratch: Vec::new(),
            trace: Vec::new(),
            trace_enabled: false,
            busy_units: 0,
            util_integral: 0,
            last_util_update: SimTime::ZERO,
            first_issue: None,
            last_finish: SimTime::ZERO,
            ran: false,
        }
    }

    /// The hardware model in use.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// The event-loop implementation this GPU runs on.
    pub fn engine_mode(&self) -> EngineMode {
        self.mode
    }

    /// Read access to global memory.
    pub fn mem(&self) -> &GlobalMemory {
        &self.mem
    }

    /// Mutable access to global memory (allocation, verification).
    pub fn mem_mut(&mut self) -> &mut GlobalMemory {
        &mut self.mem
    }

    /// Read access to the semaphore table.
    pub fn sems(&self) -> &SemTable {
        &self.sems
    }

    /// Mutable access to the semaphore table (allocation, re-init).
    pub fn sems_mut(&mut self) -> &mut SemTable {
        &mut self.sems
    }

    /// Allocates a timing-only buffer (convenience for [`GlobalMemory::alloc`]).
    pub fn alloc(&mut self, name: &str, len: usize, dtype: DType) -> BufferId {
        self.mem.alloc(name, len, dtype)
    }

    /// Allocates a semaphore array (convenience for [`SemTable::alloc`]).
    pub fn alloc_sems(&mut self, name: &str, len: usize, init: u32) -> SemArrayId {
        self.sems.alloc(name, len, init)
    }

    /// Creates a stream. Streams with numerically higher `priority` issue
    /// their thread blocks first when competing for SM slots.
    pub fn create_stream(&mut self, priority: i32) -> StreamId {
        let id = StreamId(self.streams.len());
        self.streams.push(StreamState {
            priority,
            queue: Vec::new(),
            next: 0,
        });
        id
    }

    /// Enqueues `kernel` on `stream`. Kernels on one stream execute in
    /// order; kernels on different streams may overlap. Each host launch is
    /// separated by [`GpuConfig::host_launch_gap`].
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty or the stream id is foreign.
    pub fn launch(&mut self, stream: StreamId, kernel: Arc<dyn KernelSource>) -> KernelId {
        let grid = kernel.grid();
        assert!(
            grid.count() > 0,
            "kernel {} has an empty grid",
            kernel.name()
        );
        assert!(stream.0 < self.streams.len(), "unknown {stream}");
        let occupancy = kernel.occupancy();
        let units = self.config.units_per_block(occupancy);
        let id = self.kernels.len();
        self.kernels.push(KernelState {
            name: kernel.name().to_owned(),
            source: kernel,
            stream: stream.0,
            priority: self.streams[stream.0].priority,
            host_ready: self.host_time,
            grid,
            total: grid.count(),
            occupancy,
            units,
            issued: 0,
            completed: 0,
            ready: false,
            ready_at: SimTime::ZERO,
            start: None,
            end: None,
            concurrent: 0,
            max_concurrent: 0,
            predrive: false,
        });
        self.host_time += self.config.host_launch_gap;
        self.streams[stream.0].queue.push(id);
        KernelId(id)
    }

    /// Records scheduling events for inspection by [`Gpu::trace`].
    pub fn enable_trace(&mut self) {
        self.trace_enabled = true;
    }

    /// The recorded trace (empty unless [`Gpu::enable_trace`] was called).
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// Heap events handled so far (a measure of simulation work, reported
    /// as [`RunReport::sim_events`]).
    pub fn events_handled(&self) -> u64 {
        self.events_handled
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.event_seq;
        self.event_seq += 1;
        match self.mode {
            EngineMode::Reference => {
                self.events.push(Reverse(Event { time, seq, kind }));
            }
            EngineMode::Optimized => {
                let key = ((time.as_picos() as u128) << 64) | seq as u128;
                let idx = match self.event_free.pop() {
                    Some(i) => {
                        self.event_slab[i as usize] = kind;
                        i
                    }
                    None => {
                        self.event_slab.push(kind);
                        (self.event_slab.len() - 1) as u32
                    }
                };
                self.fast_events.push(Reverse((key, idx)));
            }
        }
    }

    #[inline]
    fn take_fast_event(&mut self, idx: u32) -> EventKind {
        self.event_free.push(idx);
        self.event_slab[idx as usize]
    }

    /// Appends to the trace. The flag check is inlined at every call site
    /// so a disabled trace costs one predictable branch — never a `Vec`
    /// touch or an event construction that the optimizer can't sink.
    #[inline(always)]
    fn record(&mut self, event: TraceEvent) {
        if self.trace_enabled {
            self.trace.push(event);
        }
    }

    /// Runs all launched kernels to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if execution stalls with incomplete
    /// kernels — every resident block waiting on a semaphore that nothing
    /// can post — and [`SimError::AlreadyRan`] if this [`Gpu`] already ran.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        if self.ran {
            return Err(SimError::AlreadyRan);
        }
        self.ran = true;
        if self.mode == EngineMode::Optimized {
            self.sm_index = self
                .sm_free
                .iter()
                .enumerate()
                .map(|(sm, &free)| (free, Reverse(sm)))
                .collect();
            for k in 0..self.kernels.len() {
                let source = Arc::clone(&self.kernels[k].source);
                self.kernels[k].predrive = source.timing_static(&self.mem);
            }
        }
        for s in 0..self.streams.len() {
            self.schedule_stream_head(s);
        }
        match self.mode {
            EngineMode::Reference => self.run_reference_loop(),
            EngineMode::Optimized => self.run_optimized_loop(),
        }
        let incomplete: Vec<usize> = (0..self.kernels.len())
            .filter(|&k| self.kernels[k].completed < self.kernels[k].total)
            .collect();
        if !incomplete.is_empty() {
            return Err(self.deadlock_error(&incomplete));
        }
        Ok(self.report())
    }

    /// The original event loop: rescan-and-sort `try_issue` after every
    /// batch. Kept verbatim as the executable specification.
    fn run_reference_loop(&mut self) {
        while let Some(Reverse(event)) = self.events.pop() {
            debug_assert!(event.time >= self.now, "time went backwards");
            self.now = event.time;
            self.events_handled += 1;
            self.handle(event.kind);
            // Drain every event at this timestamp before issuing blocks, so
            // that kernels becoming ready at the same instant compete for SM
            // slots by priority rather than by event arrival order.
            while let Some(Reverse(next)) = self.events.peek() {
                if next.time != self.now {
                    break;
                }
                let Reverse(event) = self.events.pop().expect("peeked event");
                self.events_handled += 1;
                self.handle(event.kind);
            }
            self.try_issue_reference();
        }
    }

    /// The optimized event loop: identical batch semantics, but block
    /// placement only runs after transitions that can actually enable it
    /// (`issue_dirty`), over the incrementally maintained ready-queue and
    /// SM index.
    fn run_optimized_loop(&mut self) {
        while let Some(Reverse((key, idx))) = self.fast_events.pop() {
            let time_ps = (key >> 64) as u64;
            debug_assert!(time_ps >= self.now.as_picos(), "time went backwards");
            self.now = SimTime::from_picos(time_ps);
            let kind = self.take_fast_event(idx);
            self.events_handled += 1;
            self.handle(kind);
            while let Some(&Reverse((next_key, _))) = self.fast_events.peek() {
                if (next_key >> 64) as u64 != time_ps {
                    break;
                }
                let Reverse((_, next_idx)) = self.fast_events.pop().expect("peeked event");
                let kind = self.take_fast_event(next_idx);
                self.events_handled += 1;
                self.handle(kind);
            }
            if self.issue_dirty {
                self.try_issue_optimized();
                self.issue_dirty = false;
            }
        }
    }

    fn handle(&mut self, kind: EventKind) {
        match kind {
            EventKind::KernelReady(k) => {
                self.kernels[k].ready = true;
                self.kernels[k].ready_at = self.now;
                if self.mode == EngineMode::Optimized {
                    self.issue_dirty = true;
                    if self.kernels[k].issued < self.kernels[k].total {
                        self.ready_queue
                            .insert((Reverse(self.kernels[k].priority), k));
                    }
                }
                self.record(TraceEvent::KernelReady {
                    kernel: KernelId(k),
                    time: self.now,
                });
            }
            EventKind::BlockResume(b) => match self.blocks[b].pending.take() {
                None => self.step_block(b),
                Some(PendingStep::Op(op)) => self.apply_sync_op(b, op),
                Some(PendingStep::Done) => self.finish_block(b),
            },
            EventKind::PostApply {
                block,
                table,
                index,
                inc,
            } => {
                self.apply_post(block, table, index, inc);
            }
            EventKind::AtomicApply {
                block,
                table,
                index,
                inc,
            } => {
                let prev = self.sems.add(table, index, inc);
                self.blocks[block].atomic_result = Some(prev);
                self.push_event(self.now, EventKind::BlockResume(block));
            }
        }
    }

    fn deadlock_error(&self, incomplete: &[usize]) -> SimError {
        let blocked = self
            .blocks
            .iter()
            .filter_map(|slot| {
                let (table, index, value) = slot.waiting?;
                Some(format!(
                    "{} block {} waits {}[{}] >= {} (currently {})",
                    self.kernels[slot.kernel].name,
                    slot.idx,
                    self.sems.name(table),
                    index,
                    value,
                    self.sems.value(table, index),
                ))
            })
            .collect();
        let pending = incomplete
            .iter()
            .map(|&k| self.kernels[k].name.clone())
            .collect();
        SimError::Deadlock {
            time: self.now,
            blocked,
            pending,
        }
    }

    fn schedule_stream_head(&mut self, stream: usize) {
        let s = &self.streams[stream];
        if let Some(&k) = s.queue.get(s.next) {
            let ready =
                self.now.max(self.kernels[k].host_ready) + self.config.kernel_dispatch_latency;
            self.push_event(ready, EventKind::KernelReady(k));
        }
    }

    /// Reference block placement: filter + sort every kernel, then scan
    /// every SM per placed block. O(kernels log kernels + blocks × SMs)
    /// after **every** event batch.
    fn try_issue_reference(&mut self) {
        let mut order: Vec<usize> = (0..self.kernels.len())
            .filter(|&k| self.kernels[k].ready && self.kernels[k].issued < self.kernels[k].total)
            .collect();
        if order.is_empty() {
            return;
        }
        order.sort_by_key(|&k| (Reverse(self.kernels[k].priority), k));
        for k in order {
            loop {
                if self.kernels[k].issued >= self.kernels[k].total {
                    break;
                }
                let units = self.kernels[k].units;
                // Least-loaded SM first: the hardware work distributor
                // spreads blocks across SMs, so sparse grids get whole SMs
                // to themselves (and run faster; see `residency_scale`).
                let Some((sm, &free)) = self
                    .sm_free
                    .iter()
                    .enumerate()
                    .filter(|&(_, &f)| f >= units)
                    .max_by_key(|&(i, &f)| (f, std::cmp::Reverse(i)))
                else {
                    break;
                };
                let _ = free;
                self.issue_block(k, sm as u32);
            }
        }
    }

    /// Optimized block placement. The ready-queue's `(Reverse(priority), k)`
    /// ordering is exactly the reference scan's sort key, and `sm_index`'s
    /// maximum is exactly the reference scan's `max_by_key((f, Reverse(i)))`,
    /// so the sequence of `issue_block` calls is identical.
    fn try_issue_optimized(&mut self) {
        if self.ready_queue.is_empty() {
            return;
        }
        let mut order = std::mem::take(&mut self.issue_scratch);
        order.clear();
        order.extend(self.ready_queue.iter().map(|&(_, k)| k));
        for &k in &order {
            loop {
                if self.kernels[k].issued >= self.kernels[k].total {
                    self.ready_queue
                        .remove(&(Reverse(self.kernels[k].priority), k));
                    break;
                }
                let units = self.kernels[k].units;
                let Some(&(free, Reverse(sm))) = self.sm_index.last() else {
                    break;
                };
                if free < units {
                    break;
                }
                self.issue_block(k, sm as u32);
            }
        }
        self.issue_scratch = order;
    }

    fn update_util(&mut self) {
        let dt = (self.now - self.last_util_update).as_picos() as u128;
        self.util_integral += dt * self.busy_units as u128;
        self.last_util_update = self.now;
    }

    fn set_sm_free(&mut self, sm: usize, free: u32) {
        if self.mode == EngineMode::Optimized {
            self.sm_index.remove(&(self.sm_free[sm], Reverse(sm)));
            self.sm_index.insert((free, Reverse(sm)));
        }
        self.sm_free[sm] = free;
    }

    fn issue_block(&mut self, k: usize, sm: u32) {
        self.update_util();
        let kernel = &mut self.kernels[k];
        let idx = kernel.grid.delinear(kernel.issued);
        kernel.issued += 1;
        kernel.concurrent += 1;
        kernel.max_concurrent = kernel.max_concurrent.max(kernel.concurrent);
        if kernel.start.is_none() {
            kernel.start = Some(self.now);
        }
        let units = kernel.units;
        let predrive = kernel.predrive;
        let source = Arc::clone(&kernel.source);
        let mut body = Some(source.block(idx));
        let (prog_start, prog_len) = if predrive {
            // Pre-drive the coroutine while its state is hot: collect the
            // whole op stream into the arena now, replay it through a
            // cursor as events fire. Timing is unchanged — ops are still
            // priced at their own start times (see
            // `KernelSource::timing_static`).
            let mut ops = std::mem::take(&mut self.predrive_scratch);
            ops.clear();
            let mut b = body.take().expect("fresh body");
            loop {
                let step = {
                    let mut ctx = BlockCtx {
                        block: idx,
                        now: self.now,
                        mem: &mut self.mem,
                        sems: &self.sems,
                        atomic_result: None,
                    };
                    b.resume(&mut ctx)
                };
                match step {
                    Step::Op(op) => ops.push(op),
                    Step::Done => break,
                }
            }
            let start = self.block_ops.len() as u32;
            let len = ops.len() as u32;
            self.block_ops.extend_from_slice(&ops);
            self.predrive_scratch = ops;
            (start, len)
        } else {
            (u32::MAX, 0)
        };
        self.set_sm_free(sm as usize, self.sm_free[sm as usize] - units);
        self.sm_active[sm as usize] += units;
        self.active_units += units as u64;
        self.busy_units += units as u64;
        if self.first_issue.is_none() {
            self.first_issue = Some(self.now);
        }
        let bid = self.blocks.len();
        let jitter = self.jitter_value(k, idx);
        self.blocks.push(BlockSlot {
            kernel: k,
            idx,
            sm,
            units,
            body,
            atomic_result: None,
            waiting: None,
            pending: None,
            jitter,
            prog_start,
            prog_len,
            prog_pc: 0,
        });
        self.record(TraceEvent::BlockIssued {
            kernel: KernelId(k),
            block: idx,
            sm,
            time: self.now,
        });
        self.push_event(self.now, EventKind::BlockResume(bid));
    }

    fn step_block(&mut self, bid: usize) {
        if self.blocks[bid].has_program() {
            self.step_program(bid);
        } else {
            self.step_coroutine(bid);
        }
    }

    /// Drives a pre-driven (side-effect-free) block through its op
    /// program. Because re-reading an op is free, this path defers
    /// without the `pending` machinery, and because semaphore values are
    /// monotone non-decreasing, a wait observed satisfied *now* is
    /// satisfied at any later instant — so satisfied waits coalesce into
    /// their successor unconditionally. Pure-op durations still require
    /// state stability until the op's start ([`Gpu::can_extend_run`]),
    /// exactly like the coroutine path.
    fn step_program(&mut self, bid: usize) {
        let mut acc = SimTime::ZERO;
        loop {
            let slot = &self.blocks[bid];
            if slot.prog_pc >= slot.prog_len {
                if acc == SimTime::ZERO {
                    self.finish_block(bid);
                } else {
                    self.push_event(self.now + acc, EventKind::BlockResume(bid));
                }
                return;
            }
            let op = self.block_ops[(slot.prog_start + slot.prog_pc) as usize];
            match op {
                Op::SemWait {
                    table,
                    index,
                    value,
                } => {
                    if self.sems.value(table, index) >= value {
                        // Monotone semaphores: satisfied stays satisfied.
                        acc += self.costs.poll;
                        self.blocks[bid].prog_pc += 1;
                    } else if acc == SimTime::ZERO {
                        // Apply the park at its exact start time; the wake
                        // resumes *after* the wait op.
                        self.blocks[bid].prog_pc += 1;
                        self.apply_sync_op(bid, op);
                        return;
                    } else {
                        // Re-check at the wait's true start time.
                        self.push_event(self.now + acc, EventKind::BlockResume(bid));
                        return;
                    }
                }
                Op::SemPost { .. } | Op::AtomicAdd { .. } => {
                    if acc == SimTime::ZERO {
                        self.blocks[bid].prog_pc += 1;
                        self.apply_sync_op(bid, op);
                    } else {
                        self.push_event(self.now + acc, EventKind::BlockResume(bid));
                    }
                    return;
                }
                _ => {
                    // Pure delay: needs simulator state as of its start.
                    if acc == SimTime::ZERO || self.can_extend_run(self.now + acc) {
                        let d = self
                            .pure_op_delay(bid, &op)
                            .expect("non-sync op has a delay");
                        acc += d;
                        self.blocks[bid].prog_pc += 1;
                        if !self.can_extend_run(self.now + acc) {
                            self.push_event(self.now + acc, EventKind::BlockResume(bid));
                            return;
                        }
                    } else {
                        self.push_event(self.now + acc, EventKind::BlockResume(bid));
                        return;
                    }
                }
            }
        }
    }

    /// Drives a block's coroutine body, coalescing consecutive
    /// non-synchronizing ops into a single future `BlockResume` when that
    /// is provably equivalent to the reference engine (see
    /// [`Gpu::can_extend_run`]). Bodies may perform functional memory
    /// effects inside `resume`, so the body is only advanced when no
    /// other event can observe state in between.
    fn step_coroutine(&mut self, bid: usize) {
        // Accumulated delay of coalesced ops beyond `self.now`.
        let mut acc = SimTime::ZERO;
        loop {
            let mut body = self.blocks[bid].body.take().expect("block body missing");
            let block_idx = self.blocks[bid].idx;
            let atomic_result = self.blocks[bid].atomic_result;
            let step = {
                let mut ctx = BlockCtx {
                    block: block_idx,
                    now: self.now + acc,
                    mem: &mut self.mem,
                    sems: &self.sems,
                    atomic_result,
                };
                body.resume(&mut ctx)
            };
            match step {
                Step::Done => {
                    drop(body);
                    if acc == SimTime::ZERO {
                        self.finish_block(bid);
                    } else {
                        self.blocks[bid].pending = Some(PendingStep::Done);
                        self.push_event(self.now + acc, EventKind::BlockResume(bid));
                    }
                    return;
                }
                Step::Op(op) => {
                    self.blocks[bid].body = Some(body);
                    if let Some(d) = self.pure_op_delay(bid, &op) {
                        acc += d;
                        if !self.can_extend_run(self.now + acc) {
                            self.push_event(self.now + acc, EventKind::BlockResume(bid));
                            return;
                        }
                        // Safe to keep running this block's body in place.
                    } else {
                        // Synchronizing op: apply now, or defer to the end
                        // of the coalesced run it terminates.
                        if acc == SimTime::ZERO {
                            self.apply_sync_op(bid, op);
                        } else {
                            self.blocks[bid].pending = Some(PendingStep::Op(op));
                            self.push_event(self.now + acc, EventKind::BlockResume(bid));
                        }
                        return;
                    }
                }
            }
        }
    }

    /// Whether the block body being stepped may continue past `until`
    /// without a heap round-trip.
    ///
    /// Sound because every simulator state change is caused either by an
    /// event already in the heap (all at `time >= peek`), by an event one
    /// of those handlers pushes (at `time >= its own now >= peek`), or by
    /// `try_issue` at the *current* instant — which is exactly the
    /// `issue_dirty` flag. If the earliest of those is strictly after
    /// `until`, the durations computed for ops completing at or before
    /// `until` read the same `active_units`/`sm_active` state the
    /// reference engine would see, and no other block can observe this
    /// block's functional effects out of order.
    ///
    /// In [`EngineMode::Reference`] this is constantly `false`, which
    /// makes [`Gpu::step_block`] collapse to the original
    /// one-op-per-event behaviour.
    #[inline]
    fn can_extend_run(&self, until: SimTime) -> bool {
        self.mode == EngineMode::Optimized
            && !self.issue_dirty
            && match self.fast_events.peek() {
                Some(&Reverse((key, _))) => (key >> 64) as u64 > until.as_picos(),
                None => true,
            }
    }

    /// How much faster this block runs than its cost model assumes.
    ///
    /// Kernel cost models charge each block `1/occupancy` of an SM's
    /// throughput — the fully-packed steady state. When the block's SM is
    /// only partially occupied (sparse grids, draining waves), the block's
    /// fair share grows proportionally, so durations shrink by
    /// `used_units / SM_CAPACITY_UNITS`. This is also what staggers the
    /// completion times of a partial wave: doubled-up blocks finish later
    /// than blocks holding an SM alone.
    fn residency_scale(&self, bid: usize) -> f64 {
        let sm = self.blocks[bid].sm as usize;
        let active = self.sm_active[sm].max(self.blocks[bid].units) as f64;
        let fraction = (active / SM_CAPACITY_UNITS as f64).clamp(0.0, 1.0);
        1.0 - self.config.residency_boost * (1.0 - fraction)
    }

    /// Deterministic per-block duration factor in
    /// `[1 - jitter, 1 + jitter]`, derived from a SplitMix64 hash of the
    /// block's kernel and grid index (identical inputs always produce the
    /// identical timeline).
    fn jitter_factor(&self, bid: usize) -> f64 {
        if self.mode == EngineMode::Optimized {
            // Computed once at issue; a pure function of (kernel, index),
            // so the cache is exact.
            return self.blocks[bid].jitter;
        }
        let slot = &self.blocks[bid];
        self.jitter_value(slot.kernel, slot.idx)
    }

    /// The hash behind [`Gpu::jitter_factor`], shared by both modes so the
    /// cached and recomputed values are the same `f64` bit for bit.
    fn jitter_value(&self, kernel: usize, idx: Dim3) -> f64 {
        let j = self.config.block_jitter;
        if j == 0.0 {
            return 1.0;
        }
        let key = (kernel as u64) << 48 ^ self.kernels[kernel].grid.linear_of(idx);
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        1.0 + j * (2.0 * unit - 1.0)
    }

    fn scaled(&self, bid: usize, t: SimTime) -> SimTime {
        let factor = self.residency_scale(bid) * self.jitter_factor(bid);
        SimTime::from_picos((t.as_picos() as f64 * factor).round() as u64)
    }

    /// Time for this block to move `bytes` through DRAM under the dynamic
    /// share model: bandwidth divides over all currently active blocks,
    /// but a `dram_saturation_fraction` of the GPU already saturates the
    /// bus, so sparse populations gain bandwidth per block only down to
    /// that floor (and the aggregate never exceeds the DRAM peak).
    fn dyn_mem_time(&self, bid: usize, bytes: u64) -> SimTime {
        let cfg = &self.config;
        let capacity = cfg.num_sms as f64 * SM_CAPACITY_UNITS as f64;
        let saturation = cfg.dram_saturation_fraction * capacity;
        let competing = (self.active_units as f64).max(saturation).max(1.0);
        let units = self.blocks[bid].units as f64;
        let share = cfg.dram_bytes_per_sec * units / competing;
        SimTime::from_picos((bytes as f64 / share * 1e12).round() as u64)
    }

    /// Start-to-completion delay of a non-synchronizing op, or `None` for
    /// the ops that interact with semaphores (and so terminate a coalesced
    /// run). The arithmetic (including every intermediate rounding) is the
    /// single shared cost path of both engine modes.
    fn pure_op_delay(&self, bid: usize, op: &Op) -> Option<SimTime> {
        let cfg = &self.config;
        match *op {
            Op::Compute { cycles } => Some(self.scaled(bid, cfg.cycles(cycles))),
            Op::GlobalRead { bytes } | Op::GlobalWrite { bytes } => {
                let mem = self.dyn_mem_time(bid, bytes);
                let jitter = self.jitter_factor(bid);
                let d = SimTime::from_picos((mem.as_picos() as f64 * jitter).round() as u64);
                Some(self.costs.global_latency + d)
            }
            Op::MainStep { bytes, cycles } => {
                // Loads overlap math: the step costs the slower of the two.
                let mem = self.dyn_mem_time(bid, bytes);
                let compute = self.scaled(bid, cfg.cycles(cycles));
                let jitter = self.jitter_factor(bid);
                let mem = SimTime::from_picos((mem.as_picos() as f64 * jitter).round() as u64);
                Some(self.costs.global_latency + mem.max(compute))
            }
            Op::Syncthreads => Some(self.costs.syncthreads),
            Op::Fence => Some(self.costs.fence),
            Op::SemWait { .. } | Op::SemPost { .. } | Op::AtomicAdd { .. } => None,
        }
    }

    /// Applies a synchronizing op at the current instant (the op's start
    /// time — exactly where the reference engine's `apply_op` ran it).
    fn apply_sync_op(&mut self, bid: usize, op: Op) {
        match op {
            Op::SemWait {
                table,
                index,
                value,
            } => {
                if self.sems.value(table, index) >= value {
                    let t = self.now + self.costs.poll;
                    self.push_event(t, EventKind::BlockResume(bid));
                } else {
                    self.blocks[bid].waiting = Some((table, index, value));
                    match self.mode {
                        EngineMode::Reference => {
                            self.waiters.entry((table.0, index)).or_default().push(bid);
                        }
                        EngineMode::Optimized => {
                            self.wait_lists.park(table, index, bid);
                        }
                    }
                    // Parked: stops competing for execution throughput.
                    let sm = self.blocks[bid].sm as usize;
                    self.sm_active[sm] -= self.blocks[bid].units;
                    self.active_units -= self.blocks[bid].units as u64;
                    let kernel = self.blocks[bid].kernel;
                    self.record(TraceEvent::BlockBlocked {
                        kernel: KernelId(kernel),
                        block: self.blocks[bid].idx,
                        table,
                        index,
                        value,
                        time: self.now,
                    });
                }
            }
            Op::SemPost { table, index, inc } => {
                let t = self.now + self.costs.atomic;
                self.push_event(
                    t,
                    EventKind::PostApply {
                        block: bid,
                        table,
                        index,
                        inc,
                    },
                );
            }
            Op::AtomicAdd { table, index, inc } => {
                let t = self.now + self.costs.atomic;
                self.push_event(
                    t,
                    EventKind::AtomicApply {
                        block: bid,
                        table,
                        index,
                        inc,
                    },
                );
            }
            _ => unreachable!("apply_sync_op called with a pure op"),
        }
    }

    fn apply_post(&mut self, poster: usize, table: SemArrayId, index: u32, inc: u32) {
        self.sems.add(table, index, inc);
        let new_value = self.sems.value(table, index);
        self.record(TraceEvent::SemPosted {
            table,
            index,
            new_value,
            time: self.now,
        });
        let wake_at = self.now + self.costs.poll;
        match self.mode {
            EngineMode::Reference => {
                if let Some(list) = self.waiters.get_mut(&(table.0, index)) {
                    let mut still = Vec::new();
                    let mut woken = Vec::new();
                    for &wbid in list.iter() {
                        let (_, _, target) =
                            self.blocks[wbid].waiting.expect("waiter without target");
                        if new_value >= target {
                            woken.push(wbid);
                        } else {
                            still.push(wbid);
                        }
                    }
                    *list = still;
                    for wbid in woken {
                        self.wake_block(wbid, wake_at);
                    }
                }
            }
            EngineMode::Optimized => {
                // Partition in place through reusable scratch storage: a
                // post to a semaphore nobody waits on touches no
                // allocator and no tree.
                let mut list = self.wait_lists.take(table, index);
                if !list.is_empty() {
                    let mut woken = std::mem::take(&mut self.wake_scratch);
                    woken.clear();
                    list.retain(|&wbid| {
                        let (_, _, target) =
                            self.blocks[wbid].waiting.expect("waiter without target");
                        if new_value >= target {
                            woken.push(wbid);
                            false
                        } else {
                            true
                        }
                    });
                    for &wbid in &woken {
                        self.wake_block(wbid, wake_at);
                    }
                    self.wake_scratch = woken;
                }
                self.wait_lists.put(table, index, list);
            }
        }
        self.push_event(self.now, EventKind::BlockResume(poster));
    }

    fn wake_block(&mut self, wbid: usize, wake_at: SimTime) {
        self.blocks[wbid].waiting = None;
        let sm = self.blocks[wbid].sm as usize;
        self.sm_active[sm] += self.blocks[wbid].units;
        self.active_units += self.blocks[wbid].units as u64;
        self.push_event(wake_at, EventKind::BlockResume(wbid));
    }

    fn finish_block(&mut self, bid: usize) {
        self.update_util();
        let (k, sm, units, idx) = {
            let slot = &self.blocks[bid];
            (slot.kernel, slot.sm, slot.units, slot.idx)
        };
        self.set_sm_free(sm as usize, self.sm_free[sm as usize] + units);
        self.sm_active[sm as usize] -= units;
        self.active_units -= units as u64;
        self.busy_units -= units as u64;
        self.last_finish = self.now;
        self.issue_dirty = true;
        self.record(TraceEvent::BlockFinished {
            kernel: KernelId(k),
            block: idx,
            time: self.now,
        });
        let kernel = &mut self.kernels[k];
        kernel.completed += 1;
        kernel.concurrent -= 1;
        if kernel.completed == kernel.total {
            kernel.end = Some(self.now);
            let stream = kernel.stream;
            self.record(TraceEvent::KernelFinished {
                kernel: KernelId(k),
                time: self.now,
            });
            self.streams[stream].next += 1;
            self.schedule_stream_head(stream);
        }
    }

    fn report(&self) -> RunReport {
        let sms = self.config.num_sms;
        let kernels: Vec<KernelReport> = self
            .kernels
            .iter()
            .map(|k| {
                let start = k.start.unwrap_or(k.ready_at);
                let end = k.end.unwrap_or(start);
                KernelReport {
                    name: k.name.clone(),
                    grid: k.grid,
                    occupancy: k.occupancy,
                    blocks: k.total,
                    static_waves: waves(k.total, k.occupancy, sms),
                    ready: k.ready_at,
                    start,
                    end,
                    duration: end.saturating_sub(start),
                    max_concurrent: k.max_concurrent,
                }
            })
            .collect();
        let total = kernels.iter().map(|k| k.end).max().unwrap_or(SimTime::ZERO);
        let span = match self.first_issue {
            Some(first) => self.last_finish.saturating_sub(first),
            None => SimTime::ZERO,
        };
        let capacity = sms as u128 * SM_CAPACITY_UNITS as u128;
        let sm_utilization = if span > SimTime::ZERO {
            self.util_integral as f64 / (capacity as f64 * span.as_picos() as f64)
        } else {
            0.0
        };
        let sem_posts = self.sems.ids().map(|id| self.sems.posts(id)).sum();
        RunReport {
            total,
            kernels,
            races: self.mem.races_total(),
            sm_utilization,
            sem_posts,
            sim_events: self.events_handled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::FixedKernel;

    fn quiet_config() -> GpuConfig {
        GpuConfig {
            host_launch_gap: SimTime::ZERO,
            kernel_dispatch_latency: SimTime::ZERO,
            block_jitter: 0.0,
            ..GpuConfig::toy(4)
        }
    }

    #[test]
    fn single_kernel_runs_in_waves() {
        let mut gpu = Gpu::new(quiet_config());
        let s = gpu.create_stream(0);
        // 6 blocks, occupancy 1, 4 SMs: two waves (4 then 2), like Fig. 1b.
        gpu.launch(
            s,
            Arc::new(FixedKernel::new(
                "k",
                Dim3::linear(6),
                1,
                vec![Op::compute(1000)],
            )),
        );
        let report = gpu.run().unwrap();
        let k = &report.kernels[0];
        assert_eq!(k.blocks, 6);
        assert!((k.static_waves - 1.5).abs() < 1e-9);
        assert_eq!(k.max_concurrent, 4);
        // Two sequential waves of compute(1000 cycles).
        let one_wave = GpuConfig::toy(4).cycles(1000);
        assert_eq!(k.duration, one_wave + one_wave);
    }

    #[test]
    fn same_stream_kernels_serialize() {
        let mut gpu = Gpu::new(quiet_config());
        let s = gpu.create_stream(0);
        gpu.launch(
            s,
            Arc::new(FixedKernel::new(
                "a",
                Dim3::linear(2),
                1,
                vec![Op::compute(500)],
            )),
        );
        gpu.launch(
            s,
            Arc::new(FixedKernel::new(
                "b",
                Dim3::linear(2),
                1,
                vec![Op::compute(500)],
            )),
        );
        let report = gpu.run().unwrap();
        assert!(report.kernel("b").start >= report.kernel("a").end);
    }

    #[test]
    fn different_streams_overlap() {
        let mut gpu = Gpu::new(quiet_config());
        let s1 = gpu.create_stream(0);
        let s2 = gpu.create_stream(0);
        gpu.launch(
            s1,
            Arc::new(FixedKernel::new(
                "a",
                Dim3::linear(2),
                1,
                vec![Op::compute(10_000)],
            )),
        );
        gpu.launch(
            s2,
            Arc::new(FixedKernel::new(
                "b",
                Dim3::linear(2),
                1,
                vec![Op::compute(10_000)],
            )),
        );
        let report = gpu.run().unwrap();
        // 4 SMs fit both 2-block kernels at once.
        assert!(report.kernel("b").start < report.kernel("a").end);
    }

    #[test]
    fn semaphore_wait_blocks_until_post() {
        let mut gpu = Gpu::new(quiet_config());
        let sem = gpu.alloc_sems("sem", 1, 0);
        let s1 = gpu.create_stream(0);
        let s2 = gpu.create_stream(0);
        gpu.launch(
            s1,
            Arc::new(FixedKernel::new(
                "producer",
                Dim3::linear(1),
                1,
                vec![Op::compute(100_000), Op::post(sem, 0)],
            )),
        );
        gpu.launch(
            s2,
            Arc::new(FixedKernel::new(
                "consumer",
                Dim3::linear(1),
                1,
                vec![Op::wait(sem, 0, 1), Op::compute(10)],
            )),
        );
        let report = gpu.run().unwrap();
        let producer_end = report.kernel("producer").end;
        let consumer_end = report.kernel("consumer").end;
        assert!(consumer_end > producer_end);
        assert_eq!(report.sem_posts, 1);
    }

    #[test]
    fn deadlock_is_detected_and_described() {
        let mut gpu = Gpu::new(quiet_config());
        let sem = gpu.alloc_sems("never", 1, 0);
        let s = gpu.create_stream(0);
        gpu.launch(
            s,
            Arc::new(FixedKernel::new(
                "stuck",
                Dim3::linear(1),
                1,
                vec![Op::wait(sem, 0, 1)],
            )),
        );
        let err = gpu.run().unwrap_err();
        match err {
            SimError::Deadlock {
                blocked, pending, ..
            } => {
                assert_eq!(pending, vec!["stuck".to_string()]);
                assert_eq!(blocked.len(), 1);
                assert!(blocked[0].contains("never[0] >= 1"), "{}", blocked[0]);
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn busy_wait_occupies_sm_slots_causing_deadlock() {
        // Consumer fills all 4 SMs busy-waiting; producer (launched later)
        // can never run: the Section III-B hazard.
        let mut gpu = Gpu::new(quiet_config());
        let sem = gpu.alloc_sems("tile", 1, 0);
        let s1 = gpu.create_stream(0);
        let s2 = gpu.create_stream(1); // higher priority: consumer issues first
        gpu.launch(
            s1,
            Arc::new(FixedKernel::new(
                "producer",
                Dim3::linear(4),
                1,
                vec![Op::compute(100), Op::post(sem, 0)],
            )),
        );
        gpu.launch(
            s2,
            Arc::new(FixedKernel::new(
                "consumer",
                Dim3::linear(4),
                1,
                vec![Op::wait(sem, 0, 4), Op::compute(10)],
            )),
        );
        let err = gpu.run().unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }), "{err}");
    }

    #[test]
    fn priority_orders_block_issue() {
        let mut gpu = Gpu::new(quiet_config());
        gpu.enable_trace();
        let lo = gpu.create_stream(0);
        let hi = gpu.create_stream(5);
        gpu.launch(
            lo,
            Arc::new(FixedKernel::new(
                "lo",
                Dim3::linear(4),
                1,
                vec![Op::compute(100)],
            )),
        );
        gpu.launch(
            hi,
            Arc::new(FixedKernel::new(
                "hi",
                Dim3::linear(4),
                1,
                vec![Op::compute(100)],
            )),
        );
        let _ = gpu.run().unwrap();
        let first_issue = gpu
            .trace()
            .iter()
            .find_map(|e| match e {
                TraceEvent::BlockIssued { kernel, .. } => Some(*kernel),
                _ => None,
            })
            .unwrap();
        // Both kernels become ready at t=0 (zero latencies); the
        // higher-priority stream's kernel issues first.
        assert_eq!(first_issue, KernelId(1));
    }

    #[test]
    fn atomic_add_returns_previous_value_in_order() {
        // Three blocks each fetch-add the counter; results must be 0,1,2 in
        // issue order (deterministic engine).
        use crate::kernel::{BlockBody, FnKernel};
        struct CounterBody {
            counter: SemArrayId,
            state: u8,
            seen: Option<u32>,
        }
        impl BlockBody for CounterBody {
            fn resume(&mut self, ctx: &mut BlockCtx<'_>) -> Step {
                match self.state {
                    0 => {
                        self.state = 1;
                        Step::Op(Op::AtomicAdd {
                            table: self.counter,
                            index: 0,
                            inc: 1,
                        })
                    }
                    1 => {
                        self.seen = ctx.atomic_result;
                        self.state = 2;
                        // Write our observation so the test can assert it.
                        Step::Op(Op::compute(10))
                    }
                    _ => Step::Done,
                }
            }
        }
        let mut gpu = Gpu::new(quiet_config());
        let counter = gpu.alloc_sems("ctr", 1, 0);
        let s = gpu.create_stream(0);
        gpu.launch(
            s,
            Arc::new(FnKernel::new("count", Dim3::linear(3), 1, move |_| {
                Box::new(CounterBody {
                    counter,
                    state: 0,
                    seen: None,
                })
            })),
        );
        gpu.run().unwrap();
        assert_eq!(gpu.sems().value(counter, 0), 3);
    }

    #[test]
    fn run_is_single_shot() {
        let mut gpu = Gpu::new(quiet_config());
        let s = gpu.create_stream(0);
        gpu.launch(
            s,
            Arc::new(FixedKernel::new("k", Dim3::linear(1), 1, vec![])),
        );
        gpu.run().unwrap();
        // A second run is an error, not an abort: library callers (e.g.
        // bench harness worker threads) must be able to recover.
        assert_eq!(gpu.run().unwrap_err(), SimError::AlreadyRan);
    }

    #[test]
    fn utilization_reflects_partial_waves() {
        let mut gpu = Gpu::new(quiet_config());
        let s = gpu.create_stream(0);
        // 2 blocks on 4 SMs: utilization 50% for the whole run.
        gpu.launch(
            s,
            Arc::new(FixedKernel::new(
                "k",
                Dim3::linear(2),
                1,
                vec![Op::compute(1000)],
            )),
        );
        let report = gpu.run().unwrap();
        assert!(
            (report.sm_utilization - 0.5).abs() < 1e-6,
            "{}",
            report.sm_utilization
        );
    }

    /// Builds one moderately adversarial workload: three streams with
    /// mixed priorities, a producer/consumer semaphore chain, atomics,
    /// fences, jitter and partial waves — every engine feature at once.
    fn mixed_workload(gpu: &mut Gpu) {
        let sem = gpu.alloc_sems("tiles", 8, 0);
        let ctr = gpu.alloc_sems("order", 1, 0);
        let s0 = gpu.create_stream(0);
        let s1 = gpu.create_stream(2);
        let s2 = gpu.create_stream(-1);
        gpu.launch(
            s0,
            Arc::new(FixedKernel::new(
                "producer",
                Dim3::linear(8),
                2,
                vec![
                    Op::read(64 * 1024),
                    Op::main_step(32 * 1024, 40_000),
                    Op::Syncthreads,
                    Op::Fence,
                    Op::post(sem, 0),
                    Op::write(16 * 1024),
                ],
            )),
        );
        gpu.launch(
            s1,
            Arc::new(FixedKernel::new(
                "consumer",
                Dim3::linear(8),
                2,
                vec![
                    Op::wait(sem, 0, 4),
                    Op::AtomicAdd {
                        table: ctr,
                        index: 0,
                        inc: 1,
                    },
                    Op::main_step(8 * 1024, 90_000),
                    Op::write(8 * 1024),
                ],
            )),
        );
        gpu.launch(
            s2,
            Arc::new(FixedKernel::new(
                "background",
                Dim3::linear(5),
                1,
                vec![Op::compute(250_000), Op::read(128 * 1024)],
            )),
        );
    }

    #[test]
    fn optimized_engine_matches_reference_exactly() {
        let run = |mode: EngineMode| {
            let mut gpu = Gpu::with_mode(GpuConfig::toy(4), mode);
            gpu.enable_trace();
            mixed_workload(&mut gpu);
            let report = gpu.run().unwrap();
            (report, gpu.trace().to_vec())
        };
        let (ref_report, ref_trace) = run(EngineMode::Reference);
        let (opt_report, opt_trace) = run(EngineMode::Optimized);
        assert_eq!(ref_report.kernels, opt_report.kernels);
        assert_eq!(ref_report.total, opt_report.total);
        assert_eq!(ref_report.sem_posts, opt_report.sem_posts);
        assert_eq!(ref_report.sm_utilization, opt_report.sm_utilization);
        assert_eq!(ref_trace, opt_trace, "scheduling traces must be identical");
        // The whole point: the optimized engine must do the same work with
        // fewer heap events (ops coalesced between sync points).
        assert!(
            opt_report.sim_events <= ref_report.sim_events,
            "optimized {} vs reference {}",
            opt_report.sim_events,
            ref_report.sim_events
        );
    }

    #[test]
    fn optimized_engine_matches_reference_on_deadlocks() {
        let run = |mode: EngineMode| {
            let mut gpu = Gpu::with_mode(
                GpuConfig {
                    host_launch_gap: SimTime::ZERO,
                    kernel_dispatch_latency: SimTime::ZERO,
                    ..GpuConfig::toy(4)
                },
                mode,
            );
            let sem = gpu.alloc_sems("tile", 2, 0);
            let s1 = gpu.create_stream(0);
            let s2 = gpu.create_stream(1);
            gpu.launch(
                s1,
                Arc::new(FixedKernel::new(
                    "producer",
                    Dim3::linear(4),
                    1,
                    vec![Op::compute(100), Op::post(sem, 0)],
                )),
            );
            gpu.launch(
                s2,
                Arc::new(FixedKernel::new(
                    "consumer",
                    Dim3::linear(4),
                    1,
                    vec![Op::wait(sem, 0, 4), Op::compute(10)],
                )),
            );
            gpu.run().unwrap_err()
        };
        let reference = run(EngineMode::Reference);
        let optimized = run(EngineMode::Optimized);
        assert_eq!(reference, optimized, "blocked/pending sets must match");
    }

    #[test]
    fn coalescing_respects_cross_block_memory_state() {
        // Jittered blocks finish a wave at staggered times, so a block's
        // later ops see different `active_units` than its first op did;
        // coalescing across those boundaries would drift the timeline.
        let run = |mode: EngineMode| {
            let mut gpu = Gpu::with_mode(GpuConfig::toy(3), mode);
            let s = gpu.create_stream(0);
            gpu.launch(
                s,
                Arc::new(FixedKernel::new(
                    "mem",
                    Dim3::linear(7),
                    1,
                    vec![
                        Op::read(256 * 1024),
                        Op::main_step(64 * 1024, 10_000),
                        Op::main_step(64 * 1024, 10_000),
                        Op::write(256 * 1024),
                    ],
                )),
            );
            gpu.run().unwrap()
        };
        let reference = run(EngineMode::Reference);
        let optimized = run(EngineMode::Optimized);
        assert_eq!(reference.kernels, optimized.kernels);
        assert_eq!(reference.sm_utilization, optimized.sm_utilization);
    }

    #[test]
    fn scoped_engine_mode_sets_and_restores_default() {
        assert_eq!(default_engine_mode(), EngineMode::Optimized);
        let inner = with_engine_mode(EngineMode::Reference, || {
            let gpu = Gpu::new(GpuConfig::toy(1));
            gpu.engine_mode()
        });
        assert_eq!(inner, EngineMode::Reference);
        assert_eq!(default_engine_mode(), EngineMode::Optimized);
    }

    #[test]
    fn engine_mode_restored_after_panic_in_scope() {
        let result =
            std::panic::catch_unwind(|| with_engine_mode(EngineMode::Reference, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(default_engine_mode(), EngineMode::Optimized);
    }

    #[test]
    fn lone_block_coalesces_to_a_handful_of_events() {
        // One block, no competitors: every op between launch and finish
        // coalesces, so the heap sees O(1) events instead of O(ops).
        let ops: Vec<Op> = (0..1000).map(|_| Op::compute(100)).collect();
        let mut gpu = Gpu::with_mode(quiet_config(), EngineMode::Optimized);
        let s = gpu.create_stream(0);
        gpu.launch(
            s,
            Arc::new(FixedKernel::new("solo", Dim3::linear(1), 1, ops)),
        );
        let report = gpu.run().unwrap();
        assert!(
            report.sim_events < 20,
            "expected a coalesced run, saw {} events",
            report.sim_events
        );
    }
}
