//! The discrete-event execution engine.
//!
//! Since the compile/execute split the engine is factored into three
//! pieces (see `crates/sim/README.md` for the lifecycle):
//!
//! - [`PipelineDesc`] — the *immutable* description of a workload: the
//!   hardware model, streams, and kernel registrations (sources, grids,
//!   occupancies, launch order, pre-computed `timing_static` flags). This
//!   is what [`CompiledPipeline`](crate::CompiledPipeline) freezes.
//! - [`RunState`] — *all* per-run state: event heaps and slabs, block
//!   slots, pre-driven op programs, semaphore values, functional memory,
//!   SM capacity indexes, stats and traces. [`RunState::reset`] rewinds it
//!   to the pipeline's initial conditions while keeping every arena
//!   allocation, so repeated runs are allocation-free after warmup.
//! - [`execute`] — the event loop itself, generic over both pieces. Both
//!   [`EngineMode`]s run through it and produce bit-identical timelines
//!   (`tests/engine_equivalence.rs`, `tests/session_reuse.rs`).
//!
//! [`Gpu`] remains the one-shot convenience wrapper: it owns one
//! `PipelineDesc` under construction plus one `RunState`, and
//! [`Gpu::run`] drives them through `execute` exactly once. Reusable
//! execution lives in [`Session`](crate::Session) /
//! [`Runtime`](crate::Runtime).
//!
//! The simulated semantics are unchanged from the original engine:
//! thread blocks issue onto SM slots in kernel launch order — the
//! scheduling behaviour the paper observes on Volta/Ampere GPUs
//! (Section III-B). Busy-waiting blocks keep occupying their SM slot, so
//! an under-provisioned schedule can deadlock; the engine detects this
//! and reports which semaphores were being waited on.
//!
//! Two interchangeable event loops implement the same semantics (see
//! [`EngineMode`] and `crates/sim/README.md`):
//!
//! - [`EngineMode::Reference`] — the original engine: after every event
//!   batch it rescans all kernels and all SMs, and every block micro-op is
//!   a separate heap event. Kept as the executable specification and the
//!   perf baseline for `BENCH_*.json`.
//! - [`EngineMode::Optimized`] — the O(1)-amortized hot paths: an
//!   incrementally maintained ready-queue of issuable kernels, a per-SM
//!   free-capacity index, coalesced runs of non-synchronizing ops, and
//!   dense per-semaphore wait-lists.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::fmt;
use std::sync::Arc;

use crate::config::{ClusterConfig, GpuConfig, SM_CAPACITY_UNITS};
use crate::dim::Dim3;
use crate::kernel::{BlockCtx, KernelSource, Step};
use crate::mem::{BufferId, DType, GlobalMemory};
use crate::ops::Op;
use crate::sched::{SchedContext, SchedPolicy, SchedPolicyRef};
use crate::sem::{SemArrayId, SemTable, WaitLists};
use crate::stats::{waves, KernelReport, RunReport};
use crate::time::SimTime;
use crate::trace::{KernelId, TraceEvent};

/// Device-sharded conservative parallel execution (see [`ExecMode`]).
/// A child module so it can reach the engine's private run state.
#[path = "engine_par.rs"]
pub(crate) mod par;

/// Identifier of a CUDA stream created on a [`Gpu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(usize);

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream{}", self.0)
    }
}

/// Which event-loop implementation a run uses.
///
/// Both modes produce **identical** simulated timelines ([`RunReport`]
/// kernel start/end times, traces, deadlock reports); they differ only in
/// wall-clock cost. The default for new [`Gpu`]s and
/// [`Session`](crate::Session)s is [`EngineMode::Optimized`]; use
/// [`with_engine_mode`] to run a scope of code (e.g. a perf baseline
/// sweep) on the reference engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineMode {
    /// The original O(kernels × SMs)-per-event engine, kept as the
    /// executable specification and perf baseline.
    Reference,
    /// Incremental ready-queue, SM capacity index, op coalescing, dense
    /// wait-lists.
    #[default]
    Optimized,
}

impl fmt::Display for EngineMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineMode::Reference => write!(f, "reference"),
            EngineMode::Optimized => write!(f, "optimized"),
        }
    }
}

thread_local! {
    static DEFAULT_ENGINE: Cell<EngineMode> = const { Cell::new(EngineMode::Optimized) };
}

/// The engine mode [`Gpu::new`] will use on this thread.
pub fn default_engine_mode() -> EngineMode {
    DEFAULT_ENGINE.with(Cell::get)
}

/// Sets the engine mode used by subsequent [`Gpu::new`] calls on this
/// thread. Prefer the scoped [`with_engine_mode`] where possible.
pub fn set_default_engine_mode(mode: EngineMode) {
    DEFAULT_ENGINE.with(|m| m.set(mode));
}

/// Runs `f` with the thread's default engine mode set to `mode`, restoring
/// the previous default afterwards. This is how harness code runs existing
/// workload builders (which call [`Gpu::new`] internally) on a chosen
/// engine without threading a parameter through every layer.
pub fn with_engine_mode<R>(mode: EngineMode, f: impl FnOnce() -> R) -> R {
    struct Restore(EngineMode);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_default_engine_mode(self.0);
        }
    }
    // Restore on unwind too: a panicking closure (e.g. a failed test
    // assertion inside a scoped Reference-mode run) must not leave the
    // thread's default pinned to `mode`.
    let _restore = Restore(default_engine_mode());
    set_default_engine_mode(mode);
    f()
}

/// Whether a run executes its event loop serially or sharded by device.
///
/// Orthogonal to [`EngineMode`]: `EngineMode` picks the event-loop
/// *implementation* (reference spec vs optimized hot paths), `ExecMode`
/// picks how many event loops advance at once. [`ExecMode::Parallel`]
/// shards the optimized loop by device — each device drains its own heap
/// up to the next link-crossing horizon, then devices exchange
/// cross-device semaphore effects (a conservative PDES scheme; see
/// `crates/sim/README.md`). Timelines are **bit-identical** to serial
/// runs; pipelines the sharder cannot prove safe (non-`timing_static`
/// kernels, waits on remote-homed semaphores, traces, single device, a
/// zero-latency link) silently run serially.
///
/// The default is [`ExecMode::Serial`]. Opt in per cluster
/// ([`ClusterConfig::with_exec`](crate::ClusterConfig::with_exec)), per
/// session ([`Session::set_exec`](crate::Session::set_exec)), or globally
/// via the `CUSYNC_EXEC=parallel` environment variable (how CI forces the
/// equivalence suite through the sharded engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecMode {
    /// One event loop advances the whole cluster (the original scheme).
    #[default]
    Serial,
    /// Device-sharded conservative parallel execution where provably
    /// safe; serial otherwise. Thread budget comes from
    /// `std::thread::available_parallelism` unless overridden
    /// ([`Session::set_threads`](crate::Session::set_threads)).
    Parallel,
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecMode::Serial => write!(f, "serial"),
            ExecMode::Parallel => write!(f, "parallel"),
        }
    }
}

/// The `CUSYNC_EXEC` environment override, read once per process:
/// `parallel` / `serial` force that [`ExecMode`] for every run that does
/// not carry an explicit session-level override.
pub(crate) fn env_exec_override() -> Option<ExecMode> {
    static ENV_EXEC: std::sync::OnceLock<Option<ExecMode>> = std::sync::OnceLock::new();
    *ENV_EXEC.get_or_init(|| match std::env::var("CUSYNC_EXEC") {
        Ok(v) if v.eq_ignore_ascii_case("parallel") => Some(ExecMode::Parallel),
        Ok(v) if v.eq_ignore_ascii_case("serial") => Some(ExecMode::Serial),
        _ => None,
    })
}

/// Whether the optimized engine encodes `BlockResume` payloads inline in
/// the event key's payload word instead of round-tripping the event slab.
/// Identical timelines either way (ordering keys are untouched); this
/// exists so `bench_pr7` can measure the shave honestly. Default on.
static RESUME_INLINE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(true);

/// Toggles the inline `BlockResume` event encoding (bench instrumentation
/// only; results are bit-identical either way).
#[doc(hidden)]
pub fn set_resume_inline(enabled: bool) {
    RESUME_INLINE.store(enabled, std::sync::atomic::Ordering::Relaxed);
}

/// Event-slab payload tag for an inline-encoded `BlockResume` (high bit of
/// the payload word; block ids stay far below it).
const RESUME_TAG: u32 = 1 << 31;

/// What kind of input a kernel or pipeline builder rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuildErrorKind {
    /// A required input (operand buffer, stage) was never provided.
    MissingInput,
    /// A provided shape is degenerate: a zero-sized problem dimension or
    /// thread-block tile, which would launch an empty or undefined grid.
    InvalidShape,
}

/// Error from a kernel or pipeline builder: a required input was never
/// provided — or a provided shape was degenerate — before `build()` was
/// called.
///
/// Builders used to `panic!` on missing operands (and aborted deep in
/// `Gpu::launch` on empty grids); they now return this typed error so
/// library callers (model assemblers, autotuners) can surface the problem
/// instead of aborting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildError {
    /// Which builder rejected the build (e.g. `"GemmBuilder(gemm1)"`).
    pub builder: String,
    /// The offending input: the required input that was not set (e.g.
    /// `"A operand"`), or a description of the degenerate shape.
    pub missing: String,
    /// How the input was rejected.
    pub kind: BuildErrorKind,
}

impl BuildError {
    /// A "required input not set" error.
    pub fn missing(builder: impl Into<String>, missing: impl Into<String>) -> Self {
        BuildError {
            builder: builder.into(),
            missing: missing.into(),
            kind: BuildErrorKind::MissingInput,
        }
    }

    /// A "degenerate shape" error.
    pub fn invalid(builder: impl Into<String>, what: impl Into<String>) -> Self {
        BuildError {
            builder: builder.into(),
            missing: what.into(),
            kind: BuildErrorKind::InvalidShape,
        }
    }
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            BuildErrorKind::MissingInput => write!(
                f,
                "{}: required input not set: {}",
                self.builder, self.missing
            ),
            BuildErrorKind::InvalidShape => {
                write!(f, "{}: invalid shape: {}", self.builder, self.missing)
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// One thread block stalled on an unmet semaphore at deadlock time: a
/// node of the wait cycle a [`DeadlockReport`] describes.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockedBlock {
    /// Kernel the block belongs to.
    pub kernel: KernelId,
    /// Name of that kernel.
    pub kernel_name: String,
    /// Block index within the kernel grid.
    pub block: Dim3,
    /// SM whose slot the spinning block occupies.
    pub sm: u32,
    /// Device that SM belongs to.
    pub device: u32,
    /// Semaphore array being polled.
    pub sem: SemArrayId,
    /// Name of that array.
    pub sem_name: String,
    /// Index polled within the array.
    pub index: u32,
    /// Value the block is waiting for the semaphore to reach.
    pub target: u32,
    /// Value the semaphore actually held when progress stopped.
    pub current: u32,
}

impl fmt::Display for BlockedBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} block {} waits {}[{}] >= {} (currently {})",
            self.kernel_name, self.block, self.sem_name, self.index, self.target, self.current,
        )
    }
}

/// An unfinished kernel at deadlock time, with its launch progress — the
/// *resident vs. unlaunched* split that closes the wait cycle (unlaunched
/// blocks are the ones that would have posted the spun-on semaphores).
#[derive(Debug, Clone, PartialEq)]
pub struct PendingKernel {
    /// The kernel.
    pub kernel: KernelId,
    /// Its name.
    pub name: String,
    /// Device its blocks occupy SMs on.
    pub device: u32,
    /// Total thread blocks of the grid.
    pub total: u64,
    /// Blocks that were issued onto an SM.
    pub issued: u64,
    /// Blocks that ran to completion.
    pub completed: u64,
}

impl PendingKernel {
    /// Blocks that never reached an SM — the starved half of the cycle.
    pub fn unissued(&self) -> u64 {
        self.total - self.issued
    }
}

impl fmt::Display for PendingKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}/{} blocks issued ({} unlaunched, {} completed) on device {}",
            self.name,
            self.issued,
            self.total,
            self.unissued(),
            self.completed,
            self.device,
        )
    }
}

/// Occupancy of one SM at deadlock time. At a true occupancy deadlock
/// every resident unit is a spinner: `active_units` (units still making
/// progress) is zero while `spinning_units` holds the busy-waiters that
/// keep the slot hostage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmOccupancy {
    /// Global SM index.
    pub sm: u32,
    /// Owning device.
    pub device: u32,
    /// Capacity units still free (out of [`SM_CAPACITY_UNITS`]).
    pub free_units: u32,
    /// Units of resident blocks that were actively executing.
    pub active_units: u32,
    /// Units of resident blocks parked busy-waiting on semaphores.
    pub spinning_units: u32,
}

/// Structured description of a detected deadlock: the wait cycle of
/// Section III-B, as data.
///
/// The cycle reads: the [`blocked`](DeadlockReport::blocked) blocks
/// occupy SM slots spinning on semaphores; the semaphores can only be
/// posted by the [`unissued`](PendingKernel::unissued) blocks of the
/// [`pending`](DeadlockReport::pending) kernels; those blocks cannot
/// launch because the [`sms`](DeadlockReport::sms) have no free capacity
/// — which the spinning blocks are holding. [`DeadlockReport::wait_cycle`]
/// renders exactly that sentence from the data; `Display` prints the full
/// diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlockReport {
    /// Simulated time at which progress stopped.
    pub time: SimTime,
    /// Every resident block parked on an unmet semaphore.
    pub blocked: Vec<BlockedBlock>,
    /// Every unfinished kernel with its issue/completion progress.
    pub pending: Vec<PendingKernel>,
    /// Occupancy of every SM holding at least one resident block.
    pub sms: Vec<SmOccupancy>,
}

impl DeadlockReport {
    /// Names of the unfinished kernels, in launch order.
    pub fn pending_names(&self) -> Vec<String> {
        self.pending.iter().map(|p| p.name.clone()).collect()
    }

    /// The pending kernels with unlaunched blocks — the kernels starved of
    /// SM capacity by the spinners.
    pub fn starved(&self) -> impl Iterator<Item = &PendingKernel> {
        self.pending.iter().filter(|p| p.unissued() > 0)
    }

    /// Distinct `array[index]` semaphore names the blocked blocks poll.
    pub fn polled_sems(&self) -> Vec<String> {
        let mut sems: Vec<String> = self
            .blocked
            .iter()
            .map(|b| format!("{}[{}]", b.sem_name, b.index))
            .collect();
        sems.sort();
        sems.dedup();
        sems
    }

    /// Renders the wait cycle as one sentence, or `None` when the stall is
    /// not an occupancy cycle (e.g. a semaphore that simply has no poster:
    /// blocked blocks but no starved kernel).
    pub fn wait_cycle(&self) -> Option<String> {
        if self.blocked.is_empty() {
            return None;
        }
        let spinners: Vec<&str> = {
            let mut names: Vec<&str> = self
                .blocked
                .iter()
                .map(|b| b.kernel_name.as_str())
                .collect();
            names.sort();
            names.dedup();
            names
        };
        let starved: Vec<String> = self.starved().map(|p| p.name.clone()).collect();
        if starved.is_empty() {
            return None;
        }
        Some(format!(
            "[{}] occupy SM slots spinning on [{}] -> [{}] cannot launch their remaining \
             blocks (no free SM capacity) -> the polled semaphores never reach their targets",
            spinners.join(", "),
            self.polled_sems().join(", "),
            starved.join(", "),
        ))
    }
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "deadlock at {}: {} blocked thread block(s), pending kernels [{}]",
            self.time,
            self.blocked.len(),
            self.pending_names().join(", "),
        )?;
        for b in &self.blocked {
            write!(f, "\n  blocked: {b} (sm {}, device {})", b.sm, b.device)?;
        }
        for p in &self.pending {
            write!(f, "\n  pending: {p}")?;
        }
        for s in &self.sms {
            write!(
                f,
                "\n  occupancy: sm{} d{}: {} free, {} active, {} spinning (of {})",
                s.sm, s.device, s.free_units, s.active_units, s.spinning_units, SM_CAPACITY_UNITS,
            )?;
        }
        if let Some(cycle) = self.wait_cycle() {
            write!(f, "\n  wait cycle: {cycle}")?;
        }
        Ok(())
    }
}

impl std::error::Error for DeadlockReport {}

/// Error raised by [`Gpu::run`] and [`Session::run`](crate::Session::run).
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// No event can make progress but kernels remain incomplete: every
    /// resident block is busy-waiting on a semaphore and no SM slot is free
    /// for the blocks that would post — the hazard of omitting the
    /// wait-kernel (Section III-B). The report names the wait cycle; see
    /// [`DeadlockReport`].
    Deadlock(Box<DeadlockReport>),
    /// [`Gpu::run`] was called a second time on the same [`Gpu`], or
    /// [`Gpu::compile`] was called after a run. The one-shot `Gpu` wrapper
    /// consumes its launched kernels; for repeated execution compile the
    /// pipeline once and run it through a [`Session`](crate::Session).
    AlreadyRan,
    /// A kernel builder rejected its inputs (surfaced here so pipeline
    /// assembly code can use one error type end to end).
    Build(BuildError),
    /// A [`Runtime`](crate::Runtime) worker disappeared before the
    /// submitted pipeline produced a report (the pool was dropped or a
    /// worker panicked).
    RuntimeShutdown,
    /// The submitted pipeline panicked while executing on a
    /// [`Runtime`](crate::Runtime) worker. The payload is the panic
    /// message; the worker survives (it replaces its possibly-poisoned
    /// session) and keeps serving subsequent submissions.
    WorkerPanic(String),
    /// A [`Runtime`](crate::Runtime) worker produced no result within the
    /// deadline passed to [`Ticket::wait_deadline`](crate::Ticket) — the
    /// worker died outside the panic path (e.g. the OS killed its thread)
    /// or is wedged. Unlike [`SimError::RuntimeShutdown`] the submission
    /// channel is still open, so a later wait may yet observe a result if
    /// the worker recovers.
    WorkerLost,
}

impl From<BuildError> for SimError {
    fn from(e: BuildError) -> Self {
        SimError::Build(e)
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(report) => write!(f, "{report}"),
            SimError::AlreadyRan => {
                write!(f, "Gpu::run may only be called once per Gpu")
            }
            SimError::Build(e) => write!(f, "{e}"),
            SimError::RuntimeShutdown => {
                write!(f, "runtime worker pool shut down before the run completed")
            }
            SimError::WorkerPanic(msg) => {
                write!(f, "pipeline panicked on a runtime worker: {msg}")
            }
            SimError::WorkerLost => {
                write!(
                    f,
                    "runtime worker produced no result within the wait deadline"
                )
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Build(e) => Some(e),
            SimError::Deadlock(report) => Some(report.as_ref()),
            SimError::AlreadyRan
            | SimError::RuntimeShutdown
            | SimError::WorkerPanic(_)
            | SimError::WorkerLost => None,
        }
    }
}

/// A rational scale factor on simulated link wire time — the knob fault
/// injection turns to model a degraded interconnect (flapping NVLink lane,
/// congested PCIe switch). Applied to the [`Op::LinkSend`] wire-time term
/// only: link latency (the post→observe edge) and every SM-side cost are
/// untouched, so a degraded link slows collectives without perturbing the
/// compute timeline. Exact integer arithmetic keeps scaled runs
/// bit-identical across engine modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkScale {
    /// Scale numerator.
    pub num: u32,
    /// Scale denominator (must be non-zero).
    pub den: u32,
}

impl LinkScale {
    /// The no-op scale (wire time unchanged).
    pub const IDENTITY: LinkScale = LinkScale { num: 1, den: 1 };

    /// An integer slowdown: `times(4)` makes every `LinkSend` pay 4× its
    /// healthy wire time.
    pub fn times(factor: u32) -> Self {
        LinkScale {
            num: factor,
            den: 1,
        }
    }

    /// An arbitrary rational scale `num/den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn ratio(num: u32, den: u32) -> Self {
        assert!(den != 0, "LinkScale denominator must be non-zero");
        LinkScale { num, den }
    }

    /// Whether this scale leaves wire time unchanged.
    pub fn is_identity(self) -> bool {
        self.num == self.den
    }

    /// `t * num / den` in exact integer picoseconds.
    pub fn apply(self, t: SimTime) -> SimTime {
        SimTime::from_picos((t.as_picos() as u128 * self.num as u128 / self.den as u128) as u64)
    }
}

/// Per-run execution knobs threaded from [`Session`](crate::Session) into
/// the engine: the abort horizon of a checkpointed run and the link
/// degradation scale. `Default` is a plain unbounded, healthy-link run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct RunOptions {
    /// Abort at the first kernel-completion boundary at or after this
    /// virtual instant (see [`RunOutcome::Aborted`]).
    pub(crate) abort_at: Option<SimTime>,
    /// Scale every [`Op::LinkSend`] wire time by this factor.
    pub(crate) link_scale: Option<LinkScale>,
}

/// Outcome of a horizon-bounded run
/// ([`Session::run_until`](crate::Session::run_until)).
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// Every kernel finished before a kernel boundary at or past the
    /// horizon was reached; the run is indistinguishable from an
    /// unbounded [`Session::run`](crate::Session::run).
    Complete(RunReport),
    /// The run was checkpointed: execution stopped at the first *kernel
    /// boundary* (a kernel's last block completing) at or after the
    /// horizon, leaving later kernels unfinished. The residue describes
    /// the checkpoint so a dispatcher can requeue the remaining work.
    Aborted(RunResidue),
}

/// A resumable checkpoint descriptor for a horizon-aborted run: where the
/// engine stopped and how much of the pipeline had retired. The serving
/// layer prices the requeued remainder as `full_duration - aborted_at`
/// plus its preemption overhead (see `crates/serve`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResidue {
    /// The kernel boundary the run was checkpointed at (the first kernel
    /// completion at or after the requested horizon). Identical in both
    /// engine modes.
    pub aborted_at: SimTime,
    /// Kernels fully retired at the checkpoint.
    pub kernels_done: usize,
    /// Total kernels in the pipeline.
    pub kernels_total: usize,
    /// Thread blocks fully retired at the checkpoint.
    pub blocks_done: u64,
    /// Total thread blocks in the pipeline.
    pub blocks_total: u64,
}

impl RunResidue {
    /// Virtual time still owed by the checkpointed work, given the
    /// pipeline's unbounded-run duration `total`.
    pub fn remaining(&self, total: SimTime) -> SimTime {
        total.saturating_sub(self.aborted_at)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    KernelReady(usize),
    BlockResume(usize),
    PostApply {
        block: usize,
        table: SemArrayId,
        index: u32,
        inc: u32,
    },
    AtomicApply {
        block: usize,
        table: SemArrayId,
        index: u32,
        inc: u32,
    },
    /// A semaphore post arriving from another device's shard (parallel
    /// execution only). Like [`EventKind::PostApply`] but with no local
    /// poster block to resume: the poster resumed on its own shard.
    /// `poster` carries the posting kernel's index for the trace, so
    /// sharded runs record the same [`TraceEvent::SemPosted`] a serial
    /// run would.
    RemotePost {
        table: SemArrayId,
        index: u32,
        inc: u32,
        poster: Option<usize>,
    },
    /// An atomic increment arriving from another device's shard (parallel
    /// execution only). Bumps the semaphore value without waking waiters
    /// or resuming a poster, mirroring [`EventKind::AtomicApply`].
    RemoteAtomic {
        table: SemArrayId,
        index: u32,
        inc: u32,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One stream of the pipeline description: its device, priority and the
/// launch queue of kernel indexes (immutable after compile; the per-run
/// cursor lives in [`RunState::stream_next`]).
pub(crate) struct StreamDesc {
    pub(crate) device: u32,
    pub(crate) priority: i32,
    pub(crate) queue: Vec<usize>,
}

/// A launch prerequisite tying one kernel's dispatch to another kernel's
/// progress — the simulator's model of CUDA's Programmatic Dependent
/// Launch (PDL) family of grid-level ordering primitives.
///
/// A kernel with gates becomes dispatchable only once its stream reaches
/// it **and** every gate is satisfied. Until then it consumes no SM
/// capacity at all (unlike a busy-waiting block). Register gates with
/// [`Gpu::gate_launch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchGate {
    /// Satisfied when the target kernel's **final thread block becomes
    /// resident** on an SM — the hardware PDL trigger
    /// (`cudaTriggerProgrammaticLaunchCompletion`): the dependent grid
    /// launches while the producer's last wave is still executing, so its
    /// preamble overlaps the producer tail.
    AfterLaunchOf(KernelId),
    /// Satisfied when the target kernel has **fully completed** — stream
    /// serialization expressed across streams (the `StreamSerial` sync
    /// mechanism).
    AfterCompletionOf(KernelId),
}

impl LaunchGate {
    /// The kernel this gate observes.
    pub fn target(&self) -> KernelId {
        match *self {
            LaunchGate::AfterLaunchOf(k) | LaunchGate::AfterCompletionOf(k) => k,
        }
    }
}

/// The immutable, per-kernel half of what used to be `KernelState`:
/// everything fixed at launch/compile time.
pub(crate) struct KernelDesc {
    pub(crate) source: Arc<dyn KernelSource>,
    pub(crate) name: String,
    pub(crate) stream: usize,
    /// Device the owning stream lives on: this kernel's blocks only
    /// occupy that device's SMs.
    pub(crate) device: u32,
    pub(crate) priority: i32,
    pub(crate) host_ready: SimTime,
    pub(crate) grid: Dim3,
    pub(crate) total: u64,
    pub(crate) occupancy: u32,
    pub(crate) units: u32,
    /// This kernel's bodies are context-independent
    /// ([`KernelSource::timing_static`]), so the optimized engine may
    /// pre-drive blocks into flat op programs at issue. Computed once by
    /// [`PipelineDesc::finalize`]; the reference engine ignores it.
    pub(crate) predrive: bool,
    /// Launch prerequisites beyond stream order (see [`LaunchGate`]).
    pub(crate) gates: Vec<LaunchGate>,
    /// Semaphore posts fired the instant this kernel's final block
    /// finishes (the producer half of a PDL edge; consumers park on the
    /// posted semaphore from their main body).
    pub(crate) completion_posts: Vec<(SemArrayId, u32)>,
}

/// The frozen description of a workload: hardware model, fixed op costs,
/// streams, and kernel registrations in launch order. Immutable after
/// compilation; every per-run mutable cell lives in [`RunState`], and the
/// pre-driven op programs live in a (lazily built, then immutable)
/// [`Programs`] at the compiled-pipeline layer.
pub(crate) struct PipelineDesc {
    pub(crate) cluster: ClusterConfig,
    /// Fixed op costs per device, index-aligned with `cluster.devices`.
    pub(crate) costs: Vec<FixedCosts>,
    /// Global index of each device's first SM (devices own contiguous SM
    /// ranges of the flat per-SM arrays in [`RunState`]).
    pub(crate) sm_base: Vec<u32>,
    /// Owning device of each global SM index.
    pub(crate) device_of_sm: Vec<u32>,
    pub(crate) streams: Vec<StreamDesc>,
    pub(crate) kernels: Vec<KernelDesc>,
    /// Host-side launch cursor per device, only advanced while building.
    /// Each device's kernels are launched by its own host thread (the
    /// tensor-parallel ranks of a multi-GPU job), so launches to
    /// different devices do not serialize on one host queue.
    host_time: Vec<SimTime>,
    /// Reverse gate index: kernels gated [`LaunchGate::AfterLaunchOf`]
    /// each kernel, resolved once by [`PipelineDesc::finalize_flags`].
    pub(crate) launch_dependents: Vec<Vec<usize>>,
    /// Reverse gate index for [`LaunchGate::AfterCompletionOf`].
    pub(crate) completion_dependents: Vec<Vec<usize>>,
    finalized: bool,
}

/// The compile-time pre-driven block programs of a pipeline's
/// `timing_static` kernels: every eligible body is driven **once** into
/// contiguous op slices, so optimized-engine runs replay them through a
/// cursor without re-constructing or re-interpreting any coroutine body
/// (and without allocating it). The reference engine never reads this —
/// it is built only for consumers that will run optimized (see
/// `CompiledPipeline::programs`), so reference-engine baselines don't pay
/// for collection.
pub(crate) struct Programs {
    /// Arena of program ops; each block's program is contiguous.
    block_ops: Vec<Op>,
    /// Flat `(start, len)` spans into `block_ops`, one per pre-driven
    /// block, grouped per kernel in linear block order.
    prog_spans: Vec<(u32, u32)>,
    /// Per kernel: index of its first span in `prog_spans`, or
    /// `u32::MAX` for kernels that are not pre-driven.
    prog_base: Vec<u32>,
}

impl Programs {
    /// The empty program table the reference engine runs with.
    pub(crate) fn empty() -> Self {
        Programs {
            block_ops: Vec::new(),
            prog_spans: Vec::new(),
            prog_base: Vec::new(),
        }
    }
}

impl PipelineDesc {
    pub(crate) fn new(cluster: ClusterConfig) -> Self {
        let costs = cluster.devices.iter().map(FixedCosts::of).collect();
        let mut sm_base = Vec::with_capacity(cluster.devices.len());
        let mut device_of_sm = Vec::with_capacity(cluster.total_sms() as usize);
        let mut base = 0u32;
        for (d, gpu) in cluster.devices.iter().enumerate() {
            sm_base.push(base);
            device_of_sm.extend(std::iter::repeat_n(d as u32, gpu.num_sms as usize));
            base += gpu.num_sms;
        }
        let host_time = vec![SimTime::ZERO; cluster.devices.len()];
        PipelineDesc {
            cluster,
            costs,
            sm_base,
            device_of_sm,
            streams: Vec::new(),
            kernels: Vec::new(),
            host_time,
            launch_dependents: Vec::new(),
            completion_dependents: Vec::new(),
            finalized: false,
        }
    }

    /// Device 0's hardware model — what the single-GPU accessors
    /// ([`Gpu::config`], `CompiledPipeline::config`) report.
    pub(crate) fn primary_config(&self) -> &GpuConfig {
        &self.cluster.devices[0]
    }

    /// Hardware model of device `d`.
    pub(crate) fn device_config(&self, d: u32) -> &GpuConfig {
        self.cluster.device(d)
    }

    /// Computes each kernel's `timing_static` pre-drive eligibility
    /// against the pipeline's initial memory. Part of compilation: the
    /// answer depends only on buffer functionality, which is fixed at
    /// allocation and never changes during a run.
    pub(crate) fn finalize_flags(&mut self, mem: &GlobalMemory) {
        if self.finalized {
            return;
        }
        self.finalized = true;
        for k in &mut self.kernels {
            k.predrive = k.source.timing_static(mem);
        }
        let mut launch_dependents = vec![Vec::new(); self.kernels.len()];
        let mut completion_dependents = vec![Vec::new(); self.kernels.len()];
        for (k, kd) in self.kernels.iter().enumerate() {
            for gate in &kd.gates {
                match *gate {
                    LaunchGate::AfterLaunchOf(p) => launch_dependents[p.0].push(k),
                    LaunchGate::AfterCompletionOf(p) => completion_dependents[p.0].push(k),
                }
            }
        }
        self.launch_dependents = launch_dependents;
        self.completion_dependents = completion_dependents;
    }

    /// Collects every eligible block's flat op program (see
    /// [`Programs`]). `timing_static` bodies are context-independent and
    /// effect-free by contract, so the op streams collected here — driven
    /// once, against the pipeline's initial memory — are exactly what
    /// issue-time driving would produce on any run. Requires
    /// [`PipelineDesc::finalize_flags`] to have run.
    pub(crate) fn collect_programs(&self, mem: &mut GlobalMemory, sems: &SemTable) -> Programs {
        debug_assert!(self.finalized, "collect_programs before finalize_flags");
        let mut programs = Programs {
            block_ops: Vec::new(),
            prog_spans: Vec::new(),
            prog_base: vec![u32::MAX; self.kernels.len()],
        };
        let mut ops: Vec<Op> = Vec::new();
        for (k, kd) in self.kernels.iter().enumerate() {
            if !kd.predrive {
                continue;
            }
            programs.prog_base[k] = programs.prog_spans.len() as u32;
            for linear in 0..kd.total {
                let idx = kd.grid.delinear(linear);
                let mut body = kd.source.block(idx);
                ops.clear();
                loop {
                    let step = {
                        let mut ctx = BlockCtx {
                            block: idx,
                            now: SimTime::ZERO,
                            mem,
                            sems,
                            atomic_result: None,
                        };
                        body.resume(&mut ctx)
                    };
                    match step {
                        Step::Op(op) => ops.push(op),
                        Step::Done => break,
                    }
                }
                let start = programs.block_ops.len() as u32;
                programs.block_ops.extend_from_slice(&ops);
                programs.prog_spans.push((start, ops.len() as u32));
            }
        }
        programs
    }
}

/// The per-kernel mutable half: progress counters and timestamps, reset
/// between runs.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct KernelRun {
    issued: u64,
    completed: u64,
    ready: bool,
    ready_at: SimTime,
    start: Option<SimTime>,
    end: Option<SimTime>,
    concurrent: u64,
    max_concurrent: u64,
    /// Blocks currently parked busy-waiting on an unmet semaphore —
    /// identical in both engine modes at every try-issue instant, so
    /// dynamic [`SchedPolicy`]s may key on it.
    parked: u64,
}

impl KernelRun {
    /// Blocks issued onto SMs so far (read by [`SchedContext`]).
    pub(crate) fn issued(&self) -> u64 {
        self.issued
    }

    /// Blocks currently parked on unmet semaphores (read by
    /// [`SchedContext`]).
    pub(crate) fn parked(&self) -> u64 {
        self.parked
    }
}

/// A step the block already yielded whose application was deferred to the
/// end of a coalesced run of non-synchronizing ops.
#[derive(Debug, Clone, Copy)]
enum PendingStep {
    Op(Op),
    Done,
}

struct BlockSlot {
    kernel: usize,
    idx: Dim3,
    sm: u32,
    units: u32,
    body: Option<Box<dyn crate::kernel::BlockBody>>,
    atomic_result: Option<u32>,
    waiting: Option<(SemArrayId, u32, u32)>,
    pending: Option<PendingStep>,
    /// The block's deterministic duration-variance factor, computed once
    /// at issue. The reference engine ignores this and recomputes the
    /// hash per op, as the original engine did.
    jitter: f64,
    /// Pre-driven op program: `[prog_start, prog_start + prog_len)` into
    /// the *pipeline's* compile-time `block_ops` arena, or
    /// `prog_start == u32::MAX` for coroutine-driven blocks. Program
    /// blocks have no side effects, so the cursor path may re-read an op
    /// after deferral.
    prog_start: u32,
    prog_len: u32,
    prog_pc: u32,
}

impl BlockSlot {
    #[inline]
    fn has_program(&self) -> bool {
        self.prog_start != u32::MAX
    }
}

/// Fixed-latency op costs converted to [`SimTime`] once at construction,
/// so the per-event hot path never re-runs the cycles→picoseconds float
/// conversion for constants.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FixedCosts {
    global_latency: SimTime,
    atomic: SimTime,
    poll: SimTime,
    fence: SimTime,
    syncthreads: SimTime,
}

impl FixedCosts {
    fn of(config: &GpuConfig) -> Self {
        FixedCosts {
            global_latency: config.cycles(config.global_latency_cycles),
            atomic: config.cycles(config.atomic_latency_cycles),
            poll: config.cycles(config.poll_latency_cycles),
            fence: config.cycles(config.fence_cycles),
            syncthreads: config.cycles(config.syncthreads_cycles),
        }
    }
}

/// Every mutable cell a run touches, pooled so repeated runs reuse the
/// arenas instead of reallocating them.
///
/// # Reset invariants (see `crates/sim/README.md`)
///
/// [`RunState::reset`] must leave the state indistinguishable (to the
/// event loop) from a freshly constructed one, while keeping allocations:
///
/// - heaps/slabs/vectors are cleared, not dropped (capacity survives);
/// - `sm_free` is refilled to [`SM_CAPACITY_UNITS`] per SM of the target
///   pipeline's config, `sm_active` to zero;
/// - kernel progress ([`KernelRun`]) and stream cursors return to zero;
/// - stats integrals, event counters and traces return to zero/empty;
/// - memory and semaphores are restored separately
///   ([`GlobalMemory::reset_from`], [`SemTable::reset_from`]) because the
///   one-shot [`Gpu`] path owns them live while a
///   [`Session`](crate::Session) restores them from the compiled
///   pipeline's pristine copies.
pub(crate) struct RunState {
    pub(crate) mem: GlobalMemory,
    pub(crate) sems: SemTable,
    kernels: Vec<KernelRun>,
    stream_next: Vec<usize>,
    /// Outstanding launch prerequisites per kernel: one for stream-head
    /// arrival plus one per [`LaunchGate`]. The kernel's `KernelReady`
    /// event is pushed when the counter reaches zero — i.e. at the time
    /// the *last* prerequisite is satisfied.
    prereqs: Vec<u32>,
    now: SimTime,
    events: BinaryHeap<Reverse<Event>>,
    /// Optimized-mode event queue: `(time << 64) | seq` keys ordered by a
    /// single `u128` compare, payloads in `event_slab`. Heap sifts move
    /// 24-byte copies instead of full [`Event`] structs.
    fast_events: BinaryHeap<Reverse<(u128, u32)>>,
    event_slab: Vec<EventKind>,
    event_free: Vec<u32>,
    event_seq: u64,
    events_handled: u64,
    sm_free: Vec<u32>,
    /// Units of *actively executing* (not semaphore-waiting) blocks per
    /// SM; busy-wait spinners occupy their slot but consume negligible
    /// execution throughput.
    sm_active: Vec<u32>,
    /// Per-device sum of that device's `sm_active` entries, for the
    /// dynamic DRAM-share model (each device owns its own DRAM).
    active_units: Vec<u64>,
    blocks: Vec<BlockSlot>,
    /// Reference-mode waiter registry (the original representation).
    waiters: BTreeMap<(usize, u32), Vec<usize>>,
    /// Optimized-mode waiter registry: dense per-array wait-lists.
    wait_lists: WaitLists,
    /// Optimized mode: kernels that are ready and still have unissued
    /// blocks, ordered exactly like the reference scan's sort key.
    ready_queue: BTreeSet<(Reverse<i32>, usize)>,
    /// Optimized mode: per device, `(free_units, Reverse(global_sm))` for
    /// that device's SMs, so the least-loaded-first placement within a
    /// kernel's device is a `last()` lookup.
    sm_index: Vec<BTreeSet<(u32, Reverse<usize>)>>,
    /// Optimized mode: set when SM capacity was freed or a kernel became
    /// ready — the only transitions after which `try_issue` can place a
    /// block.
    issue_dirty: bool,
    issue_scratch: Vec<usize>,
    wake_scratch: Vec<usize>,
    /// Canonical trace of the most recent run: `trace_raw` finalized by a
    /// stable sort on `(time, device)` (see [`RunState::finalize_trace`]).
    trace: Vec<TraceEvent>,
    /// Device-tagged events in recording order. Tagged with the device
    /// that *owns* the event — the shard that records it under parallel
    /// execution — so the canonical order is identical whether the run
    /// was serial or device-sharded.
    trace_raw: Vec<(u32, TraceEvent)>,
    pub(crate) trace_enabled: bool,
    busy_units: u64,
    util_integral: u128,
    last_util_update: SimTime,
    first_issue: Option<SimTime>,
    last_finish: SimTime,
}

impl RunState {
    pub(crate) fn new() -> Self {
        RunState {
            mem: GlobalMemory::new(),
            sems: SemTable::new(),
            kernels: Vec::new(),
            stream_next: Vec::new(),
            prereqs: Vec::new(),
            now: SimTime::ZERO,
            events: BinaryHeap::new(),
            fast_events: BinaryHeap::new(),
            event_slab: Vec::new(),
            event_free: Vec::new(),
            event_seq: 0,
            events_handled: 0,
            sm_free: Vec::new(),
            sm_active: Vec::new(),
            active_units: Vec::new(),
            blocks: Vec::new(),
            waiters: BTreeMap::new(),
            wait_lists: WaitLists::new(),
            ready_queue: BTreeSet::new(),
            sm_index: Vec::new(),
            issue_dirty: false,
            issue_scratch: Vec::new(),
            wake_scratch: Vec::new(),
            trace: Vec::new(),
            trace_raw: Vec::new(),
            trace_enabled: false,
            busy_units: 0,
            util_integral: 0,
            last_util_update: SimTime::ZERO,
            first_issue: None,
            last_finish: SimTime::ZERO,
        }
    }

    /// Rewinds all per-run scheduling state for a run of `desc`, reusing
    /// every arena allocation. Memory and semaphores are *not* touched
    /// here; see the type-level invariants.
    pub(crate) fn reset(&mut self, desc: &PipelineDesc) {
        let sms = desc.cluster.total_sms() as usize;
        let devices = desc.cluster.devices.len();
        self.kernels.clear();
        self.kernels
            .resize(desc.kernels.len(), KernelRun::default());
        self.stream_next.clear();
        self.stream_next.resize(desc.streams.len(), 0);
        self.prereqs.clear();
        self.prereqs
            .extend(desc.kernels.iter().map(|kd| 1 + kd.gates.len() as u32));
        self.now = SimTime::ZERO;
        self.events.clear();
        self.fast_events.clear();
        self.event_slab.clear();
        self.event_free.clear();
        self.event_seq = 0;
        self.events_handled = 0;
        self.sm_free.clear();
        self.sm_free.resize(sms, SM_CAPACITY_UNITS);
        self.sm_active.clear();
        self.sm_active.resize(sms, 0);
        self.active_units.clear();
        self.active_units.resize(devices, 0);
        self.blocks.clear();
        self.waiters.clear();
        self.wait_lists.clear_all();
        self.ready_queue.clear();
        for index in &mut self.sm_index {
            index.clear();
        }
        self.sm_index.resize_with(devices, BTreeSet::new);
        self.issue_dirty = false;
        self.issue_scratch.clear();
        self.wake_scratch.clear();
        self.trace.clear();
        self.trace_raw.clear();
        self.busy_units = 0;
        self.util_integral = 0;
        self.last_util_update = SimTime::ZERO;
        self.first_issue = None;
        self.last_finish = SimTime::ZERO;
    }

    /// Restores memory and semaphores to the compiled pipeline's pristine
    /// initial state, reusing allocations where the layouts match.
    pub(crate) fn reset_storage(&mut self, mem: &GlobalMemory, sems: &SemTable) {
        self.mem.reset_from(mem);
        self.sems.reset_from(sems);
    }

    /// The most recent run's trace.
    pub(crate) fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// Canonicalizes the raw device-tagged event buffer into `trace`: a
    /// stable sort by `(time, device)`. Recording order within one device
    /// is deterministic in both engines and in the device shards, so this
    /// order is the *same* whether events were recorded by one serial loop
    /// or by per-device shards merged in device order — the property the
    /// parallel-engine trace tests pin down.
    pub(crate) fn finalize_trace(&mut self) {
        self.trace.clear();
        if self.trace_raw.is_empty() {
            return;
        }
        self.trace.reserve(self.trace_raw.len());
        let mut order: Vec<u32> = (0..self.trace_raw.len() as u32).collect();
        order.sort_by_key(|&i| {
            let (device, ref event) = self.trace_raw[i as usize];
            (event.time(), device, i)
        });
        self.trace
            .extend(order.iter().map(|&i| self.trace_raw[i as usize].1.clone()));
    }
}

/// Runs `desc` to completion on `st` (which the caller has prepared with
/// [`RunState::reset`] and initial memory/semaphores), in `mode`.
/// `progs` must hold the pipeline's pre-driven programs for an
/// [`EngineMode::Optimized`] run; the reference engine ignores it (pass
/// [`Programs::empty`]). `sched` decides the block-issue order — pass the
/// config's policy (`desc.cluster.effective_sched().instantiate()`) unless
/// the caller carries an override.
pub(crate) fn execute(
    desc: &PipelineDesc,
    progs: &Programs,
    mode: EngineMode,
    sched: &dyn SchedPolicy,
    st: &mut RunState,
) -> Result<RunReport, SimError> {
    match execute_with(desc, progs, mode, sched, st, RunOptions::default())? {
        RunOutcome::Complete(report) => Ok(report),
        RunOutcome::Aborted(_) => unreachable!("no abort horizon was requested"),
    }
}

/// [`execute`] with per-run [`RunOptions`]: the abort-horizon and
/// link-degradation entry point [`Session::run_until`](crate::Session) and
/// fault injection drive.
pub(crate) fn execute_with(
    desc: &PipelineDesc,
    progs: &Programs,
    mode: EngineMode,
    sched: &dyn SchedPolicy,
    st: &mut RunState,
    opts: RunOptions,
) -> Result<RunOutcome, SimError> {
    let mut ex = Exec {
        desc,
        progs,
        mode,
        sched,
        launch_order: sched.is_launch_order(),
        abort_at: opts.abort_at,
        link_scale: opts.link_scale.filter(|s| !s.is_identity()),
        abort_flag: false,
        shard: None,
        window_end_ps: u64::MAX,
        resume_inline: RESUME_INLINE.load(std::sync::atomic::Ordering::Relaxed),
        st,
    };
    ex.run_all()
}

/// The event loop: an immutable pipeline description plus one mutable run
/// state. All scheduling methods live here; `Gpu` and `Session` are thin
/// drivers around [`execute`].
struct Exec<'a> {
    desc: &'a PipelineDesc,
    progs: &'a Programs,
    mode: EngineMode,
    /// Block-issue ordering policy for this run.
    sched: &'a dyn SchedPolicy,
    /// Cached `sched.is_launch_order()`: when true both engines keep their
    /// original (pre-policy) hot paths byte for byte.
    launch_order: bool,
    /// Abort horizon: checkpoint at the first kernel boundary at or past
    /// this instant (see [`RunOutcome::Aborted`]). `None` runs unbounded.
    abort_at: Option<SimTime>,
    /// Non-identity link degradation scale applied to `LinkSend` wire
    /// time, or `None` for a healthy link.
    link_scale: Option<LinkScale>,
    /// Set by [`Exec::finish_block`] when a kernel boundary at or past
    /// `abort_at` retires; both event loops stop at the end of that
    /// timestamp batch.
    abort_flag: bool,
    /// Device-shard context when this `Exec` is one shard of a parallel
    /// run (see `engine_par`): cross-device semaphore effects are diverted
    /// into its outbox instead of the local event heap. `None` for serial
    /// runs — the cold branch every hot path keeps predictable.
    shard: Option<&'a mut par::ShardCtx>,
    /// Exclusive upper bound (picoseconds) of the current shard window.
    /// Op-coalescing must not price past it: a delivery landing at the
    /// horizon could wake a parked waiter and change mid-run state.
    /// `u64::MAX` for serial runs, so the extra compare never fires.
    window_end_ps: u64,
    /// Cached [`RESUME_INLINE`]: encode `BlockResume` payloads inline in
    /// the heap payload word, skipping the event slab round-trip.
    resume_inline: bool,
    st: &'a mut RunState,
}

impl Exec<'_> {
    fn run_all(&mut self) -> Result<RunOutcome, SimError> {
        if self.mode == EngineMode::Optimized {
            for (sm, &free) in self.st.sm_free.iter().enumerate() {
                let d = self.desc.device_of_sm[sm] as usize;
                self.st.sm_index[d].insert((free, Reverse(sm)));
            }
        }
        for s in 0..self.desc.streams.len() {
            self.schedule_stream_head(s);
        }
        match self.mode {
            EngineMode::Reference => self.run_reference_loop(),
            EngineMode::Optimized => self.run_optimized_loop(),
        }
        if self.st.trace_enabled && self.shard.is_none() {
            // Shards leave their raw buffers for `execute_sharded` to
            // merge; serial runs canonicalize in every exit path so the
            // trace is readable even after an abort or deadlock.
            self.st.finalize_trace();
        }
        let incomplete: Vec<usize> = (0..self.desc.kernels.len())
            .filter(|&k| self.st.kernels[k].completed < self.desc.kernels[k].total)
            .collect();
        if incomplete.is_empty() {
            // Even a horizon-bounded run that drained everything is a
            // completion: the boundary that tripped the flag was the last
            // kernel's, and there is nothing left to checkpoint.
            return Ok(RunOutcome::Complete(self.report()));
        }
        if self.abort_flag {
            return Ok(RunOutcome::Aborted(self.residue()));
        }
        Err(self.deadlock_error(&incomplete))
    }

    /// The checkpoint descriptor of an aborted run (see [`RunResidue`]).
    fn residue(&self) -> RunResidue {
        let kernels_done = self
            .st
            .kernels
            .iter()
            .zip(self.desc.kernels.iter())
            .filter(|(kr, kd)| kr.completed == kd.total)
            .count();
        RunResidue {
            aborted_at: self.st.now,
            kernels_done,
            kernels_total: self.desc.kernels.len(),
            blocks_done: self.st.kernels.iter().map(|kr| kr.completed).sum(),
            blocks_total: self.desc.kernels.iter().map(|kd| kd.total).sum(),
        }
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.st.event_seq;
        self.st.event_seq += 1;
        match self.mode {
            EngineMode::Reference => {
                self.st.events.push(Reverse(Event { time, seq, kind }));
            }
            EngineMode::Optimized => {
                let key = ((time.as_picos() as u128) << 64) | seq as u128;
                // `BlockResume` dominates the event mix; encode its block
                // id inline in the payload word (high-bit tagged) and skip
                // the slab round-trip. The ordering key is untouched, so
                // timelines are bit-identical with the shave on or off.
                if self.resume_inline {
                    if let EventKind::BlockResume(b) = kind {
                        debug_assert!((b as u32) < RESUME_TAG);
                        self.st
                            .fast_events
                            .push(Reverse((key, RESUME_TAG | b as u32)));
                        return;
                    }
                }
                let idx = match self.st.event_free.pop() {
                    Some(i) => {
                        self.st.event_slab[i as usize] = kind;
                        i
                    }
                    None => {
                        self.st.event_slab.push(kind);
                        (self.st.event_slab.len() - 1) as u32
                    }
                };
                self.st.fast_events.push(Reverse((key, idx)));
            }
        }
    }

    #[inline]
    fn take_fast_event(&mut self, idx: u32) -> EventKind {
        if idx & RESUME_TAG != 0 {
            return EventKind::BlockResume((idx & !RESUME_TAG) as usize);
        }
        self.st.event_free.push(idx);
        self.st.event_slab[idx as usize]
    }

    /// Appends to the trace, tagged with the *owning* device — the shard
    /// that records the event under parallel execution (the kernel's
    /// device for kernel/block events, the semaphore's home device for
    /// posts, the waiter's device for wakes). The flag check is inlined
    /// at every call site so a disabled trace costs one predictable
    /// branch — never a `Vec` touch or an event construction that the
    /// optimizer can't sink.
    #[inline(always)]
    fn record(&mut self, device: u32, event: TraceEvent) {
        if self.st.trace_enabled {
            self.st.trace_raw.push((device, event));
        }
    }

    /// Records an [`Op::LinkSend`] occupying the link from `start` for
    /// `wire`. Called from both block-stepping paths exactly when the op
    /// is consumed (its pc/coroutine advances), so a deferred re-check of
    /// the same op never double-records.
    #[inline]
    fn record_link_sent(&mut self, bid: usize, bytes: u64, start: SimTime, wire: SimTime) {
        if !self.st.trace_enabled {
            return;
        }
        let kernel = self.st.blocks[bid].kernel;
        let block = self.st.blocks[bid].idx;
        self.record(
            self.block_device(bid),
            TraceEvent::LinkSent {
                kernel: KernelId(kernel),
                block,
                bytes,
                wire,
                time: start,
            },
        );
    }

    /// The original event loop: rescan-and-sort `try_issue` after every
    /// batch. Kept verbatim as the executable specification.
    fn run_reference_loop(&mut self) {
        while let Some(Reverse(event)) = self.st.events.pop() {
            debug_assert!(event.time >= self.st.now, "time went backwards");
            self.st.now = event.time;
            self.st.events_handled += 1;
            self.handle(event.kind);
            // Drain every event at this timestamp before issuing blocks, so
            // that kernels becoming ready at the same instant compete for SM
            // slots by priority rather than by event arrival order.
            while let Some(Reverse(next)) = self.st.events.peek() {
                if next.time != self.st.now {
                    break;
                }
                let Reverse(event) = self.st.events.pop().expect("peeked event");
                self.st.events_handled += 1;
                self.handle(event.kind);
            }
            // A kernel boundary at or past the abort horizon checkpoints
            // the run: the timestamp batch is drained (same-instant
            // completions retire) but no further block issues.
            if self.abort_flag {
                break;
            }
            self.try_issue_reference();
        }
    }

    /// The optimized event loop: identical batch semantics, but block
    /// placement only runs after transitions that can actually enable it
    /// (`issue_dirty`), over the incrementally maintained ready-queue and
    /// SM index.
    fn run_optimized_loop(&mut self) {
        while let Some(Reverse((key, idx))) = self.st.fast_events.pop() {
            let time_ps = (key >> 64) as u64;
            debug_assert!(time_ps >= self.st.now.as_picos(), "time went backwards");
            self.st.now = SimTime::from_picos(time_ps);
            let kind = self.take_fast_event(idx);
            self.st.events_handled += 1;
            self.handle(kind);
            while let Some(&Reverse((next_key, _))) = self.st.fast_events.peek() {
                if (next_key >> 64) as u64 != time_ps {
                    break;
                }
                let Reverse((_, next_idx)) = self.st.fast_events.pop().expect("peeked event");
                let kind = self.take_fast_event(next_idx);
                self.st.events_handled += 1;
                self.handle(kind);
            }
            // Same checkpoint semantics as the reference loop: both modes
            // stop at the identical kernel boundary.
            if self.abort_flag {
                break;
            }
            if self.st.issue_dirty {
                self.try_issue_optimized();
                self.st.issue_dirty = false;
            }
        }
    }

    fn handle(&mut self, kind: EventKind) {
        match kind {
            EventKind::KernelReady(k) => {
                let now = self.st.now;
                self.st.kernels[k].ready = true;
                self.st.kernels[k].ready_at = now;
                if self.mode == EngineMode::Optimized {
                    self.st.issue_dirty = true;
                    if self.st.kernels[k].issued < self.desc.kernels[k].total {
                        self.st
                            .ready_queue
                            .insert((Reverse(self.desc.kernels[k].priority), k));
                    }
                }
                self.record(
                    self.desc.kernels[k].device,
                    TraceEvent::KernelReady {
                        kernel: KernelId(k),
                        time: now,
                    },
                );
            }
            EventKind::BlockResume(b) => match self.st.blocks[b].pending.take() {
                None => self.step_block(b),
                Some(PendingStep::Op(op)) => self.apply_sync_op(b, op),
                Some(PendingStep::Done) => self.finish_block(b),
            },
            EventKind::PostApply {
                block,
                table,
                index,
                inc,
            } => {
                self.apply_post(block, table, index, inc);
            }
            EventKind::AtomicApply {
                block,
                table,
                index,
                inc,
            } => {
                let prev = self.st.sems.add(table, index, inc);
                self.st.blocks[block].atomic_result = Some(prev);
                self.push_event(self.st.now, EventKind::BlockResume(block));
            }
            EventKind::RemotePost {
                table,
                index,
                inc,
                poster,
            } => {
                self.apply_post_inner(table, index, inc, poster.map(KernelId));
            }
            EventKind::RemoteAtomic { table, index, inc } => {
                // Mirrors `AtomicApply`: bump only, no waiter wakes. The
                // fetching block resumed on its own shard.
                self.st.sems.add(table, index, inc);
            }
        }
    }

    fn deadlock_error(&self, incomplete: &[usize]) -> SimError {
        let blocked: Vec<BlockedBlock> = self
            .st
            .blocks
            .iter()
            .filter_map(|slot| {
                let (table, index, value) = slot.waiting?;
                Some(BlockedBlock {
                    kernel: KernelId(slot.kernel),
                    kernel_name: self.desc.kernels[slot.kernel].name.clone(),
                    block: slot.idx,
                    sm: slot.sm,
                    device: self.desc.kernels[slot.kernel].device,
                    sem: table,
                    sem_name: self.st.sems.name(table).to_owned(),
                    index,
                    target: value,
                    current: self.st.sems.value(table, index),
                })
            })
            .collect();
        let pending = incomplete
            .iter()
            .map(|&k| PendingKernel {
                kernel: KernelId(k),
                name: self.desc.kernels[k].name.clone(),
                device: self.desc.kernels[k].device,
                total: self.desc.kernels[k].total,
                issued: self.st.kernels[k].issued,
                completed: self.st.kernels[k].completed,
            })
            .collect();
        let sms = (0..self.st.sm_free.len())
            .filter(|&sm| self.st.sm_free[sm] < SM_CAPACITY_UNITS)
            .map(|sm| {
                let occupied = SM_CAPACITY_UNITS - self.st.sm_free[sm];
                let active = self.st.sm_active[sm];
                SmOccupancy {
                    sm: sm as u32,
                    device: self.desc.device_of_sm[sm],
                    free_units: self.st.sm_free[sm],
                    active_units: active,
                    spinning_units: occupied - active,
                }
            })
            .collect();
        SimError::Deadlock(Box::new(DeadlockReport {
            time: self.st.now,
            blocked,
            pending,
            sms,
        }))
    }

    /// Hardware model of the device `kernel` runs on.
    fn kernel_cfg(&self, kernel: usize) -> &GpuConfig {
        self.desc.device_config(self.desc.kernels[kernel].device)
    }

    /// Device of the kernel owning block `bid`.
    fn block_device(&self, bid: usize) -> u32 {
        self.desc.kernels[self.st.blocks[bid].kernel].device
    }

    /// Cost of one semaphore poll issued from `device` against `table`:
    /// the local poll latency, plus one link traversal when the array is
    /// homed on another device.
    fn poll_cost(&self, device: u32, table: SemArrayId) -> SimTime {
        let local = self.desc.costs[device as usize].poll;
        if self.st.sems.device(table) == device {
            local
        } else {
            local + self.desc.cluster.link_latency
        }
    }

    /// Cost for an atomic issued from `device` to become visible in
    /// `table`'s home memory: the local atomic latency, plus one link
    /// traversal when the array is homed on another device.
    fn atomic_cost(&self, device: u32, table: SemArrayId) -> SimTime {
        let local = self.desc.costs[device as usize].atomic;
        if self.st.sems.device(table) == device {
            local
        } else {
            local + self.desc.cluster.link_latency
        }
    }

    fn schedule_stream_head(&mut self, stream: usize) {
        let s = &self.desc.streams[stream];
        if let Some(&k) = s.queue.get(self.st.stream_next[stream]) {
            self.prereq_done(k);
            // Still-outstanding prerequisites after the stream-head
            // arrival are launch gates: the kernel is *held* from here
            // until its final gate opens.
            if self.st.prereqs[k] > 0 {
                self.record(
                    self.desc.kernels[k].device,
                    TraceEvent::GateHeld {
                        kernel: KernelId(k),
                        time: self.st.now,
                    },
                );
            }
        }
    }

    /// One launch prerequisite of kernel `k` resolved (stream-head arrival
    /// or a satisfied [`LaunchGate`]). When the last prerequisite falls —
    /// at whichever instant that happens — the kernel's dispatch is
    /// scheduled, paying the host-ready floor and dispatch latency exactly
    /// as an ungated kernel would. Shared by both engine modes, so gated
    /// timelines stay bit-identical by construction.
    fn prereq_done(&mut self, k: usize) {
        let remaining = &mut self.st.prereqs[k];
        debug_assert!(*remaining > 0, "launch prerequisite underflow");
        *remaining -= 1;
        if *remaining == 0 {
            let ready = self.st.now.max(self.desc.kernels[k].host_ready)
                + self.kernel_cfg(k).kernel_dispatch_latency;
            self.push_event(ready, EventKind::KernelReady(k));
        }
    }

    /// Orders one placement round's candidates with the run's
    /// [`SchedPolicy`]. Policies are required to produce the same output
    /// for the same candidate *set* regardless of incoming order, which is
    /// what keeps the two engines' issue sequences identical under every
    /// policy (they enumerate candidates differently).
    fn order_candidates(&self, candidates: &mut [usize]) {
        let ctx = SchedContext {
            desc: self.desc,
            runs: &self.st.kernels,
            sems: &self.st.sems,
        };
        self.sched.order(&ctx, candidates);
    }

    /// Reference block placement: filter + sort every kernel, then scan
    /// every SM per placed block. O(kernels log kernels + blocks × SMs)
    /// after **every** event batch.
    fn try_issue_reference(&mut self) {
        let mut order: Vec<usize> = (0..self.desc.kernels.len())
            .filter(|&k| {
                self.st.kernels[k].ready && self.st.kernels[k].issued < self.desc.kernels[k].total
            })
            .collect();
        if order.is_empty() {
            return;
        }
        if self.launch_order {
            // The original engine's sort key, kept verbatim as the
            // bit-identity baseline (== what `Fifo::order` computes).
            order.sort_by_key(|&k| (Reverse(self.desc.kernels[k].priority), k));
        } else {
            self.order_candidates(&mut order);
        }
        for k in order {
            let device = self.desc.kernels[k].device as usize;
            let base = self.desc.sm_base[device] as usize;
            let sms = self.desc.cluster.devices[device].num_sms as usize;
            loop {
                if self.st.kernels[k].issued >= self.desc.kernels[k].total {
                    break;
                }
                let units = self.desc.kernels[k].units;
                // Least-loaded SM first — within the kernel's own device:
                // the hardware work distributor spreads blocks across SMs,
                // so sparse grids get whole SMs to themselves (and run
                // faster; see `residency_scale`).
                let Some((sm, &free)) = self.st.sm_free[base..base + sms]
                    .iter()
                    .enumerate()
                    .filter(|&(_, &f)| f >= units)
                    .max_by_key(|&(i, &f)| (f, std::cmp::Reverse(i)))
                else {
                    break;
                };
                let _ = free;
                self.issue_block(k, (base + sm) as u32);
            }
        }
    }

    /// Optimized block placement. Under the launch-order policy the
    /// ready-queue's `(Reverse(priority), k)` ordering is exactly the
    /// reference scan's sort key, and `sm_index`'s maximum is exactly the
    /// reference scan's `max_by_key((f, Reverse(i)))`, so the sequence of
    /// `issue_block` calls is identical. Under any other policy the
    /// ready-queue supplies the candidate *set* and the policy re-orders
    /// it — producing, again, the same sequence the reference engine's
    /// policy-ordered scan issues.
    fn try_issue_optimized(&mut self) {
        if self.st.ready_queue.is_empty() {
            return;
        }
        let mut order = std::mem::take(&mut self.st.issue_scratch);
        order.clear();
        order.extend(self.st.ready_queue.iter().map(|&(_, k)| k));
        if !self.launch_order {
            self.order_candidates(&mut order);
        }
        for &k in &order {
            let device = self.desc.kernels[k].device as usize;
            loop {
                if self.st.kernels[k].issued >= self.desc.kernels[k].total {
                    self.st
                        .ready_queue
                        .remove(&(Reverse(self.desc.kernels[k].priority), k));
                    break;
                }
                let units = self.desc.kernels[k].units;
                let Some(&(free, Reverse(sm))) = self.st.sm_index[device].last() else {
                    break;
                };
                if free < units {
                    break;
                }
                self.issue_block(k, sm as u32);
            }
        }
        self.st.issue_scratch = order;
    }

    fn update_util(&mut self) {
        let dt = (self.st.now - self.st.last_util_update).as_picos() as u128;
        self.st.util_integral += dt * self.st.busy_units as u128;
        self.st.last_util_update = self.st.now;
    }

    fn set_sm_free(&mut self, sm: usize, free: u32) {
        if self.mode == EngineMode::Optimized {
            let device = self.desc.device_of_sm[sm] as usize;
            let index = &mut self.st.sm_index[device];
            index.remove(&(self.st.sm_free[sm], Reverse(sm)));
            index.insert((free, Reverse(sm)));
        }
        self.st.sm_free[sm] = free;
    }

    fn issue_block(&mut self, k: usize, sm: u32) {
        self.update_util();
        let now = self.st.now;
        let kd = &self.desc.kernels[k];
        let kr = &mut self.st.kernels[k];
        let linear = kr.issued;
        let idx = kd.grid.delinear(linear);
        kr.issued += 1;
        kr.concurrent += 1;
        kr.max_concurrent = kr.max_concurrent.max(kr.concurrent);
        if kr.start.is_none() {
            kr.start = Some(now);
        }
        let units = kd.units;
        let device = kd.device;
        let predrive = self.mode == EngineMode::Optimized && kd.predrive;
        let (prog_start, prog_len, body) = if predrive {
            // The block's op program was pre-driven at *compile* time
            // (see `PipelineDesc::finalize`): replay it through a cursor
            // as events fire, constructing no body at all. Timing is
            // unchanged — ops are still priced at their own start times
            // (see `KernelSource::timing_static`).
            let base = self.progs.prog_base[k] as u64;
            let (start, len) = self.progs.prog_spans[(base + linear) as usize];
            (start, len, None)
        } else {
            (u32::MAX, 0, Some(kd.source.block(idx)))
        };
        self.set_sm_free(sm as usize, self.st.sm_free[sm as usize] - units);
        self.st.sm_active[sm as usize] += units;
        self.st.active_units[device as usize] += units as u64;
        self.st.busy_units += units as u64;
        if self.st.first_issue.is_none() {
            self.st.first_issue = Some(now);
        }
        let bid = self.st.blocks.len();
        let jitter = self.jitter_value(k, idx);
        self.st.blocks.push(BlockSlot {
            kernel: k,
            idx,
            sm,
            units,
            body,
            atomic_result: None,
            waiting: None,
            pending: None,
            jitter,
            prog_start,
            prog_len,
            prog_pc: 0,
        });
        self.record(
            device,
            TraceEvent::BlockIssued {
                kernel: KernelId(k),
                block: idx,
                sm,
                units,
                time: now,
            },
        );
        self.push_event(now, EventKind::BlockResume(bid));
        // The PDL trigger: this kernel's final block just became resident,
        // so every kernel gated `AfterLaunchOf` it may now dispatch.
        if linear + 1 == self.desc.kernels[k].total {
            let desc = self.desc;
            for &dep in &desc.launch_dependents[k] {
                if self.st.prereqs[dep] == 1 {
                    self.record(
                        desc.kernels[dep].device,
                        TraceEvent::GateOpened {
                            kernel: KernelId(dep),
                            by: KernelId(k),
                            time: now,
                        },
                    );
                }
                self.prereq_done(dep);
            }
        }
    }

    fn step_block(&mut self, bid: usize) {
        if self.st.blocks[bid].has_program() {
            self.step_program(bid);
        } else {
            self.step_coroutine(bid);
        }
    }

    /// Drives a pre-driven (side-effect-free) block through its op
    /// program. Because re-reading an op is free, this path defers
    /// without the `pending` machinery, and because semaphore values are
    /// monotone non-decreasing, a wait observed satisfied *now* is
    /// satisfied at any later instant — so satisfied waits coalesce into
    /// their successor unconditionally. Pure-op durations still require
    /// state stability until the op's start ([`Exec::can_extend_run`]),
    /// exactly like the coroutine path.
    fn step_program(&mut self, bid: usize) {
        let mut acc = SimTime::ZERO;
        loop {
            let slot = &self.st.blocks[bid];
            if slot.prog_pc >= slot.prog_len {
                if acc == SimTime::ZERO {
                    self.finish_block(bid);
                } else {
                    self.push_event(self.st.now + acc, EventKind::BlockResume(bid));
                }
                return;
            }
            let op = self.progs.block_ops[(slot.prog_start + slot.prog_pc) as usize];
            match op {
                Op::SemWait {
                    table,
                    index,
                    value,
                } => {
                    if self.st.sems.value(table, index) >= value {
                        // Monotone semaphores: satisfied stays satisfied.
                        acc += self.poll_cost(self.block_device(bid), table);
                        self.st.blocks[bid].prog_pc += 1;
                    } else if acc == SimTime::ZERO {
                        // Apply the park at its exact start time; the wake
                        // resumes *after* the wait op.
                        self.st.blocks[bid].prog_pc += 1;
                        self.apply_sync_op(bid, op);
                        return;
                    } else {
                        // Re-check at the wait's true start time.
                        self.push_event(self.st.now + acc, EventKind::BlockResume(bid));
                        return;
                    }
                }
                Op::SemPost { .. } | Op::AtomicAdd { .. } => {
                    if acc == SimTime::ZERO {
                        self.st.blocks[bid].prog_pc += 1;
                        self.apply_sync_op(bid, op);
                    } else {
                        self.push_event(self.st.now + acc, EventKind::BlockResume(bid));
                    }
                    return;
                }
                _ => {
                    // Pure delay: needs simulator state as of its start.
                    if acc == SimTime::ZERO || self.can_extend_run(self.st.now + acc) {
                        let d = self
                            .pure_op_delay(bid, &op)
                            .expect("non-sync op has a delay");
                        if let Op::LinkSend { bytes } = op {
                            self.record_link_sent(bid, bytes, self.st.now + acc, d);
                        }
                        acc += d;
                        self.st.blocks[bid].prog_pc += 1;
                        if !self.can_extend_run(self.st.now + acc) {
                            self.push_event(self.st.now + acc, EventKind::BlockResume(bid));
                            return;
                        }
                    } else {
                        self.push_event(self.st.now + acc, EventKind::BlockResume(bid));
                        return;
                    }
                }
            }
        }
    }

    /// Drives a block's coroutine body, coalescing consecutive
    /// non-synchronizing ops into a single future `BlockResume` when that
    /// is provably equivalent to the reference engine (see
    /// [`Exec::can_extend_run`]). Bodies may perform functional memory
    /// effects inside `resume`, so the body is only advanced when no
    /// other event can observe state in between.
    fn step_coroutine(&mut self, bid: usize) {
        // Accumulated delay of coalesced ops beyond `now`.
        let mut acc = SimTime::ZERO;
        loop {
            let mut body = self.st.blocks[bid].body.take().expect("block body missing");
            let block_idx = self.st.blocks[bid].idx;
            let atomic_result = self.st.blocks[bid].atomic_result;
            let step = {
                let mut ctx = BlockCtx {
                    block: block_idx,
                    now: self.st.now + acc,
                    mem: &mut self.st.mem,
                    sems: &self.st.sems,
                    atomic_result,
                };
                body.resume(&mut ctx)
            };
            match step {
                Step::Done => {
                    drop(body);
                    if acc == SimTime::ZERO {
                        self.finish_block(bid);
                    } else {
                        self.st.blocks[bid].pending = Some(PendingStep::Done);
                        self.push_event(self.st.now + acc, EventKind::BlockResume(bid));
                    }
                    return;
                }
                Step::Op(op) => {
                    self.st.blocks[bid].body = Some(body);
                    if let Some(d) = self.pure_op_delay(bid, &op) {
                        if let Op::LinkSend { bytes } = op {
                            self.record_link_sent(bid, bytes, self.st.now + acc, d);
                        }
                        acc += d;
                        if !self.can_extend_run(self.st.now + acc) {
                            self.push_event(self.st.now + acc, EventKind::BlockResume(bid));
                            return;
                        }
                        // Safe to keep running this block's body in place.
                    } else {
                        // Synchronizing op: apply now, or defer to the end
                        // of the coalesced run it terminates.
                        if acc == SimTime::ZERO {
                            self.apply_sync_op(bid, op);
                        } else {
                            self.st.blocks[bid].pending = Some(PendingStep::Op(op));
                            self.push_event(self.st.now + acc, EventKind::BlockResume(bid));
                        }
                        return;
                    }
                }
            }
        }
    }

    /// Whether the block body being stepped may continue past `until`
    /// without a heap round-trip.
    ///
    /// Sound because every simulator state change is caused either by an
    /// event already in the heap (all at `time >= peek`), by an event one
    /// of those handlers pushes (at `time >= its own now >= peek`), or by
    /// `try_issue` at the *current* instant — which is exactly the
    /// `issue_dirty` flag. If the earliest of those is strictly after
    /// `until`, the durations computed for ops completing at or before
    /// `until` read the same `active_units`/`sm_active` state the
    /// reference engine would see, and no other block can observe this
    /// block's functional effects out of order.
    ///
    /// In [`EngineMode::Reference`] this is constantly `false`, which
    /// makes [`Exec::step_block`] collapse to the original
    /// one-op-per-event behaviour.
    /// In a parallel shard the bound additionally stops strictly before
    /// `window_end_ps`: a cross-device delivery landing exactly at the
    /// horizon could wake a parked waiter and change the occupancy state
    /// this coalesced run is pricing against. Breaking the run early is
    /// always sound (it converges to the reference one-op-per-event
    /// behaviour); for serial runs `window_end_ps` is `u64::MAX`, so the
    /// extra compare is a never-taken predictable branch.
    #[inline]
    fn can_extend_run(&self, until: SimTime) -> bool {
        self.mode == EngineMode::Optimized
            && !self.st.issue_dirty
            && until.as_picos() < self.window_end_ps
            && match self.st.fast_events.peek() {
                Some(&Reverse((key, _))) => (key >> 64) as u64 > until.as_picos(),
                None => true,
            }
    }

    /// How much faster this block runs than its cost model assumes.
    ///
    /// Kernel cost models charge each block `1/occupancy` of an SM's
    /// throughput — the fully-packed steady state. When the block's SM is
    /// only partially occupied (sparse grids, draining waves), the block's
    /// fair share grows proportionally, so durations shrink by
    /// `used_units / SM_CAPACITY_UNITS`. This is also what staggers the
    /// completion times of a partial wave: doubled-up blocks finish later
    /// than blocks holding an SM alone.
    fn residency_scale(&self, bid: usize) -> f64 {
        let sm = self.st.blocks[bid].sm as usize;
        let active = self.st.sm_active[sm].max(self.st.blocks[bid].units) as f64;
        let fraction = (active / SM_CAPACITY_UNITS as f64).clamp(0.0, 1.0);
        let boost = self
            .desc
            .device_config(self.block_device(bid))
            .residency_boost;
        1.0 - boost * (1.0 - fraction)
    }

    /// Deterministic per-block duration factor in
    /// `[1 - jitter, 1 + jitter]`, derived from a SplitMix64 hash of the
    /// block's kernel and grid index (identical inputs always produce the
    /// identical timeline).
    fn jitter_factor(&self, bid: usize) -> f64 {
        if self.mode == EngineMode::Optimized {
            // Computed once at issue; a pure function of (kernel, index),
            // so the cache is exact.
            return self.st.blocks[bid].jitter;
        }
        let slot = &self.st.blocks[bid];
        self.jitter_value(slot.kernel, slot.idx)
    }

    /// The hash behind [`Exec::jitter_factor`], shared by both modes so the
    /// cached and recomputed values are the same `f64` bit for bit.
    fn jitter_value(&self, kernel: usize, idx: Dim3) -> f64 {
        let j = self.kernel_cfg(kernel).block_jitter;
        if j == 0.0 {
            return 1.0;
        }
        let key = (kernel as u64) << 48 ^ self.desc.kernels[kernel].grid.linear_of(idx);
        let z = crate::sched::splitmix64(key);
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        1.0 + j * (2.0 * unit - 1.0)
    }

    fn scaled(&self, bid: usize, t: SimTime) -> SimTime {
        let factor = self.residency_scale(bid) * self.jitter_factor(bid);
        SimTime::from_picos((t.as_picos() as f64 * factor).round() as u64)
    }

    /// Time for this block to move `bytes` through DRAM under the dynamic
    /// share model: bandwidth divides over all currently active blocks,
    /// but a `dram_saturation_fraction` of the GPU already saturates the
    /// bus, so sparse populations gain bandwidth per block only down to
    /// that floor (and the aggregate never exceeds the DRAM peak).
    fn dyn_mem_time(&self, bid: usize, bytes: u64) -> SimTime {
        let device = self.block_device(bid);
        let cfg = self.desc.device_config(device);
        let capacity = cfg.num_sms as f64 * SM_CAPACITY_UNITS as f64;
        let saturation = cfg.dram_saturation_fraction * capacity;
        let competing = (self.st.active_units[device as usize] as f64)
            .max(saturation)
            .max(1.0);
        let units = self.st.blocks[bid].units as f64;
        let share = cfg.dram_bytes_per_sec * units / competing;
        SimTime::from_picos((bytes as f64 / share * 1e12).round() as u64)
    }

    /// Start-to-completion delay of a non-synchronizing op, or `None` for
    /// the ops that interact with semaphores (and so terminate a coalesced
    /// run). The arithmetic (including every intermediate rounding) is the
    /// single shared cost path of both engine modes.
    fn pure_op_delay(&self, bid: usize, op: &Op) -> Option<SimTime> {
        let device = self.block_device(bid);
        let cfg = self.desc.device_config(device);
        let costs = &self.desc.costs[device as usize];
        match *op {
            Op::Compute { cycles } => Some(self.scaled(bid, cfg.cycles(cycles))),
            Op::GlobalRead { bytes } | Op::GlobalWrite { bytes } => {
                let mem = self.dyn_mem_time(bid, bytes);
                let jitter = self.jitter_factor(bid);
                let d = SimTime::from_picos((mem.as_picos() as f64 * jitter).round() as u64);
                Some(costs.global_latency + d)
            }
            Op::MainStep { bytes, cycles } => {
                // Loads overlap math: the step costs the slower of the two.
                let mem = self.dyn_mem_time(bid, bytes);
                let compute = self.scaled(bid, cfg.cycles(cycles));
                let jitter = self.jitter_factor(bid);
                let mem = SimTime::from_picos((mem.as_picos() as f64 * jitter).round() as u64);
                Some(costs.global_latency + mem.max(compute))
            }
            Op::Syncthreads => Some(costs.syncthreads),
            Op::Fence => Some(costs.fence),
            // Link bandwidth is not an SM resource: pure wire time,
            // unscaled by residency or jitter (see `ClusterConfig`), but
            // subject to the run's link-degradation scale.
            Op::LinkSend { bytes } => {
                let wire = self.desc.cluster.link_wire_time(bytes);
                Some(match self.link_scale {
                    Some(scale) => scale.apply(wire),
                    None => wire,
                })
            }
            Op::SemWait { .. } | Op::SemPost { .. } | Op::AtomicAdd { .. } => None,
        }
    }

    /// Applies a synchronizing op at the current instant (the op's start
    /// time — exactly where the reference engine's `apply_op` ran it).
    fn apply_sync_op(&mut self, bid: usize, op: Op) {
        match op {
            Op::SemWait {
                table,
                index,
                value,
            } => {
                if self.st.sems.value(table, index) >= value {
                    let t = self.st.now + self.poll_cost(self.block_device(bid), table);
                    self.push_event(t, EventKind::BlockResume(bid));
                } else {
                    self.st.blocks[bid].waiting = Some((table, index, value));
                    match self.mode {
                        EngineMode::Reference => {
                            self.st
                                .waiters
                                .entry((table.0, index))
                                .or_default()
                                .push(bid);
                        }
                        EngineMode::Optimized => {
                            self.st.wait_lists.park(table, index, bid);
                        }
                    }
                    // Parked: stops competing for execution throughput.
                    let device = self.block_device(bid) as usize;
                    let sm = self.st.blocks[bid].sm as usize;
                    self.st.sm_active[sm] -= self.st.blocks[bid].units;
                    self.st.active_units[device] -= self.st.blocks[bid].units as u64;
                    let kernel = self.st.blocks[bid].kernel;
                    let idx = self.st.blocks[bid].idx;
                    self.st.kernels[kernel].parked += 1;
                    self.record(
                        self.desc.kernels[kernel].device,
                        TraceEvent::BlockBlocked {
                            kernel: KernelId(kernel),
                            block: idx,
                            table,
                            index,
                            value,
                            time: self.st.now,
                        },
                    );
                }
            }
            Op::SemPost { table, index, inc } => {
                // A post to a remote device's array becomes visible one
                // link traversal later than a local one.
                let t = self.st.now + self.atomic_cost(self.block_device(bid), table);
                if self.divert_remote(bid, t, table, index, inc, true) {
                    return;
                }
                self.push_event(
                    t,
                    EventKind::PostApply {
                        block: bid,
                        table,
                        index,
                        inc,
                    },
                );
            }
            Op::AtomicAdd { table, index, inc } => {
                let t = self.st.now + self.atomic_cost(self.block_device(bid), table);
                if self.divert_remote(bid, t, table, index, inc, false) {
                    return;
                }
                self.push_event(
                    t,
                    EventKind::AtomicApply {
                        block: bid,
                        table,
                        index,
                        inc,
                    },
                );
            }
            _ => unreachable!("apply_sync_op called with a pure op"),
        }
    }

    /// Shard-mode interception of a cross-device semaphore effect: when
    /// this `Exec` is one shard of a parallel run and `table` is homed on
    /// another device, the effect is queued in the shard's outbox for
    /// delivery after the window barrier, and the poster resumes locally
    /// at the same instant `t` the serial apply handler would have resumed
    /// it. Returns `false` (do nothing) for serial runs and local tables.
    ///
    /// The apply time `t` already includes the link traversal
    /// ([`Exec::atomic_cost`]), so `t >= window horizon` always holds —
    /// the conservative-lookahead invariant that makes delivery after the
    /// barrier safe.
    fn divert_remote(
        &mut self,
        bid: usize,
        t: SimTime,
        table: SemArrayId,
        index: u32,
        inc: u32,
        post: bool,
    ) -> bool {
        let home = self.st.sems.device(table);
        let device = self.block_device(bid);
        if home == device {
            return false;
        }
        let Some(shard) = self.shard.as_deref_mut() else {
            return false;
        };
        debug_assert_eq!(shard.device, device);
        debug_assert!(
            t.as_picos() >= self.window_end_ps,
            "remote effect applies inside the window it was produced in"
        );
        let ordinal = shard.sent_ordinal;
        shard.sent_ordinal += 1;
        let poster = self.st.blocks[bid].kernel;
        shard.outbox.push(par::OutMsg {
            time: t,
            table,
            index,
            inc,
            post,
            poster: Some(poster),
            src: device,
            ordinal,
        });
        // The serial engine suspends the poster until the apply instant
        // and resumes it from the apply handler; re-create that resume
        // locally. (A remote `AtomicAdd`'s fetched previous value is not
        // reproduced — pre-driven blocks, the only ones eligible for
        // sharding, never read `atomic_result`.)
        self.push_event(t, EventKind::BlockResume(bid));
        true
    }

    fn apply_post(&mut self, poster: usize, table: SemArrayId, index: u32, inc: u32) {
        let poster_kernel = KernelId(self.st.blocks[poster].kernel);
        self.apply_post_inner(table, index, inc, Some(poster_kernel));
        self.push_event(self.st.now, EventKind::BlockResume(poster));
    }

    /// The poster-independent half of [`Exec::apply_post`]: bump the
    /// semaphore and wake satisfied waiters. Also the entire handler for a
    /// [`EventKind::RemotePost`], whose poster resumed on its own shard
    /// (its identity travels in the message so the trace is shard-
    /// invariant).
    fn apply_post_inner(
        &mut self,
        table: SemArrayId,
        index: u32,
        inc: u32,
        poster: Option<KernelId>,
    ) {
        self.st.sems.add(table, index, inc);
        let new_value = self.st.sems.value(table, index);
        self.record(
            self.st.sems.device(table),
            TraceEvent::SemPosted {
                table,
                index,
                new_value,
                poster,
                time: self.st.now,
            },
        );
        match self.mode {
            EngineMode::Reference => {
                if let Some(list) = self.st.waiters.get_mut(&(table.0, index)) {
                    let mut still = Vec::new();
                    let mut woken = Vec::new();
                    for &wbid in list.iter() {
                        let (_, _, target) =
                            self.st.blocks[wbid].waiting.expect("waiter without target");
                        if new_value >= target {
                            woken.push(wbid);
                        } else {
                            still.push(wbid);
                        }
                    }
                    *list = still;
                    for wbid in woken {
                        self.wake_block(wbid, table);
                    }
                }
            }
            EngineMode::Optimized => {
                // Partition in place through reusable scratch storage: a
                // post to a semaphore nobody waits on touches no
                // allocator and no tree.
                let mut list = self.st.wait_lists.take(table, index);
                if !list.is_empty() {
                    let mut woken = std::mem::take(&mut self.st.wake_scratch);
                    woken.clear();
                    {
                        let blocks = &self.st.blocks;
                        list.retain(|&wbid| {
                            let (_, _, target) =
                                blocks[wbid].waiting.expect("waiter without target");
                            if new_value >= target {
                                woken.push(wbid);
                                false
                            } else {
                                true
                            }
                        });
                    }
                    for &wbid in &woken {
                        self.wake_block(wbid, table);
                    }
                    self.st.wake_scratch = woken;
                }
                self.st.wait_lists.put(table, index, list);
            }
        }
    }

    /// Wakes a block parked on `table`: it observes the posted value one
    /// poll later — a *remote* poll (array homed on another device) also
    /// traverses the link.
    fn wake_block(&mut self, wbid: usize, table: SemArrayId) {
        let wake_at = self.st.now + self.poll_cost(self.block_device(wbid), table);
        let device = self.block_device(wbid) as usize;
        if self.st.trace_enabled {
            // Stamped with the *resume* instant (recorded before it, at
            // post time); the canonical (time, device) sort in
            // `finalize_trace` files it in timestamp order.
            let (wtable, windex, _) = self.st.blocks[wbid].waiting.expect("woken non-waiter");
            let kernel = self.st.blocks[wbid].kernel;
            let block = self.st.blocks[wbid].idx;
            self.record(
                device as u32,
                TraceEvent::BlockWoken {
                    kernel: KernelId(kernel),
                    block,
                    table: wtable,
                    index: windex,
                    time: wake_at,
                },
            );
        }
        self.st.blocks[wbid].waiting = None;
        let sm = self.st.blocks[wbid].sm as usize;
        self.st.sm_active[sm] += self.st.blocks[wbid].units;
        self.st.active_units[device] += self.st.blocks[wbid].units as u64;
        self.st.kernels[self.st.blocks[wbid].kernel].parked -= 1;
        self.push_event(wake_at, EventKind::BlockResume(wbid));
    }

    fn finish_block(&mut self, bid: usize) {
        self.update_util();
        let (k, sm, units, idx) = {
            let slot = &self.st.blocks[bid];
            (slot.kernel, slot.sm, slot.units, slot.idx)
        };
        self.set_sm_free(sm as usize, self.st.sm_free[sm as usize] + units);
        self.st.sm_active[sm as usize] -= units;
        self.st.active_units[self.desc.kernels[k].device as usize] -= units as u64;
        self.st.busy_units -= units as u64;
        self.st.last_finish = self.st.now;
        self.st.issue_dirty = true;
        self.record(
            self.desc.kernels[k].device,
            TraceEvent::BlockFinished {
                kernel: KernelId(k),
                block: idx,
                time: self.st.now,
            },
        );
        let kr = &mut self.st.kernels[k];
        kr.completed += 1;
        kr.concurrent -= 1;
        if kr.completed == self.desc.kernels[k].total {
            kr.end = Some(self.st.now);
            if self.abort_at.is_some_and(|h| self.st.now >= h) {
                self.abort_flag = true;
            }
            let stream = self.desc.kernels[k].stream;
            self.record(
                self.desc.kernels[k].device,
                TraceEvent::KernelFinished {
                    kernel: KernelId(k),
                    time: self.st.now,
                },
            );
            self.st.stream_next[stream] += 1;
            self.schedule_stream_head(stream);
            // Grid-completion signals: semaphore posts registered via
            // `Gpu::post_on_completion` wake PDL consumers parked on the
            // grid semaphore, and `AfterCompletionOf` gates release
            // stream-serialized dependents.
            let desc = self.desc;
            for &(table, index) in &desc.kernels[k].completion_posts {
                self.apply_post_inner(table, index, 1, Some(KernelId(k)));
            }
            for &dep in &desc.completion_dependents[k] {
                if self.st.prereqs[dep] == 1 {
                    self.record(
                        desc.kernels[dep].device,
                        TraceEvent::GateOpened {
                            kernel: KernelId(dep),
                            by: KernelId(k),
                            time: self.st.now,
                        },
                    );
                }
                self.prereq_done(dep);
            }
        }
    }

    fn report(&self) -> RunReport {
        let kernels: Vec<KernelReport> = self
            .desc
            .kernels
            .iter()
            .zip(self.st.kernels.iter())
            .map(|(kd, kr)| {
                let start = kr.start.unwrap_or(kr.ready_at);
                let end = kr.end.unwrap_or(start);
                let sms = self.desc.device_config(kd.device).num_sms;
                KernelReport {
                    name: kd.name.clone(),
                    grid: kd.grid,
                    device: kd.device,
                    occupancy: kd.occupancy,
                    blocks: kd.total,
                    static_waves: waves(kd.total, kd.occupancy, sms),
                    ready: kr.ready_at,
                    start,
                    end,
                    duration: end.saturating_sub(start),
                    max_concurrent: kr.max_concurrent,
                }
            })
            .collect();
        let total = kernels.iter().map(|k| k.end).max().unwrap_or(SimTime::ZERO);
        let span = match self.st.first_issue {
            Some(first) => self.st.last_finish.saturating_sub(first),
            None => SimTime::ZERO,
        };
        let capacity = self.desc.cluster.total_sms() as u128 * SM_CAPACITY_UNITS as u128;
        let sm_utilization = if span > SimTime::ZERO {
            self.st.util_integral as f64 / (capacity as f64 * span.as_picos() as f64)
        } else {
            0.0
        };
        let sem_posts = self.st.sems.ids().map(|id| self.st.sems.posts(id)).sum();
        RunReport {
            total,
            kernels,
            races: self.st.mem.races_total(),
            sm_utilization,
            sem_posts,
            sim_events: self.st.events_handled,
        }
    }
}

/// The simulated GPU: hardware model, memory, streams, and event loop,
/// packaged as a **one-shot** convenience. `Gpu` is now a thin wrapper
/// over the compile/execute split: it owns one [`PipelineDesc`] under
/// construction plus one [`RunState`], and [`Gpu::run`] drives them
/// through the shared engine exactly once.
///
/// **Note (session layer):** for repeated execution of the same workload,
/// finish building, call [`Gpu::compile`] to freeze a
/// [`CompiledPipeline`](crate::CompiledPipeline), and run it any number of
/// times through a [`Session`](crate::Session) (or concurrently through a
/// [`Runtime`](crate::Runtime)). `Gpu::new` + `Gpu::run` remain supported
/// for single runs, but new code with any reuse should prefer the session
/// API.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use cusync_sim::{Dim3, FixedKernel, Gpu, GpuConfig, Op};
///
/// let mut gpu = Gpu::new(GpuConfig::toy(4));
/// let stream = gpu.create_stream(0);
/// gpu.launch(stream, Arc::new(FixedKernel::new(
///     "copy", Dim3::linear(6), 1, vec![Op::read(4096), Op::write(4096)],
/// )));
/// let report = gpu.run()?;
/// assert_eq!(report.kernels[0].blocks, 6);
/// // 6 blocks on 4 SMs at occupancy 1 is 1.5 waves.
/// assert!((report.kernels[0].static_waves - 1.5).abs() < 1e-9);
/// # Ok::<(), cusync_sim::SimError>(())
/// ```
pub struct Gpu {
    pub(crate) desc: PipelineDesc,
    pub(crate) st: RunState,
    mode: EngineMode,
    /// Per-`Gpu` scheduling override; `None` follows the config's
    /// [`SchedPolicyKind`](crate::SchedPolicyKind). Carried into the
    /// [`CompiledPipeline`](crate::CompiledPipeline) by [`Gpu::compile`].
    pub(crate) sched: Option<SchedPolicyRef>,
    pub(crate) ran: bool,
}

impl fmt::Debug for Gpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gpu")
            .field("config", &self.desc.primary_config().name)
            .field("devices", &self.desc.cluster.devices.len())
            .field("mode", &self.mode)
            .field("kernels", &self.desc.kernels.len())
            .field("ran", &self.ran)
            .finish_non_exhaustive()
    }
}

impl Gpu {
    /// Creates a GPU with the given hardware model, using the thread's
    /// default [`EngineMode`] (see [`with_engine_mode`]).
    pub fn new(config: GpuConfig) -> Self {
        Gpu::with_mode(config, default_engine_mode())
    }

    /// Creates a GPU pinned to a specific engine implementation.
    pub fn with_mode(config: GpuConfig, mode: EngineMode) -> Self {
        Gpu::cluster_with_mode(ClusterConfig::single(config), mode)
    }

    /// Creates a multi-device node from a [`ClusterConfig`], using the
    /// thread's default [`EngineMode`]. Streams and semaphore arrays are
    /// placed on devices with [`Gpu::create_stream_on`] /
    /// [`Gpu::alloc_sems_on`]; the single-GPU methods target device 0.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    /// use cusync_sim::{ClusterConfig, Dim3, FixedKernel, Gpu, Op};
    ///
    /// let mut node = Gpu::new_cluster(ClusterConfig::dgx_v100(2));
    /// let ready = node.alloc_sems_on(1, "ready", 1, 0);
    /// let s0 = node.create_stream_on(0, 0);
    /// let s1 = node.create_stream_on(1, 0);
    /// // Device 0 signals device 1 across the link.
    /// node.launch(s0, Arc::new(FixedKernel::new(
    ///     "producer", Dim3::linear(1), 1,
    ///     vec![Op::compute(10_000), Op::Fence, Op::post(ready, 0)],
    /// )));
    /// node.launch(s1, Arc::new(FixedKernel::new(
    ///     "consumer", Dim3::linear(1), 1,
    ///     vec![Op::wait(ready, 0, 1), Op::compute(10_000)],
    /// )));
    /// let report = node.run()?;
    /// assert!(report.kernel("consumer").end > report.kernel("producer").end);
    /// # Ok::<(), cusync_sim::SimError>(())
    /// ```
    pub fn new_cluster(cluster: ClusterConfig) -> Self {
        Gpu::cluster_with_mode(cluster, default_engine_mode())
    }

    /// Creates a multi-device node pinned to a specific engine
    /// implementation.
    pub fn cluster_with_mode(cluster: ClusterConfig, mode: EngineMode) -> Self {
        Gpu {
            desc: PipelineDesc::new(cluster),
            st: RunState::new(),
            mode,
            sched: None,
            ran: false,
        }
    }

    /// Overrides the block-issue ordering for this GPU's run, replacing
    /// the config's [`GpuConfig::sched`] policy. Accepts custom
    /// [`SchedPolicy`] implementations; built-ins come from
    /// [`SchedPolicyKind::instantiate`](crate::SchedPolicyKind::instantiate).
    /// [`Gpu::compile`] carries the override into the compiled pipeline,
    /// where a [`Session::set_sched`](crate::Session::set_sched) override
    /// still takes precedence per run.
    pub fn set_sched(&mut self, sched: SchedPolicyRef) {
        self.sched = Some(sched);
    }

    /// The block-issue ordering this GPU will run with: the override set
    /// by [`Gpu::set_sched`], or the config policy.
    pub fn sched(&self) -> SchedPolicyRef {
        self.sched
            .clone()
            .unwrap_or_else(|| self.desc.cluster.effective_sched().instantiate())
    }

    /// The hardware model in use (device 0's for a multi-device node; see
    /// [`Gpu::cluster`] for the full model).
    pub fn config(&self) -> &GpuConfig {
        self.desc.primary_config()
    }

    /// The full cluster model, including the interconnect.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.desc.cluster
    }

    /// Number of devices in this node.
    pub fn num_devices(&self) -> u32 {
        self.desc.cluster.num_devices()
    }

    /// The event-loop implementation this GPU runs on.
    pub fn engine_mode(&self) -> EngineMode {
        self.mode
    }

    /// Read access to global memory.
    pub fn mem(&self) -> &GlobalMemory {
        &self.st.mem
    }

    /// Mutable access to global memory (allocation, verification).
    pub fn mem_mut(&mut self) -> &mut GlobalMemory {
        &mut self.st.mem
    }

    /// Read access to the semaphore table.
    pub fn sems(&self) -> &SemTable {
        &self.st.sems
    }

    /// Mutable access to the semaphore table (allocation, re-init).
    pub fn sems_mut(&mut self) -> &mut SemTable {
        &mut self.st.sems
    }

    /// Allocates a timing-only buffer (convenience for [`GlobalMemory::alloc`]).
    pub fn alloc(&mut self, name: &str, len: usize, dtype: DType) -> BufferId {
        self.st.mem.alloc(name, len, dtype)
    }

    /// Allocates a semaphore array in device 0's memory (convenience for
    /// [`SemTable::alloc`]).
    pub fn alloc_sems(&mut self, name: &str, len: usize, init: u32) -> SemArrayId {
        self.st.sems.alloc(name, len, init)
    }

    /// Allocates a semaphore array homed in `device`'s global memory.
    /// Posts and polls from other devices pay the cluster's link latency
    /// on the post→observe edge.
    ///
    /// # Panics
    ///
    /// Panics if `device` is not a device of this node.
    pub fn alloc_sems_on(&mut self, device: u32, name: &str, len: usize, init: u32) -> SemArrayId {
        assert!(
            device < self.num_devices(),
            "device {device} outside 0..{}",
            self.num_devices()
        );
        self.st.sems.alloc_on(name, len, init, device)
    }

    /// Creates a stream on device 0. Streams with numerically higher
    /// `priority` issue their thread blocks first when competing for SM
    /// slots.
    pub fn create_stream(&mut self, priority: i32) -> StreamId {
        self.create_stream_on(0, priority)
    }

    /// Creates a stream on `device`: kernels launched on it occupy that
    /// device's SMs only.
    ///
    /// # Panics
    ///
    /// Panics if `device` is not a device of this node.
    pub fn create_stream_on(&mut self, device: u32, priority: i32) -> StreamId {
        assert!(
            device < self.num_devices(),
            "device {device} outside 0..{}",
            self.num_devices()
        );
        let id = StreamId(self.desc.streams.len());
        self.desc.streams.push(StreamDesc {
            device,
            priority,
            queue: Vec::new(),
        });
        id
    }

    /// Enqueues `kernel` on `stream`. Kernels on one stream execute in
    /// order; kernels on different streams may overlap. Each host launch is
    /// separated by [`GpuConfig::host_launch_gap`].
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty or the stream id is foreign.
    pub fn launch(&mut self, stream: StreamId, kernel: Arc<dyn KernelSource>) -> KernelId {
        let grid = kernel.grid();
        assert!(
            grid.count() > 0,
            "kernel {} has an empty grid",
            kernel.name()
        );
        assert!(stream.0 < self.desc.streams.len(), "unknown {stream}");
        let device = self.desc.streams[stream.0].device;
        let device_cfg = self.desc.device_config(device);
        let occupancy = kernel.occupancy();
        let units = device_cfg.units_per_block(occupancy);
        let launch_gap = device_cfg.host_launch_gap;
        let id = self.desc.kernels.len();
        self.desc.kernels.push(KernelDesc {
            name: kernel.name().to_owned(),
            source: kernel,
            stream: stream.0,
            device,
            priority: self.desc.streams[stream.0].priority,
            host_ready: self.desc.host_time[device as usize],
            grid,
            total: grid.count(),
            occupancy,
            units,
            predrive: false,
            gates: Vec::new(),
            completion_posts: Vec::new(),
        });
        // Each device's host rank owns its own launch queue; launches to
        // different devices do not serialize against each other.
        self.desc.host_time[device as usize] += launch_gap;
        self.desc.streams[stream.0].queue.push(id);
        KernelId(id)
    }

    /// Gates `kernel`'s dispatch on another kernel's progress — the
    /// simulator's Programmatic Dependent Launch primitive. The kernel
    /// becomes dispatchable only once its stream reaches it **and** every
    /// registered gate is satisfied; see [`LaunchGate`] for the two
    /// trigger points. Gates may be registered any time before
    /// [`Gpu::run`] / [`Gpu::compile`], in either launch order.
    ///
    /// # Panics
    ///
    /// Panics if either kernel id is unknown or the kernel gates on
    /// itself.
    pub fn gate_launch(&mut self, kernel: KernelId, gate: LaunchGate) {
        let n = self.desc.kernels.len();
        let target = gate.target();
        assert!(kernel.0 < n, "unknown kernel k{}", kernel.0);
        assert!(target.0 < n, "unknown gate target k{}", target.0);
        assert!(
            target != kernel,
            "kernel k{} cannot gate on itself",
            kernel.0
        );
        self.desc.kernels[kernel.0].gates.push(gate);
    }

    /// Registers a semaphore post fired the instant `kernel`'s final
    /// thread block finishes — the producer half of a PDL edge: consumers
    /// issue a plain semaphore wait (their "grid dependency sync") after
    /// their preamble and park until this post lands. Idempotent per
    /// `(kernel, table, index)` so shared producers register once.
    ///
    /// # Panics
    ///
    /// Panics if the kernel id or semaphore array is unknown.
    pub fn post_on_completion(&mut self, kernel: KernelId, table: SemArrayId, index: u32) {
        assert!(
            kernel.0 < self.desc.kernels.len(),
            "unknown kernel k{}",
            kernel.0
        );
        assert!(
            (index as usize) < self.st.sems.len(table),
            "semaphore index {index} outside {table}"
        );
        let posts = &mut self.desc.kernels[kernel.0].completion_posts;
        if !posts.contains(&(table, index)) {
            posts.push((table, index));
        }
    }

    /// Records scheduling events for inspection by [`Gpu::trace`].
    pub fn enable_trace(&mut self) {
        self.st.trace_enabled = true;
    }

    /// The recorded trace (empty unless [`Gpu::enable_trace`] was called).
    pub fn trace(&self) -> &[TraceEvent] {
        &self.st.trace
    }

    /// Heap events handled so far (a measure of simulation work, reported
    /// as [`RunReport::sim_events`]).
    pub fn events_handled(&self) -> u64 {
        self.st.events_handled
    }

    /// Runs all launched kernels to completion.
    ///
    /// This is the **one-shot** path: a run consumes the launched kernels
    /// and leaves memory/semaphores in their final state, so a `Gpu` is
    /// single-shot. For repeated runs, use [`Gpu::compile`] +
    /// [`Session::run`](crate::Session::run) instead — the session layer
    /// is what this method drives internally.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if execution stalls with incomplete
    /// kernels — every resident block waiting on a semaphore that nothing
    /// can post — and [`SimError::AlreadyRan`] if this [`Gpu`] already ran.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        if self.ran {
            return Err(SimError::AlreadyRan);
        }
        self.ran = true;
        self.desc.finalize_flags(&self.st.mem);
        let programs = if self.mode == EngineMode::Optimized {
            let RunState { mem, sems, .. } = &mut self.st;
            self.desc.collect_programs(mem, sems)
        } else {
            Programs::empty()
        };
        let trace_enabled = self.st.trace_enabled;
        self.st.reset(&self.desc);
        self.st.trace_enabled = trace_enabled;
        let sched = self.sched();
        // One-shot runs honor the parallel engine too (env variable or
        // cluster config; there is no session here to carry an override).
        let exec = env_exec_override().unwrap_or_else(|| self.desc.cluster.effective_exec());
        if exec == ExecMode::Parallel && self.mode == EngineMode::Optimized {
            let shardable = par::shardable(&self.desc, &programs, &self.st.sems);
            let threads = par::thread_budget(self.desc.cluster.devices.len(), 0);
            let mut pool = Vec::new();
            return match par::execute_auto(
                &self.desc,
                &programs,
                self.mode,
                sched.as_ref(),
                &mut self.st,
                RunOptions::default(),
                shardable,
                threads,
                &mut pool,
            )? {
                RunOutcome::Complete(report) => Ok(report),
                RunOutcome::Aborted(_) => unreachable!("no abort horizon was requested"),
            };
        }
        execute(
            &self.desc,
            &programs,
            self.mode,
            sched.as_ref(),
            &mut self.st,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::FixedKernel;

    fn quiet_config() -> GpuConfig {
        GpuConfig {
            host_launch_gap: SimTime::ZERO,
            kernel_dispatch_latency: SimTime::ZERO,
            block_jitter: 0.0,
            ..GpuConfig::toy(4)
        }
    }

    #[test]
    fn single_kernel_runs_in_waves() {
        let mut gpu = Gpu::new(quiet_config());
        let s = gpu.create_stream(0);
        // 6 blocks, occupancy 1, 4 SMs: two waves (4 then 2), like Fig. 1b.
        gpu.launch(
            s,
            Arc::new(FixedKernel::new(
                "k",
                Dim3::linear(6),
                1,
                vec![Op::compute(1000)],
            )),
        );
        let report = gpu.run().unwrap();
        let k = &report.kernels[0];
        assert_eq!(k.blocks, 6);
        assert!((k.static_waves - 1.5).abs() < 1e-9);
        assert_eq!(k.max_concurrent, 4);
        // Two sequential waves of compute(1000 cycles).
        let one_wave = GpuConfig::toy(4).cycles(1000);
        assert_eq!(k.duration, one_wave + one_wave);
    }

    #[test]
    fn same_stream_kernels_serialize() {
        let mut gpu = Gpu::new(quiet_config());
        let s = gpu.create_stream(0);
        gpu.launch(
            s,
            Arc::new(FixedKernel::new(
                "a",
                Dim3::linear(2),
                1,
                vec![Op::compute(500)],
            )),
        );
        gpu.launch(
            s,
            Arc::new(FixedKernel::new(
                "b",
                Dim3::linear(2),
                1,
                vec![Op::compute(500)],
            )),
        );
        let report = gpu.run().unwrap();
        assert!(report.kernel("b").start >= report.kernel("a").end);
    }

    #[test]
    fn different_streams_overlap() {
        let mut gpu = Gpu::new(quiet_config());
        let s1 = gpu.create_stream(0);
        let s2 = gpu.create_stream(0);
        gpu.launch(
            s1,
            Arc::new(FixedKernel::new(
                "a",
                Dim3::linear(2),
                1,
                vec![Op::compute(10_000)],
            )),
        );
        gpu.launch(
            s2,
            Arc::new(FixedKernel::new(
                "b",
                Dim3::linear(2),
                1,
                vec![Op::compute(10_000)],
            )),
        );
        let report = gpu.run().unwrap();
        // 4 SMs fit both 2-block kernels at once.
        assert!(report.kernel("b").start < report.kernel("a").end);
    }

    #[test]
    fn semaphore_wait_blocks_until_post() {
        let mut gpu = Gpu::new(quiet_config());
        let sem = gpu.alloc_sems("sem", 1, 0);
        let s1 = gpu.create_stream(0);
        let s2 = gpu.create_stream(0);
        gpu.launch(
            s1,
            Arc::new(FixedKernel::new(
                "producer",
                Dim3::linear(1),
                1,
                vec![Op::compute(100_000), Op::post(sem, 0)],
            )),
        );
        gpu.launch(
            s2,
            Arc::new(FixedKernel::new(
                "consumer",
                Dim3::linear(1),
                1,
                vec![Op::wait(sem, 0, 1), Op::compute(10)],
            )),
        );
        let report = gpu.run().unwrap();
        let producer_end = report.kernel("producer").end;
        let consumer_end = report.kernel("consumer").end;
        assert!(consumer_end > producer_end);
        assert_eq!(report.sem_posts, 1);
    }

    #[test]
    fn deadlock_is_detected_and_described() {
        let mut gpu = Gpu::new(quiet_config());
        let sem = gpu.alloc_sems("never", 1, 0);
        let s = gpu.create_stream(0);
        gpu.launch(
            s,
            Arc::new(FixedKernel::new(
                "stuck",
                Dim3::linear(1),
                1,
                vec![Op::wait(sem, 0, 1)],
            )),
        );
        let err = gpu.run().unwrap_err();
        match err {
            SimError::Deadlock(report) => {
                assert_eq!(report.pending_names(), vec!["stuck".to_string()]);
                assert_eq!(report.blocked.len(), 1);
                let line = report.blocked[0].to_string();
                assert!(line.contains("never[0] >= 1"), "{line}");
                assert_eq!(report.blocked[0].current, 0);
                // One resident spinner, nothing executing: the report's
                // occupancy view shows the slot held by a busy-wait.
                assert_eq!(report.sms.len(), 1);
                assert_eq!(report.sms[0].active_units, 0);
                assert!(report.sms[0].spinning_units > 0);
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn busy_wait_occupies_sm_slots_causing_deadlock() {
        // Consumer fills all 4 SMs busy-waiting; producer (launched later)
        // can never run: the Section III-B hazard.
        let mut gpu = Gpu::new(quiet_config());
        let sem = gpu.alloc_sems("tile", 1, 0);
        let s1 = gpu.create_stream(0);
        let s2 = gpu.create_stream(1); // higher priority: consumer issues first
        gpu.launch(
            s1,
            Arc::new(FixedKernel::new(
                "producer",
                Dim3::linear(4),
                1,
                vec![Op::compute(100), Op::post(sem, 0)],
            )),
        );
        gpu.launch(
            s2,
            Arc::new(FixedKernel::new(
                "consumer",
                Dim3::linear(4),
                1,
                vec![Op::wait(sem, 0, 4), Op::compute(10)],
            )),
        );
        let err = gpu.run().unwrap_err();
        let SimError::Deadlock(report) = err else {
            panic!("expected deadlock, got {err}");
        };
        // The wait cycle names the spinner, the polled semaphore and the
        // starved producer.
        let cycle = report.wait_cycle().expect("occupancy cycle");
        assert!(cycle.contains("consumer"), "{cycle}");
        assert!(cycle.contains("tile[0]"), "{cycle}");
        assert!(cycle.contains("producer"), "{cycle}");
        let starved: Vec<_> = report.starved().collect();
        assert_eq!(starved.len(), 1);
        assert_eq!(starved[0].name, "producer");
        assert_eq!(starved[0].unissued(), 4);
    }

    #[test]
    fn priority_orders_block_issue() {
        let mut gpu = Gpu::new(quiet_config());
        gpu.enable_trace();
        let lo = gpu.create_stream(0);
        let hi = gpu.create_stream(5);
        gpu.launch(
            lo,
            Arc::new(FixedKernel::new(
                "lo",
                Dim3::linear(4),
                1,
                vec![Op::compute(100)],
            )),
        );
        gpu.launch(
            hi,
            Arc::new(FixedKernel::new(
                "hi",
                Dim3::linear(4),
                1,
                vec![Op::compute(100)],
            )),
        );
        let _ = gpu.run().unwrap();
        let first_issue = gpu
            .trace()
            .iter()
            .find_map(|e| match e {
                TraceEvent::BlockIssued { kernel, .. } => Some(*kernel),
                _ => None,
            })
            .unwrap();
        // Both kernels become ready at t=0 (zero latencies); the
        // higher-priority stream's kernel issues first.
        assert_eq!(first_issue, KernelId(1));
    }

    #[test]
    fn atomic_add_returns_previous_value_in_order() {
        // Three blocks each fetch-add the counter; results must be 0,1,2 in
        // issue order (deterministic engine).
        use crate::kernel::{BlockBody, FnKernel};
        struct CounterBody {
            counter: SemArrayId,
            state: u8,
            seen: Option<u32>,
        }
        impl BlockBody for CounterBody {
            fn resume(&mut self, ctx: &mut BlockCtx<'_>) -> Step {
                match self.state {
                    0 => {
                        self.state = 1;
                        Step::Op(Op::AtomicAdd {
                            table: self.counter,
                            index: 0,
                            inc: 1,
                        })
                    }
                    1 => {
                        self.seen = ctx.atomic_result;
                        self.state = 2;
                        // Write our observation so the test can assert it.
                        Step::Op(Op::compute(10))
                    }
                    _ => Step::Done,
                }
            }
        }
        let mut gpu = Gpu::new(quiet_config());
        let counter = gpu.alloc_sems("ctr", 1, 0);
        let s = gpu.create_stream(0);
        gpu.launch(
            s,
            Arc::new(FnKernel::new("count", Dim3::linear(3), 1, move |_| {
                Box::new(CounterBody {
                    counter,
                    state: 0,
                    seen: None,
                })
            })),
        );
        gpu.run().unwrap();
        assert_eq!(gpu.sems().value(counter, 0), 3);
    }

    #[test]
    fn run_is_single_shot() {
        let mut gpu = Gpu::new(quiet_config());
        let s = gpu.create_stream(0);
        gpu.launch(
            s,
            Arc::new(FixedKernel::new("k", Dim3::linear(1), 1, vec![])),
        );
        gpu.run().unwrap();
        // A second run is an error, not an abort: library callers (e.g.
        // bench harness worker threads) must be able to recover.
        assert_eq!(gpu.run().unwrap_err(), SimError::AlreadyRan);
    }

    #[test]
    fn utilization_reflects_partial_waves() {
        let mut gpu = Gpu::new(quiet_config());
        let s = gpu.create_stream(0);
        // 2 blocks on 4 SMs: utilization 50% for the whole run.
        gpu.launch(
            s,
            Arc::new(FixedKernel::new(
                "k",
                Dim3::linear(2),
                1,
                vec![Op::compute(1000)],
            )),
        );
        let report = gpu.run().unwrap();
        assert!(
            (report.sm_utilization - 0.5).abs() < 1e-6,
            "{}",
            report.sm_utilization
        );
    }

    /// Builds one moderately adversarial workload: three streams with
    /// mixed priorities, a producer/consumer semaphore chain, atomics,
    /// fences, jitter and partial waves — every engine feature at once.
    fn mixed_workload(gpu: &mut Gpu) {
        let sem = gpu.alloc_sems("tiles", 8, 0);
        let ctr = gpu.alloc_sems("order", 1, 0);
        let s0 = gpu.create_stream(0);
        let s1 = gpu.create_stream(2);
        let s2 = gpu.create_stream(-1);
        gpu.launch(
            s0,
            Arc::new(FixedKernel::new(
                "producer",
                Dim3::linear(8),
                2,
                vec![
                    Op::read(64 * 1024),
                    Op::main_step(32 * 1024, 40_000),
                    Op::Syncthreads,
                    Op::Fence,
                    Op::post(sem, 0),
                    Op::write(16 * 1024),
                ],
            )),
        );
        gpu.launch(
            s1,
            Arc::new(FixedKernel::new(
                "consumer",
                Dim3::linear(8),
                2,
                vec![
                    Op::wait(sem, 0, 4),
                    Op::AtomicAdd {
                        table: ctr,
                        index: 0,
                        inc: 1,
                    },
                    Op::main_step(8 * 1024, 90_000),
                    Op::write(8 * 1024),
                ],
            )),
        );
        gpu.launch(
            s2,
            Arc::new(FixedKernel::new(
                "background",
                Dim3::linear(5),
                1,
                vec![Op::compute(250_000), Op::read(128 * 1024)],
            )),
        );
    }

    #[test]
    fn optimized_engine_matches_reference_exactly() {
        let run = |mode: EngineMode| {
            let mut gpu = Gpu::with_mode(GpuConfig::toy(4), mode);
            gpu.enable_trace();
            mixed_workload(&mut gpu);
            let report = gpu.run().unwrap();
            (report, gpu.trace().to_vec())
        };
        let (ref_report, ref_trace) = run(EngineMode::Reference);
        let (opt_report, opt_trace) = run(EngineMode::Optimized);
        assert_eq!(ref_report.kernels, opt_report.kernels);
        assert_eq!(ref_report.total, opt_report.total);
        assert_eq!(ref_report.sem_posts, opt_report.sem_posts);
        assert_eq!(ref_report.sm_utilization, opt_report.sm_utilization);
        assert_eq!(ref_trace, opt_trace, "scheduling traces must be identical");
        // The whole point: the optimized engine must do the same work with
        // fewer heap events (ops coalesced between sync points).
        assert!(
            opt_report.sim_events <= ref_report.sim_events,
            "optimized {} vs reference {}",
            opt_report.sim_events,
            ref_report.sim_events
        );
    }

    #[test]
    fn optimized_engine_matches_reference_on_deadlocks() {
        let run = |mode: EngineMode| {
            let mut gpu = Gpu::with_mode(
                GpuConfig {
                    host_launch_gap: SimTime::ZERO,
                    kernel_dispatch_latency: SimTime::ZERO,
                    ..GpuConfig::toy(4)
                },
                mode,
            );
            let sem = gpu.alloc_sems("tile", 2, 0);
            let s1 = gpu.create_stream(0);
            let s2 = gpu.create_stream(1);
            gpu.launch(
                s1,
                Arc::new(FixedKernel::new(
                    "producer",
                    Dim3::linear(4),
                    1,
                    vec![Op::compute(100), Op::post(sem, 0)],
                )),
            );
            gpu.launch(
                s2,
                Arc::new(FixedKernel::new(
                    "consumer",
                    Dim3::linear(4),
                    1,
                    vec![Op::wait(sem, 0, 4), Op::compute(10)],
                )),
            );
            gpu.run().unwrap_err()
        };
        let reference = run(EngineMode::Reference);
        let optimized = run(EngineMode::Optimized);
        assert_eq!(reference, optimized, "blocked/pending sets must match");
    }

    #[test]
    fn coalescing_respects_cross_block_memory_state() {
        // Jittered blocks finish a wave at staggered times, so a block's
        // later ops see different `active_units` than its first op did;
        // coalescing across those boundaries would drift the timeline.
        let run = |mode: EngineMode| {
            let mut gpu = Gpu::with_mode(GpuConfig::toy(3), mode);
            let s = gpu.create_stream(0);
            gpu.launch(
                s,
                Arc::new(FixedKernel::new(
                    "mem",
                    Dim3::linear(7),
                    1,
                    vec![
                        Op::read(256 * 1024),
                        Op::main_step(64 * 1024, 10_000),
                        Op::main_step(64 * 1024, 10_000),
                        Op::write(256 * 1024),
                    ],
                )),
            );
            gpu.run().unwrap()
        };
        let reference = run(EngineMode::Reference);
        let optimized = run(EngineMode::Optimized);
        assert_eq!(reference.kernels, optimized.kernels);
        assert_eq!(reference.sm_utilization, optimized.sm_utilization);
    }

    #[test]
    fn scoped_engine_mode_sets_and_restores_default() {
        assert_eq!(default_engine_mode(), EngineMode::Optimized);
        let inner = with_engine_mode(EngineMode::Reference, || {
            let gpu = Gpu::new(GpuConfig::toy(1));
            gpu.engine_mode()
        });
        assert_eq!(inner, EngineMode::Reference);
        assert_eq!(default_engine_mode(), EngineMode::Optimized);
    }

    #[test]
    fn engine_mode_restored_after_panic_in_scope() {
        let result =
            std::panic::catch_unwind(|| with_engine_mode(EngineMode::Reference, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(default_engine_mode(), EngineMode::Optimized);
    }

    #[test]
    fn lone_block_coalesces_to_a_handful_of_events() {
        // One block, no competitors: every op between launch and finish
        // coalesces, so the heap sees O(1) events instead of O(ops).
        let ops: Vec<Op> = (0..1000).map(|_| Op::compute(100)).collect();
        let mut gpu = Gpu::with_mode(quiet_config(), EngineMode::Optimized);
        let s = gpu.create_stream(0);
        gpu.launch(
            s,
            Arc::new(FixedKernel::new("solo", Dim3::linear(1), 1, ops)),
        );
        let report = gpu.run().unwrap();
        assert!(
            report.sim_events < 20,
            "expected a coalesced run, saw {} events",
            report.sim_events
        );
    }

    fn quiet_cluster(devices: u32, sms: u32) -> ClusterConfig {
        ClusterConfig {
            devices: vec![quiet_config(); devices as usize]
                .into_iter()
                .map(|mut g| {
                    g.num_sms = sms;
                    g
                })
                .collect(),
            link_latency: SimTime::from_nanos(3_000),
            link_bytes_per_sec: 100e9,
        }
    }

    #[test]
    fn devices_have_independent_sm_pools() {
        // Two kernels that each fill a whole device overlap completely on
        // a 2-device node — they would serialize on one device.
        let mut node = Gpu::new_cluster(quiet_cluster(2, 4));
        let s0 = node.create_stream_on(0, 0);
        let s1 = node.create_stream_on(1, 0);
        for (name, s) in [("a", s0), ("b", s1)] {
            node.launch(
                s,
                Arc::new(FixedKernel::new(
                    name,
                    Dim3::linear(4),
                    1,
                    vec![Op::compute(100_000)],
                )),
            );
        }
        let report = node.run().unwrap();
        assert_eq!(report.kernel("a").start, report.kernel("b").start);
        assert_eq!(report.kernel("a").end, report.kernel("b").end);
        assert_eq!(report.kernel("a").device, 0);
        assert_eq!(report.kernel("b").device, 1);
    }

    #[test]
    fn cross_device_post_pays_the_link_latency() {
        let run = |consumer_device: u32| {
            let mut node = Gpu::new_cluster(quiet_cluster(2, 4));
            let sem = node.alloc_sems_on(consumer_device, "ready", 1, 0);
            let s0 = node.create_stream_on(0, 0);
            let sc = node.create_stream_on(consumer_device, 0);
            node.launch(
                s0,
                Arc::new(FixedKernel::new(
                    "producer",
                    Dim3::linear(1),
                    1,
                    vec![Op::compute(100_000), Op::post(sem, 0)],
                )),
            );
            node.launch(
                sc,
                Arc::new(FixedKernel::new(
                    "consumer",
                    Dim3::linear(1),
                    1,
                    vec![Op::wait(sem, 0, 1), Op::compute(10)],
                )),
            );
            node.run().unwrap().kernel("consumer").end
        };
        let local = run(0);
        let remote = run(1);
        // The remote consumer's wake arrives exactly one link traversal
        // later (sem homed with the consumer: the *post* crosses).
        let expected = quiet_cluster(2, 4).link_latency;
        assert_eq!(remote.saturating_sub(local), expected);
    }

    #[test]
    fn remote_poll_pays_the_link_latency() {
        // Consumer waits on an array homed with the *producer*: the post
        // is local, the consumer's observing poll crosses the link.
        let run = |sem_device: u32| {
            let mut node = Gpu::new_cluster(quiet_cluster(2, 4));
            let sem = node.alloc_sems_on(sem_device, "ready", 1, 0);
            let s0 = node.create_stream_on(0, 0);
            let s1 = node.create_stream_on(1, 0);
            node.launch(
                s0,
                Arc::new(FixedKernel::new(
                    "producer",
                    Dim3::linear(1),
                    1,
                    vec![Op::compute(100_000), Op::post(sem, 0)],
                )),
            );
            node.launch(
                s1,
                Arc::new(FixedKernel::new(
                    "consumer",
                    Dim3::linear(1),
                    1,
                    vec![Op::wait(sem, 0, 1), Op::compute(10)],
                )),
            );
            node.run().unwrap().kernel("consumer").end
        };
        // Homed on 0 (remote poll) vs homed on 1 (remote post): both pay
        // exactly one traversal, so the end times coincide.
        assert_eq!(run(0), run(1));
    }

    #[test]
    fn link_send_charges_wire_time_only() {
        let cluster = quiet_cluster(2, 4);
        let mut node = Gpu::new_cluster(cluster.clone());
        let s = node.create_stream_on(0, 0);
        node.launch(
            s,
            Arc::new(FixedKernel::new(
                "send",
                Dim3::linear(1),
                1,
                vec![Op::link_send(100_000_000)],
            )),
        );
        let report = node.run().unwrap();
        // 100 MB at 100 GB/s = 1 ms, unscaled by residency or jitter.
        assert_eq!(
            report.kernel("send").duration,
            cluster.link_wire_time(100_000_000)
        );
        assert_eq!(report.kernel("send").duration, SimTime::from_micros(1000.0));
    }

    #[test]
    fn cluster_engines_match_on_cross_device_pipelines() {
        let run = |mode: EngineMode| {
            let mut node = Gpu::cluster_with_mode(quiet_cluster(3, 4), mode);
            node.enable_trace();
            let sems: Vec<_> = (0..3)
                .map(|d| node.alloc_sems_on(d, &format!("ring{d}"), 4, 0))
                .collect();
            for d in 0..3u32 {
                let s = node.create_stream_on(d, d as i32 % 2);
                let next = sems[((d + 1) % 3) as usize];
                let own = sems[d as usize];
                let mut ops = vec![
                    Op::read(64 * 1024),
                    Op::compute(50_000),
                    Op::link_send(256 * 1024),
                    Op::Fence,
                    Op::post(next, 0),
                ];
                if d > 0 {
                    ops.insert(0, Op::wait(own, 0, 1));
                }
                node.launch(
                    s,
                    Arc::new(FixedKernel::new(&format!("k{d}"), Dim3::linear(5), 2, ops)),
                );
            }
            let report = node.run().unwrap();
            (report, node.trace().to_vec())
        };
        let (ref_report, ref_trace) = run(EngineMode::Reference);
        let (opt_report, opt_trace) = run(EngineMode::Optimized);
        assert_eq!(ref_report.kernels, opt_report.kernels);
        assert_eq!(ref_report.total, opt_report.total);
        assert_eq!(ref_report.sm_utilization, opt_report.sm_utilization);
        assert_eq!(ref_trace, opt_trace);
    }

    #[test]
    #[should_panic(expected = "device 2 outside 0..2")]
    fn foreign_device_stream_rejected() {
        let mut node = Gpu::new_cluster(quiet_cluster(2, 4));
        node.create_stream_on(2, 0);
    }

    #[test]
    fn build_error_displays_builder_and_input() {
        let e = BuildError::missing("GemmBuilder(g1)", "A operand");
        let s = e.to_string();
        assert!(
            s.contains("GemmBuilder(g1)") && s.contains("A operand"),
            "{s}"
        );
        let sim: SimError = e.into();
        assert!(matches!(sim, SimError::Build(_)));
    }
}
