//! The kernel interface: how computations describe their thread blocks to
//! the engine.

use std::fmt;

use crate::dim::Dim3;
use crate::mem::GlobalMemory;
use crate::ops::Op;
use crate::sem::SemTable;
use crate::time::SimTime;

/// What a thread block does next.
#[derive(Debug)]
pub enum Step {
    /// Execute `Op`, then resume the body when it completes.
    Op(Op),
    /// The block has finished; its SM slot is released.
    Done,
}

/// Execution context handed to a [`BlockBody`] on every resume.
///
/// Provides the block's identity, the current simulated time, functional
/// access to global memory, read access to semaphores, and the result of the
/// most recent [`Op::AtomicAdd`].
pub struct BlockCtx<'a> {
    /// This block's index within the kernel grid.
    pub block: Dim3,
    /// Current simulated time (completion time of the previous op).
    pub now: SimTime,
    /// Functional view of global memory. Reads of poisoned elements are
    /// logged as races; see [`GlobalMemory`].
    pub mem: &'a mut GlobalMemory,
    /// Read-only view of semaphore values (the engine applies posts).
    pub sems: &'a SemTable,
    /// Previous value returned by the latest [`Op::AtomicAdd`] issued by
    /// this block, or `None` before the first one completes.
    pub atomic_result: Option<u32>,
}

impl fmt::Debug for BlockCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BlockCtx")
            .field("block", &self.block)
            .field("now", &self.now)
            .field("atomic_result", &self.atomic_result)
            .finish_non_exhaustive()
    }
}

/// A resumable thread-block program.
///
/// The engine drives the body as a coroutine: each call to [`resume`] runs
/// the block "until its next timed operation" and returns that operation (or
/// [`Step::Done`]). Functional effects performed inside `resume` — reads and
/// writes through [`BlockCtx::mem`] — take place at `ctx.now`, i.e. after
/// the previously returned op completed.
///
/// **Effect-ordering contract:** a body must perform the functional write of
/// a tile in the `resume` call *after* it returned the corresponding
/// [`Op::GlobalWrite`], and must issue any [`Op::SemPost`] for that tile
/// later still. This guarantees that a correctly synchronized consumer can
/// never observe the gap between timing and effect.
///
/// [`resume`]: BlockBody::resume
pub trait BlockBody: Send {
    /// Advances the block to its next timed operation.
    fn resume(&mut self, ctx: &mut BlockCtx<'_>) -> Step;
}

/// A kernel that can be launched on the simulated GPU.
///
/// Implementations describe their launch geometry and construct a
/// [`BlockBody`] for each thread block on demand (blocks are materialized
/// lazily, when the scheduler issues them onto an SM).
pub trait KernelSource: Send + Sync {
    /// Kernel name, for traces and reports.
    fn name(&self) -> &str;

    /// Grid dimensions (number of thread blocks per dimension).
    fn grid(&self) -> Dim3;

    /// Occupancy: resident thread blocks per SM. Determined on real
    /// hardware by register/shared-memory usage (Section II-A); here it is
    /// part of the kernel's cost-model contract.
    fn occupancy(&self) -> u32;

    /// Creates the program of thread block `block`.
    fn block(&self, block: Dim3) -> Box<dyn BlockBody>;

    /// Whether, under the current memory configuration, this kernel's
    /// block bodies emit **context-independent** op streams: no resume
    /// reads [`BlockCtx::now`] or [`BlockCtx::atomic_result`], performs a
    /// functional memory access, or otherwise varies its emitted ops based
    /// on the context it is handed.
    ///
    /// When true, the optimized engine *pre-drives* each body once at
    /// issue time — running every `resume` back-to-back while the body's
    /// state is hot in cache — and replays the collected ops through a
    /// cursor over an engine-internal op arena as events fire. The
    /// timeline is identical (op durations are still priced at each op's
    /// own start time); only the interpreter work moves out of the event
    /// loop's hot path.
    ///
    /// The default is `false` (always resume lazily, the reference
    /// behaviour). Implementations must be conservative: returning `true`
    /// for a context-dependent body changes simulated results.
    fn timing_static(&self, mem: &GlobalMemory) -> bool {
        let _ = mem;
        false
    }

    /// A digest of every parameter that changes this kernel's simulated
    /// **cost** without changing its launch geometry — op cycle counts,
    /// a GeMM's contraction depth, a dropout keep-probability, and so on.
    /// Folded into
    /// [`CompiledPipeline::fingerprint`](crate::CompiledPipeline), so two
    /// pipelines launching identical grids of differently-priced work do
    /// not collide in fingerprint-keyed caches (the serving layer's
    /// service-time memo, the autotuner's tuning cache).
    ///
    /// The default is `0` — geometry-only discrimination — appropriate
    /// only for sources whose cost is fully determined by
    /// name/grid/occupancy or that cannot introspect their bodies (e.g.
    /// [`FnKernel`], which wraps an opaque closure).
    fn cost_signature(&self) -> u64 {
        0
    }
}

/// A trivial kernel whose blocks each execute a fixed list of ops, useful
/// for tests and microbenchmarks.
///
/// # Examples
///
/// ```
/// use cusync_sim::{FixedKernel, KernelSource, Dim3, Op};
///
/// let k = FixedKernel::new("noop", Dim3::linear(4), 1, vec![Op::compute(100)]);
/// assert_eq!(k.grid().count(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct FixedKernel {
    name: String,
    grid: Dim3,
    occupancy: u32,
    ops: Vec<Op>,
}

impl FixedKernel {
    /// Creates a kernel whose every block runs `ops` in order.
    pub fn new(name: &str, grid: Dim3, occupancy: u32, ops: Vec<Op>) -> Self {
        FixedKernel {
            name: name.to_owned(),
            grid,
            occupancy,
            ops,
        }
    }
}

impl KernelSource for FixedKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn grid(&self) -> Dim3 {
        self.grid
    }

    fn occupancy(&self) -> u32 {
        self.occupancy
    }

    fn block(&self, _block: Dim3) -> Box<dyn BlockBody> {
        Box::new(FixedBody {
            ops: self.ops.clone(),
            next: 0,
        })
    }

    fn timing_static(&self, _mem: &GlobalMemory) -> bool {
        // `FixedBody` never touches its context.
        true
    }

    fn cost_signature(&self) -> u64 {
        // The op list *is* the cost model (`Op` renders every payload —
        // cycle counts, byte counts, sem indexes — in its Debug form).
        crate::fnv1a(format!("{:?}", self.ops).as_bytes())
    }
}

#[derive(Debug)]
struct FixedBody {
    ops: Vec<Op>,
    next: usize,
}

impl BlockBody for FixedBody {
    fn resume(&mut self, _ctx: &mut BlockCtx<'_>) -> Step {
        match self.ops.get(self.next) {
            Some(&op) => {
                self.next += 1;
                Step::Op(op)
            }
            None => Step::Done,
        }
    }
}

/// A kernel whose every block runs its *own* fixed op list, materialized
/// once at construction from a closure over the block index.
///
/// This is the per-block generalization of [`FixedKernel`]: because the op
/// lists are fixed data (no body ever reads its [`BlockCtx`]), the kernel
/// is `timing_static` and the optimized engine pre-drives it at compile
/// time. Used for workloads where blocks differ only in *which* tiles or
/// semaphores they touch — e.g. a tensor-parallel GEMM whose tile (x, y)
/// waits on the allreduce chunk covering its rows.
///
/// # Examples
///
/// ```
/// use cusync_sim::{Dim3, IndexedKernel, KernelSource, Op};
///
/// let k = IndexedKernel::new("ramp", Dim3::linear(3), 1, |idx| {
///     vec![Op::compute(1000 * (idx.x as u64 + 1))]
/// });
/// assert_eq!(k.grid().count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct IndexedKernel {
    name: String,
    grid: Dim3,
    occupancy: u32,
    /// Per-block op lists in the grid's row-major linear order.
    ops: Vec<Vec<Op>>,
}

impl IndexedKernel {
    /// Creates a kernel whose block `idx` runs `ops_of(idx)`, evaluated
    /// eagerly for every block of `grid`.
    pub fn new(
        name: &str,
        grid: Dim3,
        occupancy: u32,
        mut ops_of: impl FnMut(Dim3) -> Vec<Op>,
    ) -> Self {
        let ops = (0..grid.count())
            .map(|linear| ops_of(grid.delinear(linear)))
            .collect();
        IndexedKernel {
            name: name.to_owned(),
            grid,
            occupancy,
            ops,
        }
    }
}

impl KernelSource for IndexedKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn grid(&self) -> Dim3 {
        self.grid
    }

    fn occupancy(&self) -> u32 {
        self.occupancy
    }

    fn block(&self, block: Dim3) -> Box<dyn BlockBody> {
        let linear = self.grid.linear_of(block) as usize;
        Box::new(FixedBody {
            ops: self.ops[linear].clone(),
            next: 0,
        })
    }

    fn timing_static(&self, _mem: &GlobalMemory) -> bool {
        // Op lists are fixed data; bodies never read their context.
        true
    }

    fn cost_signature(&self) -> u64 {
        crate::fnv1a(format!("{:?}", self.ops).as_bytes())
    }
}

/// A kernel built from a closure, for ad-hoc kernels in tests.
pub struct FnKernel<F> {
    name: String,
    grid: Dim3,
    occupancy: u32,
    make: F,
}

impl<F> FnKernel<F>
where
    F: Fn(Dim3) -> Box<dyn BlockBody> + Send + Sync,
{
    /// Creates a kernel whose block bodies are produced by `make`.
    pub fn new(name: &str, grid: Dim3, occupancy: u32, make: F) -> Self {
        FnKernel {
            name: name.to_owned(),
            grid,
            occupancy,
            make,
        }
    }
}

impl<F> fmt::Debug for FnKernel<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnKernel")
            .field("name", &self.name)
            .field("grid", &self.grid)
            .field("occupancy", &self.occupancy)
            .finish_non_exhaustive()
    }
}

impl<F> KernelSource for FnKernel<F>
where
    F: Fn(Dim3) -> Box<dyn BlockBody> + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn grid(&self) -> Dim3 {
        self.grid
    }

    fn occupancy(&self) -> u32 {
        self.occupancy
    }

    fn block(&self, block: Dim3) -> Box<dyn BlockBody> {
        (self.make)(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_kernel_replays_ops_then_finishes() {
        let k = FixedKernel::new("k", Dim3::linear(1), 2, vec![Op::compute(5), Op::read(64)]);
        let mut body = k.block(Dim3::default());
        let mut mem = GlobalMemory::new();
        let sems = SemTable::new();
        let mut ctx = BlockCtx {
            block: Dim3::default(),
            now: SimTime::ZERO,
            mem: &mut mem,
            sems: &sems,
            atomic_result: None,
        };
        assert!(matches!(
            body.resume(&mut ctx),
            Step::Op(Op::Compute { cycles: 5 })
        ));
        assert!(matches!(
            body.resume(&mut ctx),
            Step::Op(Op::GlobalRead { bytes: 64 })
        ));
        assert!(matches!(body.resume(&mut ctx), Step::Done));
    }

    #[test]
    fn fn_kernel_builds_per_block_bodies() {
        let k = FnKernel::new("f", Dim3::linear(2), 1, |block| {
            Box::new(FixedBody {
                ops: vec![Op::compute(block.x as u64 + 1)],
                next: 0,
            }) as Box<dyn BlockBody>
        });
        let mut mem = GlobalMemory::new();
        let sems = SemTable::new();
        let mut ctx = BlockCtx {
            block: Dim3::new(1, 0, 0),
            now: SimTime::ZERO,
            mem: &mut mem,
            sems: &sems,
            atomic_result: None,
        };
        let mut body = k.block(Dim3::new(1, 0, 0));
        assert!(matches!(
            body.resume(&mut ctx),
            Step::Op(Op::Compute { cycles: 2 })
        ));
    }
}
