//! # cusync-sim: a deterministic discrete-event GPU simulator
//!
//! This crate is the hardware substrate for the cuSync reproduction (CGO
//! 2024, "A Framework for Fine-Grained Synchronization of Dependent GPU
//! Kernels"). It models the pieces of an NVIDIA GPU that the paper's
//! mechanisms depend on:
//!
//! - **SMs and occupancy** — thread blocks occupy fractional SM capacity;
//!   a kernel with occupancy *o* fits *o* blocks per SM, so a grid of *B*
//!   blocks executes in ⌈B/(o·SMs)⌉ waves (Section II-A of the paper).
//! - **Streams** — kernels on one stream serialize; kernels on different
//!   streams overlap, with priorities breaking issue-order ties.
//! - **Pluggable block scheduling** — by default the block scheduler
//!   issues thread blocks in kernel launch order (with backfill), matching
//!   the behaviour the paper observed on Volta/Ampere; a [`SchedPolicy`]
//!   ([`Fifo`], [`Lifo`], [`SeededShuffle`], [`SemStarver`]) swaps in
//!   adversarial orders, and the [`explore`] module searches the schedule
//!   space for deadlocks and schedule-dependent results.
//! - **Global-memory semaphores** — busy-wait `wait`/`post` primitives whose
//!   waits *occupy the SM slot*, reproducing both the overhead model of
//!   Section V-D and the deadlock hazard of Section III-B.
//! - **Functional memory with race detection** — kernels can compute real
//!   `f32` results; intermediate buffers are NaN-poisoned so that reads of
//!   not-yet-produced tiles surface as logged races and wrong outputs.
//! - **Multi-device nodes** — a [`ClusterConfig`] models N GPUs on an
//!   NVLink-class ring: per-device SM pools and DRAM, device-homed
//!   semaphore arrays whose post→observe edge pays the link latency, and
//!   [`Op::LinkSend`] for simulated collectives (see
//!   `crates/sim/README.md`).
//!
//! Timing is kept in integer picoseconds ([`SimTime`]) and all scheduling
//! queues are deterministic, so identical inputs produce identical
//! timelines on every run — policy comparisons are exactly noise-free.
//!
//! Execution follows a **compile → session → runtime** lifecycle: build a
//! workload on a [`Gpu`], freeze it once into an immutable, shareable
//! [`CompiledPipeline`] ([`Gpu::compile`]), then execute it any number of
//! times through a reusable [`Session`] (allocation-free after warmup) or
//! concurrently through a [`Runtime`] worker pool. [`Gpu::run`] remains
//! the one-shot convenience over the same engine; repeated session runs
//! are bit-identical to fresh one-shot runs (see `crates/sim/README.md`).
//!
//! ## Example: two dependent kernels synchronized by a semaphore
//!
//! ```
//! use std::sync::Arc;
//! use cusync_sim::{Dim3, FixedKernel, Gpu, GpuConfig, Op};
//!
//! let mut gpu = Gpu::new(GpuConfig::tesla_v100());
//! let sem = gpu.alloc_sems("ready", 1, 0);
//! let s1 = gpu.create_stream(0);
//! let s2 = gpu.create_stream(0);
//! gpu.launch(s1, Arc::new(FixedKernel::new(
//!     "producer", Dim3::linear(80), 1,
//!     vec![Op::compute(10_000), Op::Fence, Op::post(sem, 0)],
//! )));
//! gpu.launch(s2, Arc::new(FixedKernel::new(
//!     "consumer", Dim3::linear(80), 1,
//!     vec![Op::wait(sem, 0, 80), Op::compute(10_000)],
//! )));
//! let report = gpu.run()?;
//! assert_eq!(report.races, 0);
//! # Ok::<(), cusync_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod dim;
mod engine;
pub mod explore;
mod json;
mod kernel;
mod kv;
mod mem;
mod ops;
mod sched;
mod sem;
mod session;
pub mod stats;
mod time;
mod trace;

pub use config::{ClusterConfig, GpuConfig, MAX_OCCUPANCY, SM_CAPACITY_UNITS};
pub use dim::Dim3;
pub use engine::{
    default_engine_mode, set_default_engine_mode, set_resume_inline, with_engine_mode,
    BlockedBlock, BuildError, BuildErrorKind, DeadlockReport, EngineMode, ExecMode, Gpu,
    LaunchGate, LinkScale, PendingKernel, RunOutcome, RunResidue, SimError, SmOccupancy, StreamId,
};
pub use json::json_escape;
pub use kernel::{BlockBody, BlockCtx, FixedKernel, FnKernel, IndexedKernel, KernelSource, Step};
pub use kv::{KvPool, KvStats};
pub use mem::{BufferId, DType, GlobalMemory, RaceEvent};
pub use ops::Op;
pub use sched::{
    fnv1a, splitmix64, Fifo, Lifo, SchedContext, SchedPolicy, SchedPolicyKind, SchedPolicyRef,
    SeededShuffle, SemStarver,
};
pub use sem::{SemArrayId, SemTable};
pub use session::{run_compiled, CompiledPipeline, Runtime, Session, Ticket};
pub use stats::{KernelReport, RunReport};
pub use time::SimTime;
pub use trace::{KernelId, TraceEvent};
