//! Device-sharded conservative parallel execution of the optimized event
//! loop (the [`ExecMode::Parallel`](super::ExecMode) engine).
//!
//! # Scheme
//!
//! Each device runs its own [`Exec`] over its own [`RunState`] shard: its
//! event heap, SM index, kernel progress and a full copy of the semaphore
//! table. Shards advance in lockstep *windows*: every window, the earliest
//! pending event time `m` across all shards is found, and each shard
//! drains its heap up to the exclusive horizon `m + lookahead`, where the
//! lookahead is the cluster's link latency. Cross-device semaphore effects
//! (posts and atomics against an array homed on another device) are not
//! applied locally; they are diverted into the shard's outbox
//! ([`Exec::divert_remote`]) and delivered at the window barrier, sorted
//! by `(apply time, source device, source ordinal)` for a deterministic
//! heap order at the destination.
//!
//! # Why bit-identity holds
//!
//! - **Deliveries cannot land in the past.** A remote effect produced at
//!   local time `u < horizon = m + link_latency` applies at
//!   `u + atomic + link_latency >= horizon`, so every delivery is at or
//!   past every shard's window end — the conservative-lookahead invariant.
//! - **Device-local state is device-private.** Eligible pipelines
//!   ([`shardable`]) are fully pre-driven, so blocks are effect-free op
//!   programs: no global-memory traffic, no dynamic bodies. The only
//!   cross-device edges are semaphore posts/atomics, which cross the
//!   window barrier as messages. Everything a shard prices (its
//!   `sm_active`, `active_units`, jitter hashes) is a function of its own
//!   event sequence.
//! - **Waits are home-local.** [`shardable`] requires every `SemWait` to
//!   target an array homed on the waiting kernel's own device, so a post's
//!   waiter wake-ups never leave the shard that applies it.
//! - **Per-batch ambiguity is detected, not guessed.** Within one shard
//!   timestamp batch, a delivered message's sequence number differs from
//!   the serial engine's; if a batch mixes deliveries with local events
//!   (or applies two same-instant remote posts, whose wake ordering the
//!   serial sequence would fix), the shard flags the run ambiguous and
//!   [`execute_sharded`] abandons the attempt — the caller re-runs
//!   serially, which is always correct. Pure same-instant remote atomics
//!   commute (monotone adds, no wakes), so they proceed.
//! - **Coalescing is horizon-capped.** [`Exec::can_extend_run`] refuses
//!   to price a coalesced op run past the window end, where a delivery
//!   could change occupancy state mid-run. Breaking a run early only
//!   converges toward the reference one-op-per-event behaviour.
//!
//! Event *times* are therefore reproduced exactly; only the private event
//! counter (`RunReport::sim_events`) may differ, because shards coalesce
//! and count independently.

use std::cmp::Reverse;
use std::sync::atomic::Ordering;

use super::{
    execute_with, EngineMode, EventKind, Exec, PipelineDesc, Programs, RunOptions, RunOutcome,
    RunState, RESUME_INLINE,
};
use crate::ops::Op;
use crate::sched::SchedPolicy;
use crate::sem::{SemArrayId, SemTable};
use crate::stats::RunReport;
use crate::time::SimTime;

/// Per-device shard bookkeeping threaded through [`Exec::shard`].
pub(crate) struct ShardCtx {
    /// The device this shard simulates.
    pub(crate) device: u32,
    /// Cross-device effects produced this window, drained at the barrier.
    pub(crate) outbox: Vec<OutMsg>,
    /// Set when a timestamp batch mixed delivered and local events (or
    /// same-instant remote posts): the serial event sequence would have
    /// fixed an order this shard cannot reconstruct, so the whole parallel
    /// attempt is abandoned.
    pub(crate) ambiguous: bool,
    /// Per-shard counter ordering this shard's messages within one apply
    /// instant (the serial engine's push order, restricted to this shard).
    pub(crate) sent_ordinal: u64,
}

/// One cross-device semaphore effect in flight between windows.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OutMsg {
    /// Apply instant (already includes atomic + link latency).
    pub(crate) time: SimTime,
    pub(crate) table: SemArrayId,
    pub(crate) index: u32,
    pub(crate) inc: u32,
    /// `true` for a waking `SemPost`, `false` for a plain `AtomicAdd`.
    pub(crate) post: bool,
    /// Kernel that produced the effect, for the destination shard's trace
    /// (`None` never occurs today — posts come from blocks — but the
    /// option mirrors [`TraceEvent::SemPosted`]).
    pub(crate) poster: Option<usize>,
    /// Producing device, part of the deterministic delivery order.
    pub(crate) src: u32,
    /// Producer-local ordinal, the delivery-order tiebreaker.
    pub(crate) ordinal: u64,
}

/// Whether a pipeline is provably safe to shard by device:
///
/// - at least two devices joined by a non-zero-latency link (the
///   lookahead the windows are built from);
/// - every kernel pre-driven to a flat op program (effect-free blocks, no
///   global-memory or dynamic-body cross-talk);
/// - every `SemWait` in those programs targets a semaphore array homed on
///   the waiting kernel's own device (posts may cross the link; waits and
///   their wake-ups never do);
/// - no kernel carries launch gates or completion posts (PDL-style grid
///   coupling is cross-stream and instant-precise, outside the window
///   model — gated pipelines fall back to the serial engines).
///
/// The scan is linear in the total op count; callers cache the answer per
/// compiled pipeline.
pub(crate) fn shardable(desc: &PipelineDesc, progs: &Programs, sems: &SemTable) -> bool {
    if desc.cluster.devices.len() < 2 || desc.cluster.link_latency == SimTime::ZERO {
        return false;
    }
    for (k, kd) in desc.kernels.iter().enumerate() {
        if !kd.predrive {
            return false;
        }
        // Launch gates and completion posts couple kernels across streams
        // (and potentially devices) outside the windowed link-latency
        // lookahead; gated pipelines run on the serial engines.
        if !kd.gates.is_empty() || !kd.completion_posts.is_empty() {
            return false;
        }
        let base = progs.prog_base[k];
        if base == u32::MAX {
            return false;
        }
        for linear in 0..kd.total {
            let (start, len) = progs.prog_spans[(base as u64 + linear) as usize];
            let ops = &progs.block_ops[start as usize..(start + len) as usize];
            for op in ops {
                if let Op::SemWait { table, .. } = op {
                    if sems.device(*table) != kd.device {
                        return false;
                    }
                }
            }
        }
    }
    true
}

impl Exec<'_> {
    /// Seeds one device's shard: its SM index entries and the ready events
    /// of the streams living on it — the per-device restriction of what
    /// [`Exec::run_all`] seeds globally.
    fn seed_shard(&mut self, device: u32) {
        let base = self.desc.sm_base[device as usize] as usize;
        let sms = self.desc.cluster.devices[device as usize].num_sms as usize;
        for sm in base..base + sms {
            self.st.sm_index[device as usize].insert((self.st.sm_free[sm], Reverse(sm)));
        }
        for s in 0..self.desc.streams.len() {
            if self.desc.streams[s].device == device {
                self.schedule_stream_head(s);
            }
        }
    }

    /// Drains this shard's heap up to (exclusive) `self.window_end_ps`:
    /// the optimized loop's batch semantics, plus per-batch classification
    /// of delivered vs local events for the ambiguity flag. The batch is
    /// always finished before the flag is acted on — applying a whole
    /// batch is safe, only its *internal* order was in question, and the
    /// caller discards the run anyway.
    fn run_shard_window(&mut self) {
        while let Some(&Reverse((key, _))) = self.st.fast_events.peek() {
            let time_ps = (key >> 64) as u64;
            if time_ps >= self.window_end_ps {
                break;
            }
            self.st.now = SimTime::from_picos(time_ps);
            let mut delivered = 0u32;
            let mut delivered_post = false;
            let mut local = 0u32;
            while let Some(&Reverse((next_key, _))) = self.st.fast_events.peek() {
                if (next_key >> 64) as u64 != time_ps {
                    break;
                }
                let Reverse((_, idx)) = self.st.fast_events.pop().expect("peeked event");
                let kind = self.take_fast_event(idx);
                match kind {
                    EventKind::RemotePost { .. } => {
                        delivered += 1;
                        delivered_post = true;
                    }
                    EventKind::RemoteAtomic { .. } => delivered += 1,
                    _ => local += 1,
                }
                self.st.events_handled += 1;
                self.handle(kind);
            }
            if delivered > 0 && (local > 0 || (delivered >= 2 && delivered_post)) {
                if let Some(shard) = self.shard.as_deref_mut() {
                    shard.ambiguous = true;
                }
            }
            if self.st.issue_dirty {
                self.try_issue_optimized();
                self.st.issue_dirty = false;
            }
        }
    }
}

/// Builds the per-window `Exec` of one shard and runs it to the horizon.
fn run_window(
    desc: &PipelineDesc,
    progs: &Programs,
    sched: &dyn SchedPolicy,
    opts: RunOptions,
    sst: &mut RunState,
    shard: &mut ShardCtx,
    horizon_ps: u64,
) {
    let mut ex = Exec {
        desc,
        progs,
        mode: EngineMode::Optimized,
        sched,
        launch_order: sched.is_launch_order(),
        abort_at: None,
        link_scale: opts.link_scale.filter(|s| !s.is_identity()),
        abort_flag: false,
        shard: Some(shard),
        window_end_ps: horizon_ps,
        resume_inline: RESUME_INLINE.load(Ordering::Relaxed),
        st: sst,
    };
    ex.run_shard_window();
}

/// Pushes one delivered cross-device effect into the destination shard's
/// heap (the optimized `push_event`, minus an `Exec` to borrow).
fn deliver(sst: &mut RunState, msg: &OutMsg) {
    let kind = if msg.post {
        EventKind::RemotePost {
            table: msg.table,
            index: msg.index,
            inc: msg.inc,
            poster: msg.poster,
        }
    } else {
        EventKind::RemoteAtomic {
            table: msg.table,
            index: msg.index,
            inc: msg.inc,
        }
    };
    let seq = sst.event_seq;
    sst.event_seq += 1;
    let key = ((msg.time.as_picos() as u128) << 64) | seq as u128;
    let idx = match sst.event_free.pop() {
        Some(i) => {
            sst.event_slab[i as usize] = kind;
            i
        }
        None => {
            sst.event_slab.push(kind);
            (sst.event_slab.len() - 1) as u32
        }
    };
    sst.fast_events.push(Reverse((key, idx)));
}

/// Runs `desc` sharded by device, with up to `threads` shards advancing
/// concurrently per window (1 runs the shards sequentially — same result,
/// used when the host has no parallelism to offer).
///
/// `st` must be prepared exactly as for [`execute_with`]: reset, with
/// pristine memory and semaphores. On success the merged result state is
/// written back into `st` and the report returned. Returns `None` —
/// with `st` still pristine, so the caller can fall straight through to
/// the serial engine — when a timestamp-batch ambiguity was detected or
/// the pipeline stalled (the serial rerun then produces the canonical
/// deadlock report). `pool` holds the per-device shard states and is
/// reused across calls.
pub(crate) fn execute_sharded(
    desc: &PipelineDesc,
    progs: &Programs,
    sched: &dyn SchedPolicy,
    st: &mut RunState,
    opts: RunOptions,
    threads: usize,
    pool: &mut Vec<RunState>,
) -> Option<RunReport> {
    debug_assert!(opts.abort_at.is_none(), "abort horizons run serially");
    let ndev = desc.cluster.devices.len();
    let lookahead = desc.cluster.link_latency.as_picos();
    pool.resize_with(ndev, RunState::new);
    let mut shards: Vec<ShardCtx> = (0..ndev)
        .map(|d| ShardCtx {
            device: d as u32,
            outbox: Vec::new(),
            ambiguous: false,
            sent_ordinal: 0,
        })
        .collect();
    for (d, (sst, shard)) in pool.iter_mut().zip(shards.iter_mut()).enumerate() {
        sst.reset(desc);
        sst.sems.reset_from(&st.sems);
        // Shards record into their own device-tagged buffers; the
        // writeback below hands them to `st` for the canonical
        // `(time, device)` merge — same order a serial traced run builds.
        sst.trace_enabled = st.trace_enabled;
        let mut ex = Exec {
            desc,
            progs,
            mode: EngineMode::Optimized,
            sched,
            launch_order: sched.is_launch_order(),
            abort_at: None,
            link_scale: opts.link_scale.filter(|s| !s.is_identity()),
            abort_flag: false,
            shard: Some(shard),
            window_end_ps: u64::MAX,
            resume_inline: RESUME_INLINE.load(Ordering::Relaxed),
            st: sst,
        };
        ex.seed_shard(d as u32);
    }
    let mut msgs: Vec<OutMsg> = Vec::new();
    loop {
        let mut min_next: Option<u64> = None;
        for sst in pool.iter() {
            if let Some(&Reverse((key, _))) = sst.fast_events.peek() {
                let t = (key >> 64) as u64;
                min_next = Some(min_next.map_or(t, |m| m.min(t)));
            }
        }
        let Some(m) = min_next else {
            break;
        };
        let horizon = m.saturating_add(lookahead);
        let runnable = |sst: &RunState| {
            sst.fast_events
                .peek()
                .is_some_and(|&Reverse((key, _))| ((key >> 64) as u64) < horizon)
        };
        if threads > 1 {
            std::thread::scope(|scope| {
                for (sst, shard) in pool.iter_mut().zip(shards.iter_mut()) {
                    if !runnable(sst) {
                        continue;
                    }
                    scope.spawn(move || run_window(desc, progs, sched, opts, sst, shard, horizon));
                }
            });
        } else {
            for (sst, shard) in pool.iter_mut().zip(shards.iter_mut()) {
                if runnable(sst) {
                    run_window(desc, progs, sched, opts, sst, shard, horizon);
                }
            }
        }
        if shards.iter().any(|s| s.ambiguous) {
            return None;
        }
        msgs.clear();
        for shard in shards.iter_mut() {
            msgs.append(&mut shard.outbox);
        }
        msgs.sort_by_key(|msg| (msg.time, msg.src, msg.ordinal));
        for msg in &msgs {
            let home = st.sems.device(msg.table) as usize;
            deliver(&mut pool[home], msg);
        }
    }
    let complete = desc
        .kernels
        .iter()
        .enumerate()
        .all(|(k, kd)| pool[kd.device as usize].kernels[k].completed == kd.total);
    if !complete {
        // Stalled (a genuine pipeline deadlock): let the serial engine
        // re-run and produce the canonical, ordering-stable report.
        return None;
    }
    for (k, kd) in desc.kernels.iter().enumerate() {
        st.kernels[k] = pool[kd.device as usize].kernels[k];
    }
    for (s, sd) in desc.streams.iter().enumerate() {
        st.stream_next[s] = pool[sd.device as usize].stream_next[s];
    }
    st.events_handled = pool.iter().map(|p| p.events_handled).sum();
    st.util_integral = pool.iter().map(|p| p.util_integral).sum();
    st.first_issue = pool.iter().filter_map(|p| p.first_issue).min();
    st.last_finish = pool
        .iter()
        .map(|p| p.last_finish)
        .max()
        .unwrap_or(SimTime::ZERO);
    st.now = pool.iter().map(|p| p.now).max().unwrap_or(SimTime::ZERO);
    for (d, sst) in pool.iter().enumerate() {
        st.sems.adopt_device_arrays(&sst.sems, d as u32);
    }
    if st.trace_enabled {
        // Each event was recorded by the shard owning it, so concatenating
        // the per-shard raw buffers (in device order) and canonicalizing
        // reproduces the serial traced run's finalized order exactly.
        for sst in pool.iter_mut() {
            st.trace_raw.append(&mut sst.trace_raw);
        }
        st.finalize_trace();
    }
    let ex = Exec {
        desc,
        progs,
        mode: EngineMode::Optimized,
        sched,
        launch_order: sched.is_launch_order(),
        abort_at: None,
        link_scale: opts.link_scale.filter(|s| !s.is_identity()),
        abort_flag: false,
        shard: None,
        window_end_ps: u64::MAX,
        resume_inline: RESUME_INLINE.load(Ordering::Relaxed),
        st,
    };
    Some(ex.report())
}

/// Serial-or-parallel front door: tries [`execute_sharded`] when the
/// runtime gates allow it, falling back to [`execute_with`] otherwise (or
/// when the parallel attempt bailed out). The eligibility *scan*
/// ([`shardable`]) is the caller's job — it is cacheable per pipeline,
/// while the gates checked here are per-run.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_auto(
    desc: &PipelineDesc,
    progs: &Programs,
    mode: EngineMode,
    sched: &dyn SchedPolicy,
    st: &mut RunState,
    opts: RunOptions,
    pipeline_shardable: bool,
    threads: usize,
    pool: &mut Vec<RunState>,
) -> Result<RunOutcome, super::SimError> {
    // `threads > 1`: a one-thread budget (the default on a single-core
    // host) would run the window loop with no actual parallelism, paying
    // the horizon/merge overhead for nothing — fall through to the serial
    // engine instead, which is bit-identical by contract. Callers that
    // must exercise the sharded path regardless of the host (tests, CI)
    // request an explicit budget via `Session::set_threads`.
    let eligible = pipeline_shardable
        && mode == EngineMode::Optimized
        && opts.abort_at.is_none()
        && sched.shard_stable()
        && threads > 1;
    if eligible {
        if let Some(report) = execute_sharded(desc, progs, sched, st, opts, threads, pool) {
            return Ok(RunOutcome::Complete(report));
        }
    }
    execute_with(desc, progs, mode, sched, st, opts)
}

/// The thread budget a parallel run should use for `ndev` device shards:
/// one thread per device, capped by the host's available parallelism.
/// `override_threads` (a session's explicit setting) wins when non-zero.
pub(crate) fn thread_budget(ndev: usize, override_threads: usize) -> usize {
    let hw = if override_threads > 0 {
        override_threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    hw.min(ndev).max(1)
}
