//! Pluggable block-issue scheduling policies.
//!
//! The simulated block scheduler has always issued thread blocks in kernel
//! launch order (ties broken by stream priority) — the behaviour the paper
//! observes on Volta/Ampere GPUs (Section III-B) and the assumption the
//! wait-kernel protocol is built on. But that is one *point* in the space
//! of schedules real hardware may produce: Sorensen et al. ("Specifying
//! and Testing GPU Workgroup Progress Models") show inter-workgroup
//! blocking is only correct relative to a progress model, and Zhang et al.
//! observe far more aggressive reordering on real devices than any single
//! fixed order.
//!
//! This module makes the issue-order decision a first-class, pluggable
//! axis of the simulator. A [`SchedPolicy`] orders the set of *issuable*
//! kernels (ready, with unissued blocks) each placement round; everything
//! else — stream FIFO order, SM placement (least-loaded first), occupancy
//! accounting — is unchanged hardware behaviour.
//!
//! **Only [`Fifo`] preserves the reference ↔ optimized bit-identity
//! contract with the original engine's timelines** (it *is* the original
//! order). The other policies are schedule-space exploration tools: each
//! still produces a deterministic timeline, identical across both
//! [`EngineMode`](crate::EngineMode)s, but different from `Fifo`'s. See
//! `crates/sim/src/explore.rs` for the exploration driver built on top.
//!
//! # Determinism contract for implementations
//!
//! [`SchedPolicy::order`] must produce the same output for the same
//! *set* of candidates regardless of their incoming order (the two engine
//! modes enumerate candidates differently), and must depend only on the
//! [`SchedContext`] — never on interior mutability or ambient state. The
//! simplest way to satisfy this is a total-order sort with a full
//! tie-break, which is how every built-in policy is written.

use std::fmt;
use std::sync::Arc;

use crate::engine::{KernelRun, PipelineDesc};
use crate::sem::SemTable;

/// Read-only view of the scheduling state a policy may consult: static
/// kernel metadata plus the per-kernel progress counters of the current
/// run.
pub struct SchedContext<'a> {
    pub(crate) desc: &'a PipelineDesc,
    pub(crate) runs: &'a [KernelRun],
    pub(crate) sems: &'a SemTable,
}

impl fmt::Debug for SchedContext<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchedContext")
            .field("kernels", &self.runs.len())
            .finish_non_exhaustive()
    }
}

impl SchedContext<'_> {
    /// Number of kernels in the pipeline (candidate indexes are below
    /// this).
    pub fn num_kernels(&self) -> usize {
        self.runs.len()
    }

    /// Name of kernel `k`.
    pub fn name(&self, k: usize) -> &str {
        &self.desc.kernels[k].name
    }

    /// Stream priority of kernel `k` (higher issues first under the
    /// hardware order).
    pub fn priority(&self, k: usize) -> i32 {
        self.desc.kernels[k].priority
    }

    /// Device kernel `k`'s blocks occupy SMs on.
    pub fn device(&self, k: usize) -> u32 {
        self.desc.kernels[k].device
    }

    /// Total thread blocks of kernel `k`.
    pub fn total_blocks(&self, k: usize) -> u64 {
        self.desc.kernels[k].total
    }

    /// Blocks of kernel `k` not yet issued onto an SM.
    pub fn remaining_blocks(&self, k: usize) -> u64 {
        self.desc.kernels[k].total - self.runs[k].issued()
    }

    /// Blocks of kernel `k` currently parked busy-waiting on an unmet
    /// semaphore. This is the signal [`SemStarver`] keys on: a kernel
    /// whose resident blocks spin is likely to spin with its next blocks
    /// too.
    pub fn parked_blocks(&self, k: usize) -> u64 {
        self.runs[k].parked()
    }

    /// Current value of semaphore `index` in array `table`.
    pub fn sem_value(&self, table: crate::sem::SemArrayId, index: u32) -> u32 {
        self.sems.value(table, index)
    }
}

/// A block-issue ordering policy: given the issuable kernels of one
/// placement round, decides the order in which they compete for SM slots.
///
/// See the [module docs](self) for the determinism contract and for which
/// policies preserve the bit-identity contract with the original engine.
pub trait SchedPolicy: fmt::Debug + Send + Sync {
    /// Display name, used in exploration summaries and reports.
    fn name(&self) -> String;

    /// Reorders `candidates` (indexes of ready kernels with unissued
    /// blocks) into the order they should be offered SM capacity.
    fn order(&self, ctx: &SchedContext<'_>, candidates: &mut [usize]);

    /// True if this policy reproduces the hardware launch-order scan of
    /// the original engine (`Fifo`). The optimized engine then reuses its
    /// pre-sorted ready queue instead of re-ordering per round.
    fn is_launch_order(&self) -> bool {
        false
    }

    /// True if [`SchedPolicy::order`] is a pure per-element key sort over
    /// signals local to each candidate's own device (its priority, launch
    /// index, progress counters, parked count). The device-sharded
    /// parallel engine ([`ExecMode`](crate::ExecMode)) then orders each
    /// device's candidates independently and still reproduces the
    /// restriction of the serial global ordering — the property its
    /// bit-identity proof needs. Policies that compare candidates against
    /// each other, read other kernels' state, or consult remote semaphore
    /// values ([`SchedContext::sem_value`]) must leave this `false`
    /// (the default), which pins their runs to the serial engine.
    fn shard_stable(&self) -> bool {
        false
    }
}

/// Shared handle to a scheduling policy.
pub type SchedPolicyRef = Arc<dyn SchedPolicy>;

/// SplitMix64: the one deterministic mixer the simulator derives
/// pseudo-randomness from — block duration jitter
/// ([`GpuConfig::block_jitter`](crate::GpuConfig)), seeded schedule
/// permutations ([`SeededShuffle`]), and seed-derived workload generators
/// all call this single definition, so "same seed, same outcome" holds
/// across every layer.
pub fn splitmix64(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte slice: the one stable structural digest the
/// simulator and its consumers share (memory fingerprints, pipeline
/// fingerprints, [`KernelSource::cost_signature`](crate::KernelSource)
/// implementations in the kernels crates).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The hardware launch order (the default): higher stream priority first,
/// then kernel launch order. This is exactly the original engine's
/// behaviour, so it is the only policy under which the
/// `tests/engine_equivalence.rs` timelines are bit-identical to the seed
/// engine's.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl SchedPolicy for Fifo {
    fn name(&self) -> String {
        "Fifo".to_owned()
    }

    fn order(&self, ctx: &SchedContext<'_>, candidates: &mut [usize]) {
        candidates.sort_by_key(|&k| (std::cmp::Reverse(ctx.priority(k)), k));
    }

    fn is_launch_order(&self) -> bool {
        true
    }

    fn shard_stable(&self) -> bool {
        true
    }
}

/// Reverse launch order within each priority class: the latest-launched
/// ready kernel issues first. Adversarial for the wait-kernel protocol,
/// which assumes producers (launched earlier) reach the SMs before their
/// consumers.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lifo;

impl SchedPolicy for Lifo {
    fn name(&self) -> String {
        "Lifo".to_owned()
    }

    fn order(&self, ctx: &SchedContext<'_>, candidates: &mut [usize]) {
        candidates.sort_by_key(|&k| (std::cmp::Reverse(ctx.priority(k)), std::cmp::Reverse(k)));
    }

    fn shard_stable(&self) -> bool {
        true
    }
}

/// A seeded pseudo-random permutation of the issuable kernels: kernel `k`
/// sorts by [`SeededShuffle::key`], a pure function of `(seed, kernel
/// id)`, so a given seed names one reproducible schedule — stream
/// priorities are deliberately ignored, as nothing in the CUDA
/// programming model promises cross-stream issue order.
#[derive(Debug, Clone, Copy)]
pub struct SeededShuffle(pub u64);

impl SeededShuffle {
    /// The sort key of kernel `k` under this seed:
    /// `splitmix64(seed ^ (k · 0x9E37_79B9))` (the multiply spreads
    /// adjacent kernel ids across the key space before mixing).
    pub fn key(&self, k: usize) -> u64 {
        splitmix64(self.0 ^ (k as u64).wrapping_mul(0x9E37_79B9))
    }
}

impl SchedPolicy for SeededShuffle {
    fn name(&self) -> String {
        format!("SeededShuffle({})", self.0)
    }

    fn order(&self, _ctx: &SchedContext<'_>, candidates: &mut [usize]) {
        candidates.sort_by_key(|&k| (self.key(k), k));
    }

    fn shard_stable(&self) -> bool {
        true
    }
}

/// The adversary: preferentially issues blocks of kernels whose resident
/// blocks are already busy-waiting, flooding SM slots with spinners. This
/// is the scheduler most likely to manifest the Section III-B occupancy
/// deadlock, so it is the sharpest probe for missing wait-kernels or
/// under-provisioned graphs.
#[derive(Debug, Clone, Copy, Default)]
pub struct SemStarver;

impl SchedPolicy for SemStarver {
    fn name(&self) -> String {
        "SemStarver".to_owned()
    }

    fn order(&self, ctx: &SchedContext<'_>, candidates: &mut [usize]) {
        candidates.sort_by_key(|&k| {
            (
                std::cmp::Reverse(ctx.parked_blocks(k)),
                std::cmp::Reverse(ctx.priority(k)),
                k,
            )
        });
    }

    fn shard_stable(&self) -> bool {
        true
    }
}

/// A nameable, comparable, copyable description of a built-in scheduling
/// policy — what configs ([`GpuConfig::sched`](crate::GpuConfig)) carry
/// and exploration summaries report. Custom [`SchedPolicy`]
/// implementations are plugged in directly via
/// [`Session::set_sched`](crate::Session::set_sched) /
/// [`Gpu::set_sched`](crate::Gpu::set_sched).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum SchedPolicyKind {
    /// [`Fifo`]: the hardware launch order (default).
    #[default]
    Fifo,
    /// [`Lifo`]: reverse launch order within each priority class.
    Lifo,
    /// [`SeededShuffle`]: the seeded pseudo-random permutation.
    SeededShuffle(u64),
    /// [`SemStarver`]: spinning kernels issue first.
    SemStarver,
}

impl SchedPolicyKind {
    /// Builds the policy object this kind describes.
    pub fn instantiate(&self) -> SchedPolicyRef {
        match *self {
            SchedPolicyKind::Fifo => Arc::new(Fifo),
            SchedPolicyKind::Lifo => Arc::new(Lifo),
            SchedPolicyKind::SeededShuffle(seed) => Arc::new(SeededShuffle(seed)),
            SchedPolicyKind::SemStarver => Arc::new(SemStarver),
        }
    }

    /// True for the launch-order policy (the only one preserving the
    /// seed engine's bit-identical timelines).
    pub fn is_launch_order(&self) -> bool {
        matches!(self, SchedPolicyKind::Fifo)
    }
}

impl fmt::Display for SchedPolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedPolicyKind::Fifo => write!(f, "Fifo"),
            SchedPolicyKind::Lifo => write!(f, "Lifo"),
            SchedPolicyKind::SeededShuffle(seed) => write!(f, "SeededShuffle({seed})"),
            SchedPolicyKind::SemStarver => write!(f, "SemStarver"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_instantiate_matching_policies() {
        for kind in [
            SchedPolicyKind::Fifo,
            SchedPolicyKind::Lifo,
            SchedPolicyKind::SeededShuffle(7),
            SchedPolicyKind::SemStarver,
        ] {
            let policy = kind.instantiate();
            assert_eq!(policy.name(), kind.to_string());
            assert_eq!(policy.is_launch_order(), kind.is_launch_order());
        }
    }

    #[test]
    fn default_kind_is_fifo() {
        assert_eq!(SchedPolicyKind::default(), SchedPolicyKind::Fifo);
        assert!(SchedPolicyKind::default().is_launch_order());
    }

    #[test]
    fn shuffle_key_is_seed_and_kernel_sensitive() {
        // The real sort key: different seeds must produce different key
        // vectors (seeds name schedules), and within one seed adjacent
        // kernel ids must not collide (the permutation is non-degenerate).
        let keys =
            |seed: u64| -> Vec<u64> { (0..8usize).map(|k| SeededShuffle(seed).key(k)).collect() };
        assert_ne!(keys(1), keys(2));
        let one = keys(1);
        let mut dedup = one.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), one.len(), "kernel keys collide: {one:?}");
    }
}
