//! The compile → session → runtime lifecycle.
//!
//! Synchronization structure — kernel registrations, semaphore layouts,
//! pre-computed `timing_static` flags, launch order — is a *compile-time*
//! artifact: it never changes between invocations of the same workload.
//! This module splits it from execution so it is built **once** and reused:
//!
//! - [`CompiledPipeline`] — the immutable, `Arc`-shareable artifact frozen
//!   by [`Gpu::compile`]: the pipeline description plus pristine copies of
//!   initial memory and semaphores.
//! - [`Session`] — a reusable execution engine. [`Session::run`] executes
//!   any compiled pipeline against a pooled [`RunState`] whose arenas
//!   (event heaps, slabs, block programs, wait-lists) are *reset*, not
//!   reallocated, between runs — so repeated runs of one pipeline are
//!   allocation-free after warmup, and `AlreadyRan` disappears from the
//!   happy path.
//! - [`Runtime`] — a pool of worker threads, each owning one `Session`,
//!   accepting concurrent pipeline submissions ([`Runtime::submit`]) for
//!   the multi-tenant serving story.
//!
//! Determinism is preserved end to end: a `Session` re-run of a pipeline
//! is bit-identical to a fresh [`Gpu`] run of the same workload, in both
//! [`EngineMode`]s (`tests/session_reuse.rs`).

use std::cell::RefCell;
use std::fmt;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

use std::sync::OnceLock;

use crate::engine::{
    default_engine_mode, env_exec_override, execute_with, par, EngineMode, ExecMode, Gpu,
    LinkScale, PipelineDesc, Programs, RunOptions, RunOutcome, RunState, SimError,
};
use crate::mem::GlobalMemory;
use crate::sched::SchedPolicyRef;
use crate::sem::SemTable;
use crate::stats::RunReport;
use crate::trace::TraceEvent;
use crate::GpuConfig;

/// An immutable, shareable, repeatedly-executable workload: the frozen
/// [`PipelineDesc`] plus pristine initial memory and semaphore state.
///
/// Produced by [`Gpu::compile`] (or the higher-level
/// `cusync::Pipeline::compile`); executed by [`Session::run`],
/// [`run_compiled`], or a [`Runtime`] pool. A `CompiledPipeline` is
/// `Send + Sync`, so one `Arc<CompiledPipeline>` can serve any number of
/// concurrent sessions.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use cusync_sim::{Dim3, FixedKernel, Gpu, GpuConfig, Op, Session};
///
/// let mut gpu = Gpu::new(GpuConfig::toy(4));
/// let s = gpu.create_stream(0);
/// gpu.launch(s, Arc::new(FixedKernel::new(
///     "k", Dim3::linear(6), 1, vec![Op::compute(1000)],
/// )));
/// let pipeline = gpu.compile()?;
///
/// let mut session = Session::new();
/// let first = session.run(&pipeline)?;
/// let again = session.run(&pipeline)?; // no rebuild, arenas reused
/// assert_eq!(first.total, again.total);
/// # Ok::<(), cusync_sim::SimError>(())
/// ```
pub struct CompiledPipeline {
    desc: PipelineDesc,
    mem: GlobalMemory,
    sems: SemTable,
    /// Scheduling override installed via [`Gpu::set_sched`] before
    /// compilation; `None` follows the config's
    /// [`GpuConfig::sched`](crate::GpuConfig) kind. A
    /// [`Session::set_sched`] override still wins per run.
    sched: Option<SchedPolicyRef>,
    /// Pre-driven `timing_static` op programs, built on the first
    /// optimized-engine run (then immutable and shared). Reference-engine
    /// consumers never trigger — or pay for — collection.
    programs: OnceLock<Programs>,
    /// Whether the pipeline is provably safe for device-sharded parallel
    /// execution, computed (with the programs) on first parallel-mode use.
    shardable: OnceLock<bool>,
}

impl fmt::Debug for CompiledPipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledPipeline")
            .field("config", &self.desc.primary_config().name)
            .field("devices", &self.desc.cluster.devices.len())
            .field("streams", &self.desc.streams.len())
            .field("kernels", &self.desc.kernels.len())
            .finish_non_exhaustive()
    }
}

impl CompiledPipeline {
    /// The hardware model the pipeline was compiled for (device 0's for a
    /// multi-device pipeline; see [`CompiledPipeline::cluster`]).
    pub fn config(&self) -> &GpuConfig {
        self.desc.primary_config()
    }

    /// The full cluster model the pipeline was compiled for. Sessions and
    /// runtimes are device-count-agnostic: a compiled multi-device
    /// pipeline runs through exactly the same [`Session::run`] /
    /// [`Runtime::submit`] paths as a single-GPU one.
    pub fn cluster(&self) -> &crate::ClusterConfig {
        &self.desc.cluster
    }

    /// Number of registered kernels (wait-kernels included).
    pub fn num_kernels(&self) -> usize {
        self.desc.kernels.len()
    }

    /// Number of streams.
    pub fn num_streams(&self) -> usize {
        self.desc.streams.len()
    }

    /// Names of the registered kernels, in launch order.
    pub fn kernel_names(&self) -> impl Iterator<Item = &str> {
        self.desc.kernels.iter().map(|k| k.name.as_str())
    }

    /// Grid of each registered kernel, in launch order (index-aligned with
    /// [`CompiledPipeline::kernel_names`]). The exploration driver uses
    /// this to check that a completed schedule issued each kernel's grid
    /// exactly.
    pub fn kernel_grids(&self) -> impl Iterator<Item = crate::Dim3> + '_ {
        self.desc.kernels.iter().map(|k| k.grid)
    }

    /// The pristine initial memory every run starts from.
    pub fn initial_mem(&self) -> &GlobalMemory {
        &self.mem
    }

    /// The pristine initial semaphore table every run starts from.
    pub fn initial_sems(&self) -> &SemTable {
        &self.sems
    }

    /// A deterministic 64-bit digest of everything that identifies this
    /// pipeline as a *workload*: the cluster shape, stream layout, kernel
    /// registrations (name, grid, occupancy, device, stream, and each
    /// source's [`cost_signature`](crate::KernelSource::cost_signature) —
    /// so identical grids of differently-priced work do not collide),
    /// semaphore layout, and the initial-memory fingerprint. Two
    /// pipelines built the same way fingerprint equal; any change to the
    /// graph, tiling, kernel cost model, sync policy layout or hardware
    /// model changes the digest.
    ///
    /// This is the cache key of the serving layer's service-time memo
    /// (`crates/serve`) and of the autotuner's persistent tuning cache
    /// (`cusyncgen::TuneCache`).
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= b as u64;
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        };
        let cluster = &self.desc.cluster;
        eat(&cluster.num_devices().to_le_bytes());
        eat(&cluster.link_latency.as_picos().to_le_bytes());
        for device in &cluster.devices {
            eat(device.name.as_bytes());
            eat(&device.num_sms.to_le_bytes());
            eat(&device.host_launch_gap.as_picos().to_le_bytes());
            eat(&device.kernel_dispatch_latency.as_picos().to_le_bytes());
        }
        eat(&(self.desc.streams.len() as u64).to_le_bytes());
        for kernel in &self.desc.kernels {
            eat(kernel.name.as_bytes());
            eat(&kernel.grid.x.to_le_bytes());
            eat(&kernel.grid.y.to_le_bytes());
            eat(&kernel.grid.z.to_le_bytes());
            eat(&kernel.occupancy.to_le_bytes());
            eat(&kernel.device.to_le_bytes());
            eat(&(kernel.stream as u64).to_le_bytes());
            // Same geometry, differently-priced work must not collide
            // (see `KernelSource::cost_signature`).
            eat(&kernel.source.cost_signature().to_le_bytes());
            // Launch gates and completion posts change the schedule
            // without changing any block body — a StreamSerial edge would
            // otherwise fingerprint identically to no edge at all.
            for gate in &kernel.gates {
                let (tag, target) = match *gate {
                    crate::LaunchGate::AfterLaunchOf(t) => (1u8, t),
                    crate::LaunchGate::AfterCompletionOf(t) => (2u8, t),
                };
                eat(&[tag]);
                eat(&(target.0 as u64).to_le_bytes());
            }
            for &(table, index) in &kernel.completion_posts {
                eat(&[3u8]);
                eat(&(table.0 as u64).to_le_bytes());
                eat(&index.to_le_bytes());
            }
        }
        for id in self.sems.ids() {
            eat(self.sems.name(id).as_bytes());
            eat(&(self.sems.len(id) as u64).to_le_bytes());
        }
        // Initial functional contents (timing-only buffers contribute
        // layout; see `GlobalMemory::fingerprint`).
        eat(&self.mem.fingerprint().to_le_bytes());
        hash
    }

    /// The pre-driven op programs, collected on first use. Driving is
    /// effect-free for `timing_static` bodies by contract, but the
    /// `resume` signature wants mutable memory, so collection runs
    /// against a scratch clone of the pristine initial memory — once per
    /// pipeline, then shared by every session and runtime worker.
    fn programs(&self) -> &Programs {
        self.programs.get_or_init(|| {
            let mut scratch = self.mem.clone();
            self.desc.collect_programs(&mut scratch, &self.sems)
        })
    }

    /// Whether this pipeline can run on the device-sharded parallel
    /// engine (see [`ExecMode::Parallel`]): a linear scan over the
    /// pre-driven programs, done once and cached.
    pub fn shardable(&self) -> bool {
        *self
            .shardable
            .get_or_init(|| par::shardable(&self.desc, self.programs(), &self.sems))
    }
}

impl Gpu {
    /// Freezes this built (but not yet run) GPU into an immutable
    /// [`CompiledPipeline`]: kernel registrations, semaphore layout,
    /// initial memory contents, and each kernel's pre-computed
    /// `timing_static` eligibility.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AlreadyRan`] if the GPU has already executed —
    /// its memory and semaphores would no longer be the pipeline's initial
    /// state.
    pub fn compile(mut self) -> Result<CompiledPipeline, SimError> {
        if self.ran {
            return Err(SimError::AlreadyRan);
        }
        self.desc.finalize_flags(&self.st.mem);
        let RunState { mem, sems, .. } = self.st;
        Ok(CompiledPipeline {
            desc: self.desc,
            mem,
            sems,
            sched: self.sched,
            programs: OnceLock::new(),
            shardable: OnceLock::new(),
        })
    }
}

/// A reusable execution engine: one pooled [`RunState`] that any
/// [`CompiledPipeline`] can run on, any number of times.
///
/// Between runs every per-run arena (event heap and slab, block slots,
/// pre-driven op programs, wait-lists, traces) is rewound in place and
/// memory/semaphores are restored from the pipeline's pristine copies —
/// re-running the *same* pipeline allocates nothing after warmup, and
/// running a *different* pipeline just re-primes the storage.
pub struct Session {
    mode: EngineMode,
    st: RunState,
    trace_enabled: bool,
    /// Per-session scheduling override; `None` follows each pipeline's
    /// compiled-in config policy. This is what lets one compiled pipeline
    /// be explored under many schedules without recompiling (see
    /// [`crate::explore`]).
    sched: Option<SchedPolicyRef>,
    /// Per-session link degradation: while set, every run scales its
    /// [`Op::LinkSend`](crate::Op) wire time by this factor — the fault
    /// injection hook for a degraded interconnect, applied without
    /// recompiling the pipeline.
    link_scale: Option<LinkScale>,
    /// Per-session [`ExecMode`] override; `None` follows the `CUSYNC_EXEC`
    /// environment variable, then each pipeline's cluster config.
    exec: Option<ExecMode>,
    /// Explicit thread budget for parallel runs; 0 (the default) derives
    /// it from `std::thread::available_parallelism`, capped at the device
    /// count either way.
    threads: usize,
    /// Pooled per-device shard states for parallel runs, reused across
    /// runs exactly like the main [`RunState`]'s arenas.
    shard_pool: Vec<RunState>,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("mode", &self.mode)
            .field("trace_enabled", &self.trace_enabled)
            .field("sched_override", &self.sched.as_ref().map(|s| s.name()))
            .finish_non_exhaustive()
    }
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// Creates a session using the thread's default [`EngineMode`] (see
    /// [`crate::with_engine_mode`]).
    pub fn new() -> Self {
        Session::with_mode(default_engine_mode())
    }

    /// Creates a session pinned to a specific engine implementation.
    pub fn with_mode(mode: EngineMode) -> Self {
        Session {
            mode,
            st: RunState::new(),
            trace_enabled: false,
            sched: None,
            link_scale: None,
            exec: None,
            threads: 0,
            shard_pool: Vec::new(),
        }
    }

    /// The engine implementation this session runs on.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// Sets (or with `None`, clears) this session's block-issue ordering
    /// override. While set, every [`Session::run`] uses it instead of the
    /// pipeline's compiled-in [`GpuConfig::sched`](crate::GpuConfig)
    /// policy — the hook schedule-space exploration runs through.
    pub fn set_sched(&mut self, sched: Option<SchedPolicyRef>) {
        self.sched = sched;
    }

    /// The current scheduling override, if any.
    pub fn sched(&self) -> Option<&SchedPolicyRef> {
        self.sched.as_ref()
    }

    /// Sets (or with `None`, clears) this session's link degradation
    /// scale. While set, every run prices [`Op::LinkSend`](crate::Op)
    /// wire time at `scale × healthy` — the interconnect half of the
    /// fault-injection story (`crates/serve`). Identical in both engine
    /// modes; no recompilation.
    pub fn set_link_scale(&mut self, scale: Option<LinkScale>) {
        self.link_scale = scale;
    }

    /// The current link degradation scale, if any.
    pub fn link_scale(&self) -> Option<LinkScale> {
        self.link_scale
    }

    /// Sets (or with `None`, clears) this session's [`ExecMode`]
    /// override. Resolution order per run: this override, then the
    /// `CUSYNC_EXEC` environment variable, then the pipeline's cluster
    /// config ([`ClusterConfig::effective_exec`](crate::ClusterConfig)).
    /// [`ExecMode::Parallel`] is a *request*: runs the sharder cannot
    /// prove safe (see [`CompiledPipeline::shardable`]), abort-horizon
    /// runs and non-shard-stable policies still execute serially, with
    /// identical results either way. Traced runs shard too: each shard
    /// records its own device's events and the merge reproduces the
    /// serial trace event-for-event.
    pub fn set_exec(&mut self, exec: Option<ExecMode>) {
        self.exec = exec;
    }

    /// The current [`ExecMode`] override, if any.
    pub fn exec(&self) -> Option<ExecMode> {
        self.exec
    }

    /// Sets the thread budget for parallel runs; 0 restores the default
    /// (`std::thread::available_parallelism`, capped at the pipeline's
    /// device count). Purely a wall-clock knob — simulated results are
    /// identical for every budget.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// Records scheduling events for inspection by [`Session::trace`].
    pub fn enable_trace(&mut self) {
        self.trace_enabled = true;
    }

    /// The trace of the most recent run (empty unless
    /// [`Session::enable_trace`] was called).
    pub fn trace(&self) -> &[TraceEvent] {
        self.st.trace()
    }

    /// Final global-memory state of the most recent run (functional
    /// outputs, race log).
    pub fn mem(&self) -> &GlobalMemory {
        &self.st.mem
    }

    /// Final semaphore state of the most recent run.
    pub fn sems(&self) -> &SemTable {
        &self.st.sems
    }

    /// Executes `pipeline` to completion, resetting all per-run state
    /// first. May be called any number of times, with the same or
    /// different pipelines; every run starts from the pipeline's pristine
    /// initial conditions and produces a timeline bit-identical to a fresh
    /// [`Gpu`] run of the same workload.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if execution stalls with incomplete
    /// kernels (the session remains usable afterwards).
    pub fn run(&mut self, pipeline: &CompiledPipeline) -> Result<RunReport, SimError> {
        match self.run_with(pipeline, None)? {
            RunOutcome::Complete(report) => Ok(report),
            RunOutcome::Aborted(_) => unreachable!("unbounded run cannot abort"),
        }
    }

    /// Executes `pipeline` with an **abort horizon**: the engine runs
    /// normally until the first *kernel boundary* (a kernel's final block
    /// retiring) at or after `horizon`, then checkpoints — same-instant
    /// completions drain, nothing further issues — and returns
    /// [`RunOutcome::Aborted`] describing the residue. A pipeline that
    /// drains entirely first returns [`RunOutcome::Complete`] with a
    /// report bit-identical to a plain [`Session::run`].
    ///
    /// This is the preemption hook of the serving layer: a dispatcher
    /// evicting a running batch stops it at the next kernel boundary and
    /// requeues the remainder (`crates/serve`). Checkpoints land on the
    /// identical boundary in both [`EngineMode`]s, and the session stays
    /// fully usable afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if execution stalls before any
    /// boundary at or past the horizon is reached.
    pub fn run_until(
        &mut self,
        pipeline: &CompiledPipeline,
        horizon: crate::SimTime,
    ) -> Result<RunOutcome, SimError> {
        self.run_with(pipeline, Some(horizon))
    }

    fn run_with(
        &mut self,
        pipeline: &CompiledPipeline,
        abort_at: Option<crate::SimTime>,
    ) -> Result<RunOutcome, SimError> {
        self.st.reset(&pipeline.desc);
        self.st.reset_storage(&pipeline.mem, &pipeline.sems);
        self.st.trace_enabled = self.trace_enabled;
        // The reference engine never replays programs; don't trigger
        // their (lazy, once-per-pipeline) collection for it.
        static EMPTY_PROGRAMS: OnceLock<Programs> = OnceLock::new();
        let programs = match self.mode {
            EngineMode::Optimized => pipeline.programs(),
            EngineMode::Reference => EMPTY_PROGRAMS.get_or_init(Programs::empty),
        };
        // Override precedence: session > pipeline (a `Gpu::set_sched`
        // carried through compile) > config kind.
        let sched = self
            .sched
            .clone()
            .or_else(|| pipeline.sched.clone())
            .unwrap_or_else(|| pipeline.desc.cluster.effective_sched().instantiate());
        let opts = RunOptions {
            abort_at,
            link_scale: self.link_scale,
        };
        // Exec resolution: session override > CUSYNC_EXEC > cluster
        // config. Only the optimized engine shards (the reference engine
        // is the executable spec and stays serial); `execute_auto` falls
        // back to the serial path whenever a run-time gate fails.
        let exec = self
            .exec
            .or_else(env_exec_override)
            .unwrap_or_else(|| pipeline.desc.cluster.effective_exec());
        if exec == ExecMode::Parallel && self.mode == EngineMode::Optimized {
            let threads = par::thread_budget(pipeline.desc.cluster.devices.len(), self.threads);
            return par::execute_auto(
                &pipeline.desc,
                programs,
                self.mode,
                sched.as_ref(),
                &mut self.st,
                opts,
                pipeline.shardable(),
                threads,
                &mut self.shard_pool,
            );
        }
        execute_with(
            &pipeline.desc,
            programs,
            self.mode,
            sched.as_ref(),
            &mut self.st,
            opts,
        )
    }
}

thread_local! {
    static THREAD_SESSION: RefCell<Session> = RefCell::new(Session::new());
}

/// Runs `pipeline` on this thread's pooled [`Session`], creating it on
/// first use and re-creating it if the thread's default [`EngineMode`]
/// changed since (so [`crate::with_engine_mode`] scopes behave exactly as
/// they do for [`Gpu::new`]).
///
/// This is the convenience the one-shot model/bench helpers run on: every
/// call after the first on a given thread reuses the warmed engine arenas.
pub fn run_compiled(pipeline: &CompiledPipeline) -> Result<RunReport, SimError> {
    THREAD_SESSION.with(|cell| {
        let mut session = cell.borrow_mut();
        if session.mode() != default_engine_mode() {
            *session = Session::with_mode(default_engine_mode());
        }
        session.run(pipeline)
    })
}

struct Job {
    pipeline: Arc<CompiledPipeline>,
    reply: mpsc::Sender<Result<RunReport, SimError>>,
}

/// Best-effort extraction of a panic payload's message (the common `&str`
/// and `String` payloads of `panic!`; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A handle to one pipeline submission on a [`Runtime`]; resolve it with
/// [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<RunReport, SimError>>,
}

impl Ticket {
    /// Blocks until the submitted run completes and returns its report.
    ///
    /// # Errors
    ///
    /// Propagates the run's [`SimError`], or [`SimError::RuntimeShutdown`]
    /// if the worker pool disappeared before completing the run.
    pub fn wait(self) -> Result<RunReport, SimError> {
        self.rx.recv().unwrap_or(Err(SimError::RuntimeShutdown))
    }

    /// Like [`Ticket::wait`], but bounded: blocks at most `deadline` of
    /// wall-clock time. A worker that died *outside* the panic path (the
    /// OS killed its thread, or it is wedged in a runaway pipeline) never
    /// sends a reply and never drops its channel — a plain
    /// [`Ticket::wait`] on such a submission hangs forever. This variant
    /// surfaces that as [`SimError::WorkerLost`] instead.
    ///
    /// The ticket stays valid after a timeout: a later wait still
    /// observes the result if the worker was merely slow.
    ///
    /// # Errors
    ///
    /// Propagates the run's [`SimError`]; [`SimError::WorkerLost`] if no
    /// result arrived within `deadline`; [`SimError::RuntimeShutdown`] if
    /// the worker pool disappeared before completing the run.
    pub fn wait_deadline(&self, deadline: std::time::Duration) -> Result<RunReport, SimError> {
        match self.rx.recv_timeout(deadline) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(SimError::WorkerLost),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(SimError::RuntimeShutdown),
        }
    }
}

/// A multi-tenant execution pool: `workers` OS threads, each owning one
/// warmed [`Session`], draining a shared submission queue of
/// `Arc<CompiledPipeline>`s.
///
/// This is the "serve heavy traffic" layer: compile each workload once,
/// then submit it (and others) concurrently from any number of client
/// threads. Every individual run is still fully deterministic — the pool
/// only changes *wall-clock* scheduling, never simulated results.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use cusync_sim::{Dim3, FixedKernel, Gpu, GpuConfig, Op, Runtime};
///
/// let mut gpu = Gpu::new(GpuConfig::toy(4));
/// let s = gpu.create_stream(0);
/// gpu.launch(s, Arc::new(FixedKernel::new(
///     "k", Dim3::linear(4), 1, vec![Op::compute(500)],
/// )));
/// let pipeline = Arc::new(gpu.compile()?);
///
/// let runtime = Runtime::new(2);
/// let tickets: Vec<_> = (0..8).map(|_| runtime.submit(Arc::clone(&pipeline))).collect();
/// for t in tickets {
///     assert_eq!(t.wait()?.kernels[0].blocks, 4);
/// }
/// # Ok::<(), cusync_sim::SimError>(())
/// ```
pub struct Runtime {
    tx: Option<mpsc::Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
    mode: EngineMode,
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime")
            .field("workers", &self.workers.len())
            .field("mode", &self.mode)
            .finish_non_exhaustive()
    }
}

impl Runtime {
    /// Creates a pool of `workers` sessions (at least one) using the
    /// calling thread's default [`EngineMode`].
    pub fn new(workers: usize) -> Self {
        Runtime::with_mode(default_engine_mode(), workers)
    }

    /// Creates a pool pinned to a specific engine implementation.
    pub fn with_mode(mode: EngineMode, workers: usize) -> Self {
        Runtime::with_mode_and_sched(mode, workers, None)
    }

    /// Creates a pool whose every worker session runs with the given
    /// block-issue ordering override (`None` follows each submitted
    /// pipeline's config policy).
    pub fn with_mode_and_sched(
        mode: EngineMode,
        workers: usize,
        sched: Option<SchedPolicyRef>,
    ) -> Self {
        Runtime::with_mode_sched_exec(mode, workers, sched, None)
    }

    /// Creates a pool whose every worker session additionally carries an
    /// [`ExecMode`] override (see [`Session::set_exec`]) — `None` lets
    /// each worker follow `CUSYNC_EXEC` and the submitted pipeline's
    /// cluster config. Note each worker *session* shards its own runs;
    /// the pool's workers and a run's shard threads multiply, so pools
    /// requesting [`ExecMode::Parallel`] are best sized well below
    /// `available_parallelism`.
    pub fn with_mode_sched_exec(
        mode: EngineMode,
        workers: usize,
        sched: Option<SchedPolicyRef>,
        exec: Option<ExecMode>,
    ) -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let sched = sched.clone();
                thread::spawn(move || {
                    let mut session = Session::with_mode(mode);
                    session.set_sched(sched.clone());
                    session.set_exec(exec);
                    loop {
                        // Hold the lock only for the dequeue, not the run.
                        let job = match rx.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => break,
                        };
                        let Ok(job) = job else { break };
                        // A panicking pipeline (a kernel body that panics)
                        // must not kill the worker: queued jobs behind it
                        // would then hang forever with their reply senders
                        // parked in the submission queue. Catch it, surface
                        // it on the ticket, and replace the session — the
                        // unwound RunState may hold partial run state.
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            session.run(&job.pipeline)
                        }))
                        .unwrap_or_else(|payload| {
                            session = Session::with_mode(mode);
                            session.set_sched(sched.clone());
                            session.set_exec(exec);
                            Err(SimError::WorkerPanic(panic_message(payload.as_ref())))
                        });
                        // The client may have dropped its ticket; that is
                        // not this worker's problem.
                        let _ = job.reply.send(result);
                    }
                })
            })
            .collect();
        Runtime {
            tx: Some(tx),
            workers,
            mode,
        }
    }

    /// Number of worker sessions in the pool.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The engine implementation the pool's sessions run on.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// Enqueues one run of `pipeline`; the returned [`Ticket`] resolves to
    /// its [`RunReport`]. Submissions are picked up by whichever worker
    /// frees first.
    pub fn submit(&self, pipeline: Arc<CompiledPipeline>) -> Ticket {
        let (reply, rx) = mpsc::channel();
        let job = Job { pipeline, reply };
        // The queue only closes in Drop, so send can fail only if every
        // worker thread died; the ticket then resolves to RuntimeShutdown.
        if let Some(tx) = &self.tx {
            let _ = tx.send(job);
        }
        Ticket { rx }
    }

    /// Submits every pipeline and waits for all of them, preserving order.
    pub fn run_all<I>(&self, pipelines: I) -> Vec<Result<RunReport, SimError>>
    where
        I: IntoIterator<Item = Arc<CompiledPipeline>>,
    {
        let tickets: Vec<Ticket> = pipelines.into_iter().map(|p| self.submit(p)).collect();
        tickets.into_iter().map(Ticket::wait).collect()
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Close the queue, then let every worker drain and exit.
        self.tx.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dim3, FixedKernel, Op, SimTime};

    fn quiet_config() -> GpuConfig {
        GpuConfig {
            host_launch_gap: SimTime::ZERO,
            kernel_dispatch_latency: SimTime::ZERO,
            block_jitter: 0.0,
            ..GpuConfig::toy(4)
        }
    }

    fn two_kernel_pipeline() -> CompiledPipeline {
        let mut gpu = Gpu::new(quiet_config());
        let sem = gpu.alloc_sems("sem", 1, 0);
        let s1 = gpu.create_stream(0);
        let s2 = gpu.create_stream(0);
        gpu.launch(
            s1,
            Arc::new(FixedKernel::new(
                "producer",
                Dim3::linear(2),
                1,
                vec![Op::compute(10_000), Op::post(sem, 0)],
            )),
        );
        gpu.launch(
            s2,
            Arc::new(FixedKernel::new(
                "consumer",
                Dim3::linear(2),
                1,
                vec![Op::wait(sem, 0, 1), Op::compute(100)],
            )),
        );
        gpu.compile().unwrap()
    }

    #[test]
    fn session_reruns_are_identical_and_reset_semaphores() {
        let pipeline = two_kernel_pipeline();
        let mut session = Session::new();
        let first = session.run(&pipeline).unwrap();
        assert_eq!(first.sem_posts, 2);
        for _ in 0..3 {
            let again = session.run(&pipeline).unwrap();
            assert_eq!(first, again, "repeated runs must be bit-identical");
        }
        // The pristine pipeline state is untouched by running it.
        assert_eq!(
            pipeline
                .initial_sems()
                .value(pipeline.initial_sems().ids().next().unwrap(), 0),
            0
        );
    }

    #[test]
    fn session_can_switch_pipelines() {
        let a = two_kernel_pipeline();
        let mut gpu = Gpu::new(quiet_config());
        let s = gpu.create_stream(0);
        gpu.launch(
            s,
            Arc::new(FixedKernel::new(
                "solo",
                Dim3::linear(3),
                1,
                vec![Op::compute(500)],
            )),
        );
        let b = gpu.compile().unwrap();
        let mut session = Session::new();
        let ra1 = session.run(&a).unwrap();
        let rb = session.run(&b).unwrap();
        let ra2 = session.run(&a).unwrap();
        assert_eq!(ra1, ra2, "interleaving pipelines must not leak state");
        assert_eq!(rb.kernels.len(), 1);
    }

    #[test]
    fn gpu_sched_override_survives_compilation() {
        use crate::trace::TraceEvent;
        let build = |lifo: bool| {
            let mut gpu = Gpu::new(quiet_config());
            if lifo {
                gpu.set_sched(Arc::new(crate::Lifo));
            }
            let s1 = gpu.create_stream(0);
            let s2 = gpu.create_stream(0);
            for (name, s) in [("first", s1), ("second", s2)] {
                gpu.launch(
                    s,
                    Arc::new(FixedKernel::new(
                        name,
                        Dim3::linear(2),
                        1,
                        vec![Op::compute(1000)],
                    )),
                );
            }
            gpu.compile().unwrap()
        };
        let first_issued = |pipeline: &CompiledPipeline| {
            let mut session = Session::new();
            session.enable_trace();
            session.run(pipeline).unwrap();
            session
                .trace()
                .iter()
                .find_map(|e| match e {
                    TraceEvent::BlockIssued { kernel, .. } => Some(*kernel),
                    _ => None,
                })
                .unwrap()
        };
        // Config default (Fifo): launch order; with the Gpu-level Lifo
        // override carried through compile, the later launch issues first.
        assert_eq!(first_issued(&build(false)), crate::KernelId(0));
        assert_eq!(first_issued(&build(true)), crate::KernelId(1));
        // A session-level override still wins over the compiled-in one.
        let pipeline = build(true);
        let mut session = Session::new();
        session.enable_trace();
        session.set_sched(Some(Arc::new(crate::Fifo)));
        session.run(&pipeline).unwrap();
        let first = session
            .trace()
            .iter()
            .find_map(|e| match e {
                TraceEvent::BlockIssued { kernel, .. } => Some(*kernel),
                _ => None,
            })
            .unwrap();
        assert_eq!(first, crate::KernelId(0));
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let a = two_kernel_pipeline();
        let b = two_kernel_pipeline();
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "identical builds must fingerprint equal"
        );
        // Running a pipeline never perturbs its (pristine) fingerprint.
        let before = a.fingerprint();
        Session::new().run(&a).unwrap();
        assert_eq!(a.fingerprint(), before);
        // A different grid is a different workload.
        let mut gpu = Gpu::new(quiet_config());
        let s = gpu.create_stream(0);
        gpu.launch(
            s,
            Arc::new(FixedKernel::new(
                "producer",
                Dim3::linear(3),
                1,
                vec![Op::compute(10_000)],
            )),
        );
        let c = gpu.compile().unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_cost_at_identical_geometry() {
        // Same kernel names, grids, occupancies, streams and semaphore
        // layout — only the op cycle counts differ. The service-time
        // memo and tuning cache key on the fingerprint, so these MUST
        // not collide.
        let build = |cycles: u64| {
            let mut gpu = Gpu::new(quiet_config());
            let s = gpu.create_stream(0);
            gpu.launch(
                s,
                Arc::new(FixedKernel::new(
                    "k",
                    Dim3::linear(4),
                    1,
                    vec![Op::compute(cycles)],
                )),
            );
            gpu.compile().unwrap()
        };
        assert_ne!(build(100_000).fingerprint(), build(900_000).fingerprint());
        assert_eq!(build(100_000).fingerprint(), build(100_000).fingerprint());
    }

    #[test]
    fn compile_after_run_is_rejected() {
        let mut gpu = Gpu::new(quiet_config());
        let s = gpu.create_stream(0);
        gpu.launch(
            s,
            Arc::new(FixedKernel::new("k", Dim3::linear(1), 1, vec![])),
        );
        gpu.run().unwrap();
        assert_eq!(gpu.compile().unwrap_err(), SimError::AlreadyRan);
    }

    #[test]
    fn run_compiled_matches_dedicated_session() {
        let pipeline = two_kernel_pipeline();
        let pooled = run_compiled(&pipeline).unwrap();
        let dedicated = Session::new().run(&pipeline).unwrap();
        assert_eq!(pooled, dedicated);
        // And respects engine-mode scopes.
        let reference =
            crate::with_engine_mode(EngineMode::Reference, || run_compiled(&pipeline).unwrap());
        assert_eq!(reference.kernels, pooled.kernels);
    }

    #[test]
    fn runtime_pool_serves_concurrent_submissions() {
        let pipeline = Arc::new(two_kernel_pipeline());
        let serial = Session::new().run(&pipeline).unwrap();
        let runtime = Runtime::new(3);
        assert_eq!(runtime.workers(), 3);
        let results = runtime.run_all((0..16).map(|_| Arc::clone(&pipeline)));
        assert_eq!(results.len(), 16);
        for r in results {
            assert_eq!(r.unwrap(), serial, "pooled runs must be deterministic");
        }
    }

    #[test]
    fn run_until_past_completion_matches_plain_run() {
        let pipeline = two_kernel_pipeline();
        let mut session = Session::new();
        let plain = session.run(&pipeline).unwrap();
        // A horizon beyond the last kernel boundary never checkpoints.
        match session
            .run_until(&pipeline, plain.total + SimTime::from_nanos(1))
            .unwrap()
        {
            RunOutcome::Complete(report) => assert_eq!(report, plain),
            RunOutcome::Aborted(res) => panic!("unreachable horizon aborted at {}", res.aborted_at),
        }
        // A horizon *at* the final boundary also completes: nothing is
        // left to checkpoint once every kernel retired.
        match session.run_until(&pipeline, plain.total).unwrap() {
            RunOutcome::Complete(report) => assert_eq!(report, plain),
            RunOutcome::Aborted(res) => {
                panic!("final-boundary horizon aborted at {}", res.aborted_at)
            }
        }
    }

    #[test]
    fn run_until_checkpoints_at_kernel_boundary_in_both_modes() {
        let pipeline = two_kernel_pipeline();
        let mut probe = Session::new();
        let full = probe.run(&pipeline).unwrap();
        let producer_end = full.kernel("producer").end;
        assert!(producer_end < full.total);
        // Aborting anywhere in (0, producer_end] must checkpoint exactly
        // at the producer's boundary, identically in both engine modes.
        let residue_in = |mode: EngineMode| {
            let mut session = Session::with_mode(mode);
            match session
                .run_until(&pipeline, SimTime::from_picos(1))
                .unwrap()
            {
                RunOutcome::Aborted(res) => {
                    // The session survives a checkpointed run intact.
                    assert_eq!(session.run(&pipeline).unwrap(), full);
                    res
                }
                RunOutcome::Complete(_) => panic!("tiny horizon must checkpoint"),
            }
        };
        let reference = residue_in(EngineMode::Reference);
        let optimized = residue_in(EngineMode::Optimized);
        assert_eq!(reference, optimized, "checkpoints must be bit-identical");
        assert_eq!(reference.aborted_at, producer_end);
        assert_eq!(reference.kernels_done, 1);
        assert_eq!(reference.kernels_total, 2);
        assert!(reference.blocks_done < reference.blocks_total);
        assert_eq!(reference.remaining(full.total), full.total - producer_end);
    }

    #[test]
    fn link_scale_degrades_wire_time_identically_in_both_modes() {
        use crate::{ClusterConfig, LinkScale};
        // Device 0 ships 1 MiB to device 1's consumer across the ring.
        let build = || {
            let mut gpu = Gpu::new_cluster(ClusterConfig::homogeneous(
                2,
                quiet_config(),
                SimTime::from_nanos(500),
                ClusterConfig::NVLINK_BYTES_PER_SEC,
            ));
            let ready = gpu.alloc_sems_on(1, "ready", 1, 0);
            let s0 = gpu.create_stream_on(0, 0);
            let s1 = gpu.create_stream_on(1, 0);
            gpu.launch(
                s0,
                Arc::new(FixedKernel::new(
                    "producer",
                    Dim3::linear(1),
                    1,
                    vec![
                        Op::compute(10_000),
                        Op::LinkSend { bytes: 1 << 20 },
                        Op::Fence,
                        Op::post(ready, 0),
                    ],
                )),
            );
            gpu.launch(
                s1,
                Arc::new(FixedKernel::new(
                    "consumer",
                    Dim3::linear(1),
                    1,
                    vec![Op::wait(ready, 0, 1), Op::compute(10_000)],
                )),
            );
            gpu.compile().unwrap()
        };
        let pipeline = build();
        let total_at = |mode: EngineMode, scale: Option<LinkScale>| {
            let mut session = Session::with_mode(mode);
            session.set_link_scale(scale);
            session.run(&pipeline).unwrap().total
        };
        let healthy = total_at(EngineMode::Reference, None);
        let degraded = total_at(EngineMode::Reference, Some(LinkScale::times(8)));
        assert!(
            degraded > healthy,
            "8x wire time must lengthen the timeline ({healthy} -> {degraded})"
        );
        // Identity scale is a no-op; both engine modes agree at any scale.
        assert_eq!(
            total_at(EngineMode::Reference, Some(LinkScale::IDENTITY)),
            healthy
        );
        assert_eq!(total_at(EngineMode::Optimized, None), healthy);
        assert_eq!(
            total_at(EngineMode::Optimized, Some(LinkScale::times(8))),
            degraded
        );
        // The exact 7x surcharge on the wire term: scaled = wire * 8.
        let wire = pipeline.cluster().link_wire_time(1 << 20);
        assert_eq!(degraded - healthy, SimTime::from_picos(wire.as_picos() * 7));
        // Clearing the scale restores the healthy timeline.
        let mut session = Session::new();
        session.set_link_scale(Some(LinkScale::times(8)));
        session.set_link_scale(None);
        assert_eq!(session.run(&pipeline).unwrap().total, healthy);
    }

    #[test]
    fn wait_deadline_surfaces_lost_and_shutdown_workers() {
        use std::time::Duration;
        // A worker that died outside the panic path: the reply sender is
        // parked forever but never dropped. `wait` would hang; the
        // deadline variant surfaces WorkerLost and the ticket survives.
        let (tx, rx) = mpsc::channel();
        let ticket = Ticket { rx };
        assert_eq!(
            ticket.wait_deadline(Duration::from_millis(10)).unwrap_err(),
            SimError::WorkerLost
        );
        // The worker recovers and replies: the same ticket resolves.
        let pipeline = two_kernel_pipeline();
        let report = Session::new().run(&pipeline).unwrap();
        tx.send(Ok(report.clone())).unwrap();
        assert_eq!(
            ticket.wait_deadline(Duration::from_millis(10)).unwrap(),
            report
        );
        // A dropped channel is a shutdown, not a lost worker.
        drop(tx);
        assert_eq!(
            ticket.wait_deadline(Duration::from_millis(10)).unwrap_err(),
            SimError::RuntimeShutdown
        );
        // And on a live pool the deadline path returns normal results.
        let runtime = Runtime::new(1);
        let t = runtime.submit(Arc::new(two_kernel_pipeline()));
        assert!(t.wait_deadline(Duration::from_secs(30)).is_ok());
    }

    #[test]
    fn dropped_runtime_resolves_tickets_to_shutdown() {
        let pipeline = Arc::new(two_kernel_pipeline());
        let ticket = {
            let runtime = Runtime::new(1);
            let t = runtime.submit(Arc::clone(&pipeline));
            // Drop the runtime; the in-flight job still completes because
            // Drop joins the workers after closing the queue.
            drop(runtime);
            t
        };
        // The job was accepted before the drop, so it resolves normally.
        assert!(ticket.wait().is_ok());
    }
}
