//! Global-memory semaphore arrays and atomic counters.
//!
//! cuSync stores one `u32` semaphore per synchronization unit in GPU global
//! memory (Section III-D). The same storage backs the atomic tile counters
//! used by custom tile processing orders (Section III-C).

use std::fmt;

/// Handle to an array of semaphores (or counters) allocated on the GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SemArrayId(pub(crate) usize);

impl fmt::Display for SemArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sems{}", self.0)
    }
}

/// All semaphore arrays of a simulated GPU.
///
/// # Examples
///
/// ```
/// use cusync_sim::SemTable;
///
/// let mut sems = SemTable::new();
/// let arr = sems.alloc("row-sems", 8, 0);
/// assert_eq!(sems.add(arr, 3, 2), 0); // atomicAdd returns the old value
/// assert_eq!(sems.value(arr, 3), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct SemTable {
    arrays: Vec<SemArray>,
}

#[derive(Debug, Clone)]
struct SemArray {
    name: String,
    values: Vec<u32>,
    init: u32,
    posts: u64,
    /// Device whose global memory holds this array. Operations from other
    /// devices pay the cluster's link latency on the post→observe edge.
    device: u32,
}

impl SemTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SemTable { arrays: Vec::new() }
    }

    /// Allocates `len` semaphores initialized to `init`, homed in device
    /// 0's global memory (the single-GPU case).
    pub fn alloc(&mut self, name: &str, len: usize, init: u32) -> SemArrayId {
        self.alloc_on(name, len, init, 0)
    }

    /// Allocates `len` semaphores initialized to `init` in the global
    /// memory of device `device`. Posts and polls from other devices
    /// traverse the interconnect (see
    /// [`ClusterConfig`](crate::ClusterConfig)).
    pub fn alloc_on(&mut self, name: &str, len: usize, init: u32, device: u32) -> SemArrayId {
        let id = SemArrayId(self.arrays.len());
        self.arrays.push(SemArray {
            name: name.to_owned(),
            values: vec![init; len],
            init,
            posts: 0,
            device,
        });
        id
    }

    /// Device whose memory holds array `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn device(&self, id: SemArrayId) -> u32 {
        self.arrays[id.0].device
    }

    /// Current value of semaphore `index` in array `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` or `index` is out of bounds.
    pub fn value(&self, id: SemArrayId, index: u32) -> u32 {
        self.arrays[id.0].values[index as usize]
    }

    /// Atomically adds `inc` to semaphore `index`, returning the previous
    /// value (the semantics of CUDA `atomicAdd`).
    ///
    /// # Panics
    ///
    /// Panics if `id` or `index` is out of bounds.
    pub fn add(&mut self, id: SemArrayId, index: u32, inc: u32) -> u32 {
        let array = &mut self.arrays[id.0];
        let prev = array.values[index as usize];
        array.values[index as usize] = prev.wrapping_add(inc);
        array.posts += 1;
        prev
    }

    /// Number of semaphores in array `id`.
    pub fn len(&self, id: SemArrayId) -> usize {
        self.arrays[id.0].values.len()
    }

    /// True if the table holds no arrays.
    pub fn is_empty(&self) -> bool {
        self.arrays.is_empty()
    }

    /// Name given at allocation.
    pub fn name(&self, id: SemArrayId) -> &str {
        &self.arrays[id.0].name
    }

    /// Resets every semaphore in `id` to its initial value (used between
    /// repeated launches in auto-tuning).
    pub fn reset(&mut self, id: SemArrayId) {
        let array = &mut self.arrays[id.0];
        let init = array.init;
        array.values.fill(init);
    }

    /// Restores every array to the state of `template`, reusing existing
    /// allocations when the layouts match (a [`Session`](crate::Session)
    /// re-running one compiled pipeline). Post counters are restored from
    /// the template too, so repeated runs report identical
    /// synchronization counts.
    pub fn reset_from(&mut self, template: &SemTable) {
        let compatible = self.arrays.len() == template.arrays.len()
            && self.arrays.iter().zip(&template.arrays).all(|(a, t)| {
                a.values.len() == t.values.len() && a.name == t.name && a.device == t.device
            });
        if compatible {
            for (a, t) in self.arrays.iter_mut().zip(&template.arrays) {
                a.values.copy_from_slice(&t.values);
                a.init = t.init;
                a.posts = t.posts;
            }
        } else {
            self.arrays.clone_from(&template.arrays);
        }
    }

    /// Copies the values and post counters of every array homed on
    /// `device` from `shard` (a table with the identical layout). The
    /// parallel engine merges per-device shard tables back into the main
    /// run state with this: each device's shard holds the authoritative
    /// final state of exactly the arrays it homes.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the layouts differ.
    pub(crate) fn adopt_device_arrays(&mut self, shard: &SemTable, device: u32) {
        debug_assert_eq!(self.arrays.len(), shard.arrays.len());
        for (a, s) in self.arrays.iter_mut().zip(&shard.arrays) {
            debug_assert_eq!(a.values.len(), s.values.len());
            if a.device == device {
                a.values.copy_from_slice(&s.values);
                a.posts = s.posts;
            }
        }
    }

    /// Total number of atomic post operations performed on array `id`,
    /// used to verify policy synchronization counts (e.g. the paper's
    /// "TileSync requires 12 synchronizations, RowSync 6" example).
    pub fn posts(&self, id: SemArrayId) -> u64 {
        self.arrays[id.0].posts
    }

    /// Ids of all allocated arrays.
    pub fn ids(&self) -> impl Iterator<Item = SemArrayId> + '_ {
        (0..self.arrays.len()).map(SemArrayId)
    }
}

/// Dense per-array wait-lists: for each `(semaphore array, index)` pair,
/// the thread blocks currently parked on it.
///
/// This is the optimized engine's replacement for the original
/// `BTreeMap<(table, index), Vec<usize>>` waiter registry: park and wake
/// become direct `Vec` indexing, and a post to a semaphore nobody waits on
/// costs two bounds checks instead of a tree descent. Storage grows lazily
/// to the highest `(array, index)` actually waited on, and emptied lists
/// keep their capacity across park/wake cycles (the dominant pattern in
/// tile synchronization, where the same semaphores are waited on wave
/// after wave).
#[derive(Debug, Default)]
pub struct WaitLists {
    lists: Vec<Vec<Vec<usize>>>,
}

impl WaitLists {
    /// Creates an empty registry.
    pub fn new() -> Self {
        WaitLists { lists: Vec::new() }
    }

    /// Parks `block` on semaphore `index` of array `id`.
    pub fn park(&mut self, id: SemArrayId, index: u32, block: usize) {
        if self.lists.len() <= id.0 {
            self.lists.resize_with(id.0 + 1, Vec::new);
        }
        let array = &mut self.lists[id.0];
        if array.len() <= index as usize {
            array.resize_with(index as usize + 1, Vec::new);
        }
        array[index as usize].push(block);
    }

    /// Removes and returns the blocks parked on `(id, index)` (in park
    /// order), without growing storage when nothing ever waited there.
    /// Pair with [`WaitLists::put`] to return the storage for reuse.
    pub fn take(&mut self, id: SemArrayId, index: u32) -> Vec<usize> {
        match self
            .lists
            .get_mut(id.0)
            .and_then(|array| array.get_mut(index as usize))
        {
            Some(list) => std::mem::take(list),
            None => Vec::new(),
        }
    }

    /// Empties every wait-list while keeping all allocated storage —
    /// used by the session layer's `RunState::reset` so repeated runs
    /// park/wake into already-sized lists. (After a completed run the
    /// lists are empty anyway; a deadlocked run leaves waiters behind.)
    pub fn clear_all(&mut self) {
        for array in &mut self.lists {
            for list in array {
                list.clear();
            }
        }
    }

    /// Returns a list taken with [`WaitLists::take`], preserving both the
    /// still-parked blocks and the allocation.
    pub fn put(&mut self, id: SemArrayId, index: u32, list: Vec<usize>) {
        if list.is_empty()
            && self
                .lists
                .get(id.0)
                .is_none_or(|a| a.len() <= index as usize)
        {
            // Nothing parked and no slot allocated: stay lazy.
            return;
        }
        if self.lists.len() <= id.0 {
            self.lists.resize_with(id.0 + 1, Vec::new);
        }
        let array = &mut self.lists[id.0];
        if array.len() <= index as usize {
            array.resize_with(index as usize + 1, Vec::new);
        }
        array[index as usize] = list;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_initializes_all_values() {
        let mut sems = SemTable::new();
        let a = sems.alloc("a", 4, 7);
        assert_eq!(sems.len(a), 4);
        for i in 0..4 {
            assert_eq!(sems.value(a, i), 7);
        }
        assert_eq!(sems.name(a), "a");
    }

    #[test]
    fn add_returns_previous_value_like_atomic_add() {
        let mut sems = SemTable::new();
        let a = sems.alloc("a", 2, 0);
        assert_eq!(sems.add(a, 0, 1), 0);
        assert_eq!(sems.add(a, 0, 1), 1);
        assert_eq!(sems.value(a, 0), 2);
        assert_eq!(sems.value(a, 1), 0);
        assert_eq!(sems.posts(a), 2);
    }

    #[test]
    fn reset_restores_initial_values() {
        let mut sems = SemTable::new();
        let a = sems.alloc("a", 3, 5);
        sems.add(a, 1, 10);
        sems.reset(a);
        assert_eq!(sems.value(a, 1), 5);
    }

    #[test]
    fn arrays_record_their_home_device() {
        let mut sems = SemTable::new();
        let local = sems.alloc("local", 1, 0);
        let remote = sems.alloc_on("remote", 2, 0, 3);
        assert_eq!(sems.device(local), 0);
        assert_eq!(sems.device(remote), 3);
        // reset_from treats a different home device as a layout change.
        let mut other = SemTable::new();
        other.alloc("local", 1, 0);
        other.alloc_on("remote", 2, 0, 1);
        other.reset_from(&sems);
        assert_eq!(other.device(remote), 3);
    }

    #[test]
    fn arrays_are_independent() {
        let mut sems = SemTable::new();
        let a = sems.alloc("a", 1, 0);
        let b = sems.alloc("b", 1, 0);
        sems.add(a, 0, 3);
        assert_eq!(sems.value(b, 0), 0);
        assert_eq!(sems.ids().count(), 2);
    }

    #[test]
    fn wait_lists_park_take_put_roundtrip() {
        let mut waits = WaitLists::new();
        let id = SemArrayId(2);
        assert!(waits.take(id, 7).is_empty(), "untouched slots are empty");
        waits.park(id, 7, 11);
        waits.park(id, 7, 12);
        waits.park(id, 0, 13);
        let taken = waits.take(id, 7);
        assert_eq!(taken, vec![11, 12], "park order is preserved");
        waits.put(id, 7, vec![12]);
        assert_eq!(waits.take(id, 7), vec![12]);
        assert_eq!(waits.take(id, 0), vec![13]);
    }

    #[test]
    fn wait_lists_stay_lazy_for_untouched_slots() {
        let mut waits = WaitLists::new();
        // take + empty put of a never-parked slot must not allocate rows.
        let empty = waits.take(SemArrayId(100), 4000);
        waits.put(SemArrayId(100), 4000, empty);
        assert!(waits.lists.is_empty());
    }
}
