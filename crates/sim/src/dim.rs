//! Three-dimensional grid/block coordinates, mirroring CUDA's `dim3`.

use std::fmt;

/// A 3-dimensional extent or coordinate, equivalent to CUDA's `dim3`.
///
/// Used both for grid shapes (number of thread blocks per dimension) and for
/// thread-block indices within a grid. Following the paper's convention
/// (Fig. 5a), for GeMM grids `x` indexes output *columns* (N dimension),
/// `y` indexes output *rows* (M dimension), and `z` is the split-K factor.
///
/// # Examples
///
/// ```
/// use cusync_sim::Dim3;
///
/// let grid = Dim3::new(24, 2, 2);
/// assert_eq!(grid.count(), 96);
/// assert_eq!(grid.linear_of(Dim3::new(1, 0, 0)), 1);
/// assert_eq!(grid.linear_of(Dim3::new(0, 1, 0)), 24);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Dim3 {
    /// Extent or coordinate in the x dimension (fastest varying).
    pub x: u32,
    /// Extent or coordinate in the y dimension.
    pub y: u32,
    /// Extent or coordinate in the z dimension (slowest varying).
    pub z: u32,
}

impl Dim3 {
    /// A 1×1×1 extent (single block) or the origin coordinate.
    pub const ONE: Dim3 = Dim3 { x: 1, y: 1, z: 1 };

    /// Creates a new `Dim3` from explicit components.
    pub const fn new(x: u32, y: u32, z: u32) -> Self {
        Dim3 { x, y, z }
    }

    /// Creates a 1-D extent `(x, 1, 1)`.
    pub const fn linear(x: u32) -> Self {
        Dim3 { x, y: 1, z: 1 }
    }

    /// Creates a 2-D extent `(x, y, 1)`.
    pub const fn xy(x: u32, y: u32) -> Self {
        Dim3 { x, y, z: 1 }
    }

    /// Total number of elements covered by this extent.
    ///
    /// # Examples
    ///
    /// ```
    /// # use cusync_sim::Dim3;
    /// assert_eq!(Dim3::new(3, 2, 1).count(), 6);
    /// ```
    pub fn count(self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }

    /// Row-major (x fastest, then y, then z) linearization of `idx` within
    /// `self` interpreted as an extent.
    ///
    /// This matches the `RowMajor` tile order of the paper (Fig. 4b):
    /// `tile.y * grid.x + tile.x`, extended with z as the slowest dimension.
    pub fn linear_of(self, idx: Dim3) -> u64 {
        debug_assert!(idx.x < self.x && idx.y < self.y && idx.z < self.z);
        (idx.z as u64 * self.y as u64 + idx.y as u64) * self.x as u64 + idx.x as u64
    }

    /// Inverse of [`Dim3::linear_of`]: reconstructs the coordinate from a
    /// row-major linear index.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `linear >= self.count()`.
    pub fn delinear(self, linear: u64) -> Dim3 {
        debug_assert!(linear < self.count());
        let x = (linear % self.x as u64) as u32;
        let rest = linear / self.x as u64;
        let y = (rest % self.y as u64) as u32;
        let z = (rest / self.y as u64) as u32;
        Dim3 { x, y, z }
    }

    /// Returns true if `idx` lies strictly inside this extent in every
    /// dimension.
    pub fn contains(self, idx: Dim3) -> bool {
        idx.x < self.x && idx.y < self.y && idx.z < self.z
    }

    /// Element-wise ceiling division, useful for computing grid sizes from
    /// problem sizes and tile sizes.
    ///
    /// # Examples
    ///
    /// ```
    /// # use cusync_sim::Dim3;
    /// let problem = Dim3::new(100, 60, 1);
    /// let tile = Dim3::new(32, 32, 1);
    /// assert_eq!(problem.div_ceil(tile), Dim3::new(4, 2, 1));
    /// ```
    pub fn div_ceil(self, tile: Dim3) -> Dim3 {
        Dim3 {
            x: self.x.div_ceil(tile.x),
            y: self.y.div_ceil(tile.y),
            z: self.z.div_ceil(tile.z),
        }
    }

    /// Iterates over every coordinate in this extent in row-major order.
    pub fn iter(self) -> impl Iterator<Item = Dim3> {
        (0..self.count()).map(move |i| self.delinear(i))
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.x, self.y, self.z)
    }
}

impl From<(u32, u32)> for Dim3 {
    fn from((x, y): (u32, u32)) -> Self {
        Dim3::xy(x, y)
    }
}

impl From<(u32, u32, u32)> for Dim3 {
    fn from((x, y, z): (u32, u32, u32)) -> Self {
        Dim3::new(x, y, z)
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Self {
        Dim3::linear(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_multiplies_dimensions() {
        assert_eq!(Dim3::new(4, 3, 2).count(), 24);
        assert_eq!(Dim3::ONE.count(), 1);
        assert_eq!(Dim3::new(0, 5, 5).count(), 0);
    }

    #[test]
    fn linear_roundtrip_covers_grid() {
        let grid = Dim3::new(5, 3, 2);
        for i in 0..grid.count() {
            let idx = grid.delinear(i);
            assert!(grid.contains(idx));
            assert_eq!(grid.linear_of(idx), i);
        }
    }

    #[test]
    fn linear_is_row_major() {
        let grid = Dim3::new(4, 4, 1);
        // Matches the paper's RowMajor definition: tile.y * grid.x + tile.x.
        assert_eq!(grid.linear_of(Dim3::new(2, 1, 0)), 4 + 2);
    }

    #[test]
    fn div_ceil_rounds_up() {
        assert_eq!(
            Dim3::new(100, 64, 1).div_ceil(Dim3::new(32, 32, 1)),
            Dim3::new(4, 2, 1)
        );
        assert_eq!(
            Dim3::new(96, 64, 3).div_ceil(Dim3::new(32, 32, 1)),
            Dim3::new(3, 2, 3)
        );
    }

    #[test]
    fn iter_visits_all_in_order() {
        let grid = Dim3::new(2, 2, 1);
        let coords: Vec<Dim3> = grid.iter().collect();
        assert_eq!(
            coords,
            vec![
                Dim3::new(0, 0, 0),
                Dim3::new(1, 0, 0),
                Dim3::new(0, 1, 0),
                Dim3::new(1, 1, 0),
            ]
        );
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Dim3::new(1, 48, 4).to_string(), "1x48x4");
    }

    #[test]
    fn conversions_from_tuples() {
        assert_eq!(Dim3::from((2, 3)), Dim3::new(2, 3, 1));
        assert_eq!(Dim3::from((2, 3, 4)), Dim3::new(2, 3, 4));
        assert_eq!(Dim3::from(7u32), Dim3::new(7, 1, 1));
    }
}
