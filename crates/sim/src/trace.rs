//! Execution trace for debugging and for tests that assert scheduling
//! behaviour (issue order, wave boundaries, wait/wake times).

use std::fmt;

use crate::dim::Dim3;
use crate::sem::SemArrayId;
use crate::time::SimTime;

/// Identifier of a launched kernel within one [`Gpu`](crate::Gpu).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KernelId(pub(crate) usize);

impl KernelId {
    /// The kernel's launch index within its pipeline — the `n` of the
    /// `k{n}` display form. Stable across runs of the same pipeline, so
    /// observability layers can use it as an array index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// One entry of the execution trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A kernel became eligible to issue thread blocks.
    KernelReady {
        /// Kernel that became ready.
        kernel: KernelId,
        /// Time it became ready.
        time: SimTime,
    },
    /// A thread block was placed on an SM.
    BlockIssued {
        /// Owning kernel.
        kernel: KernelId,
        /// Block index within the grid.
        block: Dim3,
        /// SM the block was placed on.
        sm: u32,
        /// SM capacity units the block occupies while resident
        /// (`SM_CAPACITY_UNITS / occupancy`).
        units: u32,
        /// Issue time.
        time: SimTime,
    },
    /// A thread block finished and released its SM slot.
    BlockFinished {
        /// Owning kernel.
        kernel: KernelId,
        /// Block index within the grid.
        block: Dim3,
        /// Completion time.
        time: SimTime,
    },
    /// A block started waiting on a semaphore that was not yet at the
    /// target value.
    BlockBlocked {
        /// Owning kernel.
        kernel: KernelId,
        /// Block index within the grid.
        block: Dim3,
        /// Semaphore array waited on.
        table: SemArrayId,
        /// Semaphore index waited on.
        index: u32,
        /// Target value.
        value: u32,
        /// Time the wait began.
        time: SimTime,
    },
    /// A block's pending semaphore wait was satisfied; the block resumes
    /// spinning down at `time` (the wake includes the poll-observation
    /// cost, so `time` is when the block re-occupies its slot usefully).
    BlockWoken {
        /// Owning kernel.
        kernel: KernelId,
        /// Block index within the grid.
        block: Dim3,
        /// Semaphore array that was waited on.
        table: SemArrayId,
        /// Semaphore index that was waited on.
        index: u32,
        /// Resume time.
        time: SimTime,
    },
    /// A semaphore post became visible.
    SemPosted {
        /// Semaphore array posted to.
        table: SemArrayId,
        /// Semaphore index posted to.
        index: u32,
        /// Value after the post.
        new_value: u32,
        /// Kernel whose block (or completion) performed the post, when
        /// known. `None` for host-side posts.
        poster: Option<KernelId>,
        /// Visibility time.
        time: SimTime,
    },
    /// A kernel reached the head of its stream but is held by an
    /// unsatisfied launch gate (PDL / stream-serialization dependence).
    GateHeld {
        /// The held kernel.
        kernel: KernelId,
        /// Time the kernel reached its stream head and began waiting.
        time: SimTime,
    },
    /// A kernel's final outstanding launch-gate prerequisite fell.
    GateOpened {
        /// The kernel whose gates are now all open.
        kernel: KernelId,
        /// The producer kernel whose progress dropped the final gate.
        by: KernelId,
        /// Time the gate opened.
        time: SimTime,
    },
    /// An [`Op::LinkSend`](crate::Op::LinkSend) occupied the inter-device
    /// link.
    LinkSent {
        /// Kernel performing the send.
        kernel: KernelId,
        /// Block performing the send.
        block: Dim3,
        /// Payload size in bytes.
        bytes: u64,
        /// Wire time the transfer occupied the link.
        wire: SimTime,
        /// Time the transfer started.
        time: SimTime,
    },
    /// All blocks of a kernel completed.
    KernelFinished {
        /// Kernel that finished.
        kernel: KernelId,
        /// Completion time.
        time: SimTime,
    },
}

impl TraceEvent {
    /// The simulated time of this event.
    pub fn time(&self) -> SimTime {
        match *self {
            TraceEvent::KernelReady { time, .. }
            | TraceEvent::BlockIssued { time, .. }
            | TraceEvent::BlockFinished { time, .. }
            | TraceEvent::BlockBlocked { time, .. }
            | TraceEvent::BlockWoken { time, .. }
            | TraceEvent::SemPosted { time, .. }
            | TraceEvent::GateHeld { time, .. }
            | TraceEvent::GateOpened { time, .. }
            | TraceEvent::LinkSent { time, .. }
            | TraceEvent::KernelFinished { time, .. } => time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::waves;
    use crate::{Dim3, FixedKernel, Gpu, GpuConfig, Op, SchedPolicyKind};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    #[test]
    fn trace_event_reports_time() {
        let e = TraceEvent::KernelReady {
            kernel: KernelId(0),
            time: SimTime::from_nanos(5),
        };
        assert_eq!(e.time(), SimTime::from_nanos(5));
    }

    const ALL_POLICIES: [SchedPolicyKind; 5] = [
        SchedPolicyKind::Fifo,
        SchedPolicyKind::Lifo,
        SchedPolicyKind::SeededShuffle(5),
        SchedPolicyKind::SeededShuffle(99),
        SchedPolicyKind::SemStarver,
    ];

    fn quiet_config(sms: u32) -> GpuConfig {
        GpuConfig {
            host_launch_gap: SimTime::ZERO,
            kernel_dispatch_latency: SimTime::ZERO,
            block_jitter: 0.0,
            ..GpuConfig::toy(sms)
        }
    }

    /// A producer/consumer workload with partial waves and semaphores,
    /// traced under `policy`.
    fn traced_run(policy: SchedPolicyKind) -> Vec<TraceEvent> {
        let mut gpu = Gpu::new(quiet_config(4));
        gpu.set_sched(policy.instantiate());
        gpu.enable_trace();
        let sem = gpu.alloc_sems("tiles", 4, 0);
        let s1 = gpu.create_stream(0);
        let s2 = gpu.create_stream(0);
        gpu.launch(
            s1,
            Arc::new(FixedKernel::new(
                "producer",
                Dim3::linear(6),
                2,
                vec![Op::compute(40_000), Op::Fence, Op::post(sem, 0)],
            )),
        );
        gpu.launch(
            s2,
            Arc::new(FixedKernel::new(
                "consumer",
                Dim3::linear(6),
                2,
                vec![Op::wait(sem, 0, 3), Op::compute(5_000)],
            )),
        );
        gpu.run().expect("capacity-safe workload terminates");
        gpu.trace().to_vec()
    }

    /// Issue order is a permutation of each kernel's grid: every block
    /// issued exactly once, and the issued set equals the grid — under
    /// every scheduling policy.
    #[test]
    fn issue_order_is_a_permutation_of_blocks_under_every_policy() {
        for policy in ALL_POLICIES {
            let trace = traced_run(policy);
            let mut issued: BTreeMap<KernelId, Vec<Dim3>> = BTreeMap::new();
            for event in &trace {
                if let TraceEvent::BlockIssued { kernel, block, .. } = *event {
                    issued.entry(kernel).or_default().push(block);
                }
            }
            assert_eq!(issued.len(), 2, "{policy}: both kernels issue");
            for (kernel, blocks) in issued {
                let mut sorted = blocks.clone();
                sorted.sort();
                sorted.dedup();
                assert_eq!(
                    sorted.len(),
                    blocks.len(),
                    "{policy}: {kernel} issued a block twice"
                );
                let grid = Dim3::linear(6);
                let expected: Vec<Dim3> = grid.iter().collect();
                let mut expected = expected;
                expected.sort();
                assert_eq!(sorted, expected, "{policy}: {kernel} issue set != grid");
            }
        }
    }

    /// Per block: issue ≤ every block/blocked event ≤ finish, and each
    /// block's wait (blocked) and wake-adjacent timestamps never decrease.
    #[test]
    fn wait_and_wake_times_are_non_decreasing_per_block() {
        for policy in ALL_POLICIES {
            let trace = traced_run(policy);
            let mut last_time: BTreeMap<(KernelId, Dim3), SimTime> = BTreeMap::new();
            let mut finished: BTreeMap<(KernelId, Dim3), SimTime> = BTreeMap::new();
            for event in &trace {
                match *event {
                    TraceEvent::BlockIssued {
                        kernel,
                        block,
                        time,
                        ..
                    } => {
                        assert!(
                            last_time.insert((kernel, block), time).is_none(),
                            "{policy}: re-issue of {kernel} {block}"
                        );
                    }
                    TraceEvent::BlockBlocked {
                        kernel,
                        block,
                        time,
                        ..
                    } => {
                        let prev = last_time
                            .insert((kernel, block), time)
                            .unwrap_or_else(|| panic!("{policy}: blocked before issue"));
                        assert!(time >= prev, "{policy}: wait time went backwards");
                    }
                    TraceEvent::BlockFinished {
                        kernel,
                        block,
                        time,
                    } => {
                        let prev = last_time
                            .get(&(kernel, block))
                            .copied()
                            .unwrap_or_else(|| panic!("{policy}: finish before issue"));
                        assert!(time >= prev, "{policy}: finish precedes last progress");
                        finished.insert((kernel, block), time);
                    }
                    _ => {}
                }
            }
            assert_eq!(finished.len(), 12, "{policy}: all 12 blocks finish");
        }
    }

    /// For a lone kernel the distinct block-issue instants are exactly its
    /// wave boundaries: `ceil(waves(blocks, occupancy, sms))` of them,
    /// under every scheduling policy (with a single kernel the policy
    /// cannot change placement, only re-derive it).
    #[test]
    fn wave_boundaries_match_static_wave_arithmetic_under_every_policy() {
        for policy in ALL_POLICIES {
            let (blocks, occupancy, sms) = (6u64, 1u32, 4u32);
            let mut gpu = Gpu::new(quiet_config(sms));
            gpu.set_sched(policy.instantiate());
            gpu.enable_trace();
            let s = gpu.create_stream(0);
            gpu.launch(
                s,
                Arc::new(FixedKernel::new(
                    "solo",
                    Dim3::linear(blocks as u32),
                    occupancy,
                    vec![Op::compute(10_000)],
                )),
            );
            let report = gpu.run().unwrap();
            let mut issue_times: Vec<SimTime> = gpu
                .trace()
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::BlockIssued { time, .. } => Some(*time),
                    _ => None,
                })
                .collect();
            issue_times.sort();
            issue_times.dedup();
            let static_waves = waves(blocks, occupancy, sms);
            assert_eq!(report.kernels[0].static_waves, static_waves);
            assert_eq!(
                issue_times.len() as u64,
                static_waves.ceil() as u64,
                "{policy}: wave boundaries"
            );
        }
    }
}
