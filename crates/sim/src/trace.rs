//! Execution trace for debugging and for tests that assert scheduling
//! behaviour (issue order, wave boundaries, wait/wake times).

use std::fmt;

use crate::dim::Dim3;
use crate::sem::SemArrayId;
use crate::time::SimTime;

/// Identifier of a launched kernel within one [`Gpu`](crate::Gpu).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KernelId(pub(crate) usize);

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// One entry of the execution trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A kernel became eligible to issue thread blocks.
    KernelReady {
        /// Kernel that became ready.
        kernel: KernelId,
        /// Time it became ready.
        time: SimTime,
    },
    /// A thread block was placed on an SM.
    BlockIssued {
        /// Owning kernel.
        kernel: KernelId,
        /// Block index within the grid.
        block: Dim3,
        /// SM the block was placed on.
        sm: u32,
        /// Issue time.
        time: SimTime,
    },
    /// A thread block finished and released its SM slot.
    BlockFinished {
        /// Owning kernel.
        kernel: KernelId,
        /// Block index within the grid.
        block: Dim3,
        /// Completion time.
        time: SimTime,
    },
    /// A block started waiting on a semaphore that was not yet at the
    /// target value.
    BlockBlocked {
        /// Owning kernel.
        kernel: KernelId,
        /// Block index within the grid.
        block: Dim3,
        /// Semaphore array waited on.
        table: SemArrayId,
        /// Semaphore index waited on.
        index: u32,
        /// Target value.
        value: u32,
        /// Time the wait began.
        time: SimTime,
    },
    /// A semaphore post became visible.
    SemPosted {
        /// Semaphore array posted to.
        table: SemArrayId,
        /// Semaphore index posted to.
        index: u32,
        /// Value after the post.
        new_value: u32,
        /// Visibility time.
        time: SimTime,
    },
    /// All blocks of a kernel completed.
    KernelFinished {
        /// Kernel that finished.
        kernel: KernelId,
        /// Completion time.
        time: SimTime,
    },
}

impl TraceEvent {
    /// The simulated time of this event.
    pub fn time(&self) -> SimTime {
        match *self {
            TraceEvent::KernelReady { time, .. }
            | TraceEvent::BlockIssued { time, .. }
            | TraceEvent::BlockFinished { time, .. }
            | TraceEvent::BlockBlocked { time, .. }
            | TraceEvent::SemPosted { time, .. }
            | TraceEvent::KernelFinished { time, .. } => time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_event_reports_time() {
        let e = TraceEvent::KernelReady {
            kernel: KernelId(0),
            time: SimTime::from_nanos(5),
        };
        assert_eq!(e.time(), SimTime::from_nanos(5));
    }
}
