//! Chrome-trace (catapult JSON) export and validation.
//!
//! [`chrome_trace_json`] renders spans into the Trace Event Format that
//! `chrome://tracing` and Perfetto open directly: `B`/`E` duration events
//! on one process per device (plus one for serve tenants), one thread row
//! per lane. Overlapping spans on one lane are split across numbered
//! sub-rows by a deterministic greedy interval coloring, so every emitted
//! row is strictly well-nested: `B`/`E` strictly alternate and timestamps
//! are monotone — the properties [`validate_chrome_trace`] re-checks from
//! the JSON text (CI validates every exported artifact this way).
//!
//! Timestamps are microseconds with six fixed decimal places
//! (`ps / 1e6`), rendered digit-exactly from the integer picosecond
//! clock — the export is deterministic byte-for-byte.

use std::collections::BTreeMap;

use cusync_sim::{json_escape, SimTime};

use crate::span::{Lane, Span};

/// Process id used for serve tenant lanes (devices use their own index).
const TENANT_PID: u32 = 1000;

/// `(pid, sort index within the process, row name)` — the deterministic
/// grouping key of one lane.
fn lane_key(lane: &Lane) -> (u32, u32, String) {
    match lane {
        Lane::Device { device } => (*device, 0, format!("kernels d{device}")),
        Lane::Link { device } => (*device, 1, format!("link d{device}")),
        Lane::Sm { device, sm } => (*device, 2 + sm, format!("sm {sm}")),
        Lane::Tenant { tenant } => (TENANT_PID, 0, format!("tenant {tenant}")),
    }
}

fn ts_us(t: SimTime) -> String {
    let ps = t.as_picos();
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

/// Renders `spans` as a self-contained catapult JSON document.
pub fn chrome_trace_json(spans: &[Span]) -> String {
    // Group spans by lane, deterministically.
    let mut lanes: BTreeMap<(u32, u32, String), Vec<&Span>> = BTreeMap::new();
    for span in spans {
        lanes.entry(lane_key(&span.lane)).or_default().push(span);
    }
    let mut out = String::new();
    out.push_str("{\n\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [\n");
    let mut first = true;
    let mut emit = |out: &mut String, line: &str| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(line);
    };
    // Process metadata.
    let mut pids: Vec<u32> = lanes.keys().map(|(pid, _, _)| *pid).collect();
    pids.dedup();
    for pid in pids {
        let pname = if pid == TENANT_PID {
            "serve".to_owned()
        } else {
            format!("device {pid}")
        };
        emit(
            &mut out,
            &format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(&pname)
            ),
        );
        emit(
            &mut out,
            &format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_sort_index\",\
                 \"args\":{{\"sort_index\":{pid}}}}}"
            ),
        );
    }
    // Lanes: color into non-overlapping sub-rows, then emit B/E pairs in
    // time order per sub-row.
    let mut tid_next: BTreeMap<u32, u32> = BTreeMap::new();
    for ((pid, sort, name), mut lane_spans) in lanes {
        lane_spans.sort_by(|a, b| (a.start, a.end, &a.name).cmp(&(b.start, b.end, &b.name)));
        // Greedy interval coloring: first sub-row whose last end fits.
        let mut rows: Vec<Vec<&Span>> = Vec::new();
        for span in lane_spans {
            match rows
                .iter_mut()
                .find(|row| row.last().is_none_or(|last| last.end <= span.start))
            {
                Some(row) => row.push(span),
                None => rows.push(vec![span]),
            }
        }
        for (color, row) in rows.iter().enumerate() {
            let tid = {
                let next = tid_next.entry(pid).or_insert(1);
                let tid = *next;
                *next += 1;
                tid
            };
            let row_name = if rows.len() > 1 {
                format!("{name} ·{}", color + 1)
            } else {
                name.clone()
            };
            emit(
                &mut out,
                &format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                     \"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
                    json_escape(&row_name)
                ),
            );
            emit(
                &mut out,
                &format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                     \"name\":\"thread_sort_index\",\
                     \"args\":{{\"sort_index\":{}}}}}",
                    (sort as u64) * 64 + color as u64
                ),
            );
            for span in row {
                emit(
                    &mut out,
                    &format!(
                        "{{\"ph\":\"B\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\
                         \"cat\":\"{}\",\"name\":\"{}\"}}",
                        ts_us(span.start),
                        span.kind.label(),
                        json_escape(&span.name)
                    ),
                );
                emit(
                    &mut out,
                    &format!(
                        "{{\"ph\":\"E\",\"pid\":{pid},\"tid\":{tid},\"ts\":{}}}",
                        ts_us(span.end)
                    ),
                );
            }
        }
    }
    out.push_str("\n]\n}\n");
    out
}

/// Summary counts from a validated Chrome trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChromeTraceStats {
    /// Total events of any phase.
    pub events: usize,
    /// Matched `B`/`E` pairs.
    pub spans: usize,
    /// Distinct `(pid, tid)` rows carrying duration events.
    pub lanes: usize,
}

/// Re-parses an exported document and checks the well-formedness CI (and
/// the proptests) rely on: valid JSON, a `traceEvents` array, and per
/// `(pid, tid)` row strictly alternating `B`/`E` with monotone
/// non-decreasing timestamps and zero open spans at the end.
pub fn validate_chrome_trace(json: &str) -> Result<ChromeTraceStats, String> {
    let doc = mini_json::parse(json)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .as_array()
        .ok_or("traceEvents is not an array")?;
    let mut stats = ChromeTraceStats {
        events: events.len(),
        ..ChromeTraceStats::default()
    };
    let mut rows: BTreeMap<(u64, u64), (bool, f64)> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph != "B" && ph != "E" {
            continue;
        }
        let num = |field: &str| {
            ev.get(field)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("event {i}: missing numeric {field}"))
        };
        let pid = num("pid")? as u64;
        let tid = num("tid")? as u64;
        let ts = num("ts")?;
        let row = rows.entry((pid, tid)).or_insert((false, f64::NEG_INFINITY));
        if ts < row.1 {
            return Err(format!(
                "event {i}: ts {ts} went backwards on row ({pid},{tid})"
            ));
        }
        row.1 = ts;
        match ph {
            "B" => {
                if row.0 {
                    return Err(format!(
                        "event {i}: B while a span is open on ({pid},{tid})"
                    ));
                }
                row.0 = true;
            }
            _ => {
                if !row.0 {
                    return Err(format!("event {i}: E with no open span on ({pid},{tid})"));
                }
                row.0 = false;
                stats.spans += 1;
            }
        }
    }
    if let Some(((pid, tid), _)) = rows.iter().find(|(_, (open, _))| *open) {
        return Err(format!("row ({pid},{tid}) ends with an open span"));
    }
    stats.lanes = rows.len();
    Ok(stats)
}

/// A deliberately small recursive-descent JSON parser — just enough to
/// re-read our own exports (and any spec-conforming document) for
/// validation without a serde dependency anywhere in the workspace.
pub(crate) mod mini_json {
    use std::collections::BTreeMap;

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number (parsed as f64).
        Num(f64),
        /// A string, unescaped.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object (key order not preserved).
        Obj(BTreeMap<String, Value>),
    }

    impl Value {
        /// Object field lookup.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(map) => map.get(key),
                _ => None,
            }
        }

        /// The array items, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }

        /// The string contents, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The numeric value, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    /// Parses one JSON document (trailing whitespace allowed).
    pub fn parse(s: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
            {
                self.pos += 1;
            }
        }

        fn peek(&mut self) -> Result<u8, String> {
            self.skip_ws();
            self.bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| "unexpected end of input".to_owned())
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek()? == b {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected {:?} at byte {}", b as char, self.pos))
            }
        }

        fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                Ok(v)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek()? {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => Ok(Value::Str(self.string()?)),
                b't' => self.literal("true", Value::Bool(true)),
                b'f' => self.literal("false", Value::Bool(false)),
                b'n' => self.literal("null", Value::Null),
                b'-' | b'0'..=b'9' => self.number(),
                other => Err(format!(
                    "unexpected {:?} at byte {}",
                    other as char, self.pos
                )),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut map = BTreeMap::new();
            if self.peek()? == b'}' {
                self.pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.expect(b':')?;
                map.insert(key, self.value()?);
                match self.peek()? {
                    b',' => self.pos += 1,
                    b'}' => {
                        self.pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    other => {
                        return Err(format!(
                            "expected ',' or '}}', found {:?} at byte {}",
                            other as char, self.pos
                        ))
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            if self.peek()? == b']' {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(self.value()?);
                match self.peek()? {
                    b',' => self.pos += 1,
                    b']' => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    other => {
                        return Err(format!(
                            "expected ',' or ']', found {:?} at byte {}",
                            other as char, self.pos
                        ))
                    }
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(format!("expected string at byte {}", self.pos));
            }
            self.pos += 1;
            let mut out = String::new();
            loop {
                let b = *self.bytes.get(self.pos).ok_or("unterminated string")?;
                self.pos += 1;
                match b {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let esc = *self.bytes.get(self.pos).ok_or("unterminated escape")?;
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or("truncated \\u escape")?;
                                let hex =
                                    std::str::from_utf8(hex).map_err(|_| "non-ascii \\u escape")?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                                self.pos += 4;
                                // Surrogate pairs are not reconstructed;
                                // lone surrogates become U+FFFD. Our own
                                // exporter never emits them.
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            }
                            other => return Err(format!("bad escape \\{}", other as char)),
                        }
                    }
                    _ => {
                        // Re-decode UTF-8 from the byte stream: step back
                        // and take the full code point.
                        self.pos -= 1;
                        let rest = &self.bytes[self.pos..];
                        let s = std::str::from_utf8(&rest[..rest.len().min(4)])
                            .or_else(|e| std::str::from_utf8(&rest[..e.valid_up_to()]))
                            .map_err(|_| "invalid utf-8 in string")?;
                        let c = s.chars().next().ok_or("invalid utf-8 in string")?;
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            if self.bytes.get(self.pos) == Some(&b'-') {
                self.pos += 1;
            }
            while self.bytes.get(self.pos).is_some_and(|b| {
                b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-')
            }) {
                self.pos += 1;
            }
            let text =
                std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number bytes");
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| format!("bad number {text:?} at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanKind;

    fn span(name: &str, lane: Lane, start: u64, end: u64) -> Span {
        Span {
            name: name.to_owned(),
            kind: SpanKind::Block,
            lane,
            start: SimTime::from_picos(start),
            end: SimTime::from_picos(end),
        }
    }

    #[test]
    fn export_validates_and_counts_spans() {
        let spans = vec![
            span("a", Lane::Sm { device: 0, sm: 0 }, 0, 10),
            span("b", Lane::Sm { device: 0, sm: 0 }, 5, 15), // overlaps a
            span("c", Lane::Device { device: 1 }, 3, 9),
            span(
                "req \"x\"\n",
                Lane::Tenant {
                    tenant: "t0".to_owned(),
                },
                0,
                4,
            ),
        ];
        let json = chrome_trace_json(&spans);
        let stats = validate_chrome_trace(&json).expect("valid export");
        assert_eq!(stats.spans, 4);
        // a and b overlap: they must land on different rows.
        assert_eq!(stats.lanes, 4);
    }

    #[test]
    fn export_is_deterministic() {
        let spans = vec![
            span("x", Lane::Device { device: 0 }, 1, 2),
            span("y", Lane::Link { device: 0 }, 2, 8),
        ];
        assert_eq!(chrome_trace_json(&spans), chrome_trace_json(&spans));
    }

    #[test]
    fn validator_rejects_malformed_rows() {
        let unbalanced = r#"{"traceEvents":[
            {"ph":"B","pid":0,"tid":1,"ts":1.5,"name":"a"}
        ]}"#;
        assert!(validate_chrome_trace(unbalanced)
            .unwrap_err()
            .contains("open span"));
        let backwards = r#"{"traceEvents":[
            {"ph":"B","pid":0,"tid":1,"ts":5.0,"name":"a"},
            {"ph":"E","pid":0,"tid":1,"ts":4.0}
        ]}"#;
        assert!(validate_chrome_trace(backwards)
            .unwrap_err()
            .contains("backwards"));
        assert!(validate_chrome_trace("not json").is_err());
    }

    #[test]
    fn ts_is_fixed_point_microseconds() {
        assert_eq!(ts_us(SimTime::from_picos(0)), "0.000000");
        assert_eq!(ts_us(SimTime::from_picos(1_234_567)), "1.234567");
        assert_eq!(ts_us(SimTime::from_picos(42)), "0.000042");
    }
}
