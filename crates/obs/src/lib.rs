//! `cusync-obs` — passive, deterministic observability for the cuSync
//! simulator and serving stack.
//!
//! The layer is strictly *derived*: it consumes finished artifacts — an
//! engine's canonical [`TraceEvent`](cusync_sim::TraceEvent) buffer, a
//! [`RunReport`](cusync_sim::RunReport), a serve report — and never feeds
//! anything back into the machinery that produced them. That is what makes
//! the passivity guarantee testable: `tests/engine_equivalence.rs` asserts
//! the simulated timeline is bit-identical with tracing on or off, across
//! the reference engine, the optimized serial engine, and the
//! device-sharded parallel engine.
//!
//! Three consumers are built on one span model ([`span`]):
//!
//! - [`timeline`] renders a trace into [`Span`]s (kernel lifetimes, block
//!   residency, sem-wait spins, gate holds, link transfers);
//! - [`chrome`] exports spans as catapult JSON for `chrome://tracing` /
//!   Perfetto, and re-validates exported documents;
//! - [`attr`] buckets every slot-picosecond of every device into
//!   {compute, sync-wait, link, idle} (plus a gate-hold overlay), per
//!   kernel and per dependence edge, and extracts the critical path —
//!   the analysis behind the paper's claim that fine-grained
//!   synchronization shrinks the sync-wait share of the schedule
//!   relative to stream serialization.

#![warn(missing_docs)]

pub mod attr;
pub mod chrome;
pub mod span;
pub mod timeline;

pub use attr::{
    Attribution, CriticalHop, CriticalPath, DeviceAttribution, EdgeAttribution, HopVia,
    KernelAttribution,
};
pub use chrome::{chrome_trace_json, validate_chrome_trace, ChromeTraceStats};
pub use span::{Lane, Span, SpanCollector, SpanKind, TraceSink};
pub use timeline::{collect_spans, spans_from_trace};
