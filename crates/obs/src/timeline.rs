//! Span extraction from a finished engine run.
//!
//! [`spans_from_trace`] walks a canonical [`TraceEvent`] buffer (already
//! merged and time-sorted by the engine, identically for serial and
//! device-sharded execution) plus the run's [`RunReport`] and renders the
//! paper's cost structure as spans:
//!
//! - one [`SpanKind::Kernel`] span per kernel (first issue → last finish),
//! - one [`SpanKind::Block`] span per thread-block residency,
//! - one [`SpanKind::Spin`] span per sem-wait park (park → wake),
//! - one [`SpanKind::GateHold`] span per held launch gate,
//! - one [`SpanKind::Link`] span per `LinkSend` wire occupancy.
//!
//! Open intervals (a block still parked when a run aborted or deadlocked)
//! are clamped to the report's total time, so every span is well-formed.

use std::collections::HashMap;

use cusync_sim::{ClusterConfig, RunReport, SimTime, TraceEvent};

use crate::span::{Lane, Span, SpanKind, TraceSink};

/// Maps each global SM index to its owning device, mirroring the
/// simulator's flat SM numbering (device 0's SMs first, then device 1's…).
pub(crate) fn device_of_sm(cluster: &ClusterConfig) -> Vec<u32> {
    let mut map = Vec::with_capacity(cluster.total_sms() as usize);
    for (d, gpu) in cluster.devices.iter().enumerate() {
        map.extend(std::iter::repeat_n(d as u32, gpu.num_sms as usize));
    }
    map
}

/// Renders the trace of one finished run into spans, in a deterministic
/// order (kernel spans in launch order, then event-derived spans in trace
/// order).
pub fn spans_from_trace(
    cluster: &ClusterConfig,
    report: &RunReport,
    trace: &[TraceEvent],
    sink: &mut dyn TraceSink,
) {
    let horizon = report.total;
    let sm_device = device_of_sm(cluster);
    for (k, kr) in report.kernels.iter().enumerate() {
        if kr.end > kr.start || kr.blocks > 0 {
            sink.record(Span {
                name: format!("{} (k{k})", kr.name),
                kind: SpanKind::Kernel,
                lane: Lane::Device { device: kr.device },
                start: kr.start,
                end: kr.end.max(kr.start),
            });
        }
    }
    // Open-interval registries, keyed by (kernel index, block).
    let mut resident: HashMap<(usize, cusync_sim::Dim3), (SimTime, u32)> = HashMap::new();
    let mut spinning: HashMap<(usize, cusync_sim::Dim3), SimTime> = HashMap::new();
    let mut held: HashMap<usize, SimTime> = HashMap::new();
    let kernel_name = |k: usize| {
        report
            .kernels
            .get(k)
            .map(|kr| kr.name.as_str())
            .unwrap_or("?")
    };
    for event in trace {
        match event {
            TraceEvent::BlockIssued {
                kernel,
                block,
                sm,
                time,
                ..
            } => {
                resident.insert((kernel.index(), *block), (*time, *sm));
            }
            TraceEvent::BlockFinished {
                kernel,
                block,
                time,
            } => {
                if let Some((start, sm)) = resident.remove(&(kernel.index(), *block)) {
                    let device = sm_device.get(sm as usize).copied().unwrap_or(0);
                    sink.record(Span {
                        name: format!("{} {block}", kernel_name(kernel.index())),
                        kind: SpanKind::Block,
                        lane: Lane::Sm { device, sm },
                        start,
                        end: *time,
                    });
                }
            }
            TraceEvent::BlockBlocked {
                kernel,
                block,
                time,
                ..
            } => {
                spinning.insert((kernel.index(), *block), *time);
            }
            TraceEvent::BlockWoken {
                kernel,
                block,
                time,
                ..
            } => {
                if let Some(start) = spinning.remove(&(kernel.index(), *block)) {
                    let sm = resident
                        .get(&(kernel.index(), *block))
                        .map(|&(_, sm)| sm)
                        .unwrap_or(0);
                    let device = sm_device.get(sm as usize).copied().unwrap_or(0);
                    sink.record(Span {
                        name: format!("{} {block} spin", kernel_name(kernel.index())),
                        kind: SpanKind::Spin,
                        lane: Lane::Sm { device, sm },
                        start,
                        end: *time,
                    });
                }
            }
            TraceEvent::GateHeld { kernel, time } => {
                held.insert(kernel.index(), *time);
            }
            TraceEvent::GateOpened { kernel, time, .. } => {
                if let Some(start) = held.remove(&kernel.index()) {
                    let device = report
                        .kernels
                        .get(kernel.index())
                        .map(|kr| kr.device)
                        .unwrap_or(0);
                    sink.record(Span {
                        name: format!("{} gate", kernel_name(kernel.index())),
                        kind: SpanKind::GateHold,
                        lane: Lane::Device { device },
                        start,
                        end: *time,
                    });
                }
            }
            TraceEvent::LinkSent {
                kernel,
                block,
                bytes,
                wire,
                time,
            } => {
                let device = report
                    .kernels
                    .get(kernel.index())
                    .map(|kr| kr.device)
                    .unwrap_or(0);
                sink.record(Span {
                    name: format!("{} {block} send {bytes}B", kernel_name(kernel.index())),
                    kind: SpanKind::Link,
                    lane: Lane::Link { device },
                    start: *time,
                    end: *time + *wire,
                });
            }
            _ => {}
        }
    }
    // Clamp whatever never closed (aborted or deadlocked runs) to the
    // run horizon so downstream consumers always see closed intervals.
    let mut leftovers: Vec<Span> = Vec::new();
    for (&(k, block), &(start, sm)) in &resident {
        let device = sm_device.get(sm as usize).copied().unwrap_or(0);
        leftovers.push(Span {
            name: format!("{} {block} (unfinished)", kernel_name(k)),
            kind: SpanKind::Block,
            lane: Lane::Sm { device, sm },
            start,
            end: horizon.max(start),
        });
    }
    for (&(k, block), &start) in &spinning {
        let sm = resident.get(&(k, block)).map(|&(_, sm)| sm).unwrap_or(0);
        let device = sm_device.get(sm as usize).copied().unwrap_or(0);
        leftovers.push(Span {
            name: format!("{} {block} spin (unwoken)", kernel_name(k)),
            kind: SpanKind::Spin,
            lane: Lane::Sm { device, sm },
            start,
            end: horizon.max(start),
        });
    }
    for (&k, &start) in &held {
        let device = report.kernels.get(k).map(|kr| kr.device).unwrap_or(0);
        leftovers.push(Span {
            name: format!("{} gate (unopened)", kernel_name(k)),
            kind: SpanKind::GateHold,
            lane: Lane::Device { device },
            start,
            end: horizon.max(start),
        });
    }
    leftovers.sort_by(|a, b| (a.start, &a.name).cmp(&(b.start, &b.name)));
    for span in leftovers {
        sink.record(span);
    }
}

/// Convenience wrapper over [`spans_from_trace`] collecting into a vector.
pub fn collect_spans(
    cluster: &ClusterConfig,
    report: &RunReport,
    trace: &[TraceEvent],
) -> Vec<Span> {
    let mut spans = Vec::new();
    spans_from_trace(cluster, report, trace, &mut spans);
    spans
}
