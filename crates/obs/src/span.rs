//! The span model: closed intervals of virtual time on a named lane.
//!
//! Everything the observability layer exports — Chrome traces, attribution
//! buckets, serve request lifecycles — is first rendered into [`Span`]s: a
//! `(lane, kind, name, start, end)` tuple in integer-picosecond virtual
//! time. Spans are *derived* from finished artifacts (an engine
//! [`TraceEvent`](cusync_sim::TraceEvent) buffer, a `ServeReport`), never
//! recorded inline by the engines, which is what keeps observation
//! provably passive: the engines' timelines are bit-identical with
//! tracing on or off (see `tests/engine_equivalence.rs`).

use cusync_sim::SimTime;

/// What a span's interval measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// A kernel's lifetime: first block issue to last block completion.
    Kernel,
    /// One thread block's SM residency.
    Block,
    /// A sem-wait spin: the block occupied its slot but made no progress
    /// (park to wake, wake including the observing poll).
    Spin,
    /// A launch-gate hold: the kernel was at its stream head but gated
    /// (PDL `AfterLaunchOf` or stream-serial `AfterCompletionOf`).
    GateHold,
    /// A `LinkSend` occupying the inter-device link.
    Link,
    /// A serve-layer request lifecycle phase (queue, batch, dispatch, …).
    Phase,
}

impl SpanKind {
    /// Stable lower-case label, used as the Chrome-trace `cat` field.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Kernel => "kernel",
            SpanKind::Block => "block",
            SpanKind::Spin => "spin",
            SpanKind::GateHold => "gate",
            SpanKind::Link => "link",
            SpanKind::Phase => "phase",
        }
    }
}

/// The horizontal track a span renders on. One lane maps to one (or more,
/// if spans overlap) `chrome://tracing` thread rows.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lane {
    /// Device-wide events: kernel lifetimes, gate holds.
    Device {
        /// Device index within the cluster.
        device: u32,
    },
    /// One SM of one device: block residency and spins.
    Sm {
        /// Device index within the cluster.
        device: u32,
        /// Global SM index (unique across the cluster).
        sm: u32,
    },
    /// The outbound inter-device link of one device.
    Link {
        /// Sending device index.
        device: u32,
    },
    /// A serve-layer tenant's request timeline.
    Tenant {
        /// Tenant name.
        tenant: String,
    },
}

/// One closed interval of virtual time on a lane.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Human-readable label (kernel name, `k0 (1,0,0)`, request id, …).
    pub name: String,
    /// What the interval measures.
    pub kind: SpanKind,
    /// Track the span renders on.
    pub lane: Lane,
    /// Interval start.
    pub start: SimTime,
    /// Interval end (`end >= start`; zero-width spans are legal).
    pub end: SimTime,
}

impl Span {
    /// Interval width.
    pub fn duration(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }
}

/// Receiver of finished spans. Implemented by [`SpanCollector`] (and by
/// plain `Vec<Span>`); custom sinks can stream spans elsewhere — the
/// producers only ever hand over values.
pub trait TraceSink {
    /// Receives one finished span.
    fn record(&mut self, span: Span);
}

impl TraceSink for Vec<Span> {
    fn record(&mut self, span: Span) {
        self.push(span);
    }
}

/// The simplest [`TraceSink`]: collects spans into a vector.
#[derive(Debug, Default, Clone)]
pub struct SpanCollector {
    /// Spans received so far, in arrival order.
    pub spans: Vec<Span>,
}

impl SpanCollector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the collector, returning its spans.
    pub fn into_spans(self) -> Vec<Span> {
        self.spans
    }
}

impl TraceSink for SpanCollector {
    fn record(&mut self, span: Span) {
        self.spans.push(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_collects_in_order() {
        let mut sink = SpanCollector::new();
        for i in 0..3u64 {
            sink.record(Span {
                name: format!("s{i}"),
                kind: SpanKind::Block,
                lane: Lane::Device { device: 0 },
                start: SimTime::from_picos(i),
                end: SimTime::from_picos(i + 1),
            });
        }
        let spans = sink.into_spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[2].name, "s2");
        assert_eq!(spans[2].duration(), SimTime::from_picos(1));
    }
}
